"""Shared helpers for the benchmark harness.

Every benchmark module regenerates one table or figure from the paper's
evaluation (section 8) — see DESIGN.md's experiment index and EXPERIMENTS.md
for the mapping.  Each benchmark prints the regenerated rows/series with the
``repro.analysis.report`` formatters, so running::

    pytest benchmarks/ --benchmark-only -s

produces a textual version of every table and figure alongside the
pytest-benchmark timing statistics.
"""

from __future__ import annotations

import pytest

from repro.core import ControllerConfig, MBController, NorthboundAPI
from repro.middleboxes import DummyMiddlebox
from repro.net import Simulator
from repro.runtime import RuntimeConfig


def controller_with_dummies(chunk_counts, *, quiescence: float = 0.1, per_message_cost: float = 40e-6):
    """Build a controller plus (src, dst) dummy middlebox pairs.

    ``chunk_counts`` is a list of per-pair chunk counts; returns
    (sim, controller, northbound, [(src, dst), ...]).
    """
    sim = Simulator()
    controller = MBController(
        sim, ControllerConfig(quiescence_timeout=quiescence, per_message_cost=per_message_cost)
    )
    northbound = NorthboundAPI(controller)
    pairs = []
    for index, count in enumerate(chunk_counts):
        src = DummyMiddlebox(sim, f"dummy-src-{index}", chunk_count=count)
        dst = DummyMiddlebox(sim, f"dummy-dst-{index}")
        controller.register(src)
        controller.register(dst)
        pairs.append((src, dst))
    return sim, controller, northbound, pairs


def realtime_controller_with_dummies(
    chunk_counts,
    *,
    shards: int = 1,
    quiescence: float = 0.01,
    per_message_cost: float = 40e-6,
):
    """The wall-clock twin of :func:`controller_with_dummies`.

    Same controller + dummy-pair topology, but on a :class:`RealtimeRuntime`
    (``RuntimeConfig(mode="realtime")``): delays are real ``asyncio`` sleeps
    and ``runtime.now`` tracks the monotonic clock, so every duration the
    ``bench_wallclock_*`` family reports is measured wall time.  Callers own
    the runtime and must call ``runtime.close()`` when done.
    """
    runtime = RuntimeConfig(mode="realtime").create()
    controller = MBController(
        runtime,
        ControllerConfig(quiescence_timeout=quiescence, per_message_cost=per_message_cost, num_shards=shards),
    )
    northbound = NorthboundAPI(controller)
    pairs = []
    for index, count in enumerate(chunk_counts):
        src = DummyMiddlebox(runtime, f"dummy-src-{index}", chunk_count=count)
        dst = DummyMiddlebox(runtime, f"dummy-dst-{index}")
        controller.register(src)
        controller.register(dst)
        pairs.append((src, dst))
    return runtime, controller, northbound, pairs


@pytest.fixture
def once(benchmark):
    """Run the measured callable exactly once (the workloads are simulations)."""

    def run(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1, warmup_rounds=0)

    return run
