"""Shared helpers for the benchmark harness.

Every benchmark module regenerates one table or figure from the paper's
evaluation (section 8) — see DESIGN.md's experiment index and EXPERIMENTS.md
for the mapping.  Each benchmark prints the regenerated rows/series with the
``repro.analysis.report`` formatters, so running::

    pytest benchmarks/ --benchmark-only -s

produces a textual version of every table and figure alongside the
pytest-benchmark timing statistics.
"""

from __future__ import annotations

import pytest

from repro.core import ControllerConfig, MBController, NorthboundAPI
from repro.middleboxes import DummyMiddlebox
from repro.net import Simulator


def controller_with_dummies(chunk_counts, *, quiescence: float = 0.1, per_message_cost: float = 40e-6):
    """Build a controller plus (src, dst) dummy middlebox pairs.

    ``chunk_counts`` is a list of per-pair chunk counts; returns
    (sim, controller, northbound, [(src, dst), ...]).
    """
    sim = Simulator()
    controller = MBController(
        sim, ControllerConfig(quiescence_timeout=quiescence, per_message_cost=per_message_cost)
    )
    northbound = NorthboundAPI(controller)
    pairs = []
    for index, count in enumerate(chunk_counts):
        src = DummyMiddlebox(sim, f"dummy-src-{index}", chunk_count=count)
        dst = DummyMiddlebox(sim, f"dummy-dst-{index}")
        controller.register(src)
        controller.register(dst)
        pairs.append((src, dst))
    return sim, controller, northbound, pairs


@pytest.fixture
def once(benchmark):
    """Run the measured callable exactly once (the workloads are simulations)."""

    def run(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1, warmup_rounds=0)

    return run
