"""Section 8.2 (performance): per-packet latency during normal operation vs during a get.

Regenerates the per-packet processing-latency comparison: the mean per-packet
processing time of a middlebox during normal operation and while it is
servicing a getSupportPerflow call, for the monitor and the IDS.  The paper
reports at most a ~2 % increase (e.g. Bro: 6.93 ms normal vs 7.06 ms during a
get); the simulated middleboxes apply the same bounded slowdown only while API
calls are outstanding.
"""

from __future__ import annotations

from repro.analysis import format_table, print_block
from repro.core import ControllerConfig, FlowPattern, MBController, NorthboundAPI
from repro.middleboxes import IDS, PassiveMonitor
from repro.net import Simulator
from repro.traffic import TraceReplayer, constant_rate_trace


def measure_latency(mb_factory, label):
    """Mean per-packet processing latency in normal operation and during a get."""
    sim = Simulator()
    controller = MBController(sim, ControllerConfig(quiescence_timeout=0.3))
    northbound = NorthboundAPI(controller)
    src = mb_factory(sim, f"{label}-src")
    dst = mb_factory(sim, f"{label}-dst")
    controller.register(src)
    controller.register(dst)

    # Normal operation: steady traffic, no API activity.
    warm = constant_rate_trace(rate=1000.0, duration=0.5, flows=400, seed=110)
    TraceReplayer.into_node(sim, warm, src).schedule()
    sim.run(until=0.6)
    normal_packets = src.counters.packets_received
    normal_time = src.counters.processing_time_total
    normal_latency = normal_time / normal_packets

    # During a get: keep the same packet rate flowing while per-flow state is exported.
    handle = northbound.move_internal(src.name, dst.name, FlowPattern.wildcard())
    busy = constant_rate_trace(rate=1000.0, duration=0.5, flows=400, seed=111)
    TraceReplayer.into_node(sim, busy, src, start_at=sim.now).schedule()
    sim.run_until(handle.completed, limit=100)
    sim.run(until=sim.now + 0.6)
    during_packets = src.counters.packets_received - normal_packets
    during_time = src.counters.processing_time_total - normal_time
    during_latency = during_time / during_packets
    return normal_latency, during_latency


def test_sec82_packet_latency(once):
    def run_both():
        return (
            measure_latency(lambda sim, name: PassiveMonitor(sim, name), "monitor"),
            measure_latency(lambda sim, name: IDS(sim, name), "ids"),
        )

    (mon_normal, mon_during), (ids_normal, ids_during) = once(run_both)

    rows = [
        ("monitor (PRADS-like)", round(mon_normal * 1e6, 2), round(mon_during * 1e6, 2), round(100 * (mon_during / mon_normal - 1), 2)),
        ("IDS (Bro-like)", round(ids_normal * 1e6, 2), round(ids_during * 1e6, 2), round(100 * (ids_during / ids_normal - 1), 2)),
    ]
    print_block(
        format_table(
            "Section 8.2 — per-packet processing latency, normal vs during a get",
            ["middlebox", "normal (us)", "during get (us)", "increase (%)"],
            rows,
        )
    )

    # The increase exists but stays within a few percent (the paper reports ~2%).
    for normal, during in ((mon_normal, mon_during), (ids_normal, ids_during)):
        assert during >= normal
        assert during <= normal * 1.05
