"""Figure 7: middlebox actions during the scale-up scenario.

Regenerates the timeline of Figure 7: packet processing at the original and
new monitor instances, re-process events raised/consumed, and the get/put
windows of the moveInternal operation, over a window around the scale-up.
"""

from __future__ import annotations

from repro.analysis import ActivitySampler, format_table, operation_windows, print_block
from repro.apps import ScaleUpApp, build_two_instance_scenario
from repro.core import FlowPattern
from repro.middleboxes import PassiveMonitor
from repro.traffic import enterprise_cloud_trace


def run_scaleup_timeline():
    scenario = build_two_instance_scenario(
        mb_factory=lambda sim, name: PassiveMonitor(sim, name), mb_names=("prads-old", "prads-new")
    )
    sim = scenario.sim
    trace = enterprise_cloud_trace(http_flows=60, other_flows=15, duration=12.0, seed=70, leave_open_fraction=0.5)
    scenario.inject(trace, speedup=20.0)
    sampler = ActivitySampler(sim, [scenario.mb1, scenario.mb2], interval=0.05)
    sampler.start(duration=3.0)
    sim.run(until=0.5)
    app = ScaleUpApp(
        sim,
        scenario.northbound,
        existing_mb="prads-old",
        new_mb="prads-new",
        patterns=[FlowPattern(nw_src="10.1.1.0/24")],
        update_routing=lambda pattern: scenario.route_via(scenario.mb2, pattern),
    )
    sim.run_until(app.start(), limit=200)
    sim.run(until=3.0)
    return scenario, sampler, app


def test_fig7_scaleup_timeline(once):
    scenario, sampler, app = once(run_scaleup_timeline)

    windows = operation_windows(scenario.controller.stats.records + scenario.controller.active_operations())
    print_block(
        format_table(
            "Figure 7 — state operations during scale-up",
            ["operation", "src", "dst", "start (s)", "returned (s)", "chunks", "events fwd"],
            [
                (w.op_type, w.src, w.dst, round(w.started_at, 3), round(w.completed_at or -1, 3), w.chunks, w.events_forwarded)
                for w in windows
            ],
        )
    )
    for name, series in sampler.series.items():
        rows = [
            (round(t, 2), round(pkt_rate, 1), round(raise_rate, 1), round(consume_rate, 1))
            for t, pkt_rate, raise_rate, consume_rate in series.rates()
            if pkt_rate or raise_rate or consume_rate
        ]
        print_block(
            format_table(
                f"Figure 7 — activity at {name} (per 50 ms sample)",
                ["time (s)", "packets/s", "events raised/s", "events consumed/s"],
                rows[:30],
            )
        )

    # Shape checks mirroring the paper's observations:
    old, new = scenario.mb1, scenario.mb2
    move = windows[0]
    # 1. HTTP packets are processed by the original MB until (slightly after) the
    #    final put completes, then the new MB takes over.
    assert old.counters.packets_received > 0
    assert new.counters.packets_received > 0
    new_before_move = [
        s.packets_received for s in sampler.series[new.name].samples if s.time < move.started_at
    ]
    assert new_before_move and new_before_move[-1] == 0
    # 2. The original MB raises re-process events soon after the get begins and the
    #    new MB consumes them after the corresponding state has been put.
    assert old.counters.reprocess_events_raised > 0
    assert new.counters.reprocessed_packets > 0
    assert new.counters.reprocessed_packets <= old.counters.reprocess_events_raised
