"""Ablation: compressing state before transfer (paper section 8.3).

The paper profiles its controller and observes that socket reads dominate when
many chunks move, suggesting compression: in their experiment a 500-chunk move
compresses state by ~38 % and drops from 110 ms to 70 ms.  This ablation moves
the same per-flow state with and without chunk compression over a deliberately
constrained control channel and reports the bytes transferred and the
simulated operation time.
"""

from __future__ import annotations

from repro.analysis import format_table, print_block
from repro.core import ControllerConfig, MBController, NorthboundAPI
from repro.core.chunks import ChunkCodec
from repro.middleboxes import DummyMiddlebox
from repro.net import Simulator

CHUNKS = 500
CHUNK_BYTES = 4000
#: A constrained control channel (100 Mbit/s) so transfer size matters.
CHANNEL_BANDWIDTH = 12_500_000.0


def run_move(compress: bool) -> dict:
    sim = Simulator()
    config = ControllerConfig(quiescence_timeout=0.1, channel_bandwidth=CHANNEL_BANDWIDTH)
    controller = MBController(sim, config)
    northbound = NorthboundAPI(controller)
    src = DummyMiddlebox(sim, "src", chunk_count=CHUNKS, chunk_bytes=CHUNK_BYTES)
    dst = DummyMiddlebox(sim, "dst")
    if compress:
        codec = ChunkCodec.for_mb_type(DummyMiddlebox.MB_TYPE, compress=True)
        src.codec = codec
        dst.codec = codec
    controller.register(src)
    controller.register(dst)
    handle = northbound.move_internal("src", "dst", None)
    record = sim.run_until(handle.completed, limit=500)
    return {
        "compress": compress,
        "chunks": record.chunks_transferred,
        "bytes": record.bytes_transferred,
        "duration": record.duration,
    }


def test_ablation_state_compression(once):
    def run_both():
        return run_move(False), run_move(True)

    plain, compressed = once(run_both)

    reduction = 100.0 * (1.0 - compressed["bytes"] / plain["bytes"])
    speedup = 100.0 * (1.0 - compressed["duration"] / plain["duration"])
    rows = [
        ("uncompressed chunks", plain["chunks"], plain["bytes"], round(plain["duration"] * 1000, 1)),
        ("compressed chunks", compressed["chunks"], compressed["bytes"], round(compressed["duration"] * 1000, 1)),
    ]
    print_block(
        format_table(
            "Ablation — state compression before transfer (100 Mbit/s control channel)",
            ["configuration", "chunks moved", "bytes transferred", "move time (ms)"],
            rows,
        )
    )
    print_block(
        format_table(
            "Ablation — compression effect",
            ["metric", "value"],
            [("state size reduction (%)", round(reduction, 1)), ("operation time reduction (%)", round(speedup, 1))],
        )
    )

    assert compressed["chunks"] == plain["chunks"]
    # Compression shrinks the transferred state substantially and shortens the move.
    assert compressed["bytes"] < plain["bytes"] * 0.8
    assert compressed["duration"] < plain["duration"]
