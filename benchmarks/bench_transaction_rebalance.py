"""Transaction-coordinated rebalance vs. manual sequencing.

The transactional northbound API orders route installation on the move's
*state-installed* point (every per-flow put ACKed) instead of whole-operation
completion.  For an order-preserving move the difference is the entire replay
+ per-flow-release tail: with manual sequencing the new route is not even
requested until that tail has drained, so live traffic keeps arriving at the
old instance the whole time and every such packet needs a buffered replay.

This benchmark runs the same monitor rebalance both ways and reports:

* **move time** — moveInternal start until the operation returned;
* **re-route window** — state fully installed at the destination until the
  new routes are applied on every switch (the interval in which packets still
  reach the old instance although the new one could already serve them);
* **stale deliveries** — packets the old instance received inside that window
  (each one costs a re-process event + replay);
* **updates lost / misordered** — conservation check over per-flow packet
  counters, and packets the destination had to queue behind per-flow holds
  (the order-preserving misordering guard).

Expected shape: identical move times, a much shorter re-route window for the
transaction (install latency only), correspondingly fewer stale deliveries,
and zero lost updates for both.
"""

from __future__ import annotations

from repro.analysis import format_table, print_block
from repro.apps import build_two_instance_scenario
from repro.core import FlowPattern, TransferGuarantee, TransferSpec
from repro.middleboxes import PassiveMonitor

FLOWS = 60
PACKETS_DURING_MOVE = 600
PACKET_SPACING = 0.0002
SPEC = TransferSpec(guarantee=TransferGuarantee.ORDER_PRESERVING)
PATTERN = FlowPattern(nw_src="10.1.1.0/24")


def build():
    scenario = build_two_instance_scenario(
        mb_factory=lambda sim, name: PassiveMonitor(sim, name),
        mb_names=("mon1", "mon2"),
        quiescence_timeout=0.2,
    )
    sim = scenario.sim
    for index in range(FLOWS):
        from repro.net import tcp_packet

        packet = tcp_packet(f"10.1.1.{index % 200 + 1}", "172.16.0.10", 1000 + index, 80, b"warm")
        sim.schedule(0.0002 * index, scenario.mb1.receive, packet, 1)
    sim.run(until=sim.now + 0.1)
    return scenario


def keep_traffic_flowing(scenario):
    from repro.net import tcp_packet

    sim = scenario.sim
    for index in range(PACKETS_DURING_MOVE):
        packet = tcp_packet(
            f"10.1.1.{index % FLOWS % 200 + 1}", "172.16.0.10", 1000 + index % FLOWS, 80, b"live"
        )
        sim.schedule(PACKET_SPACING * index, scenario.client_gw.send, packet)


def arm(scenario, handle, routed_future):
    """Register the window-boundary probes (must run before the simulation)."""
    sim = scenario.sim
    marks = {}
    handle.state_installed.add_done_callback(
        lambda f: marks.update(installed_at=sim.now, stale_at_install=scenario.mb1.counters.packets_received)
    )
    routed_future.add_done_callback(
        lambda f: marks.update(routed_at=sim.now, stale_at_routed=scenario.mb1.counters.packets_received)
    )
    return marks


def measure(scenario, handle, routed_future, marks):
    """Common measurement: window boundaries + conservation."""
    sim = scenario.sim
    sim.run_until(handle.finalized, limit=1000)
    if not routed_future.done:
        sim.run_until(routed_future, limit=1000)
    sim.run(until=sim.now + 1.0)
    record = handle.record
    total = sum(rec.packets for _, rec in scenario.mb1.report_store.items())
    total += sum(rec.packets for _, rec in scenario.mb2.report_store.items())
    return {
        "move_time": record.duration,
        "window": marks["routed_at"] - marks["installed_at"],
        "stale_deliveries": marks["stale_at_routed"] - marks["stale_at_install"],
        "updates_lost": FLOWS + PACKETS_DURING_MOVE - total,
        "held_packets": scenario.mb2.counters.packets_held,
        "events_replayed": record.events_forwarded,
        "releases": record.releases_sent,
    }


def run_manual():
    """The pre-transaction idiom: re-route only after the move *returned*."""
    scenario = build()
    sim = scenario.sim
    handle = scenario.northbound.move_internal("mon1", "mon2", PATTERN, spec=SPEC)
    keep_traffic_flowing(scenario)
    routed = sim.event(name="manual-routed")
    handle.completed.add_done_callback(
        lambda f: scenario.route_via(scenario.mb2, PATTERN).add_done_callback(
            lambda rf: routed.succeed(None)
        )
    )
    marks = arm(scenario, handle, routed)
    return measure(scenario, handle, routed, marks)


def run_transaction():
    """One transaction: the reroute step is gated on state_installed."""
    scenario = build()
    sim = scenario.sim
    txn = scenario.northbound.transaction()
    move = txn.move("mon1", "mon2", PATTERN, spec=SPEC)
    route = txn.reroute(
        pattern=PATTERN, apply=lambda: scenario.route_via(scenario.mb2, PATTERN), after=move
    )
    txn_handle = txn.commit()
    keep_traffic_flowing(scenario)
    # The move step launches on the first scheduling round; step once so the
    # operation handle exists, then arm the probes before the clock advances.
    sim.run(until=sim.now)
    marks = arm(scenario, move.handle, route.gate)
    sim.run_until(txn_handle.done, limit=1000)
    return measure(scenario, move.handle, route.gate, marks)


def test_transaction_rebalance_vs_manual(once):
    def run_both():
        return {"manual sequencing": run_manual(), "transaction": run_transaction()}

    results = once(run_both)
    headers = [
        "strategy",
        "move time (s)",
        "re-route window (s)",
        "stale deliveries",
        "updates lost",
        "held @ dst",
        "replays",
    ]
    rows = [
        [
            name,
            metrics["move_time"],
            metrics["window"],
            metrics["stale_deliveries"],
            metrics["updates_lost"],
            metrics["held_packets"],
            metrics["events_replayed"],
        ]
        for name, metrics in results.items()
    ]
    print_block(
        format_table("Transaction-coordinated rebalance vs manual sequencing (order-preserving move)", headers, rows)
    )
    manual, txn = results["manual sequencing"], results["transaction"]
    assert manual["updates_lost"] == 0
    assert txn["updates_lost"] == 0
    # The coordinated reroute opens a strictly shorter window and therefore
    # fewer packets hit the stale instance.
    assert txn["window"] < manual["window"]
    assert txn["stale_deliveries"] <= manual["stale_deliveries"]
