"""Section 8.2 (correctness): unmodified vs OpenMB-enabled middlebox outputs.

Regenerates the three correctness comparisons of section 8.2:

* IDS: conn.log / http.log of a single unmodified instance versus the combined
  logs of two OpenMB-enabled instances subjected to a live migration;
* monitor: aggregate statistics of a single instance versus the collective
  statistics of a scaled deployment;
* RE: every packet of a high-redundancy trace is correctly reconstructed after
  the decoder migration.
"""

from __future__ import annotations

from repro.analysis import compare_ids_outputs, compare_monitor_statistics, format_table, print_block
from repro.apps import PerFlowMigrationApp, REMigrationApp, ScaleUpApp, build_re_migration_scenario, build_two_instance_scenario
from repro.core import FlowPattern
from repro.middleboxes import IDS, PassiveMonitor
from repro.net import Simulator
from repro.traffic import enterprise_cloud_trace, redundancy_trace


def run_ids_comparison():
    trace = enterprise_cloud_trace(http_flows=25, other_flows=10, duration=15.0, seed=100, leave_open_fraction=0.3)
    scenario = build_two_instance_scenario(mb_factory=lambda sim, name: IDS(sim, name), mb_names=("ids-a", "ids-b"))
    scenario.inject(trace, speedup=40.0)
    scenario.sim.run(until=0.3)
    app = PerFlowMigrationApp(
        scenario.sim,
        scenario.northbound,
        old_mb="ids-a",
        new_mb="ids-b",
        pattern=FlowPattern(tp_dst=80),
        update_routing=lambda p: scenario.route_via(scenario.mb2, p),
        wait_for_finalize=True,
    )
    scenario.sim.run_until(app.start(), limit=300)
    scenario.sim.run(until=scenario.sim.now + 3.0)
    scenario.mb1.finalize()
    scenario.mb2.finalize()
    reference = IDS(Simulator(), "reference")
    for record in trace:
        reference.process_packet(record.to_packet())
    reference.finalize()
    return reference, scenario


def run_monitor_comparison():
    trace = enterprise_cloud_trace(http_flows=30, other_flows=10, duration=15.0, seed=101)
    scenario = build_two_instance_scenario(
        mb_factory=lambda sim, name: PassiveMonitor(sim, name), mb_names=("mon-a", "mon-b")
    )
    scenario.inject(trace, speedup=40.0)
    scenario.sim.run(until=0.3)
    app = ScaleUpApp(
        scenario.sim,
        scenario.northbound,
        existing_mb="mon-a",
        new_mb="mon-b",
        patterns=[FlowPattern(nw_src="10.1.1.0/25")],
        update_routing=lambda p: scenario.route_via(scenario.mb2, p),
    )
    scenario.sim.run_until(app.start(), limit=200)
    scenario.sim.run(until=scenario.sim.now + 3.0)
    reference = PassiveMonitor(Simulator(), "reference")
    for record in trace:
        reference.process_packet(record.to_packet())
    return reference, scenario


def run_re_comparison():
    scenario = build_re_migration_scenario(cache_capacity=128 * 1024)
    warm_a = redundancy_trace(packets=120, payload_bytes=512, redundancy=0.7, server_subnet="1.1.1", seed=102)
    warm_b = redundancy_trace(packets=120, payload_bytes=512, redundancy=0.7, server_subnet="1.1.2", seed=103)
    scenario.inject(warm_a.merged_with(warm_b))
    scenario.sim.run(until=scenario.sim.now + 0.6)
    app = REMigrationApp(
        scenario.sim,
        scenario.northbound,
        encoder=scenario.encoder.name,
        orig_decoder=scenario.decoder_a.name,
        new_decoder=scenario.decoder_b.name,
        update_routing=scenario.reroute_dc_b,
    )
    scenario.sim.run_until(app.start(), limit=100)
    post_a = redundancy_trace(packets=100, payload_bytes=512, redundancy=0.7, server_subnet="1.1.1", seed=102)
    post_b = redundancy_trace(packets=100, payload_bytes=512, redundancy=0.7, server_subnet="1.1.2", seed=103)
    scenario.inject(post_a.merged_with(post_b), start_at=scenario.sim.now + 0.05)
    scenario.sim.run(until=scenario.sim.now + 2.5)
    return scenario


def test_sec82_correctness(once):
    def run_all():
        return run_ids_comparison(), run_monitor_comparison(), run_re_comparison()

    (ids_ref, ids_scenario), (mon_ref, mon_scenario), re_scenario = once(run_all)

    ids_cmp = compare_ids_outputs(ids_ref, [ids_scenario.mb1, ids_scenario.mb2])
    monitor_mismatches = compare_monitor_statistics(mon_ref, [mon_scenario.mb1, mon_scenario.mb2])
    undecodable = re_scenario.decoder_a.undecodable_bytes + re_scenario.decoder_b.undecodable_bytes

    rows = [
        ("IDS conn.log entries", len(ids_ref.conn_log), ids_cmp["conn_log"].matching, ids_cmp["conn_log"].differences),
        ("IDS http.log entries", len(ids_ref.http_log), ids_cmp["http_log"].matching, ids_cmp["http_log"].differences),
        ("Monitor statistic fields", 7, 7 - len(monitor_mismatches), len(monitor_mismatches)),
        (
            "RE packets decoded",
            re_scenario.decoder_a.decoded_packets + re_scenario.decoder_b.decoded_packets,
            re_scenario.decoder_a.decoded_packets + re_scenario.decoder_b.decoded_packets,
            re_scenario.decoder_a.undecodable_packets + re_scenario.decoder_b.undecodable_packets,
        ),
    ]
    print_block(
        format_table(
            "Section 8.2 — output of unmodified vs OpenMB-enabled middleboxes",
            ["comparison", "reference count", "matching", "differences"],
            rows,
        )
    )

    assert ids_cmp["conn_log"].identical
    assert ids_cmp["http_log"].identical
    assert monitor_mismatches == {}
    assert undecodable == 0
