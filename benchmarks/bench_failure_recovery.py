"""Failure recovery under chaos: the issue's three acceptance demonstrations.

Using the deterministic chaos harness (:mod:`repro.testing.chaos`):

1. **Loss-free under loss** — a pre-copy move under the acceptance fault plan
   (1 % control-message drop + up-to-2x latency jitter, both directions)
   completes with zero lost updates and bounded retransmissions, compared
   side by side with a clean channel and with harsher fault profiles.
2. **Crash-safe abort** — killing the destination mid-pre-copy-round aborts
   the move cleanly: futures fail, no packet hold or ``(op_id, round)``
   install tag survives anywhere, and the source remains authoritative for
   every update.  With a registered standby the same crash is absorbed: the
   move retries and completes loss-free.
3. **Failover with loss-free replay** — the rewritten failure-recovery app
   pre-clones a NAT's configuration to a standby, syncs critical mappings in
   the background, and — when the primary is killed — recovers by replaying
   only the unsynced delta before flipping routing.
"""

from __future__ import annotations

from repro.analysis import format_table, print_block
from repro.apps import FailureRecoveryApp
from repro.core import ControllerConfig, MBController, NorthboundAPI
from repro.middleboxes import NAT
from repro.net import Simulator, tcp_packet
from repro.testing import ChaosSpec, run_chaos

try:
    from benchmarks._results import duration_stats, freeze_stats, write_results
except ModuleNotFoundError:  # invoked as a script: benchmarks/ is sys.path[0]
    from _results import duration_stats, freeze_stats, write_results

#: Seeds per configuration: results below aggregate across all of them.
SEEDS = 6
#: Base mixed into every scenario seed (overridable via ``--seed``).
DEFAULT_BASE_SEED = 5


def run_profile(profile: str, base_seed: int = DEFAULT_BASE_SEED) -> dict:
    """Aggregate loss-free pre-copy moves under one fault profile."""
    totals = {"lost": 0, "messages": 0, "drops": 0, "retransmits": 0, "dedup": 0, "completed": 0}
    durations, freezes = [], []
    for seed in range(SEEDS):
        result = run_chaos(
            ChaosSpec(seed=seed * 131 + base_seed, guarantee="loss_free", mode="precopy", profile=profile)
        )
        result.assert_ok()
        totals["lost"] += result.lost_updates
        totals["messages"] += result.messages
        totals["drops"] += result.drops
        totals["retransmits"] += result.retransmits
        totals["dedup"] += result.dedup_discards
        totals["completed"] += result.outcome == "completed"
        if result.move_duration is not None:
            durations.append(result.move_duration)
            freezes.append(result.freeze_window)
    totals["durations"] = durations
    totals["freezes"] = freezes
    return totals


def run_crash(standby: bool, base_seed: int = DEFAULT_BASE_SEED) -> dict:
    """Kill the destination after the first pre-copy round, with/without standby."""
    outcomes = {"completed": 0, "failed": 0, "retried": 0, "lost": 0}
    for seed in range(SEEDS):
        result = run_chaos(
            ChaosSpec(
                seed=seed * 61 + 12 + base_seed,
                guarantee="loss_free",
                mode="precopy",
                profile="lossy",
                kill="dst",
                kill_at_round=1,
                standby=standby,
            )
        )
        result.assert_ok()
        outcomes[result.outcome] += 1
        outcomes["retried"] += result.retried_on_standby
        outcomes["lost"] += result.lost_updates
    return outcomes


def run_failover() -> dict:
    """The rewritten failover app: pre-cloned standby, loss-free delta replay."""
    sim = Simulator()
    controller = MBController(
        sim, ControllerConfig(quiescence_timeout=0.2, heartbeat_interval=1e-3, liveness_timeout=4e-3)
    )
    northbound = NorthboundAPI(controller)
    primary = NAT(sim, "nat-primary")
    standby = NAT(sim, "nat-standby")
    controller.register(primary)
    controller.register(standby)
    app = FailureRecoveryApp(sim, northbound, protected_mb="nat-primary", standby_mb="nat-standby")
    sim.run_until(app.arm())
    app.enable_auto_failover(lambda: sim.timeout(1e-4))
    # Steady-state mappings sync in the background; a late burst does not.
    for index in range(16):
        sim.schedule(2e-4 * index, primary.receive, tcp_packet(f"10.0.0.{index + 1}", "8.8.8.8", 6000 + index, 443), 1)
    sim.run(until=0.05)
    for index in range(16, 20):
        primary.receive(tcp_packet(f"10.0.0.{index + 1}", "8.8.8.8", 6000 + index, 443), 1)
    sim.run(until=sim.now + 4e-4)
    killed_at = sim.now
    controller.kill("nat-primary")
    sim.run(until=sim.now + 0.3)
    report = app.auto_recovery.result
    # Loss-free check: every mapping usable at the standby with its old port.
    preserved = 0
    originals = {
        (mapping.internal_ip, mapping.internal_port): mapping.external_port
        for _, mapping in primary.support_store.items()
    }
    for index in range(20):
        result = standby.process_packet(tcp_packet(f"10.0.0.{index + 1}", "8.8.8.8", 6000 + index, 443))
        if result.packet.tp_src == originals[(f"10.0.0.{index + 1}", 6000 + index)]:
            preserved += 1
    return {
        "mappings": len(originals),
        "presynced": report.details["mappings_presynced"],
        "replayed": report.details["mappings_replayed"],
        "preserved": preserved,
        "recovery_ms": (report.finished_at - killed_at) * 1000,
    }


def test_failure_recovery_under_chaos(once):
    def run_all():
        profiles = {name: run_profile(name) for name in ("clean", "lossy", "chaotic")}
        crashes = {label: run_crash(standby) for label, standby in (("abort", False), ("standby retry", True))}
        return profiles, crashes, run_failover()

    profiles, crashes, failover = once(run_all)

    print_block(
        format_table(
            f"Loss-free pre-copy move vs control-channel faults ({SEEDS} seeds each)",
            ["fault profile", "completed", "lost updates", "wire msgs", "dropped", "retransmits", "dedup discards"],
            [
                (
                    name,
                    f"{totals['completed']}/{SEEDS}",
                    totals["lost"],
                    totals["messages"],
                    totals["drops"],
                    totals["retransmits"],
                    totals["dedup"],
                )
                for name, totals in profiles.items()
            ],
        )
    )
    print_block(
        format_table(
            f"Destination killed after pre-copy round 1 ({SEEDS} seeds each)",
            ["configuration", "completed", "failed cleanly", "standby retries", "lost updates"],
            [
                (label, outcome["completed"], outcome["failed"], outcome["retried"], outcome["lost"])
                for label, outcome in crashes.items()
            ],
        )
    )
    print_block(
        format_table(
            "NAT failover via pre-cloned standby (liveness kill, auto failover)",
            ["mappings", "pre-synced", "replayed at failover", "ports preserved", "recovery (ms)"],
            [
                (
                    failover["mappings"],
                    failover["presynced"],
                    failover["replayed"],
                    f"{failover['preserved']}/{failover['mappings']}",
                    round(failover["recovery_ms"], 2),
                )
            ],
        )
    )

    write_results("failure_recovery", _results_payload(profiles, crashes, failover, DEFAULT_BASE_SEED))

    # Acceptance criteria (the issue's hard claims).
    lossy = profiles["lossy"]
    assert lossy["completed"] == SEEDS and lossy["lost"] == 0
    assert lossy["drops"] > 0 and lossy["retransmits"] > 0
    assert lossy["retransmits"] < lossy["messages"] / 5, "retransmissions must stay bounded"
    assert crashes["abort"]["failed"] == SEEDS and crashes["abort"]["lost"] == 0
    assert crashes["standby retry"]["completed"] == SEEDS
    assert crashes["standby retry"]["retried"] == SEEDS
    assert crashes["standby retry"]["lost"] == 0
    assert failover["preserved"] == failover["mappings"]
    assert failover["replayed"] >= 1
    assert failover["presynced"] + failover["replayed"] == failover["mappings"]


def _results_payload(profiles: dict, crashes: dict, failover: dict, base_seed: int) -> dict:
    """The persisted ``BENCH_failure_recovery.json`` document."""
    return {
        "base_seed": base_seed,
        "seeds_per_configuration": SEEDS,
        "profiles": {
            name: {
                "completed": totals["completed"],
                "lost_updates": totals["lost"],
                "messages": totals["messages"],
                "drops": totals["drops"],
                "retransmits": totals["retransmits"],
                "move": duration_stats(totals["durations"]),
                "freeze": freeze_stats(totals["freezes"]),
            }
            for name, totals in profiles.items()
        },
        "crashes": {
            label: {key: outcome[key] for key in ("completed", "failed", "retried", "lost")}
            for label, outcome in crashes.items()
        },
        "failover": {key: round(value, 4) if isinstance(value, float) else value for key, value in failover.items()},
    }


def main() -> None:
    """CLI entry point: re-run the aggregation with a caller-chosen seed base."""
    import argparse

    parser = argparse.ArgumentParser(description="Failure recovery under chaos (loss-free pre-copy)")
    parser.add_argument("--seed", type=int, default=DEFAULT_BASE_SEED, help="base mixed into every scenario seed")
    args = parser.parse_args()
    profiles = {name: run_profile(name, args.seed) for name in ("clean", "lossy", "chaotic")}
    crashes = {label: run_crash(standby, args.seed) for label, standby in (("abort", False), ("standby retry", True))}
    failover = run_failover()
    path = write_results("failure_recovery", _results_payload(profiles, crashes, failover, args.seed))
    print_block(
        format_table(
            f"Failure recovery, base seed {args.seed} ({SEEDS} seeds per configuration)",
            ["fault profile", "completed", "lost updates", "dropped", "retransmits", "move p99 (ms)"],
            [
                (
                    name,
                    f"{totals['completed']}/{SEEDS}",
                    totals["lost"],
                    totals["drops"],
                    totals["retransmits"],
                    duration_stats(totals["durations"])["p99_ms"],
                )
                for name, totals in profiles.items()
            ],
        )
    )
    print(f"results -> {path}")


if __name__ == "__main__":
    main()
