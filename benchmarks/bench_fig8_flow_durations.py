"""Figure 8: CDF of flow durations and the hold-up it implies for scale-down.

Regenerates the flow-duration CDF of the (synthetic) data-center workload and
the consequence the paper draws from it: with configuration+routing-only
control, a middlebox being scaled down must stay alive until its last active
flow finishes — over 1500 seconds, because roughly 9 % of flows last longer
than that.
"""

from __future__ import annotations

from repro.analysis import CDF, format_mapping, format_series, print_block
from repro.baselines import scale_down_hold_up
from repro.traffic import datacenter_flow_durations


def run_flow_duration_analysis():
    durations = datacenter_flow_durations(20000, seed=8)
    cdf = CDF.from_samples(durations)
    hold_up = scale_down_hold_up(durations, decision_time=60.0)
    return durations, cdf, hold_up


def test_fig8_flow_duration_cdf(once):
    durations, cdf, hold_up = once(run_flow_duration_analysis)

    series = [(round(value, 1), round(probability, 4)) for value, probability in cdf.series(points=25)]
    print_block(format_series("Figure 8 — CDF of flow durations (s)", series, x_label="duration (s)", y_label="CDF"))
    print_block(
        format_mapping(
            "Figure 8 — derived quantities",
            {
                "flows sampled": len(durations),
                "median duration (s)": round(cdf.quantile(0.5), 1),
                "fraction of flows > 1500 s": round(cdf.exceeding(1500.0), 4),
                "scale-down decided at (s)": 60.0,
                "flows still active at decision": hold_up.active_flows,
                "deprecated MB held up for (s)": round(hold_up.held_up_seconds, 1),
            },
        )
    )

    # Shape checks: ~9 % of flows exceed 1500 s and the hold-up exceeds 1500 s.
    assert 0.05 < cdf.exceeding(1500.0) < 0.14
    assert hold_up.held_up_seconds > 1500.0
    # The CDF is a proper distribution function.
    assert cdf.at(0.0) <= cdf.at(100.0) <= cdf.at(10000.0) <= 1.0
