"""Ablation: buffering re-process events until the destination ACKs the put.

The controller buffers a re-process event until the destination has installed
(ACKed) the per-flow state the event applies to; only then is the packet
replayed (paper Figure 5).  This ablation disables the buffering — events are
forwarded as soon as they arrive — and measures the consequence: replayed
updates race the chunks that carry the state snapshot, the snapshot overwrites
them, and per-flow counters at the destination under-count.
"""

from __future__ import annotations

from repro.analysis import format_table, print_block
from repro.core import ControllerConfig, FlowPattern, MBController, NorthboundAPI
from repro.middleboxes import PassiveMonitor
from repro.net import Simulator
from repro.traffic import TraceReplayer, constant_rate_trace

FLOWS = 300
LIVE_RATE = 3000.0


def run_move_with_live_traffic(buffer_events: bool) -> dict:
    sim = Simulator()
    config = ControllerConfig(quiescence_timeout=0.3, buffer_events=buffer_events)
    controller = MBController(sim, config)
    northbound = NorthboundAPI(controller)
    src = PassiveMonitor(sim, "mon-src")
    dst = PassiveMonitor(sim, "mon-dst")
    controller.register(src)
    controller.register(dst)

    warm = constant_rate_trace(rate=4000.0, duration=FLOWS / 4000.0, flows=FLOWS, seed=140)
    TraceReplayer.into_node(sim, warm, src).schedule()
    sim.run(until=FLOWS / 4000.0 + 0.3)
    packets_before = sum(record.packets for _, record in src.report_store.items())

    handle = northbound.move_internal("mon-src", "mon-dst", FlowPattern.wildcard())
    live = constant_rate_trace(rate=LIVE_RATE, duration=0.3, flows=FLOWS, seed=141)
    TraceReplayer.into_node(sim, live, src, start_at=sim.now).schedule()
    record = sim.run_until(handle.finalized, limit=200)
    sim.run(until=sim.now + 0.5)

    live_packets = int(LIVE_RATE * 0.3)
    packets_at_dst = sum(flow_record.packets for _, flow_record in dst.report_store.items())
    expected = packets_before + live_packets
    return {
        "buffering": buffer_events,
        "expected_packets": expected,
        "accounted_packets": packets_at_dst,
        "lost_updates": expected - packets_at_dst,
        "events_buffered": record.events_buffered,
        "events_forwarded": record.events_forwarded,
    }


def test_ablation_event_buffering(once):
    def run_both():
        return run_move_with_live_traffic(True), run_move_with_live_traffic(False)

    with_buffering, without_buffering = once(run_both)

    rows = [
        (
            "buffered until put ACK (OpenMB)",
            with_buffering["expected_packets"],
            with_buffering["accounted_packets"],
            with_buffering["lost_updates"],
            with_buffering["events_buffered"],
        ),
        (
            "forwarded immediately (ablation)",
            without_buffering["expected_packets"],
            without_buffering["accounted_packets"],
            without_buffering["lost_updates"],
            without_buffering["events_buffered"],
        ),
    ]
    print_block(
        format_table(
            "Ablation — event buffering at the controller",
            ["policy", "expected per-flow packet count", "accounted at destination", "lost updates", "events buffered"],
            rows,
        )
    )

    # With buffering, no per-flow counter updates are lost; without it, some are.
    assert with_buffering["lost_updates"] == 0
    assert without_buffering["lost_updates"] > 0
    assert with_buffering["events_buffered"] > 0
    assert without_buffering["events_buffered"] == 0
