"""Wall-clock snapshot-vs-precopy freeze windows under live packet load.

The simulated twin is the mode axis of ``bench_fig10a_move_time``; here the
same move-under-load experiment runs on the realtime runtime, so the freeze
window — the span during which flows are marked in-transfer and their events
buffer — is a span of **real monotonic time**.  Each mode is repeated several
times to give the p50/p99 freeze and duration statistics meaning, and every
repeat checks update conservation: packets injected at the source must all
survive at the source or destination once the move finalizes (zero lost
updates under loss-free).

Persisted as ``BENCH_wallclock_precopy.json``.  Runnable directly::

    PYTHONPATH=src python benchmarks/bench_wallclock_precopy.py --mode precopy
"""

from __future__ import annotations

import time

from repro.analysis import format_table, print_block
from repro.core import TransferSpec

try:
    from benchmarks.conftest import realtime_controller_with_dummies
    from benchmarks._results import duration_stats, freeze_stats, write_results
except ModuleNotFoundError:  # invoked as a script: benchmarks/ is sys.path[0]
    from conftest import realtime_controller_with_dummies
    from _results import duration_stats, freeze_stats, write_results

#: Per-pair chunk count (the move transfers 2x this: supporting + reporting).
CHUNKS = 200
#: Live packet rate (packets/second of runtime == wall time) and duration.
TRAFFIC_RATE = 2000.0
TRAFFIC_DURATION = 0.05
#: Repeats per mode — wall clocks jitter, so report distributions, not points.
REPEATS = 5


def run_move_under_load(mode: str, *, chunks: int = CHUNKS, rate: float = TRAFFIC_RATE) -> dict:
    """One loss-free wall-clock move while live packets update the source."""
    spec = TransferSpec.precopy() if mode == "precopy" else TransferSpec.default()
    runtime, controller, northbound, pairs = realtime_controller_with_dummies([chunks])
    try:
        src, dst = pairs[0]
        injected = src.drive_traffic_at_rate(rate, TRAFFIC_DURATION)
        wall_start = time.monotonic()
        handle = northbound.move_internal(src.name, dst.name, None, spec=spec)
        record = runtime.run_until(handle.finalized, limit=runtime.now + 60.0)
        wall_elapsed = time.monotonic() - wall_start
        runtime.run(until=runtime.now + 0.1)  # late replays + deletes settle
        counted = sum(rec.get("packets", 0) for _, rec in src.support_store.items())
        counted += sum(rec.get("packets", 0) for _, rec in dst.support_store.items())
        result = {
            "mode": record.mode,
            "duration": record.duration,
            "wall_elapsed": wall_elapsed,
            "freeze_window": record.freeze_window,
            "chunks": record.chunks_transferred,
            "rounds": record.precopy_rounds,
            "updates_lost": injected - counted,
        }
    finally:
        close = runtime.close()
    result["close"] = close
    return result


def _persist(by_mode: dict) -> None:
    write_results(
        "wallclock_precopy",
        {
            "workload": {
                "chunks": CHUNKS * 2,
                "traffic_rate": TRAFFIC_RATE,
                "traffic_duration": TRAFFIC_DURATION,
                "repeats": REPEATS,
                "guarantee": "loss_free",
            },
            "modes": {
                mode: {
                    "move": duration_stats([r["duration"] for r in runs]),
                    "freeze": freeze_stats([r["freeze_window"] for r in runs]),
                    "rounds": [r["rounds"] for r in runs],
                    "updates_lost": sum(r["updates_lost"] for r in runs),
                }
                for mode, runs in by_mode.items()
            },
        },
    )


def _print(by_mode: dict) -> None:
    print_block(
        format_table(
            f"Wall-clock move under load — {CHUNKS * 2} chunks, {TRAFFIC_RATE:.0f} pkt/s (realtime runtime)",
            ["mode", "p50 move (ms)", "p50 freeze (ms)", "p99 freeze (ms)", "rounds", "lost"],
            [
                (
                    mode,
                    duration_stats([r["duration"] for r in runs])["p50_ms"],
                    freeze_stats([r["freeze_window"] for r in runs])["p50_ms"],
                    freeze_stats([r["freeze_window"] for r in runs])["p99_ms"],
                    max(r["rounds"] for r in runs),
                    sum(r["updates_lost"] for r in runs),
                )
                for mode, runs in by_mode.items()
            ],
        )
    )


def test_wallclock_precopy_freeze_window(once):
    """Pre-copy shrinks the *measured* freeze window; nothing is lost either way."""

    def run_all():
        return {
            mode: [run_move_under_load(mode) for _ in range(REPEATS)]
            for mode in ("snapshot", "precopy")
        }

    by_mode = once(run_all)
    _print(by_mode)
    _persist(by_mode)

    for runs in by_mode.values():
        for result in runs:
            assert result["updates_lost"] == 0
            assert result["chunks"] >= CHUNKS * 2
            assert result["close"]["processes_leaked"] == 0
            # Freeze is a real sub-span of the move's wall time.
            assert 0 < result["freeze_window"] <= result["duration"] <= result["wall_elapsed"] * 1.05
    snapshot_freeze = freeze_stats([r["freeze_window"] for r in by_mode["snapshot"]])
    precopy_freeze = freeze_stats([r["freeze_window"] for r in by_mode["precopy"]])
    # The PR-4 claim, now in wall time: the final-delta freeze beats the
    # whole-transfer freeze at the median (p99 is left to the JSON trail —
    # single outliers on shared CI runners should not fail the suite).
    assert precopy_freeze["p50_ms"] < snapshot_freeze["p50_ms"]
    assert all(r["rounds"] >= 1 for r in by_mode["precopy"])


def main() -> None:
    """CLI entry point: measure one mode directly (``--mode snapshot|precopy``)."""
    import argparse

    parser = argparse.ArgumentParser(description="Wall-clock freeze window: snapshot vs iterative pre-copy")
    parser.add_argument("--mode", default="precopy", choices=["snapshot", "precopy"])
    parser.add_argument("--repeats", type=int, default=REPEATS)
    args = parser.parse_args()
    runs = [run_move_under_load(args.mode) for _ in range(args.repeats)]
    _print({args.mode: runs})
    _persist({args.mode: runs})


if __name__ == "__main__":
    main()
