"""Section 8.1.2 (Split/Merge): the cost of suspending traffic during a move.

Regenerates the Split/Merge comparison: with roughly a thousand chunks of
per-flow state to move and packets arriving at ~1000 packets/second, how many
packets must be buffered while traffic is halted, and how much latency that
buffering adds — against OpenMB, which keeps processing packets during the move
and only slows them by the transfer-slowdown factor.
"""

from __future__ import annotations

from repro.analysis import format_mapping, format_table, print_block
from repro.apps import ScaleUpApp, build_two_instance_scenario
from repro.baselines import SplitMergeMigration, expected_added_latency, expected_buffered_packets
from repro.core import FlowPattern
from repro.middleboxes import PassiveMonitor
from repro.traffic import constant_rate_trace

PACKET_RATE = 1000.0
FLOWS = 1000


def _scenario():
    scenario = build_two_instance_scenario(
        mb_factory=lambda sim, name: PassiveMonitor(sim, name), mb_names=("mon-old", "mon-new")
    )
    # Pre-populate per-flow state: one packet per flow, then sustained traffic.
    warm = constant_rate_trace(rate=2000.0, duration=FLOWS / 2000.0, flows=FLOWS, client_subnet="10.1", server="172.16.1.10", seed=91)
    scenario.inject(warm)
    scenario.sim.run(until=scenario.sim.now + 1.0)
    live = constant_rate_trace(rate=PACKET_RATE, duration=2.0, flows=FLOWS, client_subnet="10.1", server="172.16.1.10", seed=92)
    scenario.inject(live, start_at=scenario.sim.now)
    return scenario


def run_split_merge():
    scenario = _scenario()
    app = SplitMergeMigration(scenario, pattern=FlowPattern(nw_dst="172.16.0.0/16"))
    report = scenario.sim.run_until(app.start(), limit=200)
    return scenario, report


def run_openmb_move():
    scenario = _scenario()
    app = ScaleUpApp(
        scenario.sim,
        scenario.northbound,
        existing_mb="mon-old",
        new_mb="mon-new",
        patterns=[FlowPattern(nw_dst="172.16.0.0/16")],
        update_routing=lambda p: scenario.route_via(scenario.mb2, p),
    )
    report = scenario.sim.run_until(app.start(), limit=200)
    return scenario, report


def test_sec812_split_merge(once):
    def run_both():
        return run_split_merge(), run_openmb_move()

    (sm_scenario, sm_report), (omb_scenario, omb_report) = once(run_both)

    move_duration = sm_report.details["move"].duration
    openmb_costs = omb_scenario.mb1.costs
    openmb_added = openmb_costs.packet_processing * (openmb_costs.transfer_slowdown - 1.0)
    rows = [
        (
            "Split/Merge (suspend traffic)",
            sm_report.details["move"].chunks_transferred,
            sm_report.details["buffered_packets"],
            round(sm_report.details["mean_added_latency"] * 1000, 2),
            round(sm_report.details["max_added_latency"] * 1000, 2),
        ),
        (
            "OpenMB (events, no suspension)",
            omb_report.details["chunks_moved"],
            0,
            round(openmb_added * 1000, 4),
            round(openmb_added * 1000, 4),
        ),
    ]
    print_block(
        format_table(
            "Section 8.1.2 — cost of halting traffic while state moves",
            ["scheme", "chunks moved", "packets buffered", "mean added latency (ms)", "max added latency (ms)"],
            rows,
        )
    )
    print_block(
        format_mapping(
            "Analytical expectation at 1000 pkt/s",
            {
                "move duration (s)": round(move_duration, 3),
                "expected buffered packets": expected_buffered_packets(PACKET_RATE, move_duration),
                "expected mean added latency (ms)": round(expected_added_latency(PACKET_RATE, move_duration) * 1000, 1),
            },
        )
    )

    # Shape: suspension buffers hundreds of packets and adds orders of magnitude
    # more latency than OpenMB's slowdown during gets.
    assert sm_report.details["buffered_packets"] > 50
    assert sm_report.details["mean_added_latency"] > 0.01
    assert sm_report.details["mean_added_latency"] > 100 * openmb_added
    # The analytical model agrees with the simulation to first order.
    assert abs(sm_report.details["buffered_packets"] - expected_buffered_packets(PACKET_RATE, move_duration)) <= max(
        0.5 * expected_buffered_packets(PACKET_RATE, move_duration), 20
    )
