"""Table 2: applicability of control schemes to the dynamic scenarios.

Regenerates the qualitative matrix of Table 2 — which of SDMBN (OpenMB),
VM snapshots, configuration+routing control, and Split/Merge supports scale-up,
scale-down, and live migration — and backs the SDMBN row with the actual
scenario runs from the rest of the harness (the capability entries of the
baselines come from their modules, next to the code that exhibits each
limitation).
"""

from __future__ import annotations

from repro.analysis import format_table, print_block
from repro.apps import ScaleDownApp, ScaleUpApp, build_two_instance_scenario
from repro.baselines import APPLICABILITY_MATRIX
from repro.core import FlowPattern
from repro.middleboxes import PassiveMonitor
from repro.traffic import enterprise_cloud_trace


def run_sdmbn_capability_probe():
    """Demonstrate, in one run, that OpenMB completes scale-up, scale-down, and migration."""
    scenario = build_two_instance_scenario(
        mb_factory=lambda sim, name: PassiveMonitor(sim, name), mb_names=("m1", "m2")
    )
    sim = scenario.sim
    trace = enterprise_cloud_trace(http_flows=30, other_flows=10, duration=10.0, seed=71)
    scenario.inject(trace, speedup=40.0)
    sim.run(until=0.3)
    up = ScaleUpApp(
        sim,
        scenario.northbound,
        existing_mb="m1",
        new_mb="m2",
        patterns=[FlowPattern(nw_src="10.1.1.0/24")],
        update_routing=lambda p: scenario.route_via(scenario.mb2, p),
    )
    up_report = sim.run_until(up.start(), limit=200)
    down = ScaleDownApp(
        sim,
        scenario.northbound,
        spare_mb="m2",
        remaining_mb="m1",
        update_routing=lambda p: scenario.route_via(scenario.mb1, FlowPattern(nw_dst="172.16.0.0/16")),
        wait_for_finalize=True,
    )
    down_report = sim.run_until(down.start(), limit=400)
    return up_report, down_report


def test_table2_applicability(once):
    up_report, down_report = once(run_sdmbn_capability_probe)

    scenarios = ["scale-up", "scale-down", "migration"]
    rows = [[scheme] + [capabilities[s] for s in scenarios] for scheme, capabilities in APPLICABILITY_MATRIX.items()]
    print_block(
        format_table(
            "Table 2 — applicability of control schemes (yes / partial / no)",
            ["scheme"] + scenarios,
            rows,
        )
    )

    # SDMBN fully supports everything; each alternative falls short somewhere.
    assert all(value == "yes" for value in APPLICABILITY_MATRIX["SDMBN (OpenMB)"].values())
    for scheme, capabilities in APPLICABILITY_MATRIX.items():
        if scheme != "SDMBN (OpenMB)":
            assert any(value != "yes" for value in capabilities.values())
    # And the SDMBN row is backed by actual completed operations in this run.
    assert up_report.details["chunks_moved"] > 0
    assert down_report.details["merge"].chunks_transferred >= 1
