"""Benchmark result persistence: ``BENCH_<name>.json`` artifacts.

Every benchmark that produces headline numbers (operation throughput, freeze
windows, latency percentiles) can persist them as a small JSON document next
to the benchmark sources, so runs are diffable across commits and machines
without scraping pytest output.  The format is deliberately flat:

* ``write_results(name, payload)`` writes ``BENCH_<name>.json`` with sorted
  keys and stable indentation (byte-identical output for identical results);
* ``duration_stats(durations)`` turns a list of per-operation durations
  (simulated seconds) into the shared summary shape — count, ops/sec over the
  summed duration, and mean/p50/p99 in milliseconds.

Nothing here imports the simulator: the module is pure stdlib so it works the
same from pytest runs and ``python benchmarks/bench_*.py`` script runs.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

#: Result documents live next to the benchmark sources.
RESULTS_DIR = Path(__file__).resolve().parent


def percentile(values: Sequence[float], q: float) -> float:
    """The *q*-th percentile (0..100) of *values* by linear interpolation.

    Matches ``statistics.quantiles``' inclusive method for the common cases
    (p50 of an odd-length list is its median) without requiring n >= 2.
    """
    if not values:
        raise ValueError("percentile of an empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must be in [0, 100], got {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return ordered[low]
    fraction = rank - low
    return ordered[low] * (1.0 - fraction) + ordered[high] * fraction


def duration_stats(durations: Sequence[float]) -> Dict[str, float]:
    """Summary statistics for per-operation durations (simulated seconds)."""
    total = sum(durations)
    return {
        "count": len(durations),
        "ops_per_sec": round(len(durations) / total, 3) if total > 0 else 0.0,
        "mean_ms": round(1000.0 * total / len(durations), 4),
        "p50_ms": round(1000.0 * percentile(durations, 50.0), 4),
        "p99_ms": round(1000.0 * percentile(durations, 99.0), 4),
    }


def write_results(name: str, payload: Dict[str, Any], *, directory: Optional[Path] = None) -> Path:
    """Persist *payload* as ``BENCH_<name>.json``; returns the path written."""
    target_dir = Path(directory) if directory is not None else RESULTS_DIR
    path = target_dir / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def read_results(name: str, *, directory: Optional[Path] = None) -> Dict[str, Any]:
    """Load a previously-written ``BENCH_<name>.json`` document."""
    target_dir = Path(directory) if directory is not None else RESULTS_DIR
    return json.loads((target_dir / f"BENCH_{name}.json").read_text())


def freeze_stats(freeze_windows: Sequence[float]) -> Dict[str, float]:
    """Summary of per-move freeze (event-buffering) windows in milliseconds."""
    return {
        "mean_ms": round(1000.0 * sum(freeze_windows) / len(freeze_windows), 4),
        "p50_ms": round(1000.0 * percentile(freeze_windows, 50.0), 4),
        "p99_ms": round(1000.0 * percentile(freeze_windows, 99.0), 4),
        "max_ms": round(1000.0 * max(freeze_windows), 4),
    }


__all__ = ["RESULTS_DIR", "duration_stats", "freeze_stats", "percentile", "read_results", "write_results"]
