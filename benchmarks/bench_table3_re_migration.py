"""Table 3: performance and correctness of RE during live migration.

Regenerates the two rows of Table 3: the redundant bytes eliminated (encoded)
and the bytes that could not be decoded, for OpenMB's migration application
(clone the decoder cache, coordinate routing and the encoder's cache switch)
versus configuration+routing-only control (empty caches, routing lagging the
encoder switch by ten packets).
"""

from __future__ import annotations

from repro.analysis import format_table, print_block
from repro.apps import REMigrationApp, build_re_migration_scenario
from repro.baselines import ConfigRoutingREMigration
from repro.traffic import redundancy_trace

CACHE_CAPACITY = 128 * 1024
WARM_PACKETS = 150
POST_PACKETS = 120
PAYLOAD = 512
REDUNDANCY = 0.6


def _workload(seed_a=81, seed_b=82, interval=0.002):
    def trace(packets, subnet, seed, spacing):
        return redundancy_trace(
            packets=packets, payload_bytes=PAYLOAD, redundancy=REDUNDANCY, server_subnet=subnet, seed=seed, interval=spacing
        )

    warm_a = trace(WARM_PACKETS, "1.1.1", seed_a, interval)
    warm_b = trace(WARM_PACKETS, "1.1.2", seed_b, interval)
    post_a = trace(POST_PACKETS, "1.1.1", seed_a, interval)
    post_b = trace(POST_PACKETS, "1.1.2", seed_b, 0.004)
    return warm_a, warm_b, post_a, post_b


def run_sdmbn():
    scenario = build_re_migration_scenario(cache_capacity=CACHE_CAPACITY)
    warm_a, warm_b, post_a, post_b = _workload()
    scenario.inject(warm_a.merged_with(warm_b))
    scenario.sim.run(until=scenario.sim.now + 0.6)
    app = REMigrationApp(
        scenario.sim,
        scenario.northbound,
        encoder=scenario.encoder.name,
        orig_decoder=scenario.decoder_a.name,
        new_decoder=scenario.decoder_b.name,
        update_routing=scenario.reroute_dc_b,
    )
    scenario.sim.run_until(app.start(), limit=100)
    scenario.inject(post_a.merged_with(post_b), start_at=scenario.sim.now + 0.05)
    scenario.sim.run(until=scenario.sim.now + 2.5)
    return scenario


def run_config_routing():
    scenario = build_re_migration_scenario(cache_capacity=CACHE_CAPACITY)
    warm_a, warm_b, post_a, post_b = _workload()
    scenario.inject(warm_a.merged_with(warm_b))
    scenario.sim.run(until=scenario.sim.now + 0.6)
    app = ConfigRoutingREMigration(
        scenario,
        routing_delay=0.04,  # ten 4 ms-spaced DC-B packets are sent before routing takes effect
        on_cache_switched=lambda: scenario.inject(post_b, start_at=scenario.sim.now),
    )
    scenario.sim.run_until(app.start(), limit=100)
    scenario.inject(post_a, start_at=scenario.sim.now + 0.01)
    scenario.sim.run(until=scenario.sim.now + 2.5)
    return scenario


def _row(name, scenario):
    undecodable = scenario.decoder_a.undecodable_bytes + scenario.decoder_b.undecodable_bytes
    return (
        name,
        scenario.encoder.total_bytes,
        scenario.encoder.encoded_bytes,
        undecodable,
        len(scenario.dc_a_host.received) + len(scenario.dc_b_host.received),
    )


def test_table3_re_migration(once):
    def run_both():
        return run_sdmbn(), run_config_routing()

    sdmbn, baseline = once(run_both)

    print_block(
        format_table(
            "Table 3 — RE in live migration",
            ["scheme", "payload bytes", "encoded (redundant) bytes", "undecodable bytes", "packets delivered"],
            [_row("SDMBN (OpenMB)", sdmbn), _row("Config + routing", baseline)],
        )
    )

    sdmbn_undecodable = sdmbn.decoder_a.undecodable_bytes + sdmbn.decoder_b.undecodable_bytes
    baseline_undecodable = baseline.decoder_a.undecodable_bytes + baseline.decoder_b.undecodable_bytes
    # Shape of Table 3: OpenMB decodes everything; the baseline cannot decode the
    # encoded bytes of the migrated subnet and also eliminates less redundancy
    # (its new cache starts cold).
    assert sdmbn_undecodable == 0
    assert baseline_undecodable > 0
    assert baseline.encoder.encoded_bytes < sdmbn.encoder.encoded_bytes
