"""Figures 9(c) and 9(d): re-process events generated during moveInternal vs packet rate.

Regenerates the event-count series: the number of re-process events the source
middlebox raises while a moveInternal is in progress (and until the routing
update takes effect), as a function of the packet arrival rate, for different
amounts of per-flow state (250 / 500 / 1000 chunks), for the monitor and the
IDS.  Expected shape: the event count grows linearly with the packet rate, and
larger moves (more chunks, hence a longer transfer window) generate more
events.
"""

from __future__ import annotations

from repro.analysis import format_table, print_block
from repro.core import ControllerConfig, FlowPattern, MBController, NorthboundAPI
from repro.middleboxes import IDS, PassiveMonitor
from repro.net import Simulator
from repro.traffic import TraceReplayer, constant_rate_trace

PACKET_RATES = (500.0, 1500.0, 2500.0)
CHUNK_COUNTS = (250, 1000)
#: Time between the move returning and the routing update taking effect.
ROUTING_LAG = 0.05


def events_during_move(mb_factory, label, flows, rate):
    sim = Simulator()
    controller = MBController(sim, ControllerConfig(quiescence_timeout=0.2))
    northbound = NorthboundAPI(controller)
    src = mb_factory(sim, f"{label}-src")
    dst = mb_factory(sim, f"{label}-dst")
    controller.register(src)
    controller.register(dst)
    # Populate per-flow state for *flows* flows.
    warm = constant_rate_trace(rate=4000.0, duration=flows / 4000.0, flows=flows, seed=130)
    TraceReplayer.into_node(sim, warm, src).schedule()
    sim.run(until=flows / 4000.0 + 0.5)

    # Start the move with traffic for the moved flows arriving at the given rate;
    # the traffic keeps hitting the source until the "routing update" takes effect
    # shortly after the move returns.
    handle = northbound.move_internal(src.name, dst.name, FlowPattern.wildcard())
    live = constant_rate_trace(rate=rate, duration=3.0, flows=flows, seed=131)
    TraceReplayer.into_node(sim, live, src, start_at=sim.now).schedule()
    record = sim.run_until(handle.completed, limit=300)
    sim.run(until=sim.now + ROUTING_LAG)
    events = src.counters.reprocess_events_raised
    window = sim.now - record.started_at
    return events, window, record.duration


def test_fig9cd_events_vs_packet_rate(once):
    def run_all():
        results = {}
        for label, factory in (
            ("monitor", lambda sim, name: PassiveMonitor(sim, name)),
            ("ids", lambda sim, name: IDS(sim, name)),
        ):
            for flows in CHUNK_COUNTS:
                for rate in PACKET_RATES:
                    results[(label, flows, rate)] = events_during_move(factory, label, flows, rate)
        return results

    results = once(run_all)

    rows = [
        (label, flows, int(rate), events, round(window * 1000, 1), round(duration * 1000, 1))
        for (label, flows, rate), (events, window, duration) in sorted(results.items())
    ]
    print_block(
        format_table(
            "Figures 9(c)/9(d) — re-process events generated during moveInternal",
            ["middlebox", "chunks", "packet rate (pkt/s)", "events generated", "window (ms)", "move time (ms)"],
            rows,
        )
    )

    for label in ("monitor", "ids"):
        for flows in CHUNK_COUNTS:
            events = [results[(label, flows, rate)][0] for rate in PACKET_RATES]
            # More packets per second during the transfer window -> more events.
            assert events[0] < events[1] < events[2]
        # A larger move keeps the window open longer, so it generates more events
        # at the same packet rate.
        assert results[(label, 1000, 2500.0)][0] > results[(label, 250, 2500.0)][0]
