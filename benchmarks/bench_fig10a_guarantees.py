"""Figure 10(a) extension: moveInternal time across guarantee x optimization.

The transfer-strategy refactor makes the move flavor a tunable
:class:`~repro.core.transfer.TransferSpec` instead of one hard-coded state
machine.  This benchmark regenerates the controller-performance experiment of
Figure 10(a) as a matrix:

* **pipeline optimizations** (at the seed's loss-free guarantee): strictly
  sequential puts (window of 1), the seed's pipelined default, a bounded
  parallel window, and batched puts (many chunks per PUT_PERFLOW_BATCH with a
  single ACK) — batching amortises the controller's per-message cost, the
  dominant term at large chunk counts;
* **guarantees** (at the default pipeline): NO_GUARANTEE drops in-transfer
  events, LOSS_FREE buffers and replays them (seed behaviour), and
  ORDER_PRESERVING additionally replays in order behind destination-side
  per-flow holds released with TRANSFER_RELEASE.

Expected shape: batched puts strictly faster than the sequential default and
the window-1 strawman far slower, while move time ranks
NO_GUARANTEE <= LOSS_FREE <= ORDER_PRESERVING.  A companion correctness table
(live-traffic monitor migration) shows loss-free and order-preserving moves
lose zero per-flow updates while no-guarantee moves drop every in-transfer
event.
"""

from __future__ import annotations

from repro.analysis import format_table, print_block
from repro.apps import run_guarantee_scenario
from repro.core import TransferGuarantee, TransferSpec
from benchmarks.conftest import controller_with_dummies

#: Per-pair chunk count (a move transfers 2x this: supporting + reporting).
CHUNK_COUNT = 1000

#: Event rate while the move is in flight (events/second of simulated time),
#: the same stress the paper's Figure 10(a) "with events" series applies.
EVENT_RATE = 2000.0

#: The pipeline optimizations compared at the loss-free guarantee.
OPTIMIZATIONS = (
    ("sequential (window 1)", TransferSpec.sequential()),
    ("pipelined (default)", TransferSpec.default()),
    ("parallel (window 8)", TransferSpec.parallel(window=8)),
    ("batched x32", TransferSpec.batched(32)),
    ("batched x32 + parallel 8", TransferSpec(parallelism=8, batch_size=32)),
)

#: The guarantees compared at the default pipeline.
GUARANTEES = (
    TransferGuarantee.NO_GUARANTEE,
    TransferGuarantee.LOSS_FREE,
    TransferGuarantee.ORDER_PRESERVING,
)


def run_single_move(spec: TransferSpec) -> dict:
    sim, controller, northbound, pairs = controller_with_dummies([CHUNK_COUNT])
    src, dst = pairs[0]
    src.generate_events_at_rate(EVENT_RATE, duration=5.0)
    handle = northbound.move_internal(src.name, dst.name, None, spec=spec)
    record = sim.run_until(handle.completed, limit=1000)
    return {
        "chunks": record.chunks_transferred,
        "duration": record.duration,
        "events": record.events_received,
        "forwarded": record.events_forwarded,
        "dropped": record.events_dropped,
        "batches": record.batches_sent,
        "releases": record.releases_sent,
    }


def test_fig10a_guarantee_optimization_matrix(once):
    def run_all():
        optimization = {name: run_single_move(spec) for name, spec in OPTIMIZATIONS}
        guarantee = {
            g.value: run_single_move(TransferSpec(guarantee=g)) for g in GUARANTEES
        }
        loss = {
            g.value: run_guarantee_scenario(TransferSpec(guarantee=g))
            for g in GUARANTEES
        }
        return optimization, guarantee, loss

    optimization, guarantee, loss = once(run_all)

    print_block(
        format_table(
            f"Move time vs pipeline optimization (loss-free, {2 * CHUNK_COUNT} chunks, events at {EVENT_RATE:.0f}/s)",
            ["optimization", "move time (ms)", "put batches", "events seen"],
            [
                (name, round(result["duration"] * 1000, 1), result["batches"], result["events"])
                for name, result in optimization.items()
            ],
        )
    )
    print_block(
        format_table(
            f"Move time vs transfer guarantee (default pipeline, {2 * CHUNK_COUNT} chunks, events at {EVENT_RATE:.0f}/s)",
            ["guarantee", "move time (ms)", "events fwd", "events dropped", "releases"],
            [
                (
                    name,
                    round(result["duration"] * 1000, 1),
                    result["forwarded"],
                    result["dropped"],
                    result["releases"],
                )
                for name, result in guarantee.items()
            ],
        )
    )
    print_block(
        format_table(
            "Correctness under live traffic (monitor migration, 20 flows)",
            ["guarantee", "updates lost", "events dropped", "events forwarded"],
            [
                (
                    name,
                    result.updates_lost,
                    result.record.events_dropped,
                    result.record.events_forwarded,
                )
                for name, result in loss.items()
            ],
        )
    )

    sequential = optimization["sequential (window 1)"]["duration"]
    default = optimization["pipelined (default)"]["duration"]
    parallel = optimization["parallel (window 8)"]["duration"]
    batched = optimization["batched x32"]["duration"]

    # Batched and parallel pipelines beat the sequential strawman by a wide
    # margin, and batching (one ACK per 32 chunks) also strictly beats the
    # seed's pipelined per-chunk default.
    assert batched < default < sequential
    assert parallel < sequential
    assert min(batched, parallel) < default

    # Stronger guarantees cost move time: NO_GUARANTEE <= LOSS_FREE <= ORDER_PRESERVING.
    ng = guarantee[TransferGuarantee.NO_GUARANTEE.value]["duration"]
    lf = guarantee[TransferGuarantee.LOSS_FREE.value]["duration"]
    op = guarantee[TransferGuarantee.ORDER_PRESERVING.value]["duration"]
    assert ng <= lf <= op

    # Loss-free (and order-preserving) moves lose zero per-flow updates under
    # live traffic; no-guarantee moves drop every in-transfer event.
    assert loss[TransferGuarantee.LOSS_FREE.value].updates_lost == 0
    assert loss[TransferGuarantee.LOSS_FREE.value].record.events_dropped == 0
    assert loss[TransferGuarantee.ORDER_PRESERVING.value].updates_lost == 0
    assert loss[TransferGuarantee.NO_GUARANTEE.value].record.events_dropped > 0
    assert loss[TransferGuarantee.NO_GUARANTEE.value].updates_lost > 0

    # Order-preserving mode releases every moved flow (flows whose second
    # state role streamed in after the first was released are re-released).
    assert (
        guarantee[TransferGuarantee.ORDER_PRESERVING.value]["releases"] >= CHUNK_COUNT
    )
