"""Wall-clock concurrent-move throughput on the realtime runtime.

The simulated twin of this experiment is ``bench_fig10b_concurrent_moves``;
here the same workload — N simultaneous ``moveInternal`` operations between
dummy middlebox pairs — runs on the :class:`~repro.runtime.RealtimeRuntime`,
so every reported number is **measured wall time**: per-operation durations
come from ``OperationRecord`` timestamps taken off the monotonic clock, and
the end-to-end elapsed time is cross-checked against a ``time.monotonic()``
bracket around the whole run.  Reported metrics: real operations/second and
p50/p99 per-move latency, persisted as ``BENCH_wallclock_moves.json``.

No absolute-speed assertions are made (wall clocks vary across machines and
CI runners); the test asserts completeness (every chunk transferred, every
operation committed) and internal consistency of the measurements.

Runnable directly::

    PYTHONPATH=src python benchmarks/bench_wallclock_moves.py --concurrency 8
"""

from __future__ import annotations

import time

from repro.analysis import format_table, print_block

try:
    from benchmarks.conftest import realtime_controller_with_dummies
    from benchmarks._results import duration_stats, write_results
except ModuleNotFoundError:  # invoked as a script: benchmarks/ is sys.path[0]
    from conftest import realtime_controller_with_dummies
    from _results import duration_stats, write_results

#: Simultaneous moveInternal operations per measured level.
CONCURRENCY_LEVELS = (1, 4, 8)
#: Per-pair chunk count (each move transfers 2x this: supporting + reporting).
CHUNKS_PER_PAIR = 40
#: Controller shards for the concurrent levels (the PR-3 contention fix).
SHARDS = 2


def run_concurrent_moves(concurrency: int, *, chunks: int = CHUNKS_PER_PAIR, shards: int = SHARDS) -> dict:
    """Run *concurrency* simultaneous wall-clock moves; returns the measurements."""
    runtime, controller, northbound, pairs = realtime_controller_with_dummies(
        [chunks] * concurrency, shards=shards
    )
    try:
        wall_start = time.monotonic()
        handles = [northbound.move_internal(src.name, dst.name, None) for src, dst in pairs]
        for handle in handles:
            runtime.run_until(handle.finalized, limit=runtime.now + 60.0)
        runtime.run(until=runtime.now + 0.01)  # drain late deletes/acks
        wall_elapsed = time.monotonic() - wall_start
        records = [handle.record for handle in handles]
        makespan = max(r.completed_at for r in records) - min(r.started_at for r in records)
        result = {
            "concurrency": concurrency,
            "chunks_per_move": chunks * 2,
            "shards": shards,
            "durations": [r.duration for r in records],
            "makespan": makespan,
            "wall_elapsed": wall_elapsed,
            "ops_per_sec": concurrency / makespan if makespan else float("inf"),
            "chunks_transferred": sum(r.chunks_transferred for r in records),
            "puts_acked": sum(r.puts_acked for r in records),
        }
    finally:
        result_close = runtime.close()
    result["close"] = result_close
    return result


def _persist(results: list) -> None:
    write_results(
        "wallclock_moves",
        {
            "workload": {"chunks_per_pair": CHUNKS_PER_PAIR, "shards": SHARDS, "guarantee": "loss_free"},
            "levels": {
                str(result["concurrency"]): {
                    "ops_per_sec": round(result["ops_per_sec"], 3),
                    "makespan_ms": round(result["makespan"] * 1000, 3),
                    "wall_elapsed_ms": round(result["wall_elapsed"] * 1000, 3),
                    "move": duration_stats(result["durations"]),
                }
                for result in results
            },
        },
    )


def _print(results: list) -> None:
    print_block(
        format_table(
            f"Wall-clock concurrent moves — {CHUNKS_PER_PAIR * 2} chunks/move, {SHARDS} shards (realtime runtime)",
            ["concurrent", "ops/sec", "p50 move (ms)", "p99 move (ms)", "makespan (ms)", "wall (ms)"],
            [
                (
                    result["concurrency"],
                    round(result["ops_per_sec"], 1),
                    duration_stats(result["durations"])["p50_ms"],
                    duration_stats(result["durations"])["p99_ms"],
                    round(result["makespan"] * 1000, 1),
                    round(result["wall_elapsed"] * 1000, 1),
                )
                for result in results
            ],
        )
    )


def test_wallclock_concurrent_moves(once):
    def run_all():
        return [run_concurrent_moves(concurrency) for concurrency in CONCURRENCY_LEVELS]

    results = once(run_all)
    _print(results)
    _persist(results)

    for result in results:
        # Completeness: every chunk was exported, put, and ACKed.
        expected = result["concurrency"] * result["chunks_per_move"]
        assert result["chunks_transferred"] == expected
        assert result["puts_acked"] == expected
        # The runtime shut down without leaking scheduled work.
        assert result["close"]["processes_leaked"] == 0
        assert result["close"]["lane_backlog"] == 0
        # Internal consistency: record-derived makespan happened inside the
        # wall bracket, and the clock actually advanced (real time, not ticks).
        assert 0 < result["makespan"] <= result["wall_elapsed"] * 1.05
        stats = duration_stats(result["durations"])
        assert stats["p99_ms"] >= stats["p50_ms"] > 0


def main() -> None:
    """CLI entry point: measure one concurrency level directly."""
    import argparse

    parser = argparse.ArgumentParser(description="Wall-clock concurrent moveInternal throughput")
    parser.add_argument("--concurrency", type=int, default=8, help="simultaneous moves")
    parser.add_argument("--chunks", type=int, default=CHUNKS_PER_PAIR, help="per-pair chunk count")
    parser.add_argument("--shards", type=int, default=SHARDS, help="controller shards")
    args = parser.parse_args()
    result = run_concurrent_moves(args.concurrency, chunks=args.chunks, shards=args.shards)
    _print([result])
    _persist([result])


if __name__ == "__main__":
    main()
