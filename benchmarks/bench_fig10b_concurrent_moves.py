"""Figure 10(b): average time per move vs number of simultaneous moves.

Regenerates the controller-scalability series: several pairs of dummy
middleboxes start moveInternal operations at the same time; the controller's
message handling is serialised through a single CPU, so the average time per
operation grows with both the number of simultaneous operations and the number
of chunks per operation — the linear trends of Figure 10(b).
"""

from __future__ import annotations

from repro.analysis import format_table, print_block
from benchmarks.conftest import controller_with_dummies

CONCURRENCY_LEVELS = (1, 2, 4, 8)
CHUNKS_PER_PAIR = (500, 1000)


def run_concurrent_moves(concurrency: int, chunks: int) -> float:
    sim, controller, northbound, pairs = controller_with_dummies([chunks] * concurrency)
    handles = [northbound.move_internal(src.name, dst.name, None) for src, dst in pairs]
    for handle in handles:
        sim.run_until(handle.completed, limit=5000)
    durations = [handle.record.duration for handle in handles]
    return sum(durations) / len(durations)


def test_fig10b_concurrent_moves(once):
    def run_all():
        return {
            (concurrency, chunks): run_concurrent_moves(concurrency, chunks)
            for chunks in CHUNKS_PER_PAIR
            for concurrency in CONCURRENCY_LEVELS
        }

    results = once(run_all)

    rows = [
        (concurrency, chunks * 2, round(results[(concurrency, chunks)] * 1000, 1))
        for chunks in CHUNKS_PER_PAIR
        for concurrency in CONCURRENCY_LEVELS
    ]
    print_block(
        format_table(
            "Figure 10(b) — average time per moveInternal vs simultaneous operations",
            ["simultaneous moves", "chunks per move", "avg time per move (ms)"],
            rows,
        )
    )

    for chunks in CHUNKS_PER_PAIR:
        series = [results[(concurrency, chunks)] for concurrency in CONCURRENCY_LEVELS]
        # Average per-move time grows with the number of simultaneous operations.
        assert series[0] < series[1] < series[2] < series[3]
    # And with the number of chunks per operation.
    for concurrency in CONCURRENCY_LEVELS:
        assert results[(concurrency, 1000)] > results[(concurrency, 500)]
