"""Figure 10(b): average time per move vs number of simultaneous moves.

Two experiments share this module:

* the **paper figure** (single shard): several pairs of dummy middleboxes
  start ``moveInternal`` operations at the same time; the controller's
  message handling is serialised through one simulated CPU, so the average
  time per operation grows with both the number of simultaneous operations
  and the number of chunks per operation — the linear trends of Figure 10(b);
* the **shard-scaling axis** (beyond the paper): the same contention point is
  removed by partitioning the controller into N shards
  (:mod:`repro.core.sharding`), each running its own event/ACK loop, with the
  batched southbound dispatcher coalescing same-window puts per destination
  channel.  At 64 concurrent moves, 4 shards must deliver at least 2x the
  operation throughput of 1 shard while losing and reordering **zero**
  in-transfer updates under both the loss-free and order-preserving
  guarantees.

Run as a script to measure one configuration directly::

    PYTHONPATH=src python benchmarks/bench_fig10b_concurrent_moves.py --shards 4
"""

from __future__ import annotations

from repro.analysis import format_table, print_block
from repro.core import ControllerConfig, MBController, NorthboundAPI
from repro.middleboxes import DummyMiddlebox
from repro.net import Simulator

try:
    from benchmarks.conftest import controller_with_dummies
    from benchmarks._results import duration_stats, freeze_stats, write_results
except ModuleNotFoundError:  # invoked as a script: benchmarks/ is sys.path[0]
    from conftest import controller_with_dummies
    from _results import duration_stats, freeze_stats, write_results

CONCURRENCY_LEVELS = (1, 2, 4, 8)
CHUNKS_PER_PAIR = (500, 1000)

#: Shard-scaling experiment shape (the acceptance point of the sharding PR).
SCALING_MOVES = 64
SCALING_CHUNKS = 150
SHARD_COUNTS = (1, 2, 4)
#: Southbound batching window used for the sharded runs.
SCALING_DISPATCH_TICK = 0.0005
#: Live re-process event stream injected at every source during the transfer.
EVENT_RATE = 400.0
EVENT_DURATION = 0.05


def run_concurrent_moves(concurrency: int, chunks: int) -> float:
    sim, controller, northbound, pairs = controller_with_dummies([chunks] * concurrency)
    handles = [northbound.move_internal(src.name, dst.name, None) for src, dst in pairs]
    for handle in handles:
        sim.run_until(handle.completed, limit=5000)
    durations = [handle.record.duration for handle in handles]
    return sum(durations) / len(durations)


def run_sharded_moves(
    num_shards: int,
    *,
    moves: int = SCALING_MOVES,
    chunks: int = SCALING_CHUNKS,
    guarantee: str = "loss_free",
    dispatch_tick: float = SCALING_DISPATCH_TICK,
    event_rate: float = EVENT_RATE,
) -> dict:
    """Run *moves* simultaneous wildcard moves on an N-shard controller.

    Returns makespan, operation throughput (completed moves per simulated
    second), per-shard load, and the update-accounting needed to prove zero
    lost/reordered updates: every source also emits a live re-process event
    stream while its transfer is in flight.
    """
    sim = Simulator()
    controller = MBController(
        sim,
        ControllerConfig(quiescence_timeout=0.1, num_shards=num_shards, dispatch_tick=dispatch_tick),
    )
    northbound = NorthboundAPI(controller)
    pairs = []
    for index in range(moves):
        src = DummyMiddlebox(sim, f"dummy-src-{index}", chunk_count=chunks)
        dst = DummyMiddlebox(sim, f"dummy-dst-{index}")
        controller.register(src)
        controller.register(dst)
        pairs.append((src, dst))
    handles = [northbound.move_internal(src.name, dst.name, None, spec=guarantee) for src, dst in pairs]
    if event_rate:
        for src, _ in pairs:
            src.generate_events_at_rate(event_rate, EVENT_DURATION)
    for handle in handles:
        sim.run_until(handle.completed, limit=5000)
    # Drain the tail of the event stream (and quiescence) so the update
    # accounting below sees every generated event delivered.
    sim.run(until=sim.now + 2.0)
    records = [handle.record for handle in handles]
    makespan = max(record.completed_at for record in records) - min(record.started_at for record in records)
    generated = sum(src.events_generated for src, _ in pairs)
    return {
        "num_shards": num_shards,
        "guarantee": guarantee,
        "makespan": makespan,
        "throughput": moves / makespan,
        "mean_duration": sum(record.duration for record in records) / moves,
        "durations": [record.duration for record in records],
        "freeze_windows": [record.freeze_window for record in records],
        "chunks": sum(record.chunks_transferred for record in records),
        "puts_acked": sum(record.puts_acked for record in records),
        "events_generated": generated,
        "events_received": sum(record.events_received for record in records),
        "events_forwarded": sum(record.events_forwarded for record in records),
        "events_dropped": sum(record.events_dropped for record in records),
        "releases_sent": sum(record.releases_sent for record in records),
        "unique_flows": moves * chunks,
        "batches_dispatched": controller.stats.batches_dispatched,
        "messages_coalesced": controller.stats.messages_coalesced,
        "shard_events": [shard["events"] for shard in controller.shard_summary()["shards"]],
        "shard_messages": [shard["messages"] for shard in controller.shard_summary()["shards"]],
    }


def assert_no_lost_or_reordered_updates(result: dict) -> None:
    """The transfer-guarantee invariants the scaling run must preserve.

    * every exported chunk was put and ACKed (no partial installs);
    * under loss-free and order-preserving: no event was dropped, and every
      event delivered to an operation was replayed at the destination
      (nothing lost);
    * under order-preserving, every moved flow was released — the destination
      held its packets until the flow's replays ACKed in order, so nothing
      was reordered.

    ``no_guarantee`` promises none of the event invariants (dropping
    in-transfer events is its documented behaviour), so only the chunk
    accounting applies there.
    """
    assert result["puts_acked"] == result["chunks"]
    if result["guarantee"] == "no_guarantee":
        return
    assert result["events_dropped"] == 0
    assert result["events_received"] == result["events_generated"]
    assert result["events_forwarded"] >= result["events_received"]
    if result["guarantee"] == "order_preserving":
        assert result["releases_sent"] >= result["unique_flows"]


def test_fig10b_concurrent_moves(once):
    def run_all():
        return {
            (concurrency, chunks): run_concurrent_moves(concurrency, chunks)
            for chunks in CHUNKS_PER_PAIR
            for concurrency in CONCURRENCY_LEVELS
        }

    results = once(run_all)

    rows = [
        (concurrency, chunks * 2, round(results[(concurrency, chunks)] * 1000, 1))
        for chunks in CHUNKS_PER_PAIR
        for concurrency in CONCURRENCY_LEVELS
    ]
    print_block(
        format_table(
            "Figure 10(b) — average time per moveInternal vs simultaneous operations",
            ["simultaneous moves", "chunks per move", "avg time per move (ms)"],
            rows,
        )
    )

    for chunks in CHUNKS_PER_PAIR:
        series = [results[(concurrency, chunks)] for concurrency in CONCURRENCY_LEVELS]
        # Average per-move time grows with the number of simultaneous operations.
        assert series[0] < series[1] < series[2] < series[3]
    # And with the number of chunks per operation.
    for concurrency in CONCURRENCY_LEVELS:
        assert results[(concurrency, 1000)] > results[(concurrency, 500)]


def test_shard_scaling_64_concurrent_moves(once):
    """The sharding acceptance point: >= 2x throughput at 4 shards, zero loss."""

    def run_all():
        return [run_sharded_moves(num_shards) for num_shards in SHARD_COUNTS]

    results = once(run_all)
    by_shards = {result["num_shards"]: result for result in results}

    print_block(
        format_table(
            f"Shard scaling — {SCALING_MOVES} simultaneous moves, {SCALING_CHUNKS * 2} chunks each (loss-free)",
            ["shards", "makespan (ms)", "moves/s", "mean move (ms)", "batches", "events fwd"],
            [
                (
                    result["num_shards"],
                    round(result["makespan"] * 1000, 1),
                    round(result["throughput"], 1),
                    round(result["mean_duration"] * 1000, 1),
                    result["batches_dispatched"],
                    result["events_forwarded"],
                )
                for result in results
            ],
        )
    )

    write_results(
        "fig10b_concurrent_moves",
        {
            "workload": {"moves": SCALING_MOVES, "chunks": SCALING_CHUNKS, "guarantee": "loss_free"},
            "shards": {
                str(result["num_shards"]): {
                    "makespan_ms": round(result["makespan"] * 1000, 4),
                    "throughput_moves_per_sec": round(result["throughput"], 3),
                    "move": duration_stats(result["durations"]),
                    "freeze": freeze_stats(result["freeze_windows"]),
                }
                for result in results
            },
        },
    )

    # >= 2x operation throughput at 4 shards vs 1 shard, 64 concurrent moves.
    assert by_shards[4]["throughput"] >= 2.0 * by_shards[1]["throughput"]
    # Monotone: adding shards never slows the workload down.
    assert by_shards[2]["throughput"] >= by_shards[1]["throughput"]
    # The event stream spread across several shard loops at 4 shards.
    assert sum(1 for count in by_shards[4]["shard_events"] if count > 0) >= 2
    # Safety is not traded for speed: zero lost updates at every shard count.
    for result in results:
        assert_no_lost_or_reordered_updates(result)


def test_shard_scaling_order_preserving_correctness(once):
    """Order-preserving at 4 shards: zero lost *and* zero reordered updates."""

    def run_both():
        return [
            run_sharded_moves(4, chunks=40, guarantee="order_preserving"),
            run_sharded_moves(1, chunks=40, guarantee="order_preserving"),
        ]

    sharded, single = once(run_both)
    for result in (sharded, single):
        assert_no_lost_or_reordered_updates(result)
    # The guarantee holds while sharding still relieves the contention.
    assert sharded["makespan"] < single["makespan"]


def main() -> None:
    """CLI entry point: measure one shard count directly (``--shards N``)."""
    import argparse

    parser = argparse.ArgumentParser(description="Concurrent-move throughput vs controller shard count")
    parser.add_argument("--shards", type=int, default=1, help="number of controller shards")
    parser.add_argument("--moves", type=int, default=SCALING_MOVES, help="simultaneous moveInternal operations")
    parser.add_argument("--chunks", type=int, default=SCALING_CHUNKS, help="per-flow chunks per source")
    parser.add_argument(
        "--guarantee",
        default="loss_free",
        choices=["no_guarantee", "loss_free", "order_preserving"],
        help="transfer guarantee for every move",
    )
    args = parser.parse_args()
    result = run_sharded_moves(args.shards, moves=args.moves, chunks=args.chunks, guarantee=args.guarantee)
    assert_no_lost_or_reordered_updates(result)
    write_results(
        "fig10b_concurrent_moves",
        {
            "workload": {"moves": args.moves, "chunks": args.chunks, "guarantee": args.guarantee},
            "shards": {
                str(args.shards): {
                    "makespan_ms": round(result["makespan"] * 1000, 4),
                    "throughput_moves_per_sec": round(result["throughput"], 3),
                    "move": duration_stats(result["durations"]),
                    "freeze": freeze_stats(result["freeze_windows"]),
                }
            },
        },
    )
    print_block(
        format_table(
            f"{args.moves} concurrent moves, {args.chunks * 2} chunks each, {args.guarantee}, {args.shards} shard(s)",
            ["metric", "value"],
            [
                ("makespan (ms)", round(result["makespan"] * 1000, 2)),
                ("throughput (moves/s)", round(result["throughput"], 2)),
                ("mean move time (ms)", round(result["mean_duration"] * 1000, 2)),
                ("puts acked", result["puts_acked"]),
                ("events forwarded", result["events_forwarded"]),
                ("events dropped", result["events_dropped"]),
                ("batches dispatched", result["batches_dispatched"]),
                ("messages coalesced", result["messages_coalesced"]),
                ("per-shard messages", result["shard_messages"]),
            ],
        )
    )


if __name__ == "__main__":
    main()
