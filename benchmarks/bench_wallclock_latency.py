"""Wall-clock get/put control-plane latency on the realtime runtime.

The simulated twin is ``bench_fig9ab_get_put_time``; here each southbound
round trip is bracketed with ``time.monotonic()``: issue one
``getPerflow`` (wildcard, supporting state) against a populated dummy
middlebox and time until ``GET_COMPLETE`` arrives back at the controller,
then put one chunk to the destination and time until its ``ACK``.  Repeating
the round trip many times yields real p50/p99 control-plane latency — the
first honest latency numbers in the repo's perf trail, persisted as
``BENCH_wallclock_latency.json``.

Runnable directly::

    PYTHONPATH=src python benchmarks/bench_wallclock_latency.py --iterations 100
"""

from __future__ import annotations

import time

from repro.analysis import format_table, print_block
from repro.core import ControllerConfig, FlowPattern, MBController, messages
from repro.core.messages import MessageType
from repro.core.state import StateRole
from repro.middleboxes import DummyMiddlebox
from repro.runtime import RuntimeConfig

try:
    from benchmarks._results import duration_stats, write_results
except ModuleNotFoundError:  # invoked as a script: benchmarks/ is sys.path[0]
    from _results import duration_stats, write_results

#: Round trips per series — enough samples for a meaningful p99.
ITERATIONS = 100
#: Chunks held by the source (each get streams all of them back).
CHUNKS = 10


def run_get_put_latency(iterations: int = ITERATIONS, *, chunks: int = CHUNKS) -> dict:
    """Measure *iterations* wall-clock get and put round trips; returns both series."""
    runtime = RuntimeConfig(mode="realtime").create()
    try:
        controller = MBController(runtime, ControllerConfig(quiescence_timeout=0.01))
        src = DummyMiddlebox(runtime, "latency-src", chunk_count=chunks)
        dst = DummyMiddlebox(runtime, "latency-dst")
        controller.register(src)
        controller.register(dst)
        get_latencies, put_latencies = [], []
        for index in range(iterations):
            received = []
            done = runtime.event(f"get-{index}")

            def on_get_reply(message, received=received, done=done):
                if message.type == MessageType.STATE_CHUNK:
                    received.append(messages.decode_chunk(message.body["chunk"]))
                elif message.type == MessageType.GET_COMPLETE:
                    done.succeed(None)

            started = time.monotonic()
            controller.send(
                src.name,
                messages.get_perflow(src.name, StateRole.SUPPORTING, FlowPattern.wildcard()),
                on_reply=on_get_reply,
            )
            runtime.run_until(done, limit=runtime.now + 10.0)
            get_latencies.append(time.monotonic() - started)
            assert len(received) == chunks

            acked = runtime.event(f"put-{index}")

            def on_put_reply(message, acked=acked):
                if message.type == MessageType.ACK:
                    acked.succeed(None)

            started = time.monotonic()
            controller.send(dst.name, messages.put_perflow(dst.name, received[0]), on_reply=on_put_reply)
            runtime.run_until(acked, limit=runtime.now + 10.0)
            put_latencies.append(time.monotonic() - started)
        result = {"get": get_latencies, "put": put_latencies}
    finally:
        close = runtime.close()
    result["close"] = close
    return result


def _persist(result: dict) -> None:
    write_results(
        "wallclock_latency",
        {
            "workload": {"iterations": len(result["get"]), "chunks_per_get": CHUNKS},
            "get": duration_stats(result["get"]),
            "put": duration_stats(result["put"]),
        },
    )


def _print(result: dict) -> None:
    rows = []
    for op in ("get", "put"):
        stats = duration_stats(result[op])
        rows.append((op, stats["ops_per_sec"], stats["p50_ms"], stats["p99_ms"], stats["mean_ms"]))
    print_block(
        format_table(
            f"Wall-clock southbound round trips — {CHUNKS} chunks/get, {len(result['get'])} iterations",
            ["op", "ops/sec", "p50 (ms)", "p99 (ms)", "mean (ms)"],
            rows,
        )
    )


def test_wallclock_get_put_latency(once):
    result = once(run_get_put_latency)
    _print(result)
    _persist(result)

    assert result["close"]["processes_leaked"] == 0
    assert result["close"]["lane_backlog"] == 0
    for op in ("get", "put"):
        stats = duration_stats(result[op])
        # Real latencies: strictly positive, ordered percentiles, sane rate.
        assert stats["count"] == ITERATIONS
        assert 0 < stats["p50_ms"] <= stats["p99_ms"]
        assert stats["ops_per_sec"] > 0
    # A wildcard get streams every chunk back plus completion, so it cannot be
    # cheaper than a single-chunk put at the median.
    assert duration_stats(result["get"])["p50_ms"] >= duration_stats(result["put"])["p50_ms"] * 0.5


def main() -> None:
    """CLI entry point: measure the round-trip series directly."""
    import argparse

    parser = argparse.ArgumentParser(description="Wall-clock get/put control-plane latency")
    parser.add_argument("--iterations", type=int, default=ITERATIONS)
    parser.add_argument("--chunks", type=int, default=CHUNKS)
    args = parser.parse_args()
    result = run_get_put_latency(args.iterations, chunks=args.chunks)
    _print(result)
    _persist(result)


if __name__ == "__main__":
    main()
