"""Cross-datacenter moves over an asymmetric WAN: adaptive pre-copy pacing.

The federation tentpole's acceptance experiment: two controller domains are
wired with a bandwidth/latency-asymmetric FaultPlan (the controller->instance
direction is lossier and jitterier than the reverse — a congested inter-DC
path), and ``dc-a`` borrows an instance from ``dc-b`` to run a cross-domain
``move`` over that WAN.  The gossip layer's smoothed one-way delay/jitter
estimate of the link drives the :attr:`~repro.core.transfer.TransferSpec.wan_pacing`
gain, which stretches the gap between pre-copy delta rounds to match the
measured link quality.

Both variants are measured across several seeds:

* **adaptive** — the pacing gain the federation derived from its WAN estimate;
* **unpaced** — the same moves with the gain clamped to zero (the pre-PR
  back-to-back round schedule).

Results persist to ``BENCH_federation_crossdc.json`` (ops/sec, freeze-window
and move-duration percentiles, measured pacing gains).  Run as a script::

    PYTHONPATH=src python benchmarks/bench_federation_crossdc.py --seed 7
"""

from __future__ import annotations

from repro.analysis import format_table, print_block
from repro.core import ControllerConfig, FlowPattern, ProcessingCosts
from repro.core.channel import FaultPlan, FaultProfile
from repro.core.transfer import TransferSpec
from repro.federation import Federation, FederationConfig, GossipConfig
from repro.net import Simulator, tcp_packet
from repro.testing import ChaosMiddlebox

try:
    from benchmarks._results import duration_stats, freeze_stats, write_results
except ModuleNotFoundError:  # invoked as a script: benchmarks/ is sys.path[0]
    from _results import duration_stats, freeze_stats, write_results

#: Seeds measured per variant.
SEEDS = 4
DEFAULT_BASE_SEED = 11
#: WAN shape: 5 ms one-way, 50 Mbit/s — an order of magnitude worse than the
#: intra-domain control channel on both axes.
WAN_LATENCY = 5e-3
WAN_BANDWIDTH = 6.25e6
FLOWS = 24
PACKETS = 80
#: The moved instance serialises state at the base (paper) cost model's rate —
#: 600 us per exported chunk — rather than the dummy's near-zero costs.  The
#: bulk round's export window is then long enough for live writes to dirty
#: flows, so the delta rounds (and the WAN pacing between them) actually run.
SRC_COSTS = ProcessingCosts()


def asymmetric_plan(seed: int) -> FaultPlan:
    """The acceptance fault plan: the forward (controller->instance) direction
    is lossy with up-to-3x latency jitter, the reverse only mildly jittery."""
    return FaultPlan(
        seed,
        to_mb=FaultProfile(drop=0.01, jitter=3.0),
        to_controller=FaultProfile(jitter=1.0),
    )


def run_crossdc_move(seed: int, *, adaptive: bool = True) -> dict:
    """One cross-domain move over the asymmetric WAN; returns its record."""
    sim = Simulator()
    config = FederationConfig(
        gossip=GossipConfig(fanout=1, interval=1e-3, ttl=0.5, seed=seed),
        max_pacing_gain=4.0 if adaptive else 0.0,
    )
    federation = Federation(sim, config)
    for name in ("dc-a", "dc-b"):
        federation.add_domain(name, controller_config=ControllerConfig(quiescence_timeout=0.02))
    federation.connect(
        "dc-a", "dc-b", latency=WAN_LATENCY, bandwidth=WAN_BANDWIDTH, faults=asymmetric_plan(seed * 7 + 1)
    )
    borrower, home = federation.domains["dc-a"], federation.domains["dc-b"]
    src = ChaosMiddlebox(sim, "edge-src", flows=FLOWS, costs=SRC_COSTS)
    borrower.register(src)
    home.register(ChaosMiddlebox(sim, "core-dst"))
    sim.run(until=0.05)  # gossip samples the link; the WAN estimate settles

    # Live writes keep dirtying flows while the pre-copy rounds stream — the
    # spacing spans the whole WAN transfer so every delta round finds work.
    for seq in range(1, PACKETS + 1):
        key = src.flow_key_for(seq % FLOWS)
        packet = tcp_packet(key.nw_src, key.nw_dst, key.tp_src, key.tp_dst, b"w", seq=seq)
        sim.schedule(1.5e-3 * seq, src.receive, packet, 0)

    future = borrower.move_to(
        "dc-b",
        "edge-src",
        "core-dst",
        FlowPattern.wildcard(),
        TransferSpec.precopy(max_rounds=3),
        faults=asymmetric_plan(seed * 13 + 3),
    )
    sim.run_until(future, limit=60.0)
    record = future.result
    sim.run(until=sim.now + 0.1)  # FED_MOVE_DONE + homecoming settle
    federation.stop()
    sim.run(until=sim.now + 0.05)
    owners = {domain.directory.owner_of(src.flow_key_for(0)) for domain in federation.live_domains()}
    return {
        "duration": record.duration,
        "freeze_window": record.freeze_window,
        "wan_pacing": record.wan_pacing,
        "rounds": len(record.rounds),
        "chunks": record.chunks_transferred,
        "owners": owners,
        "returned_home": home.controller.is_registered("core-dst"),
    }


def run_variant(adaptive: bool, base_seed: int) -> dict:
    """Aggregate one pacing variant across the seed set."""
    runs = [run_crossdc_move(base_seed + index * 193, adaptive=adaptive) for index in range(SEEDS)]
    return {
        "runs": runs,
        "move": duration_stats([run["duration"] for run in runs]),
        "freeze": freeze_stats([run["freeze_window"] for run in runs]),
        "pacing_gains": [round(run["wan_pacing"], 4) for run in runs],
    }


def _results_payload(adaptive: dict, unpaced: dict, base_seed: int) -> dict:
    return {
        "base_seed": base_seed,
        "seeds": SEEDS,
        "wan": {"latency_s": WAN_LATENCY, "bandwidth_bytes_per_s": WAN_BANDWIDTH},
        "workload": {"flows": FLOWS, "packets": PACKETS},
        "adaptive": {key: adaptive[key] for key in ("move", "freeze", "pacing_gains")},
        "unpaced": {key: unpaced[key] for key in ("move", "freeze", "pacing_gains")},
    }


def _print_summary(adaptive: dict, unpaced: dict) -> None:
    print_block(
        format_table(
            f"Cross-DC move over asymmetric WAN ({SEEDS} seeds per variant)",
            ["variant", "moves/s", "move p50 (ms)", "move p99 (ms)", "freeze p99 (ms)", "pacing gains"],
            [
                (
                    label,
                    variant["move"]["ops_per_sec"],
                    variant["move"]["p50_ms"],
                    variant["move"]["p99_ms"],
                    variant["freeze"]["p99_ms"],
                    variant["pacing_gains"],
                )
                for label, variant in (("adaptive", adaptive), ("unpaced", unpaced))
            ],
        )
    )


def test_federation_crossdc_adaptive_pacing(once):
    def run_both():
        return run_variant(True, DEFAULT_BASE_SEED), run_variant(False, DEFAULT_BASE_SEED)

    adaptive, unpaced = once(run_both)
    _print_summary(adaptive, unpaced)
    write_results("federation_crossdc", _results_payload(adaptive, unpaced, DEFAULT_BASE_SEED))

    for run in adaptive["runs"]:
        # The measured link (5 ms + jitter) is far above the LAN reference, so
        # every adaptive move must have run with a real pacing gain applied.
        assert run["wan_pacing"] > 0.0
        assert run["rounds"] >= 2 and run["chunks"] >= FLOWS
        # The moved flows belong to dc-b in every surviving view, and the
        # borrowed instance went home.
        assert run["owners"] == {"dc-b"}
        assert run["returned_home"]
    for run in unpaced["runs"]:
        assert run["wan_pacing"] == 0.0
        assert run["owners"] == {"dc-b"} and run["returned_home"]
    # Pacing stretches the move: the paced rounds wait out the measured gap.
    assert adaptive["move"]["p50_ms"] > unpaced["move"]["p50_ms"]


def main() -> None:
    """CLI entry point: re-run both variants with a caller-chosen seed base."""
    import argparse

    parser = argparse.ArgumentParser(description="Cross-DC move with WAN-adaptive pre-copy pacing")
    parser.add_argument("--seed", type=int, default=DEFAULT_BASE_SEED, help="base mixed into every run seed")
    args = parser.parse_args()
    adaptive = run_variant(True, args.seed)
    unpaced = run_variant(False, args.seed)
    _print_summary(adaptive, unpaced)
    path = write_results("federation_crossdc", _results_payload(adaptive, unpaced, args.seed))
    print(f"results -> {path}")


if __name__ == "__main__":
    main()
