"""Figures 9(a) and 9(b): get and put processing time vs number of state chunks.

Regenerates the per-operation timing series: the (simulated) time to complete a
single getSupportPerflow / getReportPerflow at the source middlebox, and the
collective time for the corresponding puts at the destination, for 250, 500,
and 1000 chunks of per-flow state, for both the monitor (shallow per-flow
state) and the IDS (deep per-flow state).  The expected shapes: linear growth
with the chunk count, puts roughly 6x cheaper than gets, and higher absolute
costs for the IDS.
"""

from __future__ import annotations

from repro.analysis import format_table, print_block
from repro.core import ControllerConfig, FlowPattern, MBController
from repro.core.messages import MessageType
from repro.core import messages
from repro.core.state import StateRole
from repro.middleboxes import IDS, PassiveMonitor
from repro.net import Simulator
from repro.traffic import TraceReplayer, constant_rate_trace

CHUNK_COUNTS = (250, 500, 1000)


def _populated(mb_factory, label, flows):
    sim = Simulator()
    controller = MBController(sim, ControllerConfig(quiescence_timeout=0.2))
    src = mb_factory(sim, f"{label}-src")
    dst = mb_factory(sim, f"{label}-dst")
    controller.register(src)
    controller.register(dst)
    trace = constant_rate_trace(rate=4000.0, duration=flows / 4000.0, flows=flows, seed=120)
    TraceReplayer.into_node(sim, trace, src).schedule()
    sim.run(until=flows / 4000.0 + 0.5)
    return sim, controller, src, dst


def measure_get_put(mb_factory, label, role, flows):
    """Return (get seconds, put seconds) of simulated time for *flows* chunks."""
    sim, controller, src, dst = _populated(mb_factory, label, flows)
    chunks = []
    done = sim.event("get-done")
    started_at = sim.now

    def on_get_reply(message):
        if message.type == MessageType.STATE_CHUNK:
            chunks.append(messages.decode_chunk(message.body["chunk"]))
        elif message.type == MessageType.GET_COMPLETE:
            done.succeed(sim.now - started_at)

    controller.send(src.name, messages.get_perflow(src.name, role, FlowPattern.wildcard()), on_reply=on_get_reply)
    get_time = sim.run_until(done, limit=200)

    puts_done = sim.event("puts-done")
    outstanding = {"count": len(chunks)}
    put_started_at = sim.now

    def on_put_reply(message):
        if message.type == MessageType.ACK:
            outstanding["count"] -= 1
            if outstanding["count"] == 0:
                puts_done.succeed(sim.now - put_started_at)

    for chunk in chunks:
        controller.send(dst.name, messages.put_perflow(dst.name, chunk), on_reply=on_put_reply)
    put_time = sim.run_until(puts_done, limit=200)
    return get_time, put_time, len(chunks)


def test_fig9ab_get_and_put_time(once):
    def run_all():
        results = {}
        for label, factory, role in (
            ("monitor", lambda sim, name: PassiveMonitor(sim, name), StateRole.REPORTING),
            ("ids", lambda sim, name: IDS(sim, name), StateRole.SUPPORTING),
        ):
            for flows in CHUNK_COUNTS:
                results[(label, flows)] = measure_get_put(factory, label, role, flows)
        return results

    results = once(run_all)

    rows = []
    for (label, flows), (get_time, put_time, count) in sorted(results.items()):
        rows.append(
            (
                label,
                flows,
                count,
                round(get_time * 1000, 1),
                round(put_time * 1000, 1),
                round(get_time / put_time, 1) if put_time else float("inf"),
            )
        )
    print_block(
        format_table(
            "Figures 9(a)/9(b) — get and put time vs number of per-flow state chunks",
            ["middlebox", "flows", "chunks", "get time (ms)", "puts time (ms)", "get/put ratio"],
            rows,
        )
    )

    for label in ("monitor", "ids"):
        gets = [results[(label, flows)][0] for flows in CHUNK_COUNTS]
        puts = [results[(label, flows)][1] for flows in CHUNK_COUNTS]
        # Linear growth: time increases with the chunk count and roughly doubles
        # when the chunk count doubles (within 40% tolerance).
        assert gets[0] < gets[1] < gets[2]
        assert puts[0] < puts[1] < puts[2]
        assert 1.3 < gets[2] / gets[1] < 2.7
        # Puts are several times cheaper than gets (the paper observes ~6x).
        assert gets[2] / puts[2] > 3.0
    # The IDS's deeper per-flow state makes its gets slower than the monitor's.
    assert results[("ids", 1000)][0] > results[("monitor", 1000)][0]
