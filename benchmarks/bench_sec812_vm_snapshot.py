"""Section 8.1.2 (VM snapshots): snapshot sizes and incorrect log entries.

Regenerates the VM-snapshot comparison: the size of a base snapshot versus a
full snapshot at migration time, snapshots of the HTTP-only and other-only
substreams, the amount of state OpenMB would actually move (per-flow state for
the migrated HTTP flows), and the incorrect conn.log entries both snapshot
copies produce because the flows now handled by the other copy terminate
abruptly.
"""

from __future__ import annotations

from repro.analysis import format_mapping, print_block
from repro.baselines import clone_via_snapshot, snapshot_size
from repro.core import FlowPattern
from repro.middleboxes import IDS
from repro.net import Simulator
from repro.traffic import enterprise_cloud_trace


def run_snapshot_comparison():
    sim = Simulator()
    trace = enterprise_cloud_trace(
        http_flows=40, other_flows=25, duration=20.0, seed=90, leave_open_fraction=1.0
    )
    http_records = [r for r in trace if 80 in (r.tp_dst, r.tp_src)]
    other_records = [r for r in trace if 80 not in (r.tp_dst, r.tp_src)]
    split = len(trace.records) // 2

    # BASE: a freshly booted IDS.
    base_size = snapshot_size(IDS(sim, "base"))

    # FULL: the IDS at the instant of migration (half the trace processed).
    original = IDS(sim, "original")
    for record in trace.records[:split]:
        original.process_packet(record.to_packet())
    full_size = snapshot_size(original)

    # HTTP / OTHER: snapshots of instances that processed only one substream up to
    # the migration instant.
    http_only = IDS(sim, "http-only")
    for record in (r for r in trace.records[:split] if 80 in (r.tp_dst, r.tp_src)):
        http_only.process_packet(record.to_packet())
    other_only = IDS(sim, "other-only")
    for record in (r for r in trace.records[:split] if 80 not in (r.tp_dst, r.tp_src)):
        other_only.process_packet(record.to_packet())
    http_size = snapshot_size(http_only)
    other_size = snapshot_size(other_only)

    # What OpenMB would move: the per-flow supporting state of the HTTP flows only.
    sdmbn_moved = original.state_size_bytes(FlowPattern(tp_dst=80))

    # Migrate by snapshot: the new instance is a full copy; HTTP flows go to it and
    # the rest stay.  Both copies end up logging anomalies for the other's flows.
    migrated = IDS(sim, "migrated")
    clone_via_snapshot(original, migrated)
    for record in trace.records[split:]:
        target = migrated if 80 in (record.tp_dst, record.tp_src) else original
        target.process_packet(record.to_packet())
    original.finalize()
    migrated.finalize()

    return {
        "base_size": base_size,
        "full_size": full_size,
        "http_size": http_size,
        "other_size": other_size,
        "sdmbn_moved": sdmbn_moved,
        "incorrect_original": len(original.incorrect_entries()),
        "incorrect_migrated": len(migrated.incorrect_entries()),
        "http_flows": len({r.flow_key().bidirectional() for r in http_records}),
        "other_flows": len({r.flow_key().bidirectional() for r in other_records}),
    }


def test_sec812_vm_snapshot(once):
    results = once(run_snapshot_comparison)

    print_block(
        format_mapping(
            "Section 8.1.2 — VM-snapshot migration of an IDS",
            {
                "BASE snapshot (bytes)": results["base_size"],
                "FULL snapshot at migration (bytes)": results["full_size"],
                "FULL - BASE (state carried, bytes)": results["full_size"] - results["base_size"],
                "HTTP-substream snapshot - BASE (bytes)": results["http_size"] - results["base_size"],
                "OTHER-substream snapshot - BASE (bytes)": results["other_size"] - results["base_size"],
                "state SDMBN actually moves (bytes)": results["sdmbn_moved"],
                "incorrect conn.log entries at the old copy": results["incorrect_original"],
                "incorrect conn.log entries at the new copy": results["incorrect_migrated"],
            },
        )
    )

    # Shape checks mirroring the paper's observations:
    # 1. The full snapshot carries far more state than either substream needs.
    assert results["full_size"] > results["http_size"] > results["base_size"]
    assert results["full_size"] > results["other_size"]
    # 2. SDMBN moves only the per-flow state of the migrated flows — less than the
    #    full snapshot delta.
    assert 0 < results["sdmbn_moved"] < results["full_size"] - results["base_size"]
    # 3. Both snapshot copies produce incorrect entries; OpenMB's migration produces
    #    none (shown by bench_sec82_correctness).
    assert results["incorrect_original"] > 0
    assert results["incorrect_migrated"] > 0
