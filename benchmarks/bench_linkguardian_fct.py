"""Flow completion times over a corrupting link, with/without link-local protection.

The LinkGuardian AE experiment family, on the reproduction's data plane: a
host pair talks through two switches whose middle hop corrupts frames at a
fixed rate (seeded :class:`~repro.net.links.LinkFaultPlan`).  A minimal
reliable window transport (in this file) runs end to end with a
datacenter-scale retransmission timeout, and each configuration measures:

* **FCT distribution** — per-flow completion times (p50/p99) for
  ``FLOWS`` flows of ``PACKETS_PER_FLOW`` packets each;
* **effective loss rate** — the loss the *transport* still observes
  (end-to-end timeouts over first-attempt data packets);
* **goodput** — unique payload bytes delivered over the measured span.

The matrix is corruption rate (10⁻³ / 10⁻⁴) × protection (off / on).  The
claim being checked: with LinkGuardian-style protection at 10⁻³ corruption,
the effective end-to-end loss rate drops by ≥ 100× and FCT p99 improves —
losses are repaired in sub-RTT time at the link instead of costing a full
end-to-end timeout.  Results persist to ``BENCH_linkguardian_fct.json``.
Run as a script::

    PYTHONPATH=src python benchmarks/bench_linkguardian_fct.py --seed 7
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.analysis import format_table, print_block
from repro.core.flowspace import FlowPattern
from repro.net import Action, FlowRule, LinkFaultPlan, ProtectionConfig, Simulator, Switch, Topology, tcp_packet
from repro.net.links import Link
from repro.net.protection import summarize

try:
    from benchmarks._results import duration_stats, percentile, write_results
except ModuleNotFoundError:  # invoked as a script: benchmarks/ is sys.path[0]
    from _results import duration_stats, percentile, write_results

DEFAULT_BASE_SEED = 3
#: Corruption rates of the matrix (per data frame on the middle hop).
CORRUPTION_RATES = (1e-3, 1e-4)
FLOWS = 50
PACKETS_PER_FLOW = 240
PAYLOAD_BYTES = 1000
#: Transport knobs: sliding window and the end-to-end retransmission timeout.
#: The RTO is datacenter-scale (10 ms) — two orders of magnitude above the
#: path RTT (~0.3 ms), which is exactly why unmasked corruption loss is so
#: expensive for short flows.
WINDOW = 8
E2E_RTO = 10e-3

H1_IP = "10.20.0.1"
H2_IP = "10.20.0.2"


class _ReliableFlow:
    """One flow of a minimal reliable window transport (sender side).

    Sequence-numbered data packets with a sliding window; the receiver acks
    every arrival; an unacked packet is re-sent after :data:`E2E_RTO`.  Just
    enough transport to make end-to-end loss observable and costly — the
    quantity the link-local protection is supposed to drive to zero.
    """

    def __init__(self, sim: Simulator, host, port: int, on_done: Callable[["_ReliableFlow"], None]) -> None:
        self.sim = sim
        self.host = host
        self.port = port
        self.on_done = on_done
        self.started_at = sim.now
        self.completed_at: Optional[float] = None
        self.first_sends = 0
        self.timeouts = 0
        self._next_seq = 1
        self._unacked: Dict[int, bytes] = {}
        self._fill_window()

    @property
    def fct(self) -> float:
        """Flow completion time (simulated seconds)."""
        assert self.completed_at is not None
        return self.completed_at - self.started_at

    def _fill_window(self) -> None:
        while self._next_seq <= PACKETS_PER_FLOW and len(self._unacked) < WINDOW:
            seq = self._next_seq
            self._next_seq += 1
            self._unacked[seq] = bytes(PAYLOAD_BYTES)
            self.first_sends += 1
            self._send(seq)

    def _send(self, seq: int) -> None:
        self.host.send(tcp_packet(H1_IP, H2_IP, self.port, 80, self._unacked[seq], seq=seq))
        self.sim.schedule(E2E_RTO, self._check, seq)

    def _check(self, seq: int) -> None:
        if seq in self._unacked:  # never acked: the transport eats a full RTO
            self.timeouts += 1
            self._send(seq)

    def on_ack(self, seq: int) -> None:
        """An end-to-end ack arrived back at the sender."""
        if self._unacked.pop(seq, None) is None:
            return  # duplicate ack
        if not self._unacked and self._next_seq > PACKETS_PER_FLOW:
            self.completed_at = self.sim.now
            self.on_done(self)
        else:
            self._fill_window()


def _build_path(seed: int, corruption: float, protected: bool):
    """h1 — s1 ==(corrupting, optionally protected)== s2 — h2."""
    sim = Simulator()
    topo = Topology(sim)
    h1 = topo.add_host("h1", H1_IP)
    h2 = topo.add_host("h2", H2_IP)
    s1 = topo.add_node(Switch(sim, "s1"))
    s2 = topo.add_node(Switch(sim, "s2"))
    topo.connect(h1, s1)
    lossy: Link = topo.connect(s1, s2, faults=LinkFaultPlan.symmetric(seed, corruption=corruption))
    topo.connect(s2, h2)
    if protected:
        lossy.enable_protection(ProtectionConfig(strict_order=True))
    for switch, forward, backward in ((s1, s2, h1), (s2, h2, s1)):
        switch.install_rule(FlowRule(FlowPattern(nw_dst=H2_IP), [Action.output(switch.port_to(forward))]))
        switch.install_rule(FlowRule(FlowPattern(nw_dst=H1_IP), [Action.output(switch.port_to(backward))]))
    return sim, h1, h2, lossy


def run_config(seed: int, corruption: float, protected: bool) -> dict:
    """Run every flow (sequentially) through one path configuration."""
    sim, h1, h2, lossy = _build_path(seed, corruption, protected)
    flows: list = []
    state: Dict[str, Optional[_ReliableFlow]] = {"active": None}
    delivered_seqs: Dict[int, set] = {}

    def receiver(packet) -> None:
        # h2: record the unique delivery and ack every arrival (dups too —
        # the ack itself may have been the casualty).
        delivered_seqs.setdefault(packet.tp_src, set()).add(packet.seq)
        h2.send(tcp_packet(H2_IP, H1_IP, 80, packet.tp_src, b"", seq=packet.seq))

    def ack_receiver(packet) -> None:
        flow = state["active"]
        if flow is not None and packet.tp_dst == flow.port:
            flow.on_ack(packet.seq)

    h2.on_receive(receiver)
    h1.on_receive(ack_receiver)

    def start_next(finished=None) -> None:
        if finished is not None:
            flows.append(finished)
        if len(flows) < FLOWS:
            state["active"] = _ReliableFlow(sim, h1, 10_000 + len(flows), start_next)

    started = sim.now
    start_next()
    sim.run(until=started + 120.0)
    assert len(flows) == FLOWS, f"only {len(flows)}/{FLOWS} flows completed"

    first_sends = sum(flow.first_sends for flow in flows)
    timeouts = sum(flow.timeouts for flow in flows)
    unique_delivered = sum(len(seqs) for seqs in delivered_seqs.values())
    span = flows[-1].completed_at - started
    summary = summarize(lossy)
    return {
        "fcts": [flow.fct for flow in flows],
        "fct": duration_stats([flow.fct for flow in flows]),
        "effective_loss_rate": timeouts / first_sends,
        "e2e_timeouts": timeouts,
        "goodput_mbps": round(8.0 * unique_delivered * PAYLOAD_BYTES / span / 1e6, 3),
        "wire": {
            "data_frames": summary.sent,
            "lost_on_wire": summary.lost_on_wire,
            "link_retransmits": summary.retransmits,
            "ctrl_frames": summary.ctrl_frames,
            "abandoned": summary.abandoned,
        },
    }


def run_matrix(base_seed: int) -> dict:
    """The full corruption-rate × protection matrix."""
    matrix: dict = {}
    for corruption in CORRUPTION_RATES:
        for protected in (False, True):
            label = f"{corruption:g}/{'protected' if protected else 'unprotected'}"
            matrix[label] = run_config(base_seed, corruption, protected)
    return matrix


def _loss_reduction(matrix: dict, corruption: float) -> float:
    """How many times lower the protected effective loss rate is (inf-safe)."""
    unprotected = matrix[f"{corruption:g}/unprotected"]["effective_loss_rate"]
    protected = matrix[f"{corruption:g}/protected"]["effective_loss_rate"]
    if protected == 0.0:
        return float("inf")
    return unprotected / protected


def _results_payload(matrix: dict, base_seed: int) -> dict:
    configs = {
        label: {key: value for key, value in config.items() if key != "fcts"}
        for label, config in matrix.items()
    }
    reductions = {
        f"{corruption:g}": _loss_reduction(matrix, corruption) for corruption in CORRUPTION_RATES
    }
    return {
        "base_seed": base_seed,
        "workload": {
            "flows": FLOWS,
            "packets_per_flow": PACKETS_PER_FLOW,
            "payload_bytes": PAYLOAD_BYTES,
            "window": WINDOW,
            "e2e_rto_s": E2E_RTO,
        },
        "configs": configs,
        # JSON has no Infinity: a fully repaired run reports the reduction as
        # the (conservative) count of unprotected timeouts it avoided.
        "loss_reduction": {
            rate: (value if value != float("inf") else matrix[f"{rate}/unprotected"]["e2e_timeouts"] * 1.0)
            for rate, value in reductions.items()
        },
        "loss_fully_repaired": {rate: value == float("inf") for rate, value in reductions.items()},
    }


def _print_summary(matrix: dict) -> None:
    print_block(
        format_table(
            f"FCT over a corrupting link ({FLOWS} flows x {PACKETS_PER_FLOW} pkts, RTO {E2E_RTO * 1e3:g} ms)",
            ["config", "fct p50 (ms)", "fct p99 (ms)", "eff. loss", "goodput (Mbps)", "link retx"],
            [
                (
                    label,
                    config["fct"]["p50_ms"],
                    config["fct"]["p99_ms"],
                    f"{config['effective_loss_rate']:.2e}",
                    config["goodput_mbps"],
                    config["wire"]["link_retransmits"],
                )
                for label, config in matrix.items()
            ],
        )
    )


def test_linkguardian_fct_acceptance(once):
    """Protection at 10⁻³ corruption: ≥100× lower effective loss, better p99."""
    matrix = once(run_matrix, DEFAULT_BASE_SEED)
    _print_summary(matrix)
    write_results("linkguardian_fct", _results_payload(matrix, DEFAULT_BASE_SEED))

    unprotected = matrix["0.001/unprotected"]
    protected = matrix["0.001/protected"]
    # The wire genuinely corrupted frames in both runs.
    assert unprotected["wire"]["lost_on_wire"] > 0
    assert protected["wire"]["lost_on_wire"] > 0
    assert protected["wire"]["link_retransmits"] > 0
    assert protected["wire"]["abandoned"] == 0
    # Acceptance: effective end-to-end loss rate drops >= 100x ...
    assert unprotected["effective_loss_rate"] > 0
    assert _loss_reduction(matrix, 1e-3) >= 100.0
    # ... and the FCT tail improves (p99 pays no end-to-end timeouts).
    assert protected["fct"]["p99_ms"] < unprotected["fct"]["p99_ms"]
    assert percentile(protected["fcts"], 99.0) < E2E_RTO + percentile(matrix["0.001/protected"]["fcts"], 50.0)
    # Goodput does not regress when protection is on.
    assert protected["goodput_mbps"] >= unprotected["goodput_mbps"]


def main() -> None:
    """CLI entry point: re-run the matrix with a caller-chosen seed."""
    import argparse

    parser = argparse.ArgumentParser(description="LinkGuardian-style FCT benchmark")
    parser.add_argument("--seed", type=int, default=DEFAULT_BASE_SEED, help="fault-plan seed for every config")
    args = parser.parse_args()
    matrix = run_matrix(args.seed)
    _print_summary(matrix)
    path = write_results("linkguardian_fct", _results_payload(matrix, args.seed))
    print(f"results -> {path}")


if __name__ == "__main__":
    main()
