"""Ablation: linear-scan get vs an indexed per-flow state lookup.

The paper's prototype performs a linear search of the connection table for
every getSupportPerflow, and notes that "techniques used by network switches
for wildcard matches could be adopted for improved performance".  This
ablation compares the default linear-scan store with the indexed store on a
large state table, measuring both the entries scanned (work done) and the
wall-clock time of targeted queries.
"""

from __future__ import annotations

import time

from repro.analysis import format_table, print_block
from repro.core.flowspace import FlowKey, FlowPattern
from repro.core.state import PerFlowStateStore

ENTRIES = 20_000
QUERIES = 200


def _key(index: int) -> FlowKey:
    return FlowKey(6, f"10.{(index // 250) % 200}.{index % 250}.{index % 200 + 1}", "192.0.2.10", 1024 + index % 60000, 80)


def run_query_workload(indexed: bool) -> dict:
    store = PerFlowStateStore(indexed=indexed)
    for index in range(ENTRIES):
        store.put(_key(index), {"index": index})
    store.scan_steps = 0
    started = time.perf_counter()
    matched = 0
    for query in range(QUERIES):
        target = _key(query * 97 % ENTRIES)
        matched += len(store.query(FlowPattern(nw_src=target.nw_src)))
    elapsed = time.perf_counter() - started
    return {"indexed": indexed, "scanned": store.scan_steps, "matched": matched, "seconds": elapsed}


def test_ablation_indexed_get(once):
    def run_both():
        return run_query_workload(False), run_query_workload(True)

    linear, indexed = once(run_both)

    rows = [
        ("linear scan (paper prototype)", ENTRIES, QUERIES, linear["scanned"], round(linear["seconds"] * 1000, 1)),
        ("source-address index (ablation)", ENTRIES, QUERIES, indexed["scanned"], round(indexed["seconds"] * 1000, 1)),
    ]
    print_block(
        format_table(
            "Ablation — per-flow state lookup strategy",
            ["strategy", "state entries", "queries", "entries examined", "wall time (ms)"],
            rows,
        )
    )

    # Both strategies return the same matches; the index examines far fewer entries.
    assert linear["matched"] == indexed["matched"] > 0
    assert indexed["scanned"] < linear["scanned"] / 50
    assert indexed["seconds"] < linear["seconds"]
