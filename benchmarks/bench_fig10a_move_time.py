"""Figure 10(a): controller time per moveInternal vs number of state chunks.

Regenerates the single-operation controller-performance series using the
paper's methodology: "dummy" middleboxes whose only job is to replay
fixed-size state chunks (202 bytes) in response to gets, ACK puts, and
generate a steady stream of small events.  The measured quantity is the
simulated time from issuing moveInternal until it returns, as a function of
the number of chunks moved, with and without events flowing.  Expected shape:
linear growth with the chunk count, and a single-digit-percent overhead when
events are present.

The **mode axis** extends the figure with the iterative pre-copy discipline:
the same move is run under live packet load at increasing rates with
``TransferSpec.default()`` (snapshot) and ``TransferSpec.precopy()``, and the
compared quantity is the *freeze window* — the span during which flows are
marked in-transfer and their events buffer.  Snapshot freezes for the whole
transfer, so the window grows with total state size and event volume; pre-copy
freezes only for the final dirty delta.  The acceptance point requires the
pre-copy window to be at least 2x smaller at the highest traffic rate, with
zero lost updates under loss-free.  Runnable directly:
``python benchmarks/bench_fig10a_move_time.py --mode precopy``.
"""

from __future__ import annotations

from repro.analysis import format_table, print_block
from repro.core import TransferSpec

try:
    from benchmarks.conftest import controller_with_dummies
except ModuleNotFoundError:  # direct execution: python benchmarks/bench_fig10a_move_time.py
    import sys
    from pathlib import Path

    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
    from benchmarks.conftest import controller_with_dummies

#: Per-pair chunk counts (each dummy holds this many supporting + reporting chunks,
#: so a move transfers twice this number of chunks).
CHUNK_COUNTS = (500, 1000, 2000)

#: Event rate used for the "with events" series (events/second of simulated time).
EVENT_RATE = 2000.0

#: Live packet rates (packets/second) for the mode axis (freeze-window series).
TRAFFIC_RATES = (1000.0, 4000.0, 16000.0)

#: Chunk count and traffic duration used for the mode axis.
MODE_CHUNKS = 1000
TRAFFIC_DURATION = 0.25


def run_single_move(chunk_count: int, with_events: bool) -> dict:
    sim, controller, northbound, pairs = controller_with_dummies([chunk_count])
    src, dst = pairs[0]
    if with_events:
        src.generate_events_at_rate(EVENT_RATE, duration=5.0)
    handle = northbound.move_internal(src.name, dst.name, None)
    record = sim.run_until(handle.completed, limit=1000)
    return {
        "chunks": record.chunks_transferred,
        "duration": record.duration,
        "events": record.events_received,
        "bytes": record.bytes_transferred,
    }


def test_fig10a_move_time_vs_chunks(once):
    def run_all():
        results = {}
        for chunk_count in CHUNK_COUNTS:
            results[(chunk_count, False)] = run_single_move(chunk_count, with_events=False)
            results[(chunk_count, True)] = run_single_move(chunk_count, with_events=True)
        return results

    results = once(run_all)

    rows = []
    for chunk_count in CHUNK_COUNTS:
        without = results[(chunk_count, False)]
        with_events = results[(chunk_count, True)]
        overhead = 100.0 * (with_events["duration"] / without["duration"] - 1.0)
        rows.append(
            (
                without["chunks"],
                round(without["duration"] * 1000, 1),
                round(with_events["duration"] * 1000, 1),
                with_events["events"],
                round(overhead, 1),
            )
        )
    print_block(
        format_table(
            "Figure 10(a) — time per moveInternal vs state chunks (dummy middleboxes, 202-byte chunks)",
            ["chunks moved", "w/o events (ms)", "with events (ms)", "events processed", "event overhead (%)"],
            rows,
        )
    )

    durations = [results[(count, False)]["duration"] for count in CHUNK_COUNTS]
    # Linear growth with the number of chunks.
    assert durations[0] < durations[1] < durations[2]
    assert 1.5 < durations[2] / durations[1] < 2.6
    # Events add overhead, but only a modest fraction (the paper reports at most ~9%).
    for chunk_count in CHUNK_COUNTS:
        without = results[(chunk_count, False)]["duration"]
        with_events = results[(chunk_count, True)]["duration"]
        assert with_events >= without
        assert with_events <= without * 1.30


# =========================================================================================
# Mode axis: snapshot vs iterative pre-copy under live packet load
# =========================================================================================


def run_move_under_load(mode: str, rate: float, *, chunk_count: int = MODE_CHUNKS) -> dict:
    """One loss-free move while live packets keep updating the source's flows.

    Returns the operation's freeze window, per-round stats, and an update
    conservation check: every packet counted at the source must survive at
    the source or the destination once the move finalizes (zero lost updates).
    """
    spec = TransferSpec.precopy() if mode == "precopy" else TransferSpec.default()
    sim, controller, northbound, pairs = controller_with_dummies([chunk_count])
    src, dst = pairs[0]
    injected = src.drive_traffic_at_rate(rate, TRAFFIC_DURATION)
    handle = northbound.move_internal(src.name, dst.name, None, spec=spec)
    record = sim.run_until(handle.finalized, limit=1000)
    sim.run(until=sim.now + 0.5)  # let late replays and deletes settle
    counted = sum(rec.get("packets", 0) for _, rec in src.support_store.items())
    counted += sum(rec.get("packets", 0) for _, rec in dst.support_store.items())
    return {
        "mode": record.mode,
        "duration": record.duration,
        "freeze_window": record.freeze_window,
        "chunks": record.chunks_transferred,
        "rounds": record.precopy_rounds,
        "events": record.events_received,
        "events_buffered": record.events_buffered,
        "updates_lost": injected - counted,
    }


def test_fig10a_precopy_freeze_window(once):
    """Pre-copy shrinks the freeze window >=2x at the highest rate, losing nothing."""

    def run_all():
        return {
            (mode, rate): run_move_under_load(mode, rate)
            for mode in ("snapshot", "precopy")
            for rate in TRAFFIC_RATES
        }

    results = once(run_all)

    rows = []
    for rate in TRAFFIC_RATES:
        snap = results[("snapshot", rate)]
        pre = results[("precopy", rate)]
        rows.append(
            (
                int(rate),
                round(snap["freeze_window"] * 1000, 2),
                round(pre["freeze_window"] * 1000, 2),
                round(snap["freeze_window"] / pre["freeze_window"], 1),
                pre["rounds"],
                pre["chunks"] - snap["chunks"],
                snap["updates_lost"],
                pre["updates_lost"],
            )
        )
    print_block(
        format_table(
            f"Figure 10(a) mode axis — freeze window under load ({2 * MODE_CHUNKS} chunks, loss-free)",
            [
                "pkts/s",
                "snapshot freeze (ms)",
                "precopy freeze (ms)",
                "shrink (x)",
                "precopy rounds",
                "chunks resent",
                "lost (snap)",
                "lost (pre)",
            ],
            rows,
        )
    )

    for rate in TRAFFIC_RATES:
        # Loss-free must not lose a single update in either mode.
        assert results[("snapshot", rate)]["updates_lost"] == 0
        assert results[("precopy", rate)]["updates_lost"] == 0
    # The acceptance point: >=2x smaller freeze window at the highest rate.
    top = max(TRAFFIC_RATES)
    assert results[("precopy", top)]["freeze_window"] * 2 <= results[("snapshot", top)]["freeze_window"]
    # Pre-copy pays for the shrink with resent chunks (the documented trade).
    assert results[("precopy", top)]["chunks"] >= results[("snapshot", top)]["chunks"]


def main() -> None:
    """CLI entry point: run the freeze-window series for one mode (``--mode``)."""
    import argparse

    parser = argparse.ArgumentParser(description="Move freeze window under load, snapshot vs pre-copy")
    parser.add_argument("--mode", default="precopy", choices=["snapshot", "precopy", "both"])
    parser.add_argument("--chunks", type=int, default=MODE_CHUNKS, help="per-role chunks at the source")
    args = parser.parse_args()
    modes = ["snapshot", "precopy"] if args.mode == "both" else [args.mode]
    rows = []
    for mode in modes:
        for rate in TRAFFIC_RATES:
            result = run_move_under_load(mode, rate, chunk_count=args.chunks)
            rows.append(
                (
                    result["mode"],
                    int(rate),
                    round(result["duration"] * 1000, 2),
                    round(result["freeze_window"] * 1000, 2),
                    result["rounds"],
                    result["chunks"],
                    result["events_buffered"],
                    result["updates_lost"],
                )
            )
    print_block(
        format_table(
            f"moveInternal under load ({2 * args.chunks} chunks, loss-free)",
            ["mode", "pkts/s", "move (ms)", "freeze (ms)", "rounds", "chunks", "events buffered", "lost"],
            rows,
        )
    )


if __name__ == "__main__":
    main()
