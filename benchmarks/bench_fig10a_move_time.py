"""Figure 10(a): controller time per moveInternal vs number of state chunks.

Regenerates the single-operation controller-performance series using the
paper's methodology: "dummy" middleboxes whose only job is to replay
fixed-size state chunks (202 bytes) in response to gets, ACK puts, and
generate a steady stream of small events.  The measured quantity is the
simulated time from issuing moveInternal until it returns, as a function of
the number of chunks moved, with and without events flowing.  Expected shape:
linear growth with the chunk count, and a single-digit-percent overhead when
events are present.
"""

from __future__ import annotations

from repro.analysis import format_table, print_block
from benchmarks.conftest import controller_with_dummies

#: Per-pair chunk counts (each dummy holds this many supporting + reporting chunks,
#: so a move transfers twice this number of chunks).
CHUNK_COUNTS = (500, 1000, 2000)

#: Event rate used for the "with events" series (events/second of simulated time).
EVENT_RATE = 2000.0


def run_single_move(chunk_count: int, with_events: bool) -> dict:
    sim, controller, northbound, pairs = controller_with_dummies([chunk_count])
    src, dst = pairs[0]
    if with_events:
        src.generate_events_at_rate(EVENT_RATE, duration=5.0)
    handle = northbound.move_internal(src.name, dst.name, None)
    record = sim.run_until(handle.completed, limit=1000)
    return {
        "chunks": record.chunks_transferred,
        "duration": record.duration,
        "events": record.events_received,
        "bytes": record.bytes_transferred,
    }


def test_fig10a_move_time_vs_chunks(once):
    def run_all():
        results = {}
        for chunk_count in CHUNK_COUNTS:
            results[(chunk_count, False)] = run_single_move(chunk_count, with_events=False)
            results[(chunk_count, True)] = run_single_move(chunk_count, with_events=True)
        return results

    results = once(run_all)

    rows = []
    for chunk_count in CHUNK_COUNTS:
        without = results[(chunk_count, False)]
        with_events = results[(chunk_count, True)]
        overhead = 100.0 * (with_events["duration"] / without["duration"] - 1.0)
        rows.append(
            (
                without["chunks"],
                round(without["duration"] * 1000, 1),
                round(with_events["duration"] * 1000, 1),
                with_events["events"],
                round(overhead, 1),
            )
        )
    print_block(
        format_table(
            "Figure 10(a) — time per moveInternal vs state chunks (dummy middleboxes, 202-byte chunks)",
            ["chunks moved", "w/o events (ms)", "with events (ms)", "events processed", "event overhead (%)"],
            rows,
        )
    )

    durations = [results[(count, False)]["duration"] for count in CHUNK_COUNTS]
    # Linear growth with the number of chunks.
    assert durations[0] < durations[1] < durations[2]
    assert 1.5 < durations[2] / durations[1] < 2.6
    # Events add overhead, but only a modest fraction (the paper reports at most ~9%).
    for chunk_count in CHUNK_COUNTS:
        without = results[(chunk_count, False)]["duration"]
        with_events = results[(chunk_count, True)]["duration"]
        assert with_events >= without
        assert with_events <= without * 1.30
