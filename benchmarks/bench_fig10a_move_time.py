"""Figure 10(a): controller time per moveInternal vs number of state chunks.

Regenerates the single-operation controller-performance series using the
paper's methodology: "dummy" middleboxes whose only job is to replay
fixed-size state chunks (202 bytes) in response to gets, ACK puts, and
generate a steady stream of small events.  The measured quantity is the
simulated time from issuing moveInternal until it returns, as a function of
the number of chunks moved, with and without events flowing.  Expected shape:
linear growth with the chunk count, and a single-digit-percent overhead when
events are present.

The **mode axis** extends the figure with the iterative pre-copy discipline:
the same move is run under live packet load at increasing rates with
``TransferSpec.default()`` (snapshot) and ``TransferSpec.precopy()``, and the
compared quantity is the *freeze window* — the span during which flows are
marked in-transfer and their events buffer.  Snapshot freezes for the whole
transfer, so the window grows with total state size and event volume; pre-copy
freezes only for the final dirty delta.  The acceptance point requires the
pre-copy window to be at least 2x smaller at the highest traffic rate, with
zero lost updates under loss-free.  Runnable directly:
``python benchmarks/bench_fig10a_move_time.py --mode precopy``.
"""

from __future__ import annotations

from repro.analysis import format_table, print_block
from repro.core import TransferSpec

try:
    from benchmarks.conftest import controller_with_dummies
    from benchmarks._results import write_results
except ModuleNotFoundError:  # direct execution: python benchmarks/bench_fig10a_move_time.py
    import sys
    from pathlib import Path

    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
    from benchmarks.conftest import controller_with_dummies
    from benchmarks._results import write_results

#: Per-pair chunk counts (each dummy holds this many supporting + reporting chunks,
#: so a move transfers twice this number of chunks).
CHUNK_COUNTS = (500, 1000, 2000)

#: Event rate used for the "with events" series (events/second of simulated time).
EVENT_RATE = 2000.0

#: Live packet rates (packets/second) for the mode axis (freeze-window series).
TRAFFIC_RATES = (1000.0, 4000.0, 16000.0)

#: Chunk count and traffic duration used for the mode axis.
MODE_CHUNKS = 1000
TRAFFIC_DURATION = 0.25


def run_single_move(chunk_count: int, with_events: bool) -> dict:
    sim, controller, northbound, pairs = controller_with_dummies([chunk_count])
    src, dst = pairs[0]
    if with_events:
        src.generate_events_at_rate(EVENT_RATE, duration=5.0)
    handle = northbound.move_internal(src.name, dst.name, None)
    record = sim.run_until(handle.completed, limit=1000)
    return {
        "chunks": record.chunks_transferred,
        "duration": record.duration,
        "events": record.events_received,
        "bytes": record.bytes_transferred,
    }


def test_fig10a_move_time_vs_chunks(once):
    def run_all():
        results = {}
        for chunk_count in CHUNK_COUNTS:
            results[(chunk_count, False)] = run_single_move(chunk_count, with_events=False)
            results[(chunk_count, True)] = run_single_move(chunk_count, with_events=True)
        return results

    results = once(run_all)

    rows = []
    for chunk_count in CHUNK_COUNTS:
        without = results[(chunk_count, False)]
        with_events = results[(chunk_count, True)]
        overhead = 100.0 * (with_events["duration"] / without["duration"] - 1.0)
        rows.append(
            (
                without["chunks"],
                round(without["duration"] * 1000, 1),
                round(with_events["duration"] * 1000, 1),
                with_events["events"],
                round(overhead, 1),
            )
        )
    print_block(
        format_table(
            "Figure 10(a) — time per moveInternal vs state chunks (dummy middleboxes, 202-byte chunks)",
            ["chunks moved", "w/o events (ms)", "with events (ms)", "events processed", "event overhead (%)"],
            rows,
        )
    )

    durations = [results[(count, False)]["duration"] for count in CHUNK_COUNTS]
    # Linear growth with the number of chunks.
    assert durations[0] < durations[1] < durations[2]
    assert 1.5 < durations[2] / durations[1] < 2.6
    # Events add overhead, but only a modest fraction (the paper reports at most ~9%).
    for chunk_count in CHUNK_COUNTS:
        without = results[(chunk_count, False)]["duration"]
        with_events = results[(chunk_count, True)]["duration"]
        assert with_events >= without
        assert with_events <= without * 1.30


# =========================================================================================
# Mode axis: snapshot vs iterative pre-copy under live packet load
# =========================================================================================


def run_move_under_load(mode: str, rate: float, *, chunk_count: int = MODE_CHUNKS) -> dict:
    """One loss-free move while live packets keep updating the source's flows.

    Returns the operation's freeze window, per-round stats, and an update
    conservation check: every packet counted at the source must survive at
    the source or the destination once the move finalizes (zero lost updates).
    """
    spec = TransferSpec.precopy() if mode == "precopy" else TransferSpec.default()
    sim, controller, northbound, pairs = controller_with_dummies([chunk_count])
    src, dst = pairs[0]
    injected = src.drive_traffic_at_rate(rate, TRAFFIC_DURATION)
    handle = northbound.move_internal(src.name, dst.name, None, spec=spec)
    record = sim.run_until(handle.finalized, limit=1000)
    sim.run(until=sim.now + 0.5)  # let late replays and deletes settle
    counted = sum(rec.get("packets", 0) for _, rec in src.support_store.items())
    counted += sum(rec.get("packets", 0) for _, rec in dst.support_store.items())
    return {
        "mode": record.mode,
        "duration": record.duration,
        "freeze_window": record.freeze_window,
        "chunks": record.chunks_transferred,
        "rounds": record.precopy_rounds,
        "events": record.events_received,
        "events_buffered": record.events_buffered,
        "updates_lost": injected - counted,
    }


def test_fig10a_precopy_freeze_window(once):
    """Pre-copy shrinks the freeze window >=2x at the highest rate, losing nothing."""

    def run_all():
        return {
            (mode, rate): run_move_under_load(mode, rate)
            for mode in ("snapshot", "precopy")
            for rate in TRAFFIC_RATES
        }

    results = once(run_all)

    rows = []
    for rate in TRAFFIC_RATES:
        snap = results[("snapshot", rate)]
        pre = results[("precopy", rate)]
        rows.append(
            (
                int(rate),
                round(snap["freeze_window"] * 1000, 2),
                round(pre["freeze_window"] * 1000, 2),
                round(snap["freeze_window"] / pre["freeze_window"], 1),
                pre["rounds"],
                pre["chunks"] - snap["chunks"],
                snap["updates_lost"],
                pre["updates_lost"],
            )
        )
    print_block(
        format_table(
            f"Figure 10(a) mode axis — freeze window under load ({2 * MODE_CHUNKS} chunks, loss-free)",
            [
                "pkts/s",
                "snapshot freeze (ms)",
                "precopy freeze (ms)",
                "shrink (x)",
                "precopy rounds",
                "chunks resent",
                "lost (snap)",
                "lost (pre)",
            ],
            rows,
        )
    )

    for rate in TRAFFIC_RATES:
        # Loss-free must not lose a single update in either mode.
        assert results[("snapshot", rate)]["updates_lost"] == 0
        assert results[("precopy", rate)]["updates_lost"] == 0
    # The acceptance point: >=2x smaller freeze window at the highest rate.
    top = max(TRAFFIC_RATES)
    assert results[("precopy", top)]["freeze_window"] * 2 <= results[("snapshot", top)]["freeze_window"]
    # Pre-copy pays for the shrink with resent chunks (the documented trade).
    assert results[("precopy", top)]["chunks"] >= results[("snapshot", top)]["chunks"]


# =========================================================================================
# Flow-scale axis: freeze window and accounted memory from 10k to a million flows
# =========================================================================================

#: Flow counts of the scale series (the CI ``scale`` job runs all three; the
#: committed ``BENCH_fig10a_flowscale.json`` is regenerated with ``--flows``).
FLOW_SCALE_COUNTS = (10_000, 100_000, 1_000_000)

#: Hot-set load during the scale series: a fixed flow pool so the dirty set —
#: and therefore the pre-copy freeze window — does not grow with store size.
SCALE_HOT_FLOWS = 64
SCALE_TRAFFIC_RATE = 16_000.0
SCALE_TRAFFIC_DURATION = 0.04


def run_move_at_scale(flow_count: int) -> dict:
    """One loss-free pre-copy move of *flow_count* small supporting entries.

    Unlike :func:`run_single_move` the source is populated directly with
    minimal payloads (no 202-byte filler, supporting role only), so the series
    measures the state engine — sharded dirty tracking, streamed export,
    byte-accounted stores — rather than payload serialisation volume.
    """
    sim, controller, northbound, pairs = controller_with_dummies(
        [0], quiescence=0.05, per_message_cost=1e-6
    )
    src, dst = pairs[0]
    for index in range(flow_count):
        src.support_store.put(src.flow_key_for(index), {"index": index, "packets": 0})
    pre = src.support_store.memory_stats()
    injected = src.drive_traffic_at_rate(
        SCALE_TRAFFIC_RATE, SCALE_TRAFFIC_DURATION, flows=SCALE_HOT_FLOWS
    )
    handle = northbound.move_internal(
        src.name, dst.name, None, spec=TransferSpec.precopy(batch_size=512)
    )
    record = sim.run_until(handle.finalized, limit=10_000)
    sim.run(until=sim.now + 0.5)
    counted = sum(rec.get("packets", 0) for _, rec in src.support_store.items())
    counted += sum(rec.get("packets", 0) for _, rec in dst.support_store.items())
    src_peak = src.support_store.memory_stats().peak_total_bytes
    dst_stats = dst.support_store.memory_stats()
    return {
        "flows": flow_count,
        "duration_ms": round(record.duration * 1000, 3),
        "freeze_ms": round(record.freeze_window * 1000, 4),
        "chunks": record.chunks_transferred,
        "rounds": record.precopy_rounds,
        "resident_bytes": pre.total_bytes,
        "peak_bytes": src_peak,
        "peak_over_resident": round(src_peak / pre.total_bytes, 3),
        "dst_peak_over_resident": round(
            dst_stats.peak_total_bytes / max(1, dst_stats.total_bytes), 3
        ),
        "updates_lost": injected - counted,
    }


def flowscale_series(counts=FLOW_SCALE_COUNTS, *, persist: bool = True) -> dict:
    """Run the flow-scale series and persist ``BENCH_fig10a_flowscale.json``."""
    series = [run_move_at_scale(count) for count in counts]
    base = series[0]
    payload = {
        "figure": "10a-flowscale",
        "workload": {
            "mode": "precopy",
            "guarantee": "loss_free",
            "hot_flows": SCALE_HOT_FLOWS,
            "traffic_rate_pps": SCALE_TRAFFIC_RATE,
        },
        "series": series,
        "freeze_flatness": {
            "baseline_flows": base["flows"],
            "max_ratio": round(
                max(point["freeze_ms"] / base["freeze_ms"] for point in series), 4
            ),
            "min_ratio": round(
                min(point["freeze_ms"] / base["freeze_ms"] for point in series), 4
            ),
        },
    }
    if persist:
        write_results("fig10a_flowscale", payload)
    return payload


def test_fig10a_flowscale_freeze_window_flat(once):
    """Freeze stays flat (±20%) and peak accounted memory < 2x resident.

    The default (tier-1) run covers only the 10k point (keeping the fast
    suite fast); the full series through one million flows — and the refresh
    of the committed JSON — runs in the CI ``scale`` job with ``RUN_SLOW=1``.
    """
    import os

    full = bool(os.environ.get("RUN_SLOW"))
    counts = FLOW_SCALE_COUNTS if full else FLOW_SCALE_COUNTS[:1]
    payload = once(flowscale_series, counts, persist=full)

    rows = [
        (
            point["flows"],
            point["freeze_ms"],
            point["duration_ms"],
            point["chunks"],
            point["peak_over_resident"],
            point["updates_lost"],
        )
        for point in payload["series"]
    ]
    print_block(
        format_table(
            "Figure 10(a) flow-scale axis — pre-copy freeze window vs store size (loss-free)",
            ["flows", "freeze (ms)", "move (ms)", "chunks", "peak/resident", "lost"],
            rows,
        )
    )
    base = payload["series"][0]
    for point in payload["series"]:
        assert point["updates_lost"] == 0
        assert 0.8 <= point["freeze_ms"] / base["freeze_ms"] <= 1.2
        assert point["peak_over_resident"] < 2.0
        assert point["dst_peak_over_resident"] <= 2.0


def main() -> None:
    """CLI entry point: run the freeze-window series for one mode (``--mode``)."""
    import argparse

    parser = argparse.ArgumentParser(description="Move freeze window under load, snapshot vs pre-copy")
    parser.add_argument("--mode", default="precopy", choices=["snapshot", "precopy", "both"])
    parser.add_argument("--chunks", type=int, default=MODE_CHUNKS, help="per-role chunks at the source")
    parser.add_argument(
        "--flows",
        type=str,
        default=None,
        help="comma-separated flow counts: run the flow-scale axis instead and "
        "persist BENCH_fig10a_flowscale.json (e.g. --flows 10000,100000,1000000)",
    )
    args = parser.parse_args()
    if args.flows:
        counts = tuple(int(item) for item in args.flows.split(","))
        payload = flowscale_series(counts)
        rows = [
            (
                point["flows"],
                point["freeze_ms"],
                point["duration_ms"],
                point["chunks"],
                point["peak_over_resident"],
                point["updates_lost"],
            )
            for point in payload["series"]
        ]
        print_block(
            format_table(
                "Flow-scale axis — pre-copy freeze window vs store size (loss-free)",
                ["flows", "freeze (ms)", "move (ms)", "chunks", "peak/resident", "lost"],
                rows,
            )
        )
        return
    modes = ["snapshot", "precopy"] if args.mode == "both" else [args.mode]
    rows = []
    for mode in modes:
        for rate in TRAFFIC_RATES:
            result = run_move_under_load(mode, rate, chunk_count=args.chunks)
            rows.append(
                (
                    result["mode"],
                    int(rate),
                    round(result["duration"] * 1000, 2),
                    round(result["freeze_window"] * 1000, 2),
                    result["rounds"],
                    result["chunks"],
                    result["events_buffered"],
                    result["updates_lost"],
                )
            )
    print_block(
        format_table(
            f"moveInternal under load ({2 * args.chunks} chunks, loss-free)",
            ["mode", "pkts/s", "move (ms)", "freeze (ms)", "rounds", "chunks", "events buffered", "lost"],
            rows,
        )
    )


if __name__ == "__main__":
    main()
