"""Regression tests for cross-operation event coordination.

The seed had a replay-suppression bug: when a move and a clone/merge shared
the same src->dst pair, the clone/merge flushed buffered events at its own
completion — possibly *before* the move's put for the affected flow was
ACKed — and the global (event, destination) replay dedup then suppressed the
move's later replay, so the arriving chunk silently overwrote the update.

The fix has two halves, both covered here:

* clone/merge operations only handle events whose packet updated *shared*
  state in transfer (a pure per-flow event is the concurrent move's job);
* the controller's replay dedup is sequence-token based: PUT and REPROCESS
  messages carry tokens from one monotonic counter, and a replay is re-issued
  (per-flow component only) when a chunk for the event's flow was installed
  after the event's last replay.
"""


from repro.core import ControllerConfig, MBController, NorthboundAPI
from repro.middleboxes import PassiveMonitor
from repro.net import tcp_packet


def make_pair(sim, quiescence=0.2):
    controller = MBController(sim, ControllerConfig(quiescence_timeout=quiescence))
    northbound = NorthboundAPI(controller)
    src = PassiveMonitor(sim, "coord-src")
    dst = PassiveMonitor(sim, "coord-dst")
    controller.register(src)
    controller.register(dst)
    return controller, northbound, src, dst


def feed(sim, mb, count, *, spacing=0.001, flows=8, start=0.0):
    for index in range(count):
        packet = tcp_packet(
            f"10.0.0.{index % flows + 1}", "192.0.2.10", 1000 + index % flows, 80, b"payload"
        )
        sim.schedule(start + spacing * index, mb.receive, packet, 1)


class TestInterleavedMoveAndClone:
    """The ROADMAP open item: a concurrent clone flush must not suppress a
    same-destination move's replay."""

    def test_interleaved_move_clone_suppresses_no_replays(self, sim):
        controller, northbound, src, dst = make_pair(sim)
        feed(sim, src, 40, spacing=0.0)
        sim.run(until=0.05)
        packets_before = sum(rec.packets for _, rec in src.report_store.items())

        # The monitor has no shared *supporting* state, so the clone completes
        # almost immediately — in the seed this is the worst case: every event
        # the move buffers is flushed early by the clone, poisoning the dedup.
        move = northbound.move_internal("coord-src", "coord-dst", None)
        clone = northbound.clone_support("coord-src", "coord-dst")
        feed(sim, src, 40, spacing=0.0005)
        sim.run_until(move.finalized, limit=100)
        sim.run(until=sim.now + 1.0)

        # Zero suppressed replays: every re-process event the move received
        # was replayed at the destination.
        assert move.record.events_received > 0
        assert move.record.events_forwarded == move.record.events_received
        assert clone.completed.done
        # Conservation: every packet update survived the transfer (the bug
        # manifested as chunk-overwritten replays, i.e. lost updates).
        packets_after = sum(rec.packets for _, rec in dst.report_store.items())
        packets_after += sum(rec.packets for _, rec in src.report_store.items())
        assert packets_after == packets_before + 40

    def test_clone_ignores_pure_perflow_events(self, sim):
        controller, northbound, src, dst = make_pair(sim)
        feed(sim, src, 20, spacing=0.0)
        sim.run(until=0.05)
        move = northbound.move_internal("coord-src", "coord-dst", None)
        clone = northbound.clone_support("coord-src", "coord-dst")
        feed(sim, src, 20, spacing=0.0005)
        sim.run_until(move.completed, limit=100)
        sim.run(until=sim.now + 1.0)
        # The monitor's shared supporting slot is empty, so no shared transfer
        # was marked: every event is per-flow-only and none belongs to the clone.
        assert clone.record.events_received == 0
        assert clone.record.events_forwarded == 0
        assert move.record.events_forwarded == move.record.events_received

    def test_interleaved_move_merge_conserves_updates(self, sim):
        """The merge variant: dual (per-flow + shared) events replay once per
        state component, and the per-flow component is re-replayed when a
        later chunk overwrote it."""
        controller, northbound, src, dst = make_pair(sim)
        feed(sim, src, 40, spacing=0.0)
        sim.run(until=0.05)
        packets_before = sum(rec.packets for _, rec in src.report_store.items())

        move = northbound.move_internal("coord-src", "coord-dst", None)
        merge = northbound.merge_internal("coord-src", "coord-dst")
        feed(sim, src, 40, spacing=0.0005)
        sim.run_until(move.finalized, limit=100)
        sim.run(until=sim.now + 1.0)

        assert move.record.events_forwarded == move.record.events_received
        packets_after = sum(rec.packets for _, rec in dst.report_store.items())
        packets_after += sum(rec.packets for _, rec in src.report_store.items())
        assert packets_after == packets_before + 40
        # Replays are bounded: at most one per event per state component.
        raised = src.counters.reprocess_events_raised
        assert dst.counters.reprocessed_packets <= 2 * raised


class TestSequenceTokens:
    def test_forward_event_still_idempotent_without_new_install(self, sim):
        from repro.middleboxes import DummyMiddlebox

        controller = MBController(sim, ControllerConfig(quiescence_timeout=0.2))
        src = DummyMiddlebox(sim, "s", chunk_count=1)
        dst = DummyMiddlebox(sim, "d")
        controller.register(src)
        controller.register(dst)
        event = src.generate_reprocess_event(0)
        assert controller.forward_event("d", event) == "sent"
        assert controller.forward_event("d", event) == "covered"

    def test_forward_event_reissued_after_state_install(self, sim):
        from repro.middleboxes import DummyMiddlebox

        controller = MBController(sim, ControllerConfig(quiescence_timeout=0.2))
        src = DummyMiddlebox(sim, "s", chunk_count=1)
        dst = DummyMiddlebox(sim, "d")
        controller.register(src)
        controller.register(dst)
        event = src.generate_reprocess_event(0)
        assert controller.forward_event("d", event) == "sent"
        sim.run(until=sim.now + 1.0)  # drain the replay's ACK
        # A chunk for the event's flow lands at the destination afterwards:
        # it overwrote the replayed update, so the replay must be re-issued.
        controller.note_perflow_installed("d", [event.key.bidirectional()])
        assert controller.forward_event("d", event) == "sent"
        # ... but only once per install.
        sim.run(until=sim.now + 1.0)
        assert controller.forward_event("d", event) == "covered"

    def test_forward_event_defers_while_replay_in_flight(self, sim):
        """An install ACKed while a replay is still on the wire was applied
        *before* that replay (one FIFO ACK channel), so it did not overwrite
        the replay and no re-issue may happen — that was a double apply."""
        from repro.middleboxes import DummyMiddlebox

        controller = MBController(sim, ControllerConfig(quiescence_timeout=0.2))
        src = DummyMiddlebox(sim, "s", chunk_count=1)
        dst = DummyMiddlebox(sim, "d")
        controller.register(src)
        controller.register(dst)
        event = src.generate_reprocess_event(0)
        assert controller.forward_event("d", event) == "sent"
        # The replay has not ACKed yet; an install stamped now happened first.
        controller.note_perflow_installed("d", [event.key.bidirectional()])
        assert controller.forward_event("d", event) == "covered"

    def test_put_and_reprocess_messages_carry_sequence_tokens(self, sim):
        controller, northbound, src, dst = make_pair(sim)
        captured = []
        original_send = controller.send

        def spy(mb_name, message, on_reply=None, **kwargs):
            if message.type in ("put_perflow", "reprocess_packet"):
                captured.append((message.type, message.body.get("seq")))
            return original_send(mb_name, message, on_reply=on_reply, **kwargs)

        controller.send = spy
        feed(sim, src, 20, spacing=0.0)
        sim.run(until=0.05)
        handle = northbound.move_internal("coord-src", "coord-dst", None)
        feed(sim, src, 20, spacing=0.0005)
        sim.run_until(handle.completed, limit=100)
        puts = [seq for kind, seq in captured if kind == "put_perflow"]
        replays = [seq for kind, seq in captured if kind == "reprocess_packet"]
        assert puts and all(seq is not None for seq in puts)
        assert replays and all(seq is not None for seq in replays)
        # One monotonic counter orders installs against replays.
        everything = [seq for _, seq in captured]
        assert everything == sorted(everything)

    def test_install_tokens_pruned_with_operation(self, sim):
        controller, northbound, src, dst = make_pair(sim)
        feed(sim, src, 20, spacing=0.0)
        sim.run(until=0.05)
        handle = northbound.move_internal("coord-src", "coord-dst", None)
        feed(sim, src, 10, spacing=0.0005)
        sim.run_until(handle.finalized, limit=100)
        sim.run(until=sim.now + 1.0)
        assert len(controller._forwarded_events) == 0
        assert len(controller._installed_state) == 0
