"""Multi-controller federation: gossip, election, directory, WAN moves.

Covers the federation tentpole end to end with fixed seeds throughout:

* gossip primitives — digest merge idempotence/commutativity, deterministic
  tie-breaking, TTL tombstone expiry, fanout bounds;
* the rendezvous takeover election (pure function of the membership view);
* the versioned flow-ownership directory (canonical bidirectional tokens);
* 3-domain convergence within a deterministic round bound;
* domain death -> gossip-elected takeover with zero lost per-flow state;
* cross-domain moves over an asymmetric FaultPlan with adaptive WAN pacing;
* ``ControllerStats.merge`` algebra;
* the ``num_domains=1`` golden equivalence: one federated domain reproduces
  the pre-federation controller bit for bit (same pattern as
  ``tests/test_sharding.py``'s single-shard golden numbers).
"""

from __future__ import annotations

import itertools
import random

import pytest

from repro.core import ControllerConfig, FlowPattern, MBController, NorthboundAPI
from repro.core.channel import FaultPlan, FaultProfile
from repro.core.errors import SpecError
from repro.core.southbound import ProcessingCosts
from repro.core.stats import ControllerStats
from repro.core.transfer import TransferSpec
from repro.federation import (
    Federation,
    FederationConfig,
    GossipConfig,
    OwnershipDirectory,
    VersionedMap,
    choose_peers,
    elect_successor,
    ranked_successors,
    takeover_score,
)
from repro.middleboxes import DummyMiddlebox
from repro.net import Simulator, tcp_packet
from repro.testing import ChaosMiddlebox


# =========================================================================================
# Gossip primitives
# =========================================================================================


class TestVersionedMap:
    def _digest_of(self, *entries):
        return [{"key": k, "origin": o, "version": v, "value": dict(val)} for k, o, v, val in entries]

    def test_merge_is_idempotent(self):
        target = VersionedMap()
        digest = self._digest_of(("a", "dc0", 2, {"alive": True}), ("b", "dc1", 1, {"alive": False}))
        assert sorted(target.merge(digest, now=1.0)) == ["a", "b"]
        before = target.fingerprint()
        assert target.merge(digest, now=2.0) == []  # re-merge: no winners change
        assert target.fingerprint() == before

    def test_merge_is_commutative(self):
        d1 = self._digest_of(("a", "dc0", 2, {"alive": True}), ("b", "dc2", 5, {"alive": True}))
        d2 = self._digest_of(("a", "dc1", 3, {"alive": False}), ("b", "dc1", 5, {"alive": False}))
        forward, backward = VersionedMap(), VersionedMap()
        forward.merge(d1, 1.0)
        forward.merge(d2, 2.0)
        backward.merge(d2, 1.0)
        backward.merge(d1, 2.0)
        assert forward.fingerprint() == backward.fingerprint()

    def test_equal_versions_break_ties_towards_the_smaller_origin(self):
        left, right = VersionedMap(), VersionedMap()
        entry_a = self._digest_of(("k", "dc0", 7, {"alive": True}))
        entry_b = self._digest_of(("k", "dc1", 7, {"alive": False}))
        left.merge(entry_a, 1.0)
        left.merge(entry_b, 2.0)
        right.merge(entry_b, 1.0)
        right.merge(entry_a, 2.0)
        assert left.fingerprint() == right.fingerprint()
        assert left.get("k").origin == "dc0"  # smaller origin wins the tie

    def test_put_bumps_the_version_monotonically(self):
        versioned = VersionedMap()
        assert versioned.put("k", "dc0", {"alive": True}, 0.0).version == 1
        assert versioned.put("k", "dc1", {"alive": False}, 1.0).version == 2

    def test_ttl_expires_only_unrefreshed_tombstones(self):
        versioned = VersionedMap()
        versioned.put("live", "dc0", {"alive": True}, 0.0)
        versioned.put("dead", "dc0", {"alive": False}, 0.0)
        assert versioned.expire(now=0.1, ttl=0.25) == []
        assert versioned.expire(now=0.3, ttl=0.25) == ["dead"]
        assert "live" in versioned and "dead" not in versioned

    def test_exact_re_receipt_refreshes_the_tombstone_stamp(self):
        versioned = VersionedMap()
        versioned.put("dead", "dc0", {"alive": False}, 0.0)
        digest = versioned.digest()
        versioned.merge(digest, now=0.2)  # same (version, origin): refresh only
        assert versioned.expire(now=0.4, ttl=0.25) == []  # stamp moved to 0.2
        assert versioned.expire(now=0.5, ttl=0.25) == ["dead"]


class TestChoosePeers:
    def test_respects_the_fanout_bound(self):
        rng = random.Random(7)
        peers = [f"dc{i}" for i in range(8)]
        for _ in range(50):
            chosen = choose_peers(rng, peers, fanout=3)
            assert len(chosen) == 3
            assert set(chosen) <= set(peers)

    def test_returns_everyone_when_fanout_covers_the_peer_set(self):
        assert choose_peers(random.Random(1), ["b", "a"], fanout=5) == ["a", "b"]

    def test_draws_are_deterministic_for_a_fixed_seed(self):
        peers = [f"dc{i}" for i in range(6)]
        first = [choose_peers(random.Random(42), peers, 2) for _ in range(1)]
        second = [choose_peers(random.Random(42), peers, 2) for _ in range(1)]
        assert first == second

    def test_gossip_config_validates_its_tunables(self):
        with pytest.raises(ValueError):
            GossipConfig(fanout=0)
        with pytest.raises(ValueError):
            GossipConfig(interval=0.0)
        with pytest.raises(ValueError):
            GossipConfig(ttl=-1.0)


# =========================================================================================
# Rendezvous election
# =========================================================================================


class TestElection:
    def test_every_converged_view_elects_the_same_unique_winner(self):
        candidates = ["dc0", "dc1", "dc3"]
        winner = elect_successor("dc2", candidates)
        assert winner in candidates
        for shuffled in itertools.permutations(candidates):
            assert elect_successor("dc2", list(shuffled)) == winner

    def test_the_dead_domain_never_elects_itself(self):
        assert elect_successor("dc2", ["dc2"]) is None
        assert elect_successor("dc2", []) is None
        assert elect_successor("dc2", ["dc2", "dc0"]) == "dc0"

    def test_ranked_successors_lead_with_the_winner(self):
        candidates = ["dc0", "dc1", "dc3"]
        ranking = ranked_successors("dc2", candidates)
        assert ranking[0] == elect_successor("dc2", candidates)
        assert sorted(ranking) == sorted(candidates)
        assert [takeover_score("dc2", d) for d in ranking] == sorted(
            takeover_score("dc2", d) for d in candidates
        )


# =========================================================================================
# Ownership directory
# =========================================================================================


class TestOwnershipDirectory:
    def test_both_packet_directions_resolve_to_one_owner(self):
        directory = OwnershipDirectory()
        mb = DummyMiddlebox(Simulator(), "mb")
        key = mb.flow_key_for(3)
        directory.claim(key, "dc1", now=1.0)
        assert directory.owner_of(key) == "dc1"
        assert directory.owner_of(key.reversed()) == "dc1"
        assert directory.token_of(key) == directory.token_of(key.reversed())

    def test_reassign_re_homes_every_token_and_wins_the_merge(self):
        sim = Simulator()
        mb = DummyMiddlebox(sim, "mb")
        authoritative, replica = OwnershipDirectory(), OwnershipDirectory()
        keys = [mb.flow_key_for(i) for i in range(5)]
        authoritative.claim_flows(keys, "dc2", now=0.0)
        replica.merge(authoritative.digest(), 0.0)
        moved = authoritative.reassign("dc2", "dc0", now=1.0)
        assert len(moved) == 5
        assert authoritative.tokens_owned_by("dc2") == []
        replica.merge(authoritative.digest(), 2.0)  # higher versions win
        assert replica.fingerprint() == authoritative.fingerprint()
        assert replica.tokens_owned_by("dc0") == moved


# =========================================================================================
# Federated domains: convergence, takeover, WAN moves
# =========================================================================================

FAST = ControllerConfig(quiescence_timeout=0.02)


def build_federation(num_domains=3, *, seed=11, faults=None, suspicion=2e-2):
    """A full-mesh federation of *num_domains* fast-quiescence domains."""
    sim = Simulator()
    config = FederationConfig(
        gossip=GossipConfig(fanout=2, interval=2e-3, ttl=0.5, seed=seed),
        suspicion_timeout=suspicion,
    )
    federation = Federation(sim, config)
    for index in range(num_domains):
        federation.add_domain(f"dc{index}", controller_config=FAST)
    federation.connect_all(latency=2e-3, bandwidth=12.5e6, faults=faults)
    return sim, federation


class TestConvergence:
    def test_three_domains_converge_within_the_round_bound(self):
        sim, federation = build_federation()
        for index, (name, domain) in enumerate(sorted(federation.domains.items())):
            mb = DummyMiddlebox(sim, f"mb-{name}", chunk_count=4, subnet=f"10.{index + 20}")
            domain.register(mb)
            domain.claim_flows([mb.flow_key_for(i) for i in range(4)])
        rounds = federation.run_until_converged(max_rounds=20)
        assert rounds <= 6
        # Every domain now resolves every flow's owner identically.
        probe = federation.middlebox_object("mb-dc1").flow_key_for(0)
        owners = {d.directory.owner_of(probe) for d in federation.live_domains()}
        assert owners == {"dc1"}

    def test_convergence_rounds_are_seed_deterministic(self):
        observed = set()
        for _ in range(2):
            sim, federation = build_federation(seed=23)
            for name, domain in federation.domains.items():
                domain.register(DummyMiddlebox(sim, f"mb-{name}", chunk_count=2))
            observed.add(federation.run_until_converged(max_rounds=20))
        assert len(observed) == 1

    def test_a_lossy_mesh_still_converges(self):
        plan = FaultPlan.symmetric(5, drop=0.05, jitter=1.0)
        sim, federation = build_federation(faults=plan)
        for name, domain in federation.domains.items():
            domain.register(DummyMiddlebox(sim, f"mb-{name}", chunk_count=2))
        assert federation.run_until_converged(max_rounds=100) <= 30


class TestSingleDomainIsInert:
    def test_one_domain_arms_no_timers_and_sends_no_messages(self):
        sim = Simulator()
        federation = Federation(sim, FederationConfig())
        domain = federation.add_domain("solo", controller_config=FAST)
        domain.register(DummyMiddlebox(sim, "mb", chunk_count=4))
        pending_before = sim.pending_events
        sim.run(until=1.0)
        assert sim.pending_events == 0 and pending_before <= 1
        assert domain.gossip_rounds == 0 and domain.digests_received == 0
        assert federation.converged()


class TestTakeover:
    def _takeover_scenario(self, *, seed=3):
        sim, federation = build_federation(seed=seed, suspicion=1.5e-2)
        victim = federation.domains["dc2"]
        orphan = ChaosMiddlebox(sim, "orphan", flows=6, subnet="10.9")
        for flow in range(6):
            key = orphan.flow_key_for(flow)
            packet = tcp_packet(key.nw_src, key.nw_dst, key.tp_src, key.tp_dst, b"x", seq=flow + 1)
            sim.schedule(1e-4 * (flow + 1), orphan.receive, packet, 0)
        victim.register(orphan)
        victim.claim_flows([orphan.flow_key_for(i) for i in range(6)])
        federation.run_until_converged(max_rounds=50)
        expected = {key: dict(record) for key, record in orphan.support_store.items()}
        sim.schedule(1e-3, lambda: federation.crash_domain("dc2"))
        sim.run(until=0.2)
        return sim, federation, orphan, expected

    def test_exactly_the_rendezvous_winner_adopts_the_orphans(self):
        sim, federation, orphan, expected = self._takeover_scenario()
        adopters = [d.name for d in federation.live_domains() if "dc2" in d.takeovers]
        assert adopters == [elect_successor("dc2", ["dc0", "dc1"])]
        adopter = federation.domains[adopters[0]]
        assert adopter.controller.is_registered("orphan")
        # Zero lost state: the orphan's populated per-flow journals survive.
        observed = {key: dict(record) for key, record in orphan.support_store.items()}
        assert observed == expected

    def test_takeover_re_homes_ownership_and_reconverges(self):
        sim, federation, orphan, _ = self._takeover_scenario(seed=9)
        federation.stop()
        sim.run(until=sim.now + 0.05)
        assert federation.converged()
        for domain in federation.live_domains():
            assert domain.directory.tokens_owned_by("dc2") == []
            assert domain.directory.owner_of(orphan.flow_key_for(0)) == elect_successor(
                "dc2", ["dc0", "dc1"]
            )

    def test_a_takeover_happens_at_most_once_per_dead_domain(self):
        sim, federation, _, _ = self._takeover_scenario()
        sim.run(until=sim.now + 0.1)
        for domain in federation.live_domains():
            assert domain.takeovers.count("dc2") <= 1


class TestFalseSuspicionRevert:
    def test_false_takeover_is_fully_reverted_when_the_peer_is_heard_again(self):
        """A falsely-suspected domain is still alive: hearing from it must
        undo the takeover — registrations, event sink, and flow ownership."""
        sim, federation = build_federation(2, seed=23)
        victim, suspector = federation.domains["dc0"], federation.domains["dc1"]
        mb = ChaosMiddlebox(sim, "survivor-mb", flows=4, subnet="10.30")
        victim.register(mb)
        victim.claim_flows([mb.flow_key_for(i) for i in range(4)])
        federation.run_until_converged(max_rounds=50)
        home_agent = victim.controller._registrations["survivor-mb"].agent

        took = []
        real_take_over = suspector._take_over
        suspector._take_over = lambda dead: (took.append(dead), real_take_over(dead))[1]

        # A transient silence — dc0's gossip pauses but its process is alive
        # (the control-plane equivalent of a partition): dc1 suspects it,
        # wins the election (its view has no other live domain), and adopts
        # dc0's instance and flow ownership.
        victim.stop()
        sim.run(until=sim.now + 0.05)
        assert took == ["dc0"]
        assert suspector.controller.is_registered("survivor-mb")

        # The partition heals: dc0 resumes gossiping, its first digest
        # disproves the obituary, and the adoption is handed back in full.
        victim._running = True
        victim._arm_gossip()
        sim.run(until=sim.now + 0.05)
        assert "dc0" not in suspector.takeovers
        assert not suspector.controller.is_registered("survivor-mb")
        assert victim.controller.is_registered("survivor-mb")
        # The event feed points back at the home domain's southbound agent.
        assert mb._event_sink == home_agent.send_event
        federation.stop()
        sim.run(until=sim.now + 0.05)
        assert federation.converged()
        for domain in federation.live_domains():
            assert domain.directory.owner_of(mb.flow_key_for(0)) == "dc0"
            assert domain.gossip.liveness.value_of("survivor-mb")["domain"] == "dc0"


class TestCrossDomainMove:
    def _warmed_pair(self, *, seed=17):
        """Two domains with measured WAN quality and a populated source."""
        sim, federation = build_federation(2, seed=seed)
        borrower, home = federation.domains["dc0"], federation.domains["dc1"]
        src = ChaosMiddlebox(sim, "wan-src", flows=8)
        borrower.register(src)
        dst = ChaosMiddlebox(sim, "wan-dst")
        home.register(dst)
        sim.run(until=0.05)  # gossip samples the link; srtt/jitter settle
        return sim, federation, borrower, home, src, dst

    def test_wan_pacing_gain_tracks_the_measured_link(self):
        sim, federation, borrower, home, *_ = self._warmed_pair()
        link = borrower.peer_link("dc1")
        assert link.samples > 0 and link.srtt is not None
        assert link.srtt >= 2e-3  # at least the configured one-way latency
        gain = borrower.wan_pacing_for("dc1")
        assert 0.0 < gain <= borrower.config.max_pacing_gain
        assert borrower.wan_pacing_for("nonexistent") == 0.0

    def test_cross_domain_move_claims_flows_and_returns_the_instance(self):
        sim, federation, borrower, home, src, dst = self._warmed_pair()
        faults = FaultPlan(
            31,
            to_mb=FaultProfile(drop=0.01, jitter=2.0),
            to_controller=FaultProfile(jitter=0.5),
        )
        future = borrower.move_to(
            "dc1", "wan-src", "wan-dst", FlowPattern.wildcard(),
            TransferSpec.precopy(max_rounds=2), faults=faults,
        )
        sim.run_until(future, limit=30.0)
        record = future.result
        assert record.rounds and record.rounds[0]["chunks"] == 8
        assert record.wan_pacing > 0.0  # adaptive gain was injected
        sim.run(until=sim.now + 0.1)  # FED_MOVE_DONE + re-registration settle
        # The instance went home and the moved flows belong to dc1 everywhere.
        assert home.controller.is_registered("wan-dst")
        assert not borrower.controller.is_registered("wan-dst")
        federation.stop()
        sim.run(until=sim.now + 0.05)
        for domain in federation.live_domains():
            assert domain.directory.owner_of(src.flow_key_for(0)) == "dc1"

    def test_an_explicit_wan_pacing_spec_is_respected(self):
        sim, federation, borrower, *_ = self._warmed_pair()
        explicit = TransferSpec.precopy(max_rounds=2, wan_pacing=1.25)
        assert borrower._wan_spec(explicit, "dc1").wan_pacing == 1.25

    def test_moving_towards_an_unknown_peer_fails_fast(self):
        sim, federation, borrower, *_ = self._warmed_pair()
        future = borrower.move_to("nowhere", "wan-src", "wan-dst", FlowPattern.wildcard())
        assert future.done and isinstance(future.exception, ValueError)

    def test_the_home_domain_refuses_to_lend_an_unknown_instance(self):
        sim, federation, borrower, *_ = self._warmed_pair()
        future = borrower.move_to("dc1", "wan-src", "no-such-mb", FlowPattern.wildcard())
        sim.run(until=sim.now + 0.1)
        assert future.done and future.exception is not None
        assert "refused" in str(future.exception)


# =========================================================================================
# The wan_pacing TransferSpec knob
# =========================================================================================


class TestWanPacingSpec:
    def test_parse_describe_and_validation(self):
        spec = TransferSpec.parse({"mode": "precopy", "max_rounds": 2, "wan_pacing": 1.5})
        assert spec.wan_pacing == 1.5
        assert "wan1.5" in spec.describe()
        assert "wan" not in TransferSpec.precopy().describe()
        with pytest.raises(ValueError):
            TransferSpec.precopy(wan_pacing=-0.1)
        with pytest.raises(SpecError):
            TransferSpec.parse({"wan_spacing": 1.0})

    def _timed_move(self, wan_pacing: float) -> tuple[float, int]:
        """One dirtied multi-round precopy move; returns (duration, rounds run).

        The wire counters are re-pinned per run: message sizes embed the
        xid/event-id digits, so durations are only comparable between runs
        that start from identical counters.  The source uses the base
        ``ProcessingCosts`` so its chunk export is slow enough for the live
        writes to land inside the dirty-tracking window — the delta round
        (the one pacing schedules) must actually run.
        """
        TestSingleDomainGoldenEquivalence._reset_wire_counters()
        sim = Simulator()
        controller = MBController(sim, ControllerConfig(quiescence_timeout=0.02))
        nb = NorthboundAPI(controller)
        src = ChaosMiddlebox(sim, "src", flows=6, costs=ProcessingCosts())
        dst = ChaosMiddlebox(sim, "dst")
        controller.register(src)
        controller.register(dst)
        for seq in range(1, 40):  # steady writes keep the dirty set non-empty
            key = src.flow_key_for(seq % 6)
            packet = tcp_packet(key.nw_src, key.nw_dst, key.tp_src, key.tp_dst, b"w", seq=seq)
            sim.schedule(2e-4 * seq, src.receive, packet, 0)
        spec = TransferSpec.precopy(max_rounds=3, dirty_threshold=0, wan_pacing=wan_pacing)
        handle = nb.move_internal("src", "dst", None, spec)
        sim.run_until(handle.finalized, limit=30.0)
        return handle.record.duration, len(handle.record.rounds)

    def test_pacing_stretches_the_inter_round_gap(self):
        unpaced, unpaced_rounds = self._timed_move(0.0)
        paced, paced_rounds = self._timed_move(3.0)
        assert unpaced_rounds >= 2  # a delta round ran, so pacing had a gap to stretch
        assert paced_rounds >= 2
        assert paced > unpaced  # the paced rounds wait out the measured gap

    def test_zero_pacing_is_schedule_identical_to_the_pre_knob_default(self):
        assert self._timed_move(0.0) == self._timed_move(0.0)


# =========================================================================================
# ControllerStats.merge
# =========================================================================================


class TestControllerStatsMerge:
    def _stats(self, **overrides) -> ControllerStats:
        stats = ControllerStats()
        for field_name, value in overrides.items():
            setattr(stats, field_name, value)
        return stats

    def test_merge_sums_counters_and_concatenates_records(self):
        a = self._stats(messages_sent=3, operations_completed=1)
        a.records.append("ra")
        b = self._stats(messages_sent=4, precopy_rounds_total=2)
        b.records.append("rb")
        merged = a.merge(b)
        assert merged.messages_sent == 7
        assert merged.operations_completed == 1
        assert merged.precopy_rounds_total == 2
        assert merged.records == ["ra", "rb"]
        assert a.messages_sent == 3 and b.messages_sent == 4  # inputs untouched

    def test_merge_with_a_fresh_instance_is_identity(self):
        a = self._stats(messages_received=9, heartbeats_received=2)
        merged = a.merge(ControllerStats())
        for field_name in ("messages_received", "heartbeats_received", "messages_sent"):
            assert getattr(merged, field_name) == getattr(a, field_name)

    def test_merge_is_associative(self):
        a = self._stats(messages_sent=1)
        b = self._stats(messages_sent=2, events_received=5)
        c = self._stats(messages_sent=4, instances_killed=1)
        left = a.merge(b).merge(c)
        right = a.merge(b.merge(c))
        assert left.messages_sent == right.messages_sent == 7
        assert left.events_received == right.events_received == 5
        assert left.instances_killed == right.instances_killed == 1


# =========================================================================================
# num_domains=1 golden equivalence (PR 3 / PR 4 pattern)
# =========================================================================================


class TestSingleDomainGoldenEquivalence:
    """One federated domain must reproduce the bare controller bit for bit.

    Golden numbers are the same captures as
    ``tests/test_sharding.py::TestSingleShardEquivalence`` — wrapping the
    controller in a one-domain federation adds no messages, no simulator
    events, and no timing perturbation.
    """

    @staticmethod
    def _reset_wire_counters():
        import repro.core.events as events_module
        import repro.core.messages as messages_module
        import repro.core.operations as operations_module

        messages_module._xids = itertools.count(1)
        events_module._event_ids = itertools.count(1)
        operations_module._operation_ids = itertools.count(1)

    def _workload(self, concurrency, chunks, events_rate=0.0):
        self._reset_wire_counters()
        sim = Simulator()
        federation = Federation(sim, FederationConfig())
        domain = federation.add_domain(
            "solo", controller_config=ControllerConfig(quiescence_timeout=0.1)
        )
        nb = NorthboundAPI(domain.controller)
        pairs = []
        for index in range(concurrency):
            src = DummyMiddlebox(sim, f"src-{index}", chunk_count=chunks)
            dst = DummyMiddlebox(sim, f"dst-{index}")
            domain.register(src)
            domain.register(dst)
            pairs.append((src, dst))
        handles = [nb.move_internal(src.name, dst.name, None) for src, dst in pairs]
        if events_rate:
            for src, _ in pairs:
                src.generate_events_at_rate(events_rate, 0.05)
        for handle in handles:
            sim.run_until(handle.completed, limit=5000)
        stats = domain.controller.stats
        return (
            [handle.record.duration for handle in handles],
            stats.messages_received,
            stats.messages_sent,
            sim.executed_events,
        )

    def test_contended_workload_matches_the_golden_numbers(self):
        durations, received, sent, executed = self._workload(2, 50, events_rate=200.0)
        assert durations == [0.016581392, 0.016621392]
        assert (received, sent, executed) == (412, 206, 1440)

    def test_single_move_matches_the_golden_numbers(self):
        durations, received, sent, executed = self._workload(1, 80)
        assert durations == [pytest.approx(0.013291392, abs=1e-9)]
        assert (received, sent, executed) == (322, 162, 1130)
