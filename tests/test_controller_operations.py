"""Integration tests for the MB controller and its northbound operations.

These exercise the full message path: northbound call -> controller -> control
channel -> southbound agent -> middlebox, and back.
"""

import pytest

from repro.core import ControllerConfig, MBController, NorthboundAPI
from repro.core.errors import OperationError, UnknownMiddleboxError
from repro.core.operations import OperationType
from repro.middleboxes import DummyMiddlebox, PassiveMonitor
from repro.net import Simulator, tcp_packet


def feed(sim, middlebox, count=20, dst="192.0.2.10", spacing=0.0005, subnet_mod=4):
    """Inject *count* packets; with subnet_mod=3 the keys match the monitor_pair fixture flows."""
    for index in range(count):
        packet = tcp_packet(f"10.0.{index % subnet_mod}.{index + 1}", dst, 1000 + index, 80, b"data")
        sim.schedule(spacing * index, middlebox.receive, packet, 1)
    sim.run(until=sim.now + spacing * count + 0.1)


class TestConfigOperations:
    def test_read_config_returns_flat_mapping(self, sim, controller, northbound, monitor_pair):
        mon1, _ = monitor_pair
        future = northbound.read_config("mon1", "*")
        values = sim.run_until(future)
        assert "Monitor.PromiscuousMode" in values

    def test_write_config_single_key(self, sim, controller, northbound, monitor_pair):
        _, mon2 = monitor_pair
        future = northbound.write_config("mon2", "Monitor.PromiscuousMode", [False])
        sim.run_until(future)
        assert mon2.config.get_scalar("Monitor.PromiscuousMode") is False

    def test_write_config_whole_tree(self, sim, controller, northbound, monitor_pair):
        mon1, mon2 = monitor_pair
        mon1.config.set("Monitor.Custom", ["x"])
        values = sim.run_until(northbound.read_config("mon1", "*"))
        sim.run_until(northbound.write_config("mon2", "*", values))
        assert mon2.config.get_scalar("Monitor.Custom") == "x"

    def test_clone_config_composition(self, sim, controller, northbound, monitor_pair):
        mon1, mon2 = monitor_pair
        mon1.config.set("Monitor.Extra", [7])
        sim.run_until(northbound.clone_config("mon1", "mon2"))
        assert mon2.config.get_scalar("Monitor.Extra") == 7

    def test_write_config_star_requires_mapping(self, northbound):
        with pytest.raises(TypeError):
            northbound.write_config("mon1", "*", [1, 2])

    def test_write_config_key_requires_list(self, northbound):
        with pytest.raises(TypeError):
            northbound.write_config("mon1", "K", {"K": [1]})

    def test_read_config_unknown_key_fails(self, sim, controller, northbound, monitor_pair):
        future = northbound.read_config("mon1", "No.Such.Key")
        with pytest.raises(OperationError):
            sim.run_until(future)

    def test_unknown_middlebox_rejected(self, controller):
        with pytest.raises(UnknownMiddleboxError):
            controller.read_config("ghost")


class TestStatsOperation:
    def test_stats_counts_matching_state(self, sim, controller, northbound, monitor_pair):
        stats = sim.run_until(northbound.stats("mon1", ["nw_dst=192.0.2.10"]))
        assert stats["perflow_reporting"] == 30
        assert stats["shared_reporting"] == 1

    def test_stats_with_narrower_pattern(self, sim, controller, northbound, monitor_pair):
        stats = sim.run_until(northbound.stats("mon1", ["nw_src=10.0.1.0/24"]))
        assert 0 < stats["perflow_reporting"] < 30


class TestMoveInternal:
    def test_move_transfers_and_deletes(self, sim, controller, northbound, monitor_pair):
        mon1, mon2 = monitor_pair
        handle = northbound.move_internal("mon1", "mon2", ["nw_dst=192.0.2.10"])
        record = sim.run_until(handle.completed)
        assert record.chunks_transferred == 30
        assert len(mon2.report_store) == 30
        # Deletion at the source only happens after the quiescence timeout.
        assert len(mon1.report_store) == 30
        sim.run_until(handle.finalized)
        assert len(mon1.report_store) == 0
        assert record.deleted_chunks == 30

    def test_move_preserves_record_contents(self, sim, controller, northbound, monitor_pair):
        mon1, mon2 = monitor_pair
        before = {key: (rec.packets, rec.bytes) for key, rec in mon1.report_store.items()}
        handle = northbound.move_internal("mon1", "mon2", None)
        sim.run_until(handle.finalized)
        after = {key: (rec.packets, rec.bytes) for key, rec in mon2.report_store.items()}
        assert before == after

    def test_move_subset_only(self, sim, controller, northbound, monitor_pair):
        mon1, mon2 = monitor_pair
        handle = northbound.move_internal("mon1", "mon2", ["nw_src=10.0.1.0/24"])
        record = sim.run_until(handle.finalized)
        assert 0 < record.chunks_transferred < 30
        assert len(mon1.report_store) == 30 - record.chunks_transferred

    def test_move_records_duration_and_type(self, sim, controller, northbound, monitor_pair):
        handle = northbound.move_internal("mon1", "mon2", None)
        record = sim.run_until(handle.completed)
        assert record.type is OperationType.MOVE
        assert record.duration is not None and record.duration > 0

    def test_move_of_empty_pattern_completes(self, sim, controller, northbound, monitor_pair):
        handle = northbound.move_internal("mon1", "mon2", ["nw_src=203.0.113.0/24"])
        record = sim.run_until(handle.completed)
        assert record.chunks_transferred == 0

    def test_move_to_unknown_middlebox_rejected(self, controller, northbound, monitor_pair):
        with pytest.raises(UnknownMiddleboxError):
            northbound.move_internal("mon1", "ghost", None)

    def test_finer_granularity_request_fails_operation(self, sim, controller, northbound):
        from repro.middleboxes import LoadBalancer

        lb1 = LoadBalancer(sim, "lb1", backends=["10.0.0.1"])
        lb2 = LoadBalancer(sim, "lb2", backends=["10.0.0.1"])
        controller.register(lb1)
        controller.register(lb2)
        handle = northbound.move_internal("lb1", "lb2", ["nw_dst=192.0.2.1"])
        with pytest.raises(OperationError):
            sim.run_until(handle.completed)

    def test_controller_archives_record(self, sim, controller, northbound, monitor_pair):
        handle = northbound.move_internal("mon1", "mon2", None)
        sim.run_until(handle.finalized)
        assert controller.stats.operations_completed == 1
        assert controller.stats.records[0].type is OperationType.MOVE


class TestMoveWithLiveTraffic:
    def test_reprocess_events_buffered_and_forwarded(self, sim, controller, northbound, monitor_pair):
        """Packets arriving during the move trigger re-process events that reach the new MB."""
        mon1, mon2 = monitor_pair
        handle = northbound.move_internal("mon1", "mon2", ["nw_dst=192.0.2.10"])
        # Keep traffic flowing (for the moved flows) while the move is in progress.
        feed(sim, mon1, count=30, spacing=0.001, subnet_mod=3)
        record = sim.run_until(handle.completed)
        sim.run(until=sim.now + 1.0)
        assert mon1.counters.reprocess_events_raised > 0
        assert record.events_received > 0
        assert record.events_forwarded > 0
        assert mon2.counters.reprocessed_packets == record.events_forwarded
        assert record.events_received == record.events_forwarded

    def test_no_packet_updates_are_lost(self, sim, controller, northbound, monitor_pair):
        """Atomicity requirement (iii): per-flow counters must account for every packet."""
        mon1, mon2 = monitor_pair
        total_before = sum(rec.packets for _, rec in mon1.report_store.items())
        handle = northbound.move_internal("mon1", "mon2", None)
        # The extra packets belong to the flows whose state is being moved.
        feed(sim, mon1, count=30, spacing=0.001, subnet_mod=3)
        sim.run_until(handle.finalized)
        sim.run(until=sim.now + 0.5)
        total_after = sum(rec.packets for _, rec in mon2.report_store.items())
        assert total_after == total_before + 30

    def test_quiescence_waits_for_events_to_stop(self, sim, controller, northbound, monitor_pair):
        mon1, _ = monitor_pair
        handle = northbound.move_internal("mon1", "mon2", None)
        # Traffic keeps arriving for a while after the move completes.
        feed(sim, mon1, count=100, spacing=0.005)
        record = sim.run_until(handle.finalized, limit=100)
        assert record.finalized_at >= record.completed_at + controller.config.quiescence_timeout


class TestCloneAndMerge:
    def _populated_monitors(self, sim, controller):
        mon1 = PassiveMonitor(sim, "m-src")
        mon2 = PassiveMonitor(sim, "m-dst")
        controller.register(mon1)
        controller.register(mon2)
        feed(sim, mon1, count=25)
        feed(sim, mon2, count=10, dst="192.0.2.99")
        return mon1, mon2

    def test_merge_adds_shared_reporting_counters(self, sim, controller, northbound):
        mon1, mon2 = self._populated_monitors(sim, controller)
        before_src = mon1.shared_report.value.total_packets
        before_dst = mon2.shared_report.value.total_packets
        handle = northbound.merge_internal("m-src", "m-dst")
        record = sim.run_until(handle.completed)
        assert mon2.shared_report.value.total_packets == before_src + before_dst
        assert record.type is OperationType.MERGE
        assert record.chunks_transferred >= 1

    def test_merge_unions_assets(self, sim, controller, northbound):
        mon1, mon2 = self._populated_monitors(sim, controller)
        handle = northbound.merge_internal("m-src", "m-dst")
        sim.run_until(handle.completed)
        assets = mon2.shared_report.value.assets
        assert "192.0.2.10" in assets and "192.0.2.99" in assets

    def test_clone_support_copies_shared_supporting_state(self, sim, controller, northbound):
        from repro.middleboxes import REDecoder

        dec1 = REDecoder(sim, "d1", cache_capacity=4096)
        dec2 = REDecoder(sim, "d2", cache_capacity=4096)
        controller.register(dec1)
        controller.register(dec2)
        dec1.cache.insert(b"cached-content" * 10)
        handle = northbound.clone_support("d1", "d2")
        record = sim.run_until(handle.completed)
        assert dec2.cache.to_payload() == dec1.cache.to_payload()
        assert record.type is OperationType.CLONE
        assert record.bytes_transferred > 0

    def test_clone_on_mb_without_shared_state_completes_empty(self, sim, controller, northbound, dummy_pair):
        handle = northbound.clone_support("dummy-src", "dummy-dst")
        record = sim.run_until(handle.completed)
        assert record.chunks_transferred == 0

    def test_end_transfer_stops_reprocess_events(self, sim, controller, northbound):
        mon1, mon2 = self._populated_monitors(sim, controller)
        handle = northbound.merge_internal("m-src", "m-dst")
        sim.run_until(handle.completed)
        sim.run_until(northbound.end_transfer("m-src"))
        raised_before = mon1.counters.reprocess_events_raised
        feed(sim, mon1, count=10)
        assert mon1.counters.reprocess_events_raised == raised_before


class TestConcurrentOperations:
    def test_simultaneous_moves_between_distinct_pairs(self, sim):
        controller = MBController(sim, ControllerConfig(quiescence_timeout=0.2))
        nb = NorthboundAPI(controller)
        pairs = []
        for index in range(4):
            src = DummyMiddlebox(sim, f"src{index}", chunk_count=50)
            dst = DummyMiddlebox(sim, f"dst{index}")
            controller.register(src)
            controller.register(dst)
            pairs.append((src, dst))
        handles = [nb.move_internal(f"src{i}", f"dst{i}", None) for i in range(4)]
        for handle in handles:
            sim.run_until(handle.completed, limit=200)
        for index, (_, dst) in enumerate(pairs):
            assert len(dst.support_store) == 50
        assert controller.stats.operations_started == 4

    def test_concurrent_moves_take_longer_each(self, sim):
        """Controller CPU contention: the average move slows down with concurrency (Figure 10b)."""

        def run(concurrency: int) -> float:
            local_sim = Simulator()
            controller = MBController(local_sim, ControllerConfig(quiescence_timeout=0.1))
            nb = NorthboundAPI(controller)
            for index in range(concurrency):
                controller.register(DummyMiddlebox(local_sim, f"s{index}", chunk_count=200))
                controller.register(DummyMiddlebox(local_sim, f"d{index}"))
            handles = [nb.move_internal(f"s{i}", f"d{i}", None) for i in range(concurrency)]
            for handle in handles:
                local_sim.run_until(handle.completed, limit=500)
            records = [handle.record for handle in handles]
            return sum(record.duration for record in records) / len(records)

        assert run(4) > run(1)
