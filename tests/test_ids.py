"""Unit tests for the Bro-like IDS."""


from repro.core.flowspace import FlowPattern
from repro.core.state import StateRole
from repro.middleboxes.ids import (
    IDS,
    STATE_CLOSED,
    STATE_INCOMPLETE,
    STATE_RESET,
    Connection,
    ScanTable,
)
from repro.net import Simulator, tcp_packet
from repro.net.packet import ACK, RST, SYN
from repro.traffic.generators import FlowSpec, http_flow_records


def replay_flow(ids, spec=None, close=True):
    """Run one synthetic HTTP flow through the IDS (both directions)."""
    spec = spec or FlowSpec(
        client="10.0.0.1",
        server="192.0.2.10",
        client_port=41000,
        server_port=80,
        start=0.0,
        duration=1.0,
        requests=[("/index.html", 600)],
    )
    for record in http_flow_records(spec, close=close):
        ids.process_packet(record.to_packet())
    return spec


class TestConnectionTracking:
    def test_handshake_establishes_connection(self):
        ids = IDS(Simulator(), "ids")
        ids.process_packet(tcp_packet("10.0.0.1", "192.0.2.10", 1000, 80, flags={SYN}))
        ids.process_packet(tcp_packet("192.0.2.10", "10.0.0.1", 80, 1000, flags={SYN, ACK}))
        ids.process_packet(tcp_packet("10.0.0.1", "192.0.2.10", 1000, 80, flags={ACK}))
        assert len(ids.support_store) == 1
        connection = next(conn for _, conn in ids.support_store.items())
        assert connection.orig_packets == 2 and connection.resp_packets == 1

    def test_fin_exchange_closes_and_logs(self):
        ids = IDS(Simulator(), "ids")
        replay_flow(ids)
        assert len(ids.conn_log) == 1
        entry = ids.conn_log[0]
        assert entry.conn_state == STATE_CLOSED
        assert entry.service == "http"

    def test_rst_marks_connection_reset(self):
        ids = IDS(Simulator(), "ids")
        ids.process_packet(tcp_packet("10.0.0.1", "192.0.2.10", 1000, 80, flags={SYN}))
        ids.process_packet(tcp_packet("192.0.2.10", "10.0.0.1", 80, 1000, flags={RST}))
        assert ids.conn_log[0].conn_state == STATE_RESET

    def test_counters_accumulate_payload_bytes(self):
        ids = IDS(Simulator(), "ids")
        replay_flow(ids)
        entry = ids.conn_log[0]
        assert entry.orig_bytes > 0 and entry.resp_bytes > 600

    def test_connection_not_logged_twice(self):
        ids = IDS(Simulator(), "ids")
        replay_flow(ids)
        ids.finalize()
        assert len(ids.conn_log) == 1


class TestHttpAnalysis:
    def test_request_response_logged(self):
        ids = IDS(Simulator(), "ids")
        replay_flow(ids)
        assert len(ids.http_log) == 1
        entry = ids.http_log[0]
        assert entry.method == "GET"
        assert entry.uri == "/index.html"
        assert entry.status == 200
        assert entry.host == "192.0.2.10"

    def test_multiple_requests_on_one_connection(self):
        ids = IDS(Simulator(), "ids")
        spec = FlowSpec(
            client="10.0.0.1",
            server="192.0.2.10",
            client_port=41001,
            server_port=80,
            start=0.0,
            duration=1.0,
            requests=[("/a", 100), ("/b", 100), ("/c", 100)],
        )
        replay_flow(ids, spec)
        assert [entry.uri for entry in ids.http_log] == ["/a", "/b", "/c"]

    def test_non_http_ports_not_analyzed(self):
        ids = IDS(Simulator(), "ids")
        ids.process_packet(tcp_packet("10.0.0.1", "192.0.2.10", 1000, 22, b"GET / HTTP/1.1\r\n\r\n"))
        assert ids.http_log == []

    def test_response_bytes_accumulate_across_segments(self):
        ids = IDS(Simulator(), "ids")
        spec = FlowSpec(
            client="10.0.0.1",
            server="192.0.2.10",
            client_port=41002,
            server_port=80,
            start=0.0,
            duration=1.0,
            requests=[("/large", 1500)],
        )
        replay_flow(ids, spec)
        connection = next(conn for _, conn in ids.support_store.items())
        assert connection.http[0].response_bytes >= 1500


class TestScanDetection:
    def test_alert_raised_at_threshold(self):
        ids = IDS(Simulator(), "ids")
        ids.set_config("IDS.ScanThreshold", [10])
        for index in range(12):
            ids.process_packet(tcp_packet("10.9.9.9", f"10.4.1.{index + 1}", 50000 + index, 22, flags={SYN}))
        assert len(ids.alerts) == 1
        assert ids.alerts[0]["source"] == "10.9.9.9"

    def test_scan_table_is_shared_supporting_state(self):
        ids = IDS(Simulator(), "ids")
        for index in range(5):
            ids.process_packet(tcp_packet("10.9.9.9", f"10.4.1.{index + 1}", 50000 + index, 22, flags={SYN}))
        chunk = ids.get_shared(StateRole.SUPPORTING)
        assert chunk is not None
        table = ids.deserialize_shared(StateRole.SUPPORTING, ids.codec.unseal_shared(chunk))
        assert len(table.contacted["10.9.9.9"]) == 5

    def test_scan_table_merge(self):
        a = ScanTable()
        b = ScanTable()
        a.record("10.9.9.9", "10.4.1.1")
        b.record("10.9.9.9", "10.4.1.2")
        b.record("10.8.8.8", "10.4.1.1")
        merged = ScanTable.merge(a, b)
        assert sorted(merged.contacted["10.9.9.9"]) == ["10.4.1.1", "10.4.1.2"]
        assert "10.8.8.8" in merged.contacted


class TestFinalizeAndAnomalies:
    def test_unclosed_connection_logged_incomplete(self):
        ids = IDS(Simulator(), "ids")
        replay_flow(ids, close=False)
        ids.finalize()
        assert [entry.conn_state for entry in ids.conn_log] == [STATE_INCOMPLETE]
        assert len(ids.incorrect_entries()) == 1

    def test_moved_connections_produce_no_anomalies(self):
        """The paper's 'moved flag': deletes after a move must not create log errors."""
        ids = IDS(Simulator(), "ids")
        replay_flow(ids, close=False)
        removed = ids.del_perflow(StateRole.SUPPORTING, FlowPattern.wildcard())
        assert removed == 1
        ids.finalize()
        assert ids.incorrect_entries() == []

    def test_finalize_logs_closed_but_unlogged_connections(self):
        ids = IDS(Simulator(), "ids")
        ids.process_packet(tcp_packet("10.0.0.1", "192.0.2.10", 1000, 80, flags={SYN}))
        ids.finalize()
        assert len(ids.conn_log) == 1


class TestStateMigration:
    def test_connection_payload_roundtrip(self):
        ids = IDS(Simulator(), "ids")
        replay_flow(ids)
        connection = next(conn for _, conn in ids.support_store.items())
        restored = Connection.from_payload(connection.to_payload())
        assert restored.orig_packets == connection.orig_packets
        assert restored.http[0].uri == connection.http[0].uri
        assert restored.state == connection.state

    def test_move_connection_between_instances_preserves_analysis(self):
        """Per-flow supporting state moved mid-flow lets the new instance finish the analysis."""
        sim = Simulator()
        old, new = IDS(sim, "old"), IDS(sim, "new")
        spec = FlowSpec(
            client="10.0.0.1",
            server="192.0.2.10",
            client_port=41000,
            server_port=80,
            start=0.0,
            duration=1.0,
            requests=[("/moved", 300)],
        )
        records = http_flow_records(spec)
        split = len(records) // 2
        for record in records[:split]:
            old.process_packet(record.to_packet())
        for chunk in old.get_perflow(StateRole.SUPPORTING, FlowPattern.wildcard()):
            new.put_perflow(chunk)
        old.del_perflow(StateRole.SUPPORTING, FlowPattern.wildcard())
        for record in records[split:]:
            new.process_packet(record.to_packet())
        old.finalize()
        new.finalize()
        combined = old.conn_log + new.conn_log
        assert len(combined) == 1
        assert combined[0].conn_state == STATE_CLOSED
        reference = IDS(sim, "ref")
        for record in records:
            reference.process_packet(record.to_packet())
        reference.finalize()
        assert combined[0].orig_packets == reference.conn_log[0].orig_packets
        assert combined[0].resp_bytes == reference.conn_log[0].resp_bytes

    def test_state_size_bytes_scales_with_flows(self):
        ids = IDS(Simulator(), "ids")
        small = ids.state_size_bytes()
        for port in range(41000, 41010):
            replay_flow(
                ids,
                FlowSpec(
                    client="10.0.0.1",
                    server="192.0.2.10",
                    client_port=port,
                    server_port=80,
                    start=0.0,
                    duration=1.0,
                    requests=[("/x", 100)],
                ),
            )
        assert ids.state_size_bytes() > small
        pattern_size = ids.state_size_bytes(FlowPattern(tp_src=41000))
        assert 0 < pattern_size < ids.state_size_bytes()
