"""Unit tests for the redundancy-elimination encoder and decoder."""

import pytest

from repro.core.state import StateRole
from repro.middleboxes.re import (
    CHUNK_SIZE,
    SHIM_BYTES,
    DecoderCacheState,
    EncoderCacheState,
    PacketCache,
    REDecoder,
    REEncoder,
)
from repro.net import Simulator, tcp_packet


def packet_to(dst, payload, src="10.3.1.1", sport=50000):
    return tcp_packet(src, dst, sport, 80, payload)


class TestPacketCache:
    def test_insert_and_read(self):
        cache = PacketCache(1024)
        offset = cache.insert(b"hello world")
        assert cache.read(offset, 11) == b"hello world"

    def test_sequential_inserts_advance_position(self):
        cache = PacketCache(1024)
        first = cache.insert(b"a" * 10)
        second = cache.insert(b"b" * 10)
        assert second == first + 10
        assert cache.current_pos == 20

    def test_read_unwritten_region_returns_none(self):
        cache = PacketCache(1024)
        cache.insert(b"abc")
        assert cache.read(100, 10) is None
        assert cache.read(-1, 4) is None
        assert cache.read(1020, 10) is None

    def test_wraparound(self):
        cache = PacketCache(100)
        cache.insert(b"x" * 60)
        offset = cache.insert(b"y" * 60)  # does not fit -> wraps to 0
        assert offset == 0
        assert cache.max_reached
        assert cache.read(0, 60) == b"y" * 60

    def test_content_larger_than_cache_rejected(self):
        from repro.core.errors import MiddleboxError

        with pytest.raises(MiddleboxError):
            PacketCache(10).insert(b"z" * 20)

    def test_clone_is_independent(self):
        cache = PacketCache(256)
        cache.insert(b"original")
        clone = cache.clone()
        clone.insert(b"extra")
        assert cache.current_pos != clone.current_pos

    def test_payload_roundtrip(self):
        cache = PacketCache(256)
        cache.insert(b"some content here")
        restored = PacketCache.from_payload(cache.to_payload())
        assert restored.read(0, 17) == b"some content here"
        assert restored.current_pos == cache.current_pos

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            PacketCache(0)


class TestEncoder:
    def test_first_occurrence_is_raw_second_is_shim(self):
        encoder = REEncoder(Simulator(), "enc", cache_capacity=64 * 1024)
        payload = b"A" * CHUNK_SIZE
        first = encoder.process_packet(packet_to("1.1.1.1", payload))
        second = encoder.process_packet(packet_to("1.1.1.1", payload))
        assert first.packet.annotations["re_segments"][0]["type"] == "raw"
        assert second.packet.annotations["re_segments"][0]["type"] == "shim"
        assert second.packet.wire_size < first.packet.wire_size

    def test_encoded_bytes_accounting(self):
        encoder = REEncoder(Simulator(), "enc")
        payload = b"B" * CHUNK_SIZE
        encoder.process_packet(packet_to("1.1.1.1", payload))
        encoder.process_packet(packet_to("1.1.1.1", payload))
        assert encoder.encoded_bytes == CHUNK_SIZE - SHIM_BYTES
        assert encoder.total_bytes == 2 * CHUNK_SIZE

    def test_empty_payload_passthrough(self):
        encoder = REEncoder(Simulator(), "enc")
        result = encoder.process_packet(packet_to("1.1.1.1", b""))
        assert result.packet is None

    def test_cache_selection_by_prefix(self):
        encoder = REEncoder(Simulator(), "enc")
        encoder.set_config("NumCaches", [2])
        encoder.set_config("CacheFlows", ["1.1.1.0/24", "1.1.2.0/24"])
        payload = b"C" * CHUNK_SIZE
        a = encoder.process_packet(packet_to("1.1.1.5", payload))
        b = encoder.process_packet(packet_to("1.1.2.5", payload))
        assert a.packet.annotations["re_cache_id"] == 1
        assert b.packet.annotations["re_cache_id"] == 2

    def test_num_caches_clones_existing_cache(self):
        encoder = REEncoder(Simulator(), "enc")
        encoder.process_packet(packet_to("1.1.1.1", b"D" * CHUNK_SIZE))
        encoder.set_config("NumCaches", [2])
        state: EncoderCacheState = encoder.shared_support.value
        assert state.caches[2].to_payload() == state.caches[1].to_payload()
        assert state.fingerprints[2] == state.fingerprints[1]

    def test_num_caches_empty_mode(self):
        encoder = REEncoder(Simulator(), "enc")
        encoder.process_packet(packet_to("1.1.1.1", b"E" * CHUNK_SIZE))
        encoder.set_config("NewCachesEmpty", [True])
        encoder.set_config("NumCaches", [2])
        state: EncoderCacheState = encoder.shared_support.value
        assert state.caches[2].current_pos == 0
        assert state.fingerprints[2] == {}

    def test_encoder_shared_state_roundtrip(self):
        encoder = REEncoder(Simulator(), "enc")
        encoder.process_packet(packet_to("1.1.1.1", b"F" * CHUNK_SIZE * 2))
        chunk = encoder.get_shared(StateRole.SUPPORTING)
        restored = encoder.deserialize_shared(StateRole.SUPPORTING, encoder.codec.unseal_shared(chunk))
        assert isinstance(restored, EncoderCacheState)
        assert restored.caches[1].current_pos == encoder.shared_support.value.caches[1].current_pos


class TestDecoder:
    def _pair(self, capacity=64 * 1024):
        sim = Simulator()
        return REEncoder(sim, "enc", cache_capacity=capacity), REDecoder(sim, "dec", cache_capacity=capacity)

    def test_decodes_encoded_packet(self):
        encoder, decoder = self._pair()
        payload = b"payload-" * 32
        for _ in range(3):
            encoded = encoder.process_packet(packet_to("1.1.1.1", payload)).packet
            decoded = decoder.process_packet(encoded).packet
            assert decoded.payload == payload
        assert decoder.undecodable_bytes == 0
        assert decoder.decoded_packets == 3

    def test_caches_stay_synchronised(self):
        encoder, decoder = self._pair()
        import numpy as np

        rng = np.random.default_rng(1)
        for index in range(50):
            if index % 3 == 0:
                payload = b"R" * 256
            else:
                payload = rng.integers(0, 256, size=256, dtype=np.uint8).tobytes()
            encoded = encoder.process_packet(packet_to("1.1.1.1", payload)).packet
            decoder.process_packet(encoded)
        enc_cache = encoder.shared_support.value.caches[1]
        assert decoder.cache.to_payload() == enc_cache.to_payload()
        assert decoder.undecodable_bytes == 0

    def test_empty_cache_cannot_decode_shims(self):
        encoder, decoder = self._pair()
        payload = b"G" * CHUNK_SIZE
        encoder.process_packet(packet_to("1.1.1.1", payload))
        encoded = encoder.process_packet(packet_to("1.1.1.1", payload)).packet
        fresh = REDecoder(Simulator(), "fresh", cache_capacity=64 * 1024)
        result = fresh.process_packet(encoded)
        assert fresh.undecodable_bytes == CHUNK_SIZE
        assert result.packet.annotations.get("re_decode_failed") == CHUNK_SIZE

    def test_desynchronised_cache_detected_by_checksum(self):
        encoder, decoder = self._pair()
        payload = b"H" * CHUNK_SIZE
        encoder.process_packet(packet_to("1.1.1.1", payload))
        # Corrupt the decoder's view by inserting different content at offset 0.
        decoder.cache.insert(b"Z" * CHUNK_SIZE)
        encoded = encoder.process_packet(packet_to("1.1.1.1", payload)).packet
        decoder.process_packet(encoded)
        assert decoder.undecodable_bytes == CHUNK_SIZE

    def test_unencoded_packets_pass_through(self):
        _, decoder = self._pair()
        result = decoder.process_packet(packet_to("1.1.1.1", b"plain"))
        assert decoder.passthrough_packets == 1
        assert result.packet is None

    def test_decoder_cache_clone_to_new_instance(self):
        encoder, decoder = self._pair()
        payload = b"I" * CHUNK_SIZE
        encoded = encoder.process_packet(packet_to("1.1.1.1", payload)).packet
        decoder.process_packet(encoded)
        new_decoder = REDecoder(Simulator(), "dec-b", cache_capacity=64 * 1024)
        new_decoder.put_shared(decoder.get_shared(StateRole.SUPPORTING))
        # The cloned decoder can now decode shims referencing the original cache.
        encoded2 = encoder.process_packet(packet_to("1.1.1.1", payload)).packet
        decoded = new_decoder.process_packet(encoded2).packet
        assert decoded.payload == payload
        assert new_decoder.undecodable_bytes == 0

    def test_decoder_state_payload_roundtrip(self):
        state = DecoderCacheState(cache=PacketCache(512))
        state.cache.insert(b"cached")
        restored = DecoderCacheState.from_payload(state.to_payload())
        assert restored.cache.read(0, 6) == b"cached"
