"""Differential equivalence matrix: Simulator vs RealtimeRuntime, same observables.

Each test runs one move-under-load scenario on the deterministic simulator
and on the wall-clock asyncio runtime and asserts identical observable
outcomes via :mod:`repro.testing.equivalence` — final state maps,
per-guarantee invariants, operation outcomes.  Timings are deliberately not
compared (see the harness's module docstring).
"""

from __future__ import annotations

import pytest

from repro.testing import ChaosSpec, run_equivalence
from repro.testing.equivalence import DST, SRC

GUARANTEES = ("no_guarantee", "loss_free", "order_preserving")
MODES = ("snapshot", "precopy")
SHARDS = (1, 4)


def spec_for(guarantee: str, mode: str, shards: int, **overrides) -> ChaosSpec:
    """A compact clean-profile scenario: 6 flows, 24 live packets, one move."""
    defaults = dict(
        seed=11,
        guarantee=guarantee,
        mode=mode,
        shards=shards,
        profile="clean",
        flows=6,
        packets=24,
        limit=5.0,
    )
    defaults.update(overrides)
    return ChaosSpec(**defaults)


class TestEquivalenceMatrix:
    """guarantee x mode x shards: observables must match across runtimes."""

    @pytest.mark.parametrize("shards", SHARDS)
    @pytest.mark.parametrize("mode", MODES)
    @pytest.mark.parametrize("guarantee", GUARANTEES)
    def test_matrix(self, guarantee: str, mode: str, shards: int) -> None:
        run_equivalence(spec_for(guarantee, mode, shards)).assert_ok()


class TestEquivalenceObservables:
    """Spot checks that the harness compares what it claims to compare."""

    def test_loss_free_owner_holds_every_delivered_seq_on_both(self):
        report = run_equivalence(spec_for("loss_free", "snapshot", 1))
        report.assert_ok()
        for result in (report.simulated, report.realtime):
            owner = report.spec and result.final_state[DST]
            total = sum(len(seqs) for seqs in owner.values())
            assert total == result.delivered
            assert result.outcome == "completed"

    def test_source_is_empty_after_completed_move_on_both(self):
        report = run_equivalence(spec_for("loss_free", "precopy", 2))
        report.assert_ok()
        for result in (report.simulated, report.realtime):
            assert sum(len(seqs) for seqs in result.final_state[SRC].values()) == 0

    def test_order_preserving_with_reroute_matches(self):
        # Reroute mid-transfer exercises the packet-hold path on both runtimes.
        report = run_equivalence(spec_for("order_preserving", "snapshot", 1, reroute=True))
        report.assert_ok()
        for result in (report.simulated, report.realtime):
            for flows in result.final_state.values():
                for seqs in flows.values():
                    assert all(earlier < later for earlier, later in zip(seqs, seqs[1:]))

    def test_seed_variation_stays_equivalent(self):
        for seed in (1, 2, 3):
            run_equivalence(spec_for("loss_free", "snapshot", 2, seed=seed)).assert_ok()

    def test_faulted_profiles_are_rejected(self):
        with pytest.raises(ValueError, match="clean fault profile"):
            run_equivalence(spec_for("loss_free", "snapshot", 1, profile="lossy"))

    def test_report_surfaces_mismatches_not_exceptions(self):
        report = run_equivalence(spec_for("no_guarantee", "snapshot", 1))
        assert report.ok
        assert report.mismatches == []
        # Forge a mismatch to prove assert_ok actually trips on one.
        report.mismatches.append("forged")
        with pytest.raises(AssertionError, match="forged"):
            report.assert_ok()
