"""Differential property tests: sharded store vs. the single-dict oracle.

The sharded :class:`PerFlowStateStore` replaced the original flat-dict
implementation; :class:`DictPerFlowStateStore` preserves that original code
verbatim as an executable oracle.  These tests drive both implementations with
the same seeded random operation sequences and require identical observable
behaviour: query results, lengths, membership, removal returns, dirty-key
*order*, and install-round verdicts.  Any divergence is a bug in the sharded
engine (or a deliberate semantic change that must be called out explicitly).
"""

import random

import pytest

from repro.core.errors import GranularityError
from repro.core.flowspace import FlowKey, FlowPattern
from repro.core.state import DictPerFlowStateStore, PerFlowStateStore

#: Deliberately collision-rich universe so random sequences hit the same flow
#: repeatedly (put-over-put, remove-of-present, reverse-direction lookups).
ADDRS = [f"10.0.{i // 8}.{i % 8 + 1}" for i in range(24)]
PORTS = [1000 + i for i in range(12)]


def random_key(rng: random.Random) -> FlowKey:
    """One random concrete flow key from the small collision-rich universe."""
    return FlowKey(
        nw_proto=rng.choice((6, 17)),
        nw_src=rng.choice(ADDRS),
        nw_dst=rng.choice(ADDRS),
        tp_src=rng.choice(PORTS),
        tp_dst=rng.choice(PORTS),
    )


def random_pattern(rng: random.Random) -> FlowPattern:
    """A random pattern: wildcard, partially pinned, prefixed, or concrete."""
    shape = rng.randrange(5)
    if shape == 0:
        return FlowPattern()
    if shape == 1:
        return FlowPattern(nw_src=rng.choice(ADDRS))
    if shape == 2:
        return FlowPattern(nw_src=f"10.0.{rng.randrange(3)}.0/24")
    if shape == 3:
        return FlowPattern(tp_src=rng.choice(PORTS), nw_proto=rng.choice((6, 17)))
    k = random_key(rng)
    return FlowPattern(
        nw_proto=k.nw_proto,
        nw_src=k.nw_src,
        nw_dst=k.nw_dst,
        tp_src=k.tp_src,
        tp_dst=k.tp_dst,
    )


def canonical_sorted(pairs):
    """Order-insensitive canonical form of a [(FlowKey, value)] result."""
    return sorted(pairs, key=lambda kv: kv[0])


def apply_op(store, rng: random.Random):
    """Apply one random operation to *store*; return its observable outcome.

    The same seeded ``rng`` drives both stores, so both see byte-identical
    operation sequences; the returned outcome tuples are compared directly.
    """
    op = rng.randrange(10)
    if op <= 2:  # put (weighted: populate the store)
        k, v = random_key(rng), rng.randrange(1_000_000)
        store.put(k, v)
        return ("put", len(store))
    if op == 3:
        k = random_key(rng)
        return ("get", store.get(k))
    if op == 4:
        k = random_key(rng)
        return ("remove", store.remove(k), len(store))
    if op == 5:
        k = random_key(rng)
        default = rng.randrange(1_000_000)
        return ("get_or_create", store.get_or_create(k, lambda: default))
    if op == 6:
        pattern = random_pattern(rng)
        return ("query", canonical_sorted(store.query(pattern)))
    if op == 7:
        k = random_key(rng)
        store.mark_dirty(k)
        return ("mark_dirty", store.dirty_count)
    if op == 8:
        k = random_key(rng)
        tag = (rng.randrange(3), rng.randrange(4))
        return ("install_round", store.install_round(k, tag))
    k = random_key(rng)
    return ("contains", k in store)


def run_sequence(seed: int, ops: int, *, indexed: bool, shard_count: int):
    """Drive oracle and sharded store through one identical random sequence."""
    sharded = PerFlowStateStore(indexed=indexed, shard_count=shard_count)
    oracle = DictPerFlowStateStore(indexed=indexed)
    sharded.begin_dirty_tracking()
    oracle.begin_dirty_tracking()
    for step in range(ops):
        rng_a = random.Random(seed * 1_000_003 + step)
        rng_b = random.Random(seed * 1_000_003 + step)
        out_sharded = apply_op(sharded, rng_a)
        out_oracle = apply_op(oracle, rng_b)
        assert out_sharded == out_oracle, f"divergence at step {step} (seed {seed})"
        if step % 97 == 0:
            # Dirty keys must drain in the *same order* from both stores —
            # delta rounds replay them and ordering affects the wire schedule.
            assert sharded.dirty_keys() == oracle.dirty_keys(), f"dirty order @ {step}"
    return sharded, oracle


class TestDifferentialRandomSequences:
    @pytest.mark.parametrize("seed", [1, 7, 42, 1234, 99991])
    def test_sharded_matches_oracle(self, seed):
        sharded, oracle = run_sequence(seed, 600, indexed=False, shard_count=16)
        assert canonical_sorted(sharded.items()) == canonical_sorted(oracle.items())
        assert sorted(sharded.keys()) == sorted(oracle.keys())
        assert sharded.dirty_keys() == oracle.dirty_keys()

    @pytest.mark.parametrize("seed", [3, 17, 2026])
    def test_indexed_sharded_matches_indexed_oracle(self, seed):
        sharded, oracle = run_sequence(seed, 600, indexed=True, shard_count=16)
        assert canonical_sorted(sharded.items()) == canonical_sorted(oracle.items())

    @pytest.mark.parametrize("shard_count", [1, 2, 5, 64])
    def test_shard_count_is_invisible(self, shard_count):
        sharded, oracle = run_sequence(11, 400, indexed=False, shard_count=shard_count)
        assert canonical_sorted(sharded.items()) == canonical_sorted(oracle.items())

    def test_drain_dirty_order_identical(self):
        sharded = PerFlowStateStore()
        oracle = DictPerFlowStateStore()
        rng = random.Random(5)
        keys = [random_key(rng) for _ in range(200)]
        for store in (sharded, oracle):
            store.begin_dirty_tracking()
        for k in keys:
            sharded.put(k, 1)
            oracle.put(k, 1)
        assert sharded.drain_dirty() == oracle.drain_dirty()
        assert sharded.drain_dirty() == oracle.drain_dirty() == []

    def test_remove_matching_identical(self):
        sharded, oracle = run_sequence(23, 300, indexed=False, shard_count=16)
        pattern = FlowPattern(nw_src="10.0.1.0/24")
        assert canonical_sorted(sharded.remove_matching(pattern)) == canonical_sorted(
            oracle.remove_matching(pattern)
        )
        assert len(sharded) == len(oracle)

    def test_granularity_errors_identical(self):
        sharded = PerFlowStateStore(granularity=("nw_src",))
        oracle = DictPerFlowStateStore(granularity=("nw_src",))
        fine = FlowPattern(nw_src="10.0.0.1", tp_src=1000)
        with pytest.raises(GranularityError):
            sharded.query(fine)
        with pytest.raises(GranularityError):
            oracle.query(fine)

    def test_clear_resets_both(self):
        sharded, oracle = run_sequence(31, 200, indexed=True, shard_count=8)
        sharded.clear()
        oracle.clear()
        assert len(sharded) == len(oracle) == 0
        assert canonical_sorted(sharded.query(FlowPattern())) == []
        assert sharded.memory_stats().entry_bytes == 0
