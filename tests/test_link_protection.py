"""Tests for the link fault model and LinkGuardian-style link-local protection."""

import pytest

from repro.net import (
    LinkFaultPlan,
    LinkFaultProfile,
    ProtectionConfig,
    ScriptedLinkFault,
    Simulator,
    Topology,
    udp_packet,
)
from repro.net.links import A_TO_B, B_TO_A
from repro.net.protection import summarize


def _pair(sim, *, faults=None, latency=50e-6, bandwidth=125e6):
    """One host pair joined by a single (optionally faulted) link."""
    topo = Topology(sim)
    h1 = topo.add_host("h1", "10.0.0.1")
    h2 = topo.add_host("h2", "10.0.0.2")
    link = topo.connect(h1, h2, latency=latency, bandwidth=bandwidth, faults=faults)
    return topo, h1, h2, link


def _burst(host, count, *, payload=100, reverse=False):
    """Send *count* indexed packets so tests can check delivery order."""
    src, dst = ("10.0.0.2", "10.0.0.1") if reverse else ("10.0.0.1", "10.0.0.2")
    for index in range(count):
        packet = udp_packet(src, dst, 1, 2, payload=bytes(payload))
        packet.annotations["index"] = index
        host.send(packet)


def _indexes(host):
    return [packet.annotations["index"] for packet in host.received]


class TestLinkFaultPlan:
    def test_seeded_loss_is_deterministic(self):
        results = []
        for _ in range(2):
            sim = Simulator()
            plan = LinkFaultPlan(seed=11, a_to_b=LinkFaultProfile(loss=0.3))
            topo, h1, h2, link = _pair(sim, faults=plan)
            _burst(h1, 100)
            sim.run()
            results.append((link.stats_a_to_b.drops, _indexes(h2)))
        assert results[0] == results[1]
        assert 0 < results[0][0] < 100

    def test_corruption_counted_separately_from_drops(self):
        sim = Simulator()
        plan = LinkFaultPlan(seed=3, a_to_b=LinkFaultProfile(corruption=0.5))
        topo, h1, h2, link = _pair(sim, faults=plan)
        _burst(h1, 60)
        sim.run()
        assert link.stats_a_to_b.corrupted > 0
        assert link.stats_a_to_b.drops == 0
        assert link.stats_a_to_b.lost == link.stats_a_to_b.corrupted
        assert len(h2.received) == 60 - link.stats_a_to_b.corrupted

    def test_lossy_transmit_returns_none(self):
        sim = Simulator()
        plan = LinkFaultPlan(seed=0, a_to_b=LinkFaultProfile(loss=1.0))
        topo, h1, h2, link = _pair(sim, faults=plan)
        packet = udp_packet("10.0.0.1", "10.0.0.2", 1, 2)
        assert link.transmit(packet, h1) is None

    def test_reordering_delivers_out_of_order(self):
        sim = Simulator()
        plan = LinkFaultPlan(seed=5, a_to_b=LinkFaultProfile(reorder=0.4))
        topo, h1, h2, link = _pair(sim, faults=plan)
        _burst(h1, 50)
        sim.run()
        assert len(h2.received) == 50
        assert link.stats_a_to_b.reordered > 0
        assert _indexes(h2) != sorted(_indexes(h2))

    def test_scripted_fault_hits_exactly_the_nth_frame(self):
        sim = Simulator()
        plan = LinkFaultPlan(seed=0, scripted=[ScriptedLinkFault("drop", A_TO_B, nth=2)])
        topo, h1, h2, link = _pair(sim, faults=plan)
        _burst(h1, 4)
        sim.run()
        assert _indexes(h2) == [0, 2, 3]
        assert link.stats_a_to_b.drops == 1
        assert all(fault.fired for fault in plan.scripted)

    def test_scripted_fault_is_direction_scoped(self):
        sim = Simulator()
        plan = LinkFaultPlan(seed=0, scripted=[ScriptedLinkFault("corrupt", B_TO_A, nth=1)])
        topo, h1, h2, link = _pair(sim, faults=plan)
        _burst(h1, 2)
        _burst(h2, 2, reverse=True)
        sim.run()
        assert _indexes(h2) == [0, 1]  # a→b untouched
        assert _indexes(h1) == [1]
        assert link.stats_b_to_a.corrupted == 1


class TestLinkProtection:
    def test_masks_corruption_and_preserves_order(self):
        sim = Simulator()
        plan = LinkFaultPlan(seed=21, a_to_b=LinkFaultProfile(corruption=1e-1))
        topo, h1, h2, link = _pair(sim, faults=plan)
        link.enable_protection(ProtectionConfig(strict_order=True))
        _burst(h1, 300)
        sim.run(until=5.0)
        assert _indexes(h2) == list(range(300))
        summary = summarize(link)
        assert summary.lost_on_wire > 0
        assert summary.retransmits > 0
        assert summary.abandoned == 0
        assert summary.effective_loss_rate == 0.0

    def test_masks_combined_loss_and_reordering(self):
        sim = Simulator()
        plan = LinkFaultPlan.symmetric(seed=9, loss=0.05, corruption=0.05, reorder=0.1)
        topo, h1, h2, link = _pair(sim, faults=plan)
        link.enable_protection(ProtectionConfig(strict_order=True))
        _burst(h1, 200)
        sim.run(until=5.0)
        assert _indexes(h2) == list(range(200))

    def test_loose_order_delivers_everything_but_reordered(self):
        sim = Simulator()
        plan = LinkFaultPlan(seed=13, a_to_b=LinkFaultProfile(corruption=0.15))
        topo, h1, h2, link = _pair(sim, faults=plan)
        protection = link.enable_protection(ProtectionConfig(strict_order=False))
        _burst(h1, 200)
        sim.run(until=5.0)
        indexes = _indexes(h2)
        assert sorted(indexes) == list(range(200))
        # Repaired losses arrive late, so delivery order is perturbed — the
        # latency/ordering trade the strict_order knob encodes.
        assert indexes != sorted(indexes)
        assert protection.stats_for(A_TO_B).out_of_order > 0

    def test_protocol_annotations_stripped_before_delivery(self):
        sim = Simulator()
        topo, h1, h2, link = _pair(sim, faults=LinkFaultPlan.symmetric(seed=2, corruption=0.2))
        link.enable_protection()
        _burst(h1, 50)
        sim.run(until=5.0)
        assert len(h2.received) == 50
        for packet in h2.received:
            assert set(packet.annotations) == {"index"}

    def test_duplicates_discarded(self):
        # Force a lost ACK so the sender retransmits a frame the receiver
        # already has: ctrl frames are uncounted, so scripting the drop is
        # impossible — use heavy symmetric loss instead and assert dedup.
        sim = Simulator()
        plan = LinkFaultPlan.symmetric(seed=17, loss=0.25)
        topo, h1, h2, link = _pair(sim, faults=plan)
        protection = link.enable_protection()
        _burst(h1, 150)
        sim.run(until=10.0)
        assert _indexes(h2) == list(range(150))
        assert protection.stats_for(A_TO_B).dup_discards > 0

    def test_small_hold_buffer_backpressures_without_loss(self):
        sim = Simulator()
        plan = LinkFaultPlan(seed=23, a_to_b=LinkFaultProfile(corruption=0.1))
        topo, h1, h2, link = _pair(sim, faults=plan)
        protection = link.enable_protection(ProtectionConfig(hold_buffer=4))
        _burst(h1, 120)
        sim.run(until=10.0)
        assert _indexes(h2) == list(range(120))
        assert protection.outstanding(A_TO_B) == 0

    def test_protected_run_is_deterministic(self):
        def run():
            sim = Simulator()
            plan = LinkFaultPlan.symmetric(seed=31, loss=0.05, corruption=0.05)
            topo, h1, h2, link = _pair(sim, faults=plan)
            link.enable_protection()
            _burst(h1, 100)
            sim.run(until=10.0)
            stats = link.stats_a_to_b
            return (
                _indexes(h2),
                stats.drops,
                stats.corrupted,
                stats.retransmits,
                stats.ctrl_frames,
                sim.executed_events,
            )

        assert run() == run()

    def test_link_down_clears_holds_and_terminates(self):
        sim = Simulator()
        plan = LinkFaultPlan(seed=1, a_to_b=LinkFaultProfile(loss=0.5))
        topo, h1, h2, link = _pair(sim, faults=plan)
        protection = link.enable_protection()
        _burst(h1, 50)
        sim.run(until=10e-6)  # mid-flight
        link.set_up(False)
        sim.run()  # must drain: no timer may keep a dead wire alive forever
        assert protection.outstanding(A_TO_B) == 0
        assert protection.outstanding(B_TO_A) == 0

    def test_abandons_after_max_retries_on_persistent_loss(self):
        sim = Simulator()
        plan = LinkFaultPlan(seed=0, a_to_b=LinkFaultProfile(loss=1.0))
        topo, h1, h2, link = _pair(sim, faults=plan)
        protection = link.enable_protection(ProtectionConfig(max_retries=3))
        _burst(h1, 2)
        sim.run()  # terminates because retries are bounded
        assert h2.received == []
        assert protection.stats_for(A_TO_B).abandoned == 2
        assert protection.outstanding(A_TO_B) == 0
        assert summarize(link).effective_loss_rate == pytest.approx(1.0)

    def test_ctrl_frames_not_in_scripted_index_space(self):
        # The 3rd a→b *data* frame must be hit even though protection ACKs
        # (b→a ctrl) and retransmissions interleave on the wire.
        sim = Simulator()
        plan = LinkFaultPlan(seed=0, scripted=[ScriptedLinkFault("corrupt", A_TO_B, nth=3)])
        topo, h1, h2, link = _pair(sim, faults=plan)
        link.enable_protection()
        _burst(h1, 5)
        sim.run(until=5.0)
        assert _indexes(h2) == list(range(5))  # repaired
        assert link.stats_a_to_b.corrupted == 1
        assert link.stats_a_to_b.retransmits == 1

    def test_unprotected_unfaulted_link_unaffected(self):
        sim = Simulator()
        topo, h1, h2, link = _pair(sim)
        _burst(h1, 10)
        sim.run()
        assert _indexes(h2) == list(range(10))
        assert sim.executed_events == 10
        stats = link.stats_a_to_b
        assert (stats.drops, stats.corrupted, stats.retransmits, stats.ctrl_frames) == (0, 0, 0, 0)

    def test_switch_protect_port(self):
        from repro.net import Switch

        sim = Simulator()
        topo = Topology(sim)
        h1 = topo.add_host("h1", "10.0.0.1")
        sw = topo.add_node(Switch(sim, "s1"))
        topo.connect(h1, sw)
        protection = sw.protect_port(sw.port_to(h1))
        assert topo.link_between(h1, sw).protection is protection
