"""Edge-case coverage for TransferSpec.parse and FlowPattern.parse.

Malformed northbound arguments must raise the *typed* errors from
:mod:`repro.core.errors` — :class:`SpecError` and :class:`PatternError`, both
of which derive from :class:`ValidationError` (and, for backward
compatibility, from :class:`ValueError`).
"""

import pytest

from repro.core import FlowPattern, TransferGuarantee, TransferSpec
from repro.core.errors import OpenMBError, PatternError, SpecError, ValidationError


class TestTransferSpecParse:
    def test_bad_guarantee_string_raises_spec_error(self):
        with pytest.raises(SpecError) as excinfo:
            TransferSpec.parse("exactly_once")
        assert "exactly_once" in str(excinfo.value)
        assert "order_preserving" in str(excinfo.value)  # names the valid values

    def test_bad_guarantee_inside_mapping_raises_spec_error(self):
        with pytest.raises(SpecError):
            TransferSpec.parse({"guarantee": "bogus"})

    def test_mapping_with_unknown_keys_raises_spec_error(self):
        with pytest.raises(SpecError) as excinfo:
            TransferSpec.parse({"guarantee": "loss_free", "window": 4})
        assert "window" in str(excinfo.value)

    def test_mapping_with_out_of_range_field_raises_spec_error(self):
        with pytest.raises(SpecError):
            TransferSpec.parse({"batch_size": 0})
        with pytest.raises(SpecError):
            TransferSpec.parse({"parallelism": -1})

    def test_unparseable_object_raises_spec_error(self):
        with pytest.raises(SpecError):
            TransferSpec.parse(3.14)

    def test_spec_errors_are_value_errors_and_openmb_errors(self):
        with pytest.raises(ValueError):
            TransferSpec.parse("bogus")
        with pytest.raises(ValidationError):
            TransferSpec.parse("bogus")
        with pytest.raises(OpenMBError):
            TransferSpec.parse("bogus")

    def test_valid_forms_still_parse(self):
        assert TransferSpec.parse(None) == TransferSpec.default()
        assert TransferSpec.parse("order_preserving").guarantee is TransferGuarantee.ORDER_PRESERVING
        assert TransferSpec.parse(TransferGuarantee.NO_GUARANTEE).guarantee is TransferGuarantee.NO_GUARANTEE
        spec = TransferSpec.parse({"guarantee": "loss_free", "batch_size": 8, "parallelism": 2})
        assert spec.batch_size == 8 and spec.parallelism == 2
        assert TransferSpec.parse(spec) is spec


class TestFlowPatternParse:
    def test_unknown_field_raises_pattern_error(self):
        with pytest.raises(PatternError) as excinfo:
            FlowPattern.parse({"nw_source": "10.0.0.0/8"})
        assert "nw_source" in str(excinfo.value)
        assert "nw_src" in str(excinfo.value)  # names the valid fields

    def test_unknown_field_in_string_form_raises_pattern_error(self):
        with pytest.raises(PatternError):
            FlowPattern.parse(["port=80"])

    def test_non_integer_port_raises_pattern_error(self):
        with pytest.raises(PatternError):
            FlowPattern.parse({"tp_dst": "http"})
        with pytest.raises(PatternError):
            FlowPattern.parse("nw_proto=tcp")

    def test_malformed_address_raises_pattern_error(self):
        with pytest.raises(PatternError):
            FlowPattern.parse({"nw_src": "10.0.0.0.0/8"})
        with pytest.raises(PatternError):
            FlowPattern.parse({"nw_dst": "10.0.0.0/64"})

    def test_pattern_errors_are_value_errors(self):
        with pytest.raises(ValueError):
            FlowPattern.parse({"bogus": 1})
        with pytest.raises(ValidationError):
            FlowPattern.parse({"bogus": 1})

    def test_empty_pattern_forms_mean_wildcard(self):
        for empty in (None, [], "", {}):
            pattern = FlowPattern.parse(empty)
            assert pattern.is_wildcard

    def test_wildcard_values_are_skipped(self):
        pattern = FlowPattern.parse({"nw_src": "*", "tp_dst": 80})
        assert pattern.nw_src is None
        assert pattern.tp_dst == 80
