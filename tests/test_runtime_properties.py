"""Property tests for the runtime scheduling contract, on both implementations.

Seeded-random interleavings of ``schedule`` / ``cancel`` / ``process`` assert
the three properties every component implicitly relies on:

1. **same-time FIFO tie-breaking** — callbacks scheduled for the same time run
   in scheduling order;
2. **no callback after cancellation** — a cancelled handle's callback never
   fires, no matter when the cancel raced the schedule;
3. **Future single-completion** — a future completes exactly once; the second
   completion raises and does not overwrite the first.

Every test runs against the deterministic :class:`Simulator` and the
wall-clock :class:`RealtimeRuntime` through the same interface.
"""

from __future__ import annotations

import random
import threading

import pytest

from repro.core.errors import SimulationError
from repro.net.simulator import Simulator
from repro.runtime import RealtimeRuntime, Runtime, RuntimeConfig

#: Far enough ahead that all scheduling/cancelling happens before anything
#: fires, even on the wall clock; short enough to keep the suite fast.
HORIZON = 0.05


@pytest.fixture(params=["simulated", "realtime"])
def runtime(request):
    rt = RuntimeConfig(mode=request.param).create()
    yield rt
    if isinstance(rt, RealtimeRuntime):
        rt.close()


def drain(rt, extra: float = 0.02) -> None:
    """Drive *rt* safely past HORIZON so every armed callback has fired."""
    rt.run(until=rt.now + HORIZON + extra)


class TestInterface:
    def test_both_implementations_satisfy_the_runtime_abc(self, runtime):
        assert isinstance(runtime, Runtime)

    def test_clock_is_monotonic(self, runtime):
        before = runtime.now
        runtime.run(until=runtime.now + 0.01)
        assert runtime.now >= before


class TestFifoTieBreaking:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_same_time_callbacks_run_in_scheduling_order(self, runtime, seed):
        rng = random.Random(seed)
        base = runtime.now + HORIZON
        buckets = [base, base + 0.01, base + 0.02]
        executed = []
        scheduled = []
        for index in range(30):
            bucket = rng.randrange(len(buckets))
            scheduled.append((bucket, index))
            runtime.schedule_at(buckets[bucket], executed.append, (bucket, index))
        drain(runtime)
        assert len(executed) == len(scheduled)
        # Across buckets: time order.  Within a bucket: scheduling order.
        assert executed == sorted(scheduled, key=lambda entry: (entry[0], scheduled.index(entry)))
        for bucket in range(len(buckets)):
            in_bucket = [index for b, index in executed if b == bucket]
            assert in_bucket == sorted(in_bucket)

    def test_zero_delay_schedules_preserve_order(self, runtime):
        executed = []
        base = runtime.now + HORIZON
        for index in range(10):
            runtime.schedule_at(base, executed.append, index)
        drain(runtime)
        assert executed == list(range(10))


class TestCancellation:
    @pytest.mark.parametrize("seed", [3, 4, 5])
    def test_cancelled_callbacks_never_run(self, runtime, seed):
        rng = random.Random(seed)
        base = runtime.now + HORIZON
        executed = []
        handles = {}
        for index in range(40):
            handles[index] = runtime.schedule_at(base + rng.random() * 0.02, executed.append, index)
        cancelled = set(rng.sample(sorted(handles), 15))
        for index in cancelled:
            handles[index].cancel()
        drain(runtime)
        assert set(executed) == set(handles) - cancelled

    def test_cancel_from_within_a_callback(self, runtime):
        # A callback cancelling a later-scheduled peer: the peer must not run.
        base = runtime.now + HORIZON
        executed = []
        victim = runtime.schedule_at(base + 0.02, executed.append, "victim")
        runtime.schedule_at(base, lambda: victim.cancel())
        runtime.schedule_at(base + 0.02, executed.append, "survivor")
        drain(runtime)
        assert executed == ["survivor"]

    def test_double_cancel_is_idempotent(self, runtime):
        handle = runtime.schedule(HORIZON, lambda: pytest.fail("cancelled callback ran"))
        handle.cancel()
        handle.cancel()
        drain(runtime)


class TestFutureSingleCompletion:
    def test_second_succeed_raises_and_does_not_overwrite(self, runtime):
        future = runtime.event("once")
        future.succeed("first")
        with pytest.raises(SimulationError):
            future.succeed("second")
        assert future.result == "first"

    def test_fail_after_succeed_raises(self, runtime):
        future = runtime.event("once")
        future.succeed(1)
        with pytest.raises(SimulationError):
            future.fail(RuntimeError("late"))
        assert future.exception is None

    def test_done_callbacks_fire_exactly_once(self, runtime):
        future = runtime.event("cb")
        fired = []
        future.add_done_callback(lambda f: fired.append(f.result))
        future.succeed(42)
        with pytest.raises(SimulationError):
            future.succeed(43)
        assert fired == [42]

    def test_callback_added_after_completion_runs_immediately(self, runtime):
        future = runtime.event("late-cb")
        future.succeed("done")
        fired = []
        future.add_done_callback(lambda f: fired.append(f.result))
        assert fired == ["done"]


class TestProcesses:
    def test_process_yields_delays_and_futures(self, runtime):
        gate = runtime.event("gate")
        runtime.schedule(0.01, gate.succeed, 5)

        def worker():
            yield 0.005
            value = yield gate
            return value * 2

        future = runtime.process(worker())
        assert runtime.run_until(future, limit=runtime.now + 5.0) == 10

    def test_process_failure_propagates_once(self, runtime):
        def bomb():
            yield 0.001
            raise RuntimeError("boom")

        future = runtime.process(bomb())
        with pytest.raises(RuntimeError, match="boom"):
            runtime.run_until(future, limit=runtime.now + 5.0)
        assert future.done and future.exception is not None

    @pytest.mark.parametrize("seed", [6, 7])
    def test_random_process_interleavings_settle_deterministically(self, runtime, seed):
        rng = random.Random(seed)
        results = []

        def worker(ident, delays):
            total = 0.0
            for delay in delays:
                yield delay
                total += delay
            results.append(ident)
            return total

        futures = [
            runtime.process(worker(ident, [rng.random() * 0.004 for _ in range(3)]))
            for ident in range(6)
        ]
        for future in futures:
            runtime.run_until(future, limit=runtime.now + 5.0)
        assert sorted(results) == list(range(6))
        for future in futures:
            assert future.done and future.exception is None


class TestThreadSafeCompletion:
    """Realtime-only: futures completed off-thread must marshal safely."""

    def test_off_thread_succeed_completes_the_future(self):
        rt = RuntimeConfig(mode="realtime").create()
        try:
            future = rt.event("cross-thread")
            fired = []
            future.add_done_callback(lambda f: fired.append(f.result))
            thread = threading.Thread(target=lambda: future.succeed("from-thread"))
            thread.start()
            assert rt.run_until(future, limit=rt.now + 5.0) == "from-thread"
            thread.join()
            rt.run(until=rt.now + 0.01)  # let the marshalled callback land
            assert fired == ["from-thread"]
        finally:
            rt.close()

    def test_racing_completions_complete_exactly_once(self):
        rt = RuntimeConfig(mode="realtime").create()
        try:
            future = rt.event("race")
            losers = []

            def complete(value):
                try:
                    future.succeed(value)
                except SimulationError:
                    losers.append(value)

            threads = [threading.Thread(target=complete, args=(i,)) for i in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert future.done
            assert len(losers) == 3
            assert future.result not in losers
        finally:
            rt.close()


class TestSimulatorDeterminismUnderTheSharedInterface:
    """The simulated path stays bit-for-bit: same program, same fingerprint."""

    def test_identical_runs_produce_identical_event_counts(self):
        def program(sim: Simulator) -> int:
            lane = sim.lane("cpu")
            order = []
            for index in range(20):
                lane.submit(1e-4, lambda i=index: order.append(i))
            handle = sim.schedule(0.5, order.append, "tail")
            handle.cancel()
            sim.run()
            assert order == list(range(20))
            return sim.executed_events

        assert program(Simulator()) == program(Simulator())
