"""The chaos matrix: transfer guarantees under control-plane misbehaviour.

Every scenario wraps a complete move-under-load in the deterministic seeded
chaos harness (:mod:`repro.testing.chaos`) and checks four invariants:

1. every operation terminates (completed or cleanly failed + finalized);
2. no lost updates under ``loss_free`` (exactly-once, even with
   retransmissions);
3. no reordering under ``order_preserving`` (traffic re-routed mid-move);
4. state conservation — no leaked holds, queued packets, dirty tracking, or
   orphaned ``(op_id, round)`` install tags, and aborted moves leave the
   source authoritative.

The default matrix runs guarantee (3) x mode (2) x shards (1/4) x fault
profile (4) x ``CHAOS_SEEDS`` seeds (default 5) = 240 seeded scenarios; the
CI chaos job raises the seed count for a deeper fixed-seed sweep.
"""

from __future__ import annotations

import os

import pytest

from repro.core import ControllerConfig, MBController, NorthboundAPI
from repro.middleboxes import NAT
from repro.net import Simulator, tcp_packet
from repro.testing import ChaosSpec, run_chaos, run_federated_chaos

GUARANTEES = ("no_guarantee", "loss_free", "order_preserving")
MODES = ("snapshot", "precopy")
SHARD_COUNTS = (1, 4)
PROFILES = ("clean", "lossy", "jittery", "chaotic")

#: Seeds per matrix cell: 3 x 2 x 2 x 4 x SEEDS scenarios in total.  The
#: default (5 -> 240 scenarios) keeps tier-1 fast; the CI chaos job raises it.
SEEDS = int(os.environ.get("CHAOS_SEEDS", "5"))


class TestChaosMatrix:
    @pytest.mark.parametrize("profile", PROFILES)
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    @pytest.mark.parametrize("mode", MODES)
    @pytest.mark.parametrize("guarantee", GUARANTEES)
    def test_invariants_hold_across_seeds(self, guarantee, mode, shards, profile):
        for index in range(SEEDS):
            spec = ChaosSpec(
                seed=index * 977 + 13,
                guarantee=guarantee,
                mode=mode,
                shards=shards,
                profile=profile,
            )
            result = run_chaos(spec)
            result.assert_ok()
            assert result.outcome == "completed"
            if guarantee in ("loss_free", "order_preserving"):
                assert result.lost_updates == 0

    def test_matrix_size_meets_the_issue_floor(self):
        """The default matrix runs at least 200 seeded scenarios."""
        assert len(GUARANTEES) * len(MODES) * len(SHARD_COUNTS) * len(PROFILES) * SEEDS >= 200


class TestFederatedChaosProfile:
    """Domain death under lossy inter-domain channels (PR 7 federation).

    Each scenario runs the classic move-under-load workload inside a
    3-domain federation whose WAN links carry the fault profile, crashes one
    whole domain mid-run, and checks — on top of the four classic invariants —
    that exactly one gossip-elected survivor adopted the orphan instance with
    zero lost per-flow state, re-homed the ownership directory, and that the
    survivors' gossip views converged.
    """

    @pytest.mark.parametrize("profile", PROFILES)
    def test_takeover_invariants_hold_across_seeds(self, profile):
        for index in range(SEEDS):
            spec = ChaosSpec(
                seed=index * 613 + 7,
                guarantee="loss_free",
                mode="precopy",
                profile=profile,
            )
            result = run_federated_chaos(spec)
            result.assert_ok()
            assert result.outcome == "completed"
            assert result.takeover_by is not None
            assert result.federation_converged
            assert result.lost_updates == 0

    def test_federated_runs_are_seed_deterministic(self):
        spec = ChaosSpec(seed=29, guarantee="loss_free", mode="precopy", profile="chaotic")
        first = run_federated_chaos(spec)
        second = run_federated_chaos(spec)
        assert first.executed_events == second.executed_events
        assert first.settled_at == second.settled_at
        assert (first.messages, first.drops, first.retransmits) == (
            second.messages,
            second.drops,
            second.retransmits,
        )
        assert first.takeover_by == second.takeover_by


class TestMillionFlowSmokeProfile:
    """The ``million_flow_smoke`` point of the chaos matrix.

    A 10 000-flow pre-copy move — three orders of magnitude above the default
    matrix's per-scenario flow count, small enough for tier-1 — driven through
    the streaming chunk export, checked against the same four global
    invariants.  The full million-flow version of this workload lives in
    ``tests/test_state_scale.py`` behind ``RUN_SLOW``.
    """

    def test_million_flow_smoke_invariants(self):
        spec = ChaosSpec(
            seed=1337,
            guarantee="loss_free",
            mode="precopy",
            shards=4,
            profile="clean",
            batch_size=64,
            flows=10_000,
            packets=400,
            interval=5e-5,
            quiescence=0.05,
            limit=120.0,
        )
        result = run_chaos(spec)
        result.assert_ok()
        assert result.outcome == "completed"
        assert result.lost_updates == 0

    def test_million_flow_smoke_is_seed_deterministic(self):
        spec = ChaosSpec(
            seed=1337,
            guarantee="loss_free",
            mode="precopy",
            shards=4,
            profile="clean",
            batch_size=64,
            flows=2_000,
            packets=200,
            interval=5e-5,
            quiescence=0.05,
            limit=120.0,
        )
        first = run_chaos(spec)
        second = run_chaos(spec)
        assert first.executed_events == second.executed_events
        assert first.settled_at == second.settled_at


class TestAcceptanceScenarios:
    """The specific end-to-end claims of the issue's acceptance criteria."""

    def test_lossy_precopy_move_zero_lost_updates_bounded_retransmissions(self):
        """1 % drop + 2x latency jitter: loss-free pre-copy still loses nothing.

        The ``lossy`` profile is exactly the acceptance fault plan.  The move
        must complete, deliver every update exactly once, actually exercise
        the recovery machinery (messages were dropped), and keep
        retransmissions bounded — well under one retransmission per five wire
        messages.
        """
        retransmits = drops = messages = 0
        for seed in range(8):
            spec = ChaosSpec(seed=seed * 101 + 3, guarantee="loss_free", mode="precopy", profile="lossy")
            result = run_chaos(spec)
            result.assert_ok()
            assert result.outcome == "completed"
            assert result.lost_updates == 0
            retransmits += result.retransmits
            drops += result.drops
            messages += result.messages
        assert drops > 0, "the fault plan never fired; the scenario is too small"
        # Fewer retransmissions than drops is expected: cumulative CHAN_ACKs
        # recover dropped acks for free and head-of-line retransmission jumps
        # the ack over buffered tails — but the machinery must have fired.
        assert retransmits > 0, "dropped payloads were never retransmitted"
        assert retransmits < messages / 5, f"unbounded retransmissions: {retransmits}/{messages}"

    @pytest.mark.parametrize("guarantee", ("loss_free", "order_preserving"))
    def test_killing_destination_mid_round_aborts_cleanly(self, guarantee):
        """A dst death mid-precopy fails the move with no leaked holds or tags."""
        for seed in range(5):
            spec = ChaosSpec(
                seed=seed * 53 + 1,
                guarantee=guarantee,
                mode="precopy",
                profile="lossy",
                kill="dst",
                kill_at_round=1,
            )
            result = run_chaos(spec)
            result.assert_ok()  # conservation covers holds, tags, dirty tracking
            assert result.outcome == "failed"
            assert "died" in (result.error or "")

    def test_killing_source_mid_move_fails_cleanly(self):
        spec = ChaosSpec(
            seed=77, guarantee="loss_free", mode="snapshot", profile="lossy", kill="src", kill_time=2e-3
        )
        result = run_chaos(spec)
        result.assert_ok()
        assert result.outcome == "failed"

    def test_liveness_sweep_detects_silent_crash(self):
        """With heartbeats on, an undeclared kill is found by the sweep."""
        spec = ChaosSpec(
            seed=11,
            guarantee="loss_free",
            mode="snapshot",
            profile="clean",
            kill="dst",
            kill_time=2e-3,
            detect="liveness",
        )
        result = run_chaos(spec)
        result.assert_ok()
        assert result.outcome == "failed"

    @pytest.mark.parametrize("mode", MODES)
    def test_destination_death_retries_onto_standby_loss_free(self, mode):
        """With a standby registered, a dst death re-drives the move loss-free."""
        for seed in range(5):
            spec = ChaosSpec(
                seed=seed * 41 + 9,
                guarantee="loss_free",
                mode=mode,
                profile="lossy",
                kill="dst",
                kill_time=2e-3 if mode == "snapshot" else None,
                kill_at_round=1 if mode == "precopy" else None,
                standby=True,
            )
            result = run_chaos(spec)
            result.assert_ok()
            assert result.outcome == "completed"
            assert result.retried_on_standby
            assert result.lost_updates == 0

    def test_same_seed_reproduces_bit_for_bit(self):
        """One seed fully determines the run: schedule, faults, and outcome."""
        spec = ChaosSpec(seed=4242, guarantee="order_preserving", mode="precopy", profile="chaotic")
        first = run_chaos(spec)
        second = run_chaos(spec)
        assert first.executed_events == second.executed_events
        assert first.settled_at == second.settled_at
        assert (first.outcome, first.delivered, first.retransmits, first.drops, first.dedup_discards) == (
            second.outcome,
            second.delivered,
            second.retransmits,
            second.drops,
            second.dedup_discards,
        )


class TestLossyDataPlaneProfile:
    """The lossy data-plane chaos axis: live traffic over a faulted, protected path.

    Instead of synchronous delivery, every live packet crosses a real
    simulated path whose middle hop drops, corrupts, and reorders frames
    (seeded :class:`~repro.net.links.LinkFaultPlan`) and runs
    LinkGuardian-style link-local protection.  The four PR 5 invariants must
    hold unchanged — the transfer above is entitled to a data plane that
    looks loss-free and (with ``strict_order``) order-preserving.
    """

    @pytest.mark.parametrize("data_profile", ("lossy-data-plane", "reordering-data-plane"))
    @pytest.mark.parametrize("mode", MODES)
    def test_order_preserving_move_over_faulty_path(self, mode, data_profile):
        """The acceptance scenario: an order_preserving (pre-copy) move over a
        path that drops and reorders completes with 0 lost and 0 reordered
        updates, and the faults genuinely fired."""
        wire_losses = reordered = 0
        for index in range(min(SEEDS, 4)):
            spec = ChaosSpec(
                seed=index * 389 + 17,
                guarantee="order_preserving",
                mode=mode,
                profile="lossy",
                data_profile=data_profile,
                packets=150,
                interval=1e-4,
            )
            result = run_chaos(spec)
            result.assert_ok()  # covers lost updates AND reordering at the owner
            assert result.outcome == "completed"
            assert result.lost_updates == 0
            assert result.data_abandoned == 0
            wire_losses += result.data_wire_losses
            reordered += result.data_reordered
        assert wire_losses + reordered > 0, "the data-plane fault plan never fired"

    def test_loose_order_protection_still_loss_free(self):
        """strict_order=False trades ordering for latency: repaired losses
        arrive late, which loss_free must tolerate (exactly-once, any order)."""
        for index in range(min(SEEDS, 3)):
            spec = ChaosSpec(
                seed=index * 211 + 5,
                guarantee="loss_free",
                mode="snapshot",
                profile="clean",
                data_profile="reordering-data-plane",
                data_strict_order=False,
                packets=120,
                interval=1e-4,
            )
            result = run_chaos(spec)
            result.assert_ok()
            assert result.outcome == "completed"
            assert result.lost_updates == 0

    def test_data_plane_chaos_is_seed_deterministic(self):
        spec = ChaosSpec(
            seed=99,
            guarantee="order_preserving",
            mode="precopy",
            profile="lossy",
            data_profile="lossy-data-plane",
            packets=100,
            interval=1e-4,
        )
        first = run_chaos(spec)
        second = run_chaos(spec)
        assert first.executed_events == second.executed_events
        assert first.settled_at == second.settled_at
        assert (first.data_frames, first.data_wire_losses, first.data_retransmits, first.data_reordered) == (
            second.data_frames,
            second.data_wire_losses,
            second.data_retransmits,
            second.data_reordered,
        )


class TestFailoverAppUnderChaos:
    """The rewritten failover app: pre-cloned standby + loss-free replay."""

    def _build(self):
        sim = Simulator()
        controller = MBController(
            sim,
            ControllerConfig(quiescence_timeout=0.2, heartbeat_interval=1e-3, liveness_timeout=4e-3),
        )
        northbound = NorthboundAPI(controller)
        primary = NAT(sim, "nat-primary")
        standby = NAT(sim, "nat-standby")
        controller.register(primary)
        controller.register(standby)
        return sim, controller, northbound, primary, standby

    def test_failover_recovers_onto_standby_with_loss_free_replay(self):
        from repro.apps import FailureRecoveryApp

        sim, controller, northbound, primary, standby = self._build()
        app = FailureRecoveryApp(sim, northbound, protected_mb="nat-primary", standby_mb="nat-standby")
        sim.run_until(app.arm())
        routing_calls = []

        def update_routing():
            routing_calls.append(sim.now)
            return sim.timeout(1e-4)

        app.enable_auto_failover(update_routing)
        # Phase 1: connections establish mappings; the background sync flushes
        # them to the standby as they appear.
        for index in range(6):
            sim.schedule(1e-4 * index, primary.receive, tcp_packet(f"10.0.0.{index + 1}", "8.8.8.8", 6000 + index, 443), 1)
        sim.run(until=0.02)
        assert app.events_seen == 6
        assert app.sync_writes > 0
        presynced_before_kill = len(app._synced)
        assert presynced_before_kill == 6
        # Phase 2: a late burst of mappings, then the primary dies before the
        # background sync window can flush them — the loss-free replay must
        # deliver exactly that delta during recovery.
        for index in range(6, 9):
            primary.receive(tcp_packet(f"10.0.0.{index + 1}", "8.8.8.8", 6000 + index, 443), 1)
        sim.run(until=sim.now + 4e-4)  # events reach the app; sync window still open
        controller.kill("nat-primary")  # declared dead before the sync flushes
        sim.run(until=sim.now + 0.2)
        assert app.auto_recovery is not None and app.auto_recovery.done
        report = app.auto_recovery.result
        assert routing_calls, "recovery never flipped routing"
        assert report.details["mappings_replayed"] >= 3
        assert report.details["mappings_presynced"] >= presynced_before_kill
        assert report.details["mappings_replayed"] + report.details["mappings_presynced"] == 9
        # Loss-free: every shadowed mapping is usable at the standby, keeping
        # its original external port.
        originals = {
            (mapping.internal_ip, mapping.internal_port): mapping.external_port
            for _, mapping in primary.support_store.items()
        }
        assert len(originals) == 9
        for index in range(9):
            result = standby.process_packet(tcp_packet(f"10.0.0.{index + 1}", "8.8.8.8", 6000 + index, 443))
            assert result.packet.tp_src == originals[(f"10.0.0.{index + 1}", 6000 + index)]

    def test_fully_synced_standby_failover_is_pure_reroute(self):
        from repro.apps import FailureRecoveryApp

        sim, controller, northbound, primary, standby = self._build()
        app = FailureRecoveryApp(sim, northbound, protected_mb="nat-primary", standby_mb="nat-standby")
        sim.run_until(app.arm())
        app.enable_auto_failover(lambda: sim.timeout(1e-4))
        for index in range(5):
            sim.schedule(1e-4 * index, primary.receive, tcp_packet(f"10.0.1.{index + 1}", "8.8.8.8", 7000 + index, 443), 1)
        sim.run(until=0.05)  # everything synced in the background
        controller.kill("nat-primary")
        sim.run(until=sim.now + 0.2)
        report = app.auto_recovery.result
        assert report.details["mappings_replayed"] == 0
        assert report.details["mappings_presynced"] == 5
