"""Shared fixtures for the OpenMB reproduction test suite."""

from __future__ import annotations

import pytest

from repro.core import ControllerConfig, FlowKey, MBController, NorthboundAPI
from repro.middleboxes import IDS, DummyMiddlebox, PassiveMonitor
from repro.net import Simulator, tcp_packet


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def flow_key() -> FlowKey:
    return FlowKey(6, "10.0.0.1", "192.0.2.10", 12345, 80)


@pytest.fixture
def controller(sim: Simulator) -> MBController:
    """An MB controller with a short quiescence timeout so tests finish quickly."""
    return MBController(sim, ControllerConfig(quiescence_timeout=0.2))


@pytest.fixture
def northbound(controller: MBController) -> NorthboundAPI:
    return NorthboundAPI(controller)


@pytest.fixture
def monitor_pair(sim: Simulator, controller: MBController):
    """Two registered passive monitors, the first populated with 30 flows."""
    mon1 = PassiveMonitor(sim, "mon1")
    mon2 = PassiveMonitor(sim, "mon2")
    controller.register(mon1)
    controller.register(mon2)
    for index in range(30):
        packet = tcp_packet(f"10.0.{index % 3}.{index + 1}", "192.0.2.10", 1000 + index, 80, b"payload")
        sim.schedule(0.0005 * index, mon1.receive, packet, 1)
    sim.run(until=0.1)
    return mon1, mon2


@pytest.fixture
def ids_pair(sim: Simulator, controller: MBController):
    """Two registered IDS instances, the first having seen a few connections."""
    ids1 = IDS(sim, "ids1")
    ids2 = IDS(sim, "ids2")
    controller.register(ids1)
    controller.register(ids2)
    return ids1, ids2


@pytest.fixture
def dummy_pair(sim: Simulator, controller: MBController):
    """Two registered dummy middleboxes; the first holds 100 synthetic chunks."""
    src = DummyMiddlebox(sim, "dummy-src", chunk_count=100)
    dst = DummyMiddlebox(sim, "dummy-dst")
    controller.register(src)
    controller.register(dst)
    return src, dst


def run_until(sim: Simulator, future, limit: float = 1000.0):
    """Helper used across tests: drive the simulator until a future resolves."""
    return sim.run_until(future, limit=limit)
