"""Unit tests for packets and flow tables."""


from repro.core.flowspace import PROTO_TCP, PROTO_UDP, FlowPattern
from repro.net.flowtable import Action, ActionType, FlowRule, FlowTable
from repro.net.packet import ACK, FIN, HEADER_BYTES, SYN, tcp_packet, udp_packet


class TestPacket:
    def test_flow_key_matches_fields(self):
        packet = tcp_packet("10.0.0.1", "192.0.2.1", 1234, 80)
        key = packet.flow_key()
        assert key.nw_src == "10.0.0.1" and key.tp_dst == 80 and key.nw_proto == PROTO_TCP

    def test_wire_size_includes_headers(self):
        packet = tcp_packet("10.0.0.1", "192.0.2.1", 1, 2, b"x" * 100)
        assert packet.wire_size == HEADER_BYTES + 100

    def test_encoded_size_overrides_payload_length(self):
        packet = tcp_packet("10.0.0.1", "192.0.2.1", 1, 2, b"x" * 1000)
        packet.encoded_size = 60
        assert packet.wire_size == HEADER_BYTES + 60

    def test_flags(self):
        packet = tcp_packet("10.0.0.1", "192.0.2.1", 1, 2, flags={SYN, ACK})
        assert packet.has_flag(SYN) and packet.has_flag(ACK) and not packet.has_flag(FIN)

    def test_udp_packet_protocol(self):
        packet = udp_packet("10.0.0.1", "192.0.2.1", 53, 5353)
        assert packet.is_udp and not packet.is_tcp
        assert packet.nw_proto == PROTO_UDP

    def test_copy_gets_fresh_id_and_independent_annotations(self):
        packet = tcp_packet("10.0.0.1", "192.0.2.1", 1, 2)
        packet.annotations["tag"] = 1
        duplicate = packet.copy()
        duplicate.annotations["tag"] = 2
        assert duplicate.packet_id != packet.packet_id
        assert packet.annotations["tag"] == 1

    def test_reply_reverses_direction(self):
        packet = tcp_packet("10.0.0.1", "192.0.2.1", 1234, 80)
        reply = packet.reply(b"pong")
        assert reply.nw_src == "192.0.2.1" and reply.tp_dst == 1234
        assert reply.payload == b"pong"

    def test_packet_ids_increase(self):
        first = tcp_packet("10.0.0.1", "192.0.2.1", 1, 2)
        second = tcp_packet("10.0.0.1", "192.0.2.1", 1, 2)
        assert second.packet_id > first.packet_id


class TestActions:
    def test_constructors(self):
        assert Action.output(3).type is ActionType.OUTPUT and Action.output(3).port == 3
        assert Action.drop().type is ActionType.DROP
        assert Action.to_controller().type is ActionType.CONTROLLER
        assert Action.buffer().type is ActionType.BUFFER


class TestFlowTable:
    def packet(self, dst="192.0.2.1", dport=80):
        return tcp_packet("10.0.0.1", dst, 1234, dport)

    def test_lookup_miss_returns_none(self):
        assert FlowTable().lookup(self.packet()) is None

    def test_lookup_matches_pattern(self):
        table = FlowTable()
        rule = table.add(FlowRule(FlowPattern(nw_dst="192.0.2.0/24"), [Action.output(1)]))
        assert table.lookup(self.packet()) is rule
        assert table.lookup(self.packet(dst="198.51.100.1")) is None

    def test_higher_priority_wins(self):
        table = FlowTable()
        low = table.add(FlowRule(FlowPattern.wildcard(), [Action.drop()], priority=10))
        high = table.add(FlowRule(FlowPattern(tp_dst=80), [Action.output(2)], priority=200))
        assert table.lookup(self.packet()) is high
        assert table.lookup(self.packet(dport=443)) is low

    def test_specificity_breaks_priority_ties(self):
        table = FlowTable()
        broad = table.add(FlowRule(FlowPattern(nw_dst="192.0.2.0/24"), [Action.output(1)], priority=100))
        narrow = table.add(FlowRule(FlowPattern(nw_dst="192.0.2.1", tp_dst=80), [Action.output(2)], priority=100))
        assert table.lookup(self.packet()) is narrow
        assert broad in table

    def test_newest_rule_wins_ties_with_same_specificity(self):
        table = FlowTable()
        table.add(FlowRule(FlowPattern(tp_dst=80), [Action.output(1)], priority=100))
        newer = table.add(FlowRule(FlowPattern(tp_dst=80), [Action.output(2)], priority=100))
        assert table.lookup(self.packet()) is newer

    def test_remove_by_cookie(self):
        table = FlowTable()
        table.add(FlowRule(FlowPattern(tp_dst=80), [Action.output(1)], cookie="route-1"))
        table.add(FlowRule(FlowPattern(tp_dst=443), [Action.output(1)], cookie="route-1"))
        table.add(FlowRule(FlowPattern(tp_dst=22), [Action.output(1)], cookie="route-2"))
        assert table.remove_by_cookie("route-1") == 2
        assert len(table) == 1

    def test_remove_specific_rule(self):
        table = FlowTable()
        rule = table.add(FlowRule(FlowPattern(tp_dst=80), [Action.output(1)]))
        assert table.remove(rule)
        assert not table.remove(rule)

    def test_remove_matching_pattern(self):
        table = FlowTable()
        table.add(FlowRule(FlowPattern(tp_dst=80), [Action.output(1)]))
        table.add(FlowRule(FlowPattern(tp_dst=80), [Action.output(2)]))
        assert table.remove_matching(FlowPattern(tp_dst=80)) == 2

    def test_rule_counters(self):
        table = FlowTable()
        rule = table.add(FlowRule(FlowPattern(tp_dst=80), [Action.output(1)]))
        packet = self.packet()
        rule.record(packet)
        assert rule.packets_matched == 1
        assert rule.bytes_matched == packet.wire_size
