"""Unit tests for the NAT, load balancer, and firewall middleboxes."""

import pytest

from repro.core.flowspace import FlowPattern
from repro.core.state import StateRole
from repro.middleboxes.firewall import Firewall, FirewallRule
from repro.middleboxes.loadbalancer import LoadBalancer
from repro.middleboxes.nat import EVENT_MAPPING_CREATED, NAT, NatMapping
from repro.net import Simulator, tcp_packet


class TestNAT:
    def _nat(self):
        return NAT(Simulator(), "nat", external_ip="203.0.113.1", internal_prefix="10.0.0.0/8")

    def test_outbound_translation_allocates_port(self):
        nat = self._nat()
        result = nat.process_packet(tcp_packet("10.0.0.5", "8.8.8.8", 5555, 80))
        assert result.packet.nw_src == "203.0.113.1"
        assert result.packet.tp_src >= 10_000
        assert len(nat.support_store) == 1

    def test_same_flow_reuses_mapping(self):
        nat = self._nat()
        first = nat.process_packet(tcp_packet("10.0.0.5", "8.8.8.8", 5555, 80))
        second = nat.process_packet(tcp_packet("10.0.0.5", "8.8.8.8", 5555, 80))
        assert first.packet.tp_src == second.packet.tp_src
        assert len(nat.support_store) == 1

    def test_distinct_flows_get_distinct_ports(self):
        nat = self._nat()
        a = nat.process_packet(tcp_packet("10.0.0.5", "8.8.8.8", 5555, 80))
        b = nat.process_packet(tcp_packet("10.0.0.6", "8.8.8.8", 5555, 80))
        assert a.packet.tp_src != b.packet.tp_src

    def test_inbound_translation_back_to_internal_host(self):
        nat = self._nat()
        outbound = nat.process_packet(tcp_packet("10.0.0.5", "8.8.8.8", 5555, 80)).packet
        reply = tcp_packet("8.8.8.8", outbound.nw_src, 80, outbound.tp_src)
        result = nat.process_packet(reply)
        assert result.packet.nw_dst == "10.0.0.5"
        assert result.packet.tp_dst == 5555

    def test_unsolicited_inbound_dropped(self):
        nat = self._nat()
        result = nat.process_packet(tcp_packet("8.8.8.8", "203.0.113.1", 80, 44444))
        from repro.middleboxes.base import Verdict

        assert result.verdict is Verdict.DROP

    def test_mapping_created_event(self):
        nat = self._nat()
        events = []
        nat.set_event_sink(events.append)
        nat.enable_events(EVENT_MAPPING_CREATED)
        nat.process_packet(tcp_packet("10.0.0.5", "8.8.8.8", 5555, 80))
        assert len(events) == 1
        assert events[0].values["external_ip"] == "203.0.113.1"

    def test_mapping_state_moves_between_instances(self):
        sim = Simulator()
        old = NAT(sim, "nat-old")
        new = NAT(sim, "nat-new")
        outbound = old.process_packet(tcp_packet("10.0.0.5", "8.8.8.8", 5555, 80)).packet
        for chunk in old.get_perflow(StateRole.SUPPORTING, FlowPattern.wildcard()):
            new.put_perflow(chunk)
        reply = tcp_packet("8.8.8.8", outbound.nw_src, 80, outbound.tp_src)
        translated = new.process_packet(reply).packet
        assert translated.nw_dst == "10.0.0.5"

    def test_static_mappings_restored_from_config(self):
        nat = self._nat()
        nat.set_config("NAT.StaticMappings", ["10.0.0.5:5555=203.0.113.1:12345"])
        result = nat.process_packet(tcp_packet("10.0.0.5", "8.8.8.8", 5555, 80))
        assert result.packet.tp_src == 12345

    def test_expire_idle_mappings(self):
        sim = Simulator()
        nat = NAT(sim, "nat")
        nat.set_config("NAT.MappingTimeout", [1.0])
        nat.process_packet(tcp_packet("10.0.0.5", "8.8.8.8", 5555, 80))
        sim.run(until=5.0)
        assert nat.expire_idle_mappings() == 1
        assert len(nat.support_store) == 0

    def test_port_exhaustion(self):
        nat = NAT(Simulator(), "nat", port_range=(10_000, 10_001))
        nat.process_packet(tcp_packet("10.0.0.1", "8.8.8.8", 1, 80))
        nat.process_packet(tcp_packet("10.0.0.2", "8.8.8.8", 1, 80))
        from repro.core.errors import MiddleboxError

        with pytest.raises(MiddleboxError):
            nat.process_packet(tcp_packet("10.0.0.3", "8.8.8.8", 1, 80))

    def test_mapping_payload_roundtrip(self):
        mapping = NatMapping("10.0.0.5", 5555, "203.0.113.1", 10000, created_at=1.0, last_used=2.0)
        assert NatMapping.from_payload(mapping.to_payload()) == mapping


class TestLoadBalancer:
    def _lb(self, backends=("10.10.0.1", "10.10.0.2")):
        return LoadBalancer(Simulator(), "lb", vip="198.51.100.10", backends=backends)

    def test_round_robin_assignment(self):
        lb = self._lb()
        a = lb.process_packet(tcp_packet("10.0.0.1", "198.51.100.10", 1001, 80))
        b = lb.process_packet(tcp_packet("10.0.0.2", "198.51.100.10", 1002, 80))
        assert {a.packet.nw_dst, b.packet.nw_dst} == {"10.10.0.1", "10.10.0.2"}

    def test_same_flow_stays_on_same_backend(self):
        lb = self._lb()
        first = lb.process_packet(tcp_packet("10.0.0.1", "198.51.100.10", 1001, 80))
        second = lb.process_packet(tcp_packet("10.0.0.1", "198.51.100.10", 1001, 80))
        assert first.packet.nw_dst == second.packet.nw_dst
        assert len(lb.support_store) == 1

    def test_non_vip_traffic_passes_through(self):
        lb = self._lb()
        result = lb.process_packet(tcp_packet("10.0.0.1", "192.0.2.1", 1001, 80))
        assert result.packet is None
        assert len(lb.support_store) == 0

    def test_no_backends_configured_raises(self):
        from repro.core.errors import MiddleboxError

        lb = self._lb(backends=())
        with pytest.raises(MiddleboxError):
            lb.process_packet(tcp_packet("10.0.0.1", "198.51.100.10", 1001, 80))

    def test_flow_assignment_event(self):
        lb = self._lb()
        events = []
        lb.set_event_sink(events.append)
        lb.enable_events("lb.flow_assigned")
        lb.process_packet(tcp_packet("10.0.0.1", "198.51.100.10", 1001, 80))
        assert events and events[0].values["backend"] in lb.backends

    def test_assignment_moves_with_state(self):
        """Moving the assignment prevents an in-progress transaction from switching servers (R4)."""
        sim = Simulator()
        old = LoadBalancer(sim, "lb-old", backends=["10.10.0.1", "10.10.0.2"])
        new = LoadBalancer(sim, "lb-new", backends=["10.10.0.1", "10.10.0.2"])
        first = old.process_packet(tcp_packet("10.0.0.1", "198.51.100.10", 1001, 80))
        for chunk in old.get_perflow(StateRole.SUPPORTING, FlowPattern(nw_src="10.0.0.1")):
            new.put_perflow(chunk)
        second = new.process_packet(tcp_packet("10.0.0.1", "198.51.100.10", 1001, 80))
        assert second.packet.nw_dst == first.packet.nw_dst

    def test_granularity_is_source_based(self):
        """The LB keys state by source only; destination-based queries must error (section 4.1.2)."""
        from repro.core.errors import GranularityError

        lb = self._lb()
        lb.process_packet(tcp_packet("10.0.0.1", "198.51.100.10", 1001, 80))
        with pytest.raises(GranularityError):
            lb.get_perflow(StateRole.SUPPORTING, FlowPattern(nw_dst="198.51.100.10"))
        assert len(lb.get_perflow(StateRole.SUPPORTING, FlowPattern(nw_src="10.0.0.1"))) == 1

    def test_reconfigure_backends(self):
        lb = self._lb()
        lb.set_backends(["10.20.0.1"])
        result = lb.process_packet(tcp_packet("10.0.0.9", "198.51.100.10", 1001, 80))
        assert result.packet.nw_dst == "10.20.0.1"


class TestFirewall:
    def _fw(self, default_allow=False):
        rules = [
            FirewallRule(FlowPattern(nw_dst="192.0.2.0/24", tp_dst=80), allow=True),
            FirewallRule(FlowPattern(tp_dst=23), allow=False),
        ]
        return Firewall(Simulator(), "fw", rules=rules, default_allow=default_allow)

    def test_allowed_flow_forwarded_and_tracked(self):
        fw = self._fw()
        result = fw.process_packet(tcp_packet("10.0.0.1", "192.0.2.5", 1000, 80))
        from repro.middleboxes.base import Verdict

        assert result.verdict is Verdict.FORWARD
        assert len(fw.support_store) == 1

    def test_denied_flow_dropped(self):
        fw = self._fw()
        result = fw.process_packet(tcp_packet("10.0.0.1", "192.0.2.5", 1000, 23))
        from repro.middleboxes.base import Verdict

        assert result.verdict is Verdict.DROP
        assert fw.denied_packets == 1

    def test_default_policy_applies_when_no_rule_matches(self):
        deny_by_default = self._fw(default_allow=False)
        allow_by_default = self._fw(default_allow=True)
        packet = tcp_packet("10.0.0.1", "198.51.100.7", 1000, 443)
        from repro.middleboxes.base import Verdict

        assert deny_by_default.process_packet(packet).verdict is Verdict.DROP
        assert allow_by_default.process_packet(packet).verdict is Verdict.FORWARD

    def test_return_traffic_allowed_for_established_connection(self):
        fw = self._fw()
        fw.process_packet(tcp_packet("10.0.0.1", "192.0.2.5", 1000, 80))
        reply = tcp_packet("192.0.2.5", "10.0.0.1", 80, 1000)
        from repro.middleboxes.base import Verdict

        assert fw.process_packet(reply).verdict is Verdict.FORWARD

    def test_rule_order_matters(self):
        rules = [
            FirewallRule(FlowPattern(tp_dst=80), allow=False),
            FirewallRule(FlowPattern(nw_dst="192.0.2.0/24"), allow=True),
        ]
        fw = Firewall(Simulator(), "fw", rules=rules)
        from repro.middleboxes.base import Verdict

        assert fw.process_packet(tcp_packet("10.0.0.1", "192.0.2.5", 1000, 80)).verdict is Verdict.DROP

    def test_rules_are_configuration_state(self):
        fw = self._fw()
        exported = fw.get_config("FW.Rules")
        assert len(exported["FW.Rules"]) == 2
        other = Firewall(Simulator(), "fw2")
        other.set_config("FW.Rules", exported["FW.Rules"])
        assert len(other.rules()) == 2
        assert other.rules()[0].allow is True

    def test_rule_config_value_roundtrip(self):
        rule = FirewallRule(FlowPattern(nw_src="10.0.0.0/8", tp_dst=22), allow=False)
        restored = FirewallRule.from_config_value(rule.to_config_value())
        assert restored.pattern == rule.pattern
        assert restored.allow is False

    def test_add_rule(self):
        fw = self._fw()
        fw.add_rule(FirewallRule(FlowPattern(tp_dst=8080), allow=True))
        assert len(fw.rules()) == 3

    def test_established_state_moves_between_instances(self):
        """Without moving connection state, return traffic of admitted flows would be dropped."""
        sim = Simulator()
        old = self._fw()
        new = Firewall(sim, "fw-new", rules=old.rules())
        old.process_packet(tcp_packet("10.0.0.1", "192.0.2.5", 1000, 80))
        for chunk in old.get_perflow(StateRole.SUPPORTING, FlowPattern.wildcard()):
            new.put_perflow(chunk)
        reply = tcp_packet("192.0.2.5", "10.0.0.1", 80, 1000)
        from repro.middleboxes.base import Verdict

        assert new.process_packet(reply).verdict is Verdict.FORWARD

    def test_connection_allowed_event(self):
        fw = self._fw()
        events = []
        fw.set_event_sink(events.append)
        fw.enable_events("fw.connection_allowed")
        fw.process_packet(tcp_packet("10.0.0.1", "192.0.2.5", 1000, 80))
        assert [event.code for event in events] == ["fw.connection_allowed"]
