"""Unit tests for links, topology, switches, SDN controller, and monitoring probes."""

import pytest

from repro.core.errors import NetworkError
from repro.core.flowspace import FlowPattern
from repro.net import (
    Action,
    DeliveryRecorder,
    FlowRule,
    LatencyProbe,
    SDNController,
    Simulator,
    Switch,
    Topology,
    tcp_packet,
)
from repro.net.addresses import SubnetAllocator, mac_for_index, same_subnet
from repro.net.links import Link
from repro.net.topology import Node


class _Sink(Node):
    """A node that records what it receives."""

    def __init__(self, sim, name):
        super().__init__(sim, name)
        self.received = []

    def receive(self, packet, in_port):
        self.received.append((packet, in_port, self.sim.now))


class TestAddresses:
    def test_allocator_hands_out_consecutive_hosts(self):
        allocator = SubnetAllocator("10.1.1.0/24")
        assert allocator.allocate() == "10.1.1.1"
        assert allocator.allocate() == "10.1.1.2"
        assert allocator.contains("10.1.1.77")
        assert not allocator.contains("10.1.2.1")

    def test_allocator_exhaustion(self):
        allocator = SubnetAllocator("10.1.1.0/30")
        allocator.allocate()
        allocator.allocate()
        with pytest.raises(ValueError):
            allocator.allocate()

    def test_allocate_many(self):
        allocator = SubnetAllocator("10.2.0.0/16")
        assert len(allocator.allocate_many(5)) == 5

    def test_mac_for_index_is_deterministic_and_local(self):
        assert mac_for_index(5) == mac_for_index(5)
        assert mac_for_index(5).startswith("02:")
        assert mac_for_index(5) != mac_for_index(6)

    def test_same_subnet(self):
        assert same_subnet("10.1.1.4", "10.1.1.200", 24)
        assert not same_subnet("10.1.1.4", "10.1.2.4", 24)


class TestLink:
    def test_delivery_after_latency_and_serialisation(self):
        sim = Simulator()
        a, b = _Sink(sim, "a"), _Sink(sim, "b")
        link = Link(sim, a, 1, b, 1, latency=1e-3, bandwidth=1e6)
        a.attach_link(1, link)
        b.attach_link(1, link)
        packet = tcp_packet("10.0.0.1", "10.0.0.2", 1, 2, b"x" * 946)  # 1000 bytes on the wire
        delivery = link.transmit(packet, a)
        assert delivery == pytest.approx(1e-3 + 1000 / 1e6)
        sim.run()
        assert len(b.received) == 1 and b.received[0][1] == 1

    def test_back_to_back_packets_queue(self):
        sim = Simulator()
        a, b = _Sink(sim, "a"), _Sink(sim, "b")
        link = Link(sim, a, 1, b, 1, latency=0.0, bandwidth=1000.0)
        a.attach_link(1, link)
        b.attach_link(1, link)
        p1 = tcp_packet("10.0.0.1", "10.0.0.2", 1, 2, b"x" * 446)  # 500 B -> 0.5 s
        p2 = tcp_packet("10.0.0.1", "10.0.0.2", 1, 2, b"x" * 446)
        first = link.transmit(p1, a)
        second = link.transmit(p2, a)
        assert second == pytest.approx(first + 0.5)

    def test_down_link_drops(self):
        sim = Simulator()
        a, b = _Sink(sim, "a"), _Sink(sim, "b")
        link = Link(sim, a, 1, b, 1)
        a.attach_link(1, link)
        b.attach_link(1, link)
        link.set_up(False)
        # A drop is None, never a pseudo-delivery-time sentinel.
        assert link.transmit(tcp_packet("10.0.0.1", "10.0.0.2", 1, 2), a) is None
        sim.run()
        assert b.received == []
        assert link.stats_a_to_b.drops == 1

    def test_down_link_drop_accounting_both_directions(self):
        sim = Simulator()
        a, b = _Sink(sim, "a"), _Sink(sim, "b")
        link = Link(sim, a, 1, b, 1)
        a.attach_link(1, link)
        b.attach_link(1, link)
        link.set_up(False)
        for _ in range(3):
            assert link.transmit(tcp_packet("10.0.0.1", "10.0.0.2", 1, 2), a) is None
        assert link.transmit(tcp_packet("10.0.0.2", "10.0.0.1", 2, 1), b) is None
        sim.run()
        assert link.stats_a_to_b.drops == 3
        assert link.stats_b_to_a.drops == 1
        assert link.stats_a_to_b.lost == 3
        # Dropped frames never count as transmitted wire traffic.
        assert link.stats_a_to_b.packets == 0
        assert link.stats_b_to_a.packets == 0

    def test_same_name_endpoints_do_not_share_serialisation(self):
        # Regression: the serialisation queue used to be keyed by node *name*,
        # so two endpoints that happened to share a name serialised against
        # each other.  Direct Link construction bypasses the topology's
        # duplicate-name rejection, which is exactly the aliasing scenario.
        sim = Simulator()
        a, b = _Sink(sim, "twin"), _Sink(sim, "twin")
        link = Link(sim, a, 1, b, 1, latency=0.0, bandwidth=1000.0)
        a.attach_link(1, link)
        b.attach_link(1, link)
        payload = b"x" * 446  # 500 B on the wire -> 0.5 s serialisation
        forward = link.transmit(tcp_packet("10.0.0.1", "10.0.0.2", 1, 2, payload), a)
        reverse = link.transmit(tcp_packet("10.0.0.2", "10.0.0.1", 2, 1, payload), b)
        # Opposite directions are independent wires: both finish at 0.5 s.
        assert forward == pytest.approx(0.5)
        assert reverse == pytest.approx(0.5)

    def test_unfaulted_link_schedule_matches_seed_golden(self):
        # With no fault plan and no protection the link must schedule
        # bit-for-bit like the seed implementation: same delivery times, one
        # executed event per delivered packet, no extra timer events.
        sim = Simulator()
        a, b = _Sink(sim, "a"), _Sink(sim, "b")
        link = Link(sim, a, 1, b, 1, latency=1e-3, bandwidth=1e6)
        a.attach_link(1, link)
        b.attach_link(1, link)
        payload = b"x" * 946  # 1000 bytes on the wire
        deliveries = [
            link.transmit(tcp_packet("10.0.0.1", "10.0.0.2", 1, 2, payload), a) for _ in range(3)
        ]
        assert deliveries == [
            pytest.approx(1e-3 + 1e-3),
            pytest.approx(1e-3 + 2e-3),
            pytest.approx(1e-3 + 3e-3),
        ]
        sim.run()
        assert sim.executed_events == 3
        assert [at for _, _, at in b.received] == [pytest.approx(t) for t in deliveries]

    def test_other_end_and_port_on(self):
        sim = Simulator()
        a, b = _Sink(sim, "a"), _Sink(sim, "b")
        link = Link(sim, a, 3, b, 7)
        assert link.other_end(a) is b
        assert link.port_on(b) == 7
        with pytest.raises(ValueError):
            link.other_end(_Sink(sim, "c"))


class TestTopology:
    def test_connect_assigns_ports_and_builds_graph(self):
        sim = Simulator()
        topo = Topology(sim)
        h1 = topo.add_host("h1", "10.0.0.1")
        h2 = topo.add_host("h2", "10.0.0.2")
        sw = topo.add_node(Switch(sim, "s1"))
        topo.connect(h1, sw)
        topo.connect(sw, h2)
        assert h1.port_to(sw) == 1
        assert sw.port_to(h2) == 2
        assert topo.shortest_path(h1, h2) == ["h1", "s1", "h2"]

    def test_duplicate_node_name_rejected(self):
        sim = Simulator()
        topo = Topology(sim)
        topo.add_host("h1", "10.0.0.1")
        with pytest.raises(NetworkError):
            topo.add_host("h1", "10.0.0.2")

    def test_unknown_node_rejected(self):
        topo = Topology(Simulator())
        with pytest.raises(NetworkError):
            topo.get("ghost")

    def test_duplicate_name_attachment_rejected(self):
        # Regression: an unregistered node object wearing a registered node's
        # name used to slip through _resolve and alias it in every name-keyed
        # structure.  It must be rejected at connect time.
        sim = Simulator()
        topo = Topology(sim)
        h1 = topo.add_host("h1", "10.0.0.1")
        topo.add_host("h2", "10.0.0.2")
        from repro.net.topology import Host

        impostor = Host(sim, "h2", "10.9.9.9")  # same name, different object
        with pytest.raises(NetworkError, match="duplicate-name"):
            topo.connect(h1, impostor)
        assert topo.links == []

    def test_path_through_waypoints(self):
        sim = Simulator()
        topo = Topology(sim)
        h1 = topo.add_host("h1", "10.0.0.1")
        h2 = topo.add_host("h2", "10.0.0.2")
        s1, s2 = topo.add_node(Switch(sim, "s1")), topo.add_node(Switch(sim, "s2"))
        mb = topo.add_host("mb", "0.0.0.0")
        topo.connect(h1, s1)
        topo.connect(s1, s2)
        topo.connect(s1, mb)
        topo.connect(mb, s2)
        topo.connect(s2, h2)
        assert topo.path_through(h1, ["mb"], h2) == ["h1", "s1", "mb", "s2", "h2"]

    def test_no_path_raises(self):
        sim = Simulator()
        topo = Topology(sim)
        topo.add_host("h1", "10.0.0.1")
        topo.add_host("h2", "10.0.0.2")
        with pytest.raises(NetworkError):
            topo.shortest_path("h1", "h2")

    def test_host_by_ip(self):
        topo = Topology(Simulator())
        host = topo.add_host("h1", "10.0.0.1")
        assert topo.host_by_ip("10.0.0.1") is host
        with pytest.raises(NetworkError):
            topo.host_by_ip("10.9.9.9")

    def test_link_between(self):
        sim = Simulator()
        topo = Topology(sim)
        h1 = topo.add_host("h1", "10.0.0.1")
        h2 = topo.add_host("h2", "10.0.0.2")
        topo.connect(h1, h2)
        assert topo.link_between(h1, h2) is topo.links[0]


class TestSwitch:
    def _wire(self):
        sim = Simulator()
        topo = Topology(sim)
        h1 = topo.add_host("h1", "10.0.0.1")
        h2 = topo.add_host("h2", "192.0.2.1")
        sw = topo.add_node(Switch(sim, "s1"))
        topo.connect(h1, sw)
        topo.connect(sw, h2)
        return sim, topo, h1, h2, sw

    def test_forwards_matching_packets(self):
        sim, topo, h1, h2, sw = self._wire()
        sw.install_rule(FlowRule(FlowPattern(nw_dst="192.0.2.0/24"), [Action.output(sw.port_to(h2))]))
        h1.send(tcp_packet("10.0.0.1", "192.0.2.1", 1, 80))
        sim.run()
        assert len(h2.received) == 1
        assert sw.stats.packets_forwarded == 1

    def test_table_miss_uses_default_drop(self):
        sim, topo, h1, h2, sw = self._wire()
        h1.send(tcp_packet("10.0.0.1", "192.0.2.1", 1, 80))
        sim.run()
        assert h2.received == []
        assert sw.stats.table_misses == 1
        assert sw.stats.packets_dropped == 1

    def test_never_reflects_out_ingress_port(self):
        sim, topo, h1, h2, sw = self._wire()
        sw.install_rule(FlowRule(FlowPattern.wildcard(), [Action.output(sw.port_to(h1))]))
        h1.send(tcp_packet("10.0.0.1", "192.0.2.1", 1, 80))
        sim.run()
        assert h1.received == []
        assert sw.stats.packets_dropped == 1

    def test_controller_action_invokes_packet_in(self):
        sim, topo, h1, h2, sw = self._wire()
        seen = []
        sw.set_packet_in_handler(lambda switch, packet, port: seen.append((switch.name, port)))
        sw.install_rule(FlowRule(FlowPattern.wildcard(), [Action.to_controller()]))
        h1.send(tcp_packet("10.0.0.1", "192.0.2.1", 1, 80))
        sim.run()
        assert seen == [("s1", sw.port_to(h1))]

    def test_buffer_and_release_pattern(self):
        sim, topo, h1, h2, sw = self._wire()
        pattern = FlowPattern(nw_dst="192.0.2.0/24")
        sw.install_rule(FlowRule(pattern, [Action.output(sw.port_to(h2))]))
        sw.buffer_pattern(pattern)
        for _ in range(3):
            h1.send(tcp_packet("10.0.0.1", "192.0.2.1", 1, 80))
        sim.run(until=0.1)
        assert h2.received == []
        assert sw.buffered_count(pattern) == 3
        released = sw.release_pattern(pattern)
        sim.run()
        assert len(released) == 3
        assert all(duration >= 0 for _, duration in released)
        assert len(h2.received) == 3

    def test_release_pays_forward_latency(self):
        # Regression: released packets used to be fed straight into the
        # pipeline, skipping the forward_latency hop every fresh arrival pays.
        sim, topo, h1, h2, sw = self._wire()
        pattern = FlowPattern(nw_dst="192.0.2.0/24")
        sw.install_rule(FlowRule(pattern, [Action.output(sw.port_to(h2))]))
        sw.buffer_pattern(pattern)
        h1.send(tcp_packet("10.0.0.1", "192.0.2.1", 1, 80))
        sim.run(until=0.1)
        release_time = sim.now
        sw.release_pattern(pattern)
        sim.run()
        assert len(h2.received) == 1
        # Delivery happens strictly after release + the fabric hop (plus the
        # egress link's latency), never at the release instant itself.
        assert h2.received[0].created_at < release_time
        assert sim.now >= release_time + sw.forward_latency

    def test_release_rebuffers_into_overlapping_pattern(self):
        # Regression: a packet released while an overlapping pattern was
        # still buffering escaped re-buffering, breaking Split/Merge suspend
        # semantics.  Release must re-run the active-buffer check.
        sim, topo, h1, h2, sw = self._wire()
        narrow = FlowPattern(nw_dst="192.0.2.1/32")
        wide = FlowPattern(nw_dst="192.0.2.0/24")
        sw.install_rule(FlowRule(wide, [Action.output(sw.port_to(h2))]))
        sw.buffer_pattern(narrow)
        h1.send(tcp_packet("10.0.0.1", "192.0.2.1", 1, 80))
        sim.run(until=0.1)
        assert sw.buffered_count(narrow) == 1
        sw.buffer_pattern(wide)  # overlapping suspend starts while held
        sw.release_pattern(narrow)
        sim.run(until=0.2)
        # The released packet must land in the still-suspended wide buffer,
        # not escape to h2.
        assert h2.received == []
        assert sw.buffered_count(wide) == 1
        sw.release_pattern(wide)
        sim.run()
        assert len(h2.received) == 1

    def test_multi_pattern_buffer_first_match_order(self):
        # Overlapping suspended patterns: the first-inserted matching pattern
        # captures the packet (dict insertion order), and counters follow.
        sim, topo, h1, h2, sw = self._wire()
        first = FlowPattern(nw_dst="192.0.2.0/24")
        second = FlowPattern(nw_dst="192.0.2.1/32")
        sw.buffer_pattern(first)
        sw.buffer_pattern(second)
        h1.send(tcp_packet("10.0.0.1", "192.0.2.1", 1, 80))
        sim.run(until=0.1)
        assert sw.buffered_count(first) == 1
        assert sw.buffered_count(second) == 0
        assert sw.stats.packets_buffered == 1


class TestSDNController:
    def _scenario(self):
        sim = Simulator()
        topo = Topology(sim)
        h1 = topo.add_host("h1", "10.0.0.1")
        h2 = topo.add_host("h2", "192.0.2.1")
        s1 = topo.add_node(Switch(sim, "s1"))
        s2 = topo.add_node(Switch(sim, "s2"))
        mb = topo.add_host("mb", "0.0.0.1")
        topo.connect(h1, s1)
        topo.connect(s1, s2)
        topo.connect(s1, mb)
        topo.connect(mb, s2)
        topo.connect(s2, h2)
        sdn = SDNController(sim, topo)
        return sim, topo, sdn, h1, h2, s1, s2, mb

    def test_install_route_programs_switches(self):
        sim, topo, sdn, h1, h2, s1, s2, mb = self._scenario()
        handle = sdn.route(FlowPattern(nw_dst="192.0.2.0/24"), h1, h2)
        sim.run_until(handle.installed)
        assert len(s1.table) == 1 and len(s2.table) == 1
        h1.send(tcp_packet("10.0.0.1", "192.0.2.1", 1, 80))
        sim.run()
        assert len(h2.received) == 1

    def test_route_through_waypoint(self):
        sim, topo, sdn, h1, h2, s1, s2, mb = self._scenario()
        handle = sdn.route(FlowPattern(nw_dst="192.0.2.0/24"), h1, h2, waypoints=["mb"])
        sim.run_until(handle.installed)
        rule = s1.table.rules()[0]
        assert rule.actions[0].port == s1.port_to(mb)

    def test_rules_take_effect_after_install_latency(self):
        sim, topo, sdn, h1, h2, s1, s2, mb = self._scenario()
        sdn.route(FlowPattern.wildcard(), h1, h2)
        # Before the install latency elapses, the switch still misses.
        h1.send(tcp_packet("10.0.0.1", "192.0.2.1", 1, 80))
        sim.run(until=sdn.rule_install_latency / 2)
        assert len(s1.table) == 0
        sim.run()
        assert len(s1.table) == 1

    def test_remove_route(self):
        sim, topo, sdn, h1, h2, s1, s2, mb = self._scenario()
        handle = sdn.route(FlowPattern.wildcard(), h1, h2)
        sim.run_until(handle.installed)
        sdn.remove_route(handle)
        sim.run()
        assert len(s1.table) == 0 and len(s2.table) == 0

    def test_route_requires_connected_path(self):
        sim = Simulator()
        topo = Topology(sim)
        h1 = topo.add_host("h1", "10.0.0.1")
        h2 = topo.add_host("h2", "10.0.0.2")
        sdn = SDNController(sim, topo)
        with pytest.raises(NetworkError):
            sdn.route(FlowPattern.wildcard(), h1, h2)

    def test_install_route_needs_two_nodes(self):
        sim, topo, sdn, h1, *_ = self._scenario()
        with pytest.raises(NetworkError):
            sdn.install_route(FlowPattern.wildcard(), [h1])

    def test_bidirectional_route(self):
        sim, topo, sdn, h1, h2, s1, s2, mb = self._scenario()
        handle = sdn.route(FlowPattern(nw_dst="192.0.2.0/24"), h1, h2, bidirectional=True)
        sim.run_until(handle.installed)
        h2.send(tcp_packet("192.0.2.1", "10.0.0.5", 80, 1))
        sim.run()
        assert len(h1.received) == 1


class TestMonitoringProbes:
    def test_latency_probe_records_deliveries(self):
        sim = Simulator()
        topo = Topology(sim)
        h1 = topo.add_host("h1", "10.0.0.1")
        h2 = topo.add_host("h2", "192.0.2.1")
        topo.connect(h1, h2, latency=2e-3)
        probe = LatencyProbe(sim, h2)
        h1.send(tcp_packet("10.0.0.1", "192.0.2.1", 1, 80))
        sim.run()
        assert probe.count == 1
        assert probe.mean_latency() >= 2e-3
        assert probe.max_latency() >= probe.mean_latency()

    def test_latency_probe_pattern_filter(self):
        sim = Simulator()
        topo = Topology(sim)
        h1 = topo.add_host("h1", "10.0.0.1")
        h2 = topo.add_host("h2", "192.0.2.1")
        topo.connect(h1, h2)
        probe = LatencyProbe(sim, h2, FlowPattern(tp_dst=443))
        h1.send(tcp_packet("10.0.0.1", "192.0.2.1", 1, 80))
        sim.run()
        assert probe.count == 0

    def test_delivery_recorder_buckets_by_pattern(self):
        sim = Simulator()
        topo = Topology(sim)
        h1 = topo.add_host("h1", "10.0.0.1")
        h2 = topo.add_host("h2", "192.0.2.1")
        topo.connect(h1, h2)
        recorder = DeliveryRecorder(h2, {"http": FlowPattern(tp_dst=80), "ssh": FlowPattern(tp_dst=22)})
        h1.send(tcp_packet("10.0.0.1", "192.0.2.1", 1, 80))
        h1.send(tcp_packet("10.0.0.1", "192.0.2.1", 1, 443))
        sim.run()
        assert recorder.counts["http"] == 1
        assert recorder.counts["ssh"] == 0
        assert recorder.unmatched == 1
        assert recorder.total() == 2
