"""Memory-accounted scale tier: loss-free moves from 10k up to a million flows.

The tentpole claim of the sharded state engine is that move cost decomposes as

* bulk copy — O(total state), streamed in bounded chunk batches, and
* freeze window — O(dirtied flows), independent of store size,

so a million-flow move freezes for the same wall-span as a ten-thousand-flow
move, and the exporting process never materialises the full sealed-chunk list
(peak memory stays within a small factor of the resident store).

The 10k smoke tier runs in the default (tier-1) suite.  The 200k tracemalloc
spot check and the 1M flatness tier are marked ``slow`` and run only when
``RUN_SLOW`` is set (the CI ``scale`` job); locally::

    RUN_SLOW=1 python -m pytest tests/test_state_scale.py -q
"""

import os
import tracemalloc

import pytest

from repro.core import ControllerConfig, MBController, NorthboundAPI, TransferSpec
from repro.middleboxes import DummyMiddlebox
from repro.net import Simulator

#: Flows the load generator round-robins over — a fixed-size hot set, so the
#: dirty population (and therefore the freeze window) is scale-invariant.
HOT_FLOWS = 64

#: Load-generator rate; fast enough to touch every hot flow many times during
#: the earliest slice of the bulk round at the smallest tier.
TRAFFIC_RATE = 16_000.0
TRAFFIC_DURATION = 0.04


def build_pair(flow_count: int):
    """A controller plus a populated source dummy and an empty destination.

    The source's *supporting* store is populated directly (small payloads, no
    202-byte filler) so the million-flow tier measures the state engine, not
    payload serialisation volume.
    """
    sim = Simulator()
    controller = MBController(
        sim, ControllerConfig(quiescence_timeout=0.05, per_message_cost=1e-6)
    )
    northbound = NorthboundAPI(controller)
    src = DummyMiddlebox(sim, "scale-src")
    dst = DummyMiddlebox(sim, "scale-dst")
    controller.register(src)
    controller.register(dst)
    for index in range(flow_count):
        src.support_store.put(src.flow_key_for(index), {"index": index, "packets": 0})
    return sim, controller, northbound, src, dst


def run_scaled_move(flow_count: int) -> dict:
    """One loss-free pre-copy move of *flow_count* flows under a hot-set load."""
    sim, controller, northbound, src, dst = build_pair(flow_count)
    pre_stats = src.support_store.memory_stats()
    injected = src.drive_traffic_at_rate(TRAFFIC_RATE, TRAFFIC_DURATION, flows=HOT_FLOWS)
    spec = TransferSpec.precopy(batch_size=512)
    handle = northbound.move_internal(src.name, dst.name, None, spec=spec)
    record = sim.run_until(handle.finalized, limit=10_000)
    sim.run(until=sim.now + 0.5)
    counted = sum(rec.get("packets", 0) for _, rec in src.support_store.items())
    counted += sum(rec.get("packets", 0) for _, rec in dst.support_store.items())
    return {
        "record": record,
        "injected": injected,
        "updates_lost": injected - counted,
        "pre_stats": pre_stats,
        "src_stats": src.support_store.memory_stats(),
        "dst_stats": dst.support_store.memory_stats(),
        "dst_entries": len(dst.support_store),
    }


class TestMillionFlowSmoke:
    """10k-flow tier: runs in the default suite, exercises the full path."""

    def test_10k_move_loss_free_with_bounded_accounting(self):
        result = run_scaled_move(10_000)
        record = result["record"]
        assert result["updates_lost"] == 0
        assert result["dst_entries"] == 10_000
        # Bulk round exports every flow; delta rounds only the hot set.
        assert record.chunks_transferred >= 10_000
        assert record.chunks_transferred <= 10_000 + 4 * HOT_FLOWS
        # The freeze window is a sliver of the whole move: O(dirty), not O(N).
        assert record.freeze_window < record.duration / 10
        # Accounting: the move never doubled the source store's footprint
        # (dirty slots and install tags are the only additions).
        pre = result["pre_stats"]
        assert result["src_stats"].peak_total_bytes < 2 * pre.total_bytes
        # The destination ends up owning the state it reports.
        dst = result["dst_stats"]
        assert dst.entries == 10_000
        assert dst.entry_bytes > 0
        assert dst.peak_total_bytes <= 2 * dst.total_bytes

    def test_accounting_tracks_population_and_clear(self):
        sim, controller, northbound, src, dst = build_pair(10_000)
        stats = src.support_store.memory_stats()
        assert stats.entries == 10_000
        assert stats.entry_bytes >= 10_000 * 176  # at least the slot overhead
        src.support_store.clear()
        cleared = src.support_store.memory_stats()
        assert cleared.entries == 0
        assert cleared.entry_bytes == 0
        assert cleared.peak_total_bytes >= stats.total_bytes


@pytest.mark.slow
@pytest.mark.skipif(not os.environ.get("RUN_SLOW"), reason="set RUN_SLOW=1 to run scale tiers")
class TestScaleTiers:
    def test_200k_tracemalloc_peak_stays_near_store_size(self):
        """Streaming export: the move's traced peak is ~the destination copy,
        never a second materialised sealed-chunk list on top."""
        tracemalloc.start()
        sim, controller, northbound, src, dst = build_pair(200_000)
        baseline, _ = tracemalloc.get_traced_memory()
        accounted = src.support_store.memory_stats().total_bytes
        # Accounting sanity: the synthetic byte model tracks real allocation
        # within a small constant factor.
        assert 0.2 * baseline < accounted < 5.0 * baseline
        injected = src.drive_traffic_at_rate(TRAFFIC_RATE, TRAFFIC_DURATION, flows=HOT_FLOWS)
        handle = northbound.move_internal(
            src.name, dst.name, None, spec=TransferSpec.precopy(batch_size=512)
        )
        sim.run_until(handle.finalized, limit=10_000)
        sim.run(until=sim.now + 0.5)
        current, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        counted = sum(rec.get("packets", 0) for _, rec in dst.support_store.items())
        counted += sum(rec.get("packets", 0) for _, rec in src.support_store.items())
        assert injected - counted == 0
        # During the move both copies are resident (source until the final
        # delete, destination as it fills) plus O(flows) protocol state — the
        # controller's install-dedup map and the destination's install tags.
        # Streaming keeps the peak under 2x that resident footprint; the old
        # materialise-everything export added a full sealed-chunk list (~1 KiB
        # per flow: blob + base64 message body) on top and blows this bound.
        resident = max(baseline, current)
        assert peak < 2.0 * resident, f"peak {peak} vs resident {resident}"

    def test_million_flow_freeze_window_flat(self):
        """The acceptance point: freeze(1M) within ±20% of freeze(10k)."""
        small = run_scaled_move(10_000)
        big = run_scaled_move(1_000_000)
        assert small["updates_lost"] == 0
        assert big["updates_lost"] == 0
        assert big["dst_entries"] == 1_000_000
        f_small = small["record"].freeze_window
        f_big = big["record"].freeze_window
        assert f_small > 0 and f_big > 0
        ratio = f_big / f_small
        assert 0.8 <= ratio <= 1.2, f"freeze not flat: 10k={f_small} 1M={f_big} ratio={ratio:.3f}"
        # Peak accounted memory stays under 2x the resident store at both ends.
        assert big["src_stats"].peak_total_bytes < 2 * big["pre_stats"].total_bytes
        assert big["dst_stats"].peak_total_bytes <= 2 * big["dst_stats"].total_bytes
