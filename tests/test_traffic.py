"""Unit tests for trace records, distributions, generators, and replay."""

import numpy as np
import pytest

from repro.middleboxes import PassiveMonitor
from repro.net import Simulator
from repro.net.packet import ACK, FIN, SYN
from repro.traffic import (
    FlowDurationModel,
    FlowSizeModel,
    FlowSpec,
    Trace,
    TraceRecord,
    TraceReplayer,
    constant_rate_trace,
    datacenter_flow_durations,
    datacenter_trace,
    empirical_cdf,
    enterprise_cloud_trace,
    fraction_exceeding,
    http_flow_records,
    redundancy_trace,
    replay_trace_through,
    scan_trace,
)


class TestTraceRecord:
    def test_to_packet_preserves_fields(self):
        record = TraceRecord(1.0, "10.0.0.1", "192.0.2.1", 1000, 80, payload=b"abc", flags=[SYN])
        packet = record.to_packet()
        assert packet.payload == b"abc"
        assert packet.has_flag(SYN)
        assert packet.flow_key() == record.flow_key()

    def test_json_roundtrip(self):
        record = TraceRecord(2.5, "10.0.0.1", "192.0.2.1", 1000, 80, payload=b"\x00\x01", flags=[ACK], seq=7)
        restored = TraceRecord.from_json(record.to_json())
        assert restored == record


class TestTrace:
    def _trace(self):
        records = [
            TraceRecord(2.0, "10.0.0.1", "192.0.2.1", 1000, 80, payload=b"b"),
            TraceRecord(1.0, "10.0.0.1", "192.0.2.1", 1000, 80, payload=b"a"),
            TraceRecord(3.0, "10.0.0.2", "192.0.2.1", 1001, 443, payload=b"c"),
        ]
        return Trace(records=records, metadata={"kind": "test"})

    def test_records_sorted_by_time(self):
        trace = self._trace()
        assert [record.time for record in trace] == [1.0, 2.0, 3.0]

    def test_duration_and_bytes(self):
        trace = self._trace()
        assert trace.duration == 2.0
        assert trace.total_bytes() == 3

    def test_flow_enumeration_is_bidirectional(self):
        trace = self._trace()
        assert trace.flow_count() == 2

    def test_filter(self):
        trace = self._trace()
        http_only = trace.filter(lambda record: record.tp_dst == 80)
        assert len(http_only) == 2

    def test_merge_and_shift(self):
        trace = self._trace()
        shifted = trace.time_shifted(10.0)
        merged = trace.merged_with(shifted)
        assert len(merged) == 6
        assert merged.records[-1].time == 13.0

    def test_save_and_load(self, tmp_path):
        trace = self._trace()
        path = tmp_path / "trace.jsonl"
        trace.save(path)
        loaded = Trace.load(path)
        assert len(loaded) == len(trace)
        assert loaded.metadata == {"kind": "test"}
        assert loaded.records[0].payload == b"a"


class TestDistributions:
    def test_duration_model_tail_fraction(self):
        """Roughly 9% of flows should exceed 1500 s, as in the paper's Figure 8."""
        model = FlowDurationModel()
        fraction = model.fraction_exceeding(1500.0)
        assert 0.05 < fraction < 0.14

    def test_duration_samples_positive(self):
        samples = FlowDurationModel().sample(1000, np.random.default_rng(0))
        assert (samples > 0).all()

    def test_size_model_respects_minimum(self):
        sizes = FlowSizeModel(minimum_bytes=500).sample(500, np.random.default_rng(0))
        assert sizes.min() >= 500

    def test_empirical_cdf_monotone(self):
        values, probabilities = empirical_cdf([3.0, 1.0, 2.0])
        assert list(values) == [1.0, 2.0, 3.0]
        assert list(probabilities) == pytest.approx([1 / 3, 2 / 3, 1.0])

    def test_fraction_exceeding(self):
        assert fraction_exceeding([1, 2, 3, 4], 2.5) == 0.5
        assert fraction_exceeding([], 1.0) == 0.0


class TestFlowExpansion:
    def test_http_flow_has_handshake_and_close(self):
        spec = FlowSpec("10.0.0.1", "192.0.2.1", 1000, 80, 0.0, 10.0, requests=[("/a", 100)])
        records = http_flow_records(spec)
        assert SYN in records[0].flags
        assert any(FIN in record.flags for record in records)
        assert records[-1].time <= spec.start + spec.duration + 1e-6

    def test_http_flow_without_close(self):
        spec = FlowSpec("10.0.0.1", "192.0.2.1", 1000, 80, 0.0, 10.0, requests=[("/a", 100)])
        records = http_flow_records(spec, close=False)
        assert not any(FIN in record.flags for record in records)

    def test_request_payload_contains_uri(self):
        spec = FlowSpec("10.0.0.1", "192.0.2.1", 1000, 80, 0.0, 10.0, requests=[("/object/7", 100)])
        records = http_flow_records(spec)
        assert any(b"GET /object/7" in record.payload for record in records)

    def test_timestamps_monotone(self):
        spec = FlowSpec("10.0.0.1", "192.0.2.1", 1000, 80, 5.0, 20.0, requests=[("/a", 2000)])
        records = http_flow_records(spec)
        times = [record.time for record in records]
        assert times == sorted(times)
        assert times[0] == 5.0


class TestGenerators:
    def test_enterprise_trace_flow_counts(self):
        trace = enterprise_cloud_trace(http_flows=20, other_flows=5, duration=30.0, seed=1)
        assert trace.flow_count() == 25
        assert trace.metadata["kind"] == "enterprise-cloud"

    def test_enterprise_trace_deterministic_for_seed(self):
        a = enterprise_cloud_trace(http_flows=5, other_flows=2, seed=9)
        b = enterprise_cloud_trace(http_flows=5, other_flows=2, seed=9)
        assert [record.to_json() for record in a] == [record.to_json() for record in b]

    def test_enterprise_trace_http_distinct_from_other(self):
        trace = enterprise_cloud_trace(http_flows=10, other_flows=10, seed=2)
        http = trace.filter(lambda record: 80 in (record.tp_dst, record.tp_src))
        other = trace.filter(lambda record: 80 not in (record.tp_dst, record.tp_src))
        assert len(http) > 0 and len(other) > 0

    def test_leave_open_fraction(self):
        closed = enterprise_cloud_trace(http_flows=20, other_flows=0, seed=3, leave_open_fraction=0.0)
        open_trace = enterprise_cloud_trace(http_flows=20, other_flows=0, seed=3, leave_open_fraction=1.0)
        closed_fins = sum(1 for record in closed if FIN in record.flags)
        open_fins = sum(1 for record in open_trace if FIN in record.flags)
        assert open_fins == 0 and closed_fins > 0

    def test_datacenter_durations_have_heavy_tail(self):
        durations = datacenter_flow_durations(5000, seed=4)
        assert 0.03 < float(np.mean(durations > 1500.0)) < 0.2

    def test_datacenter_trace_metadata_durations(self):
        trace = datacenter_trace(flows=30, seed=5)
        assert len(trace.metadata["durations"]) == 30
        assert trace.flow_count() == 30

    def test_redundancy_trace_payload_sizes(self):
        trace = redundancy_trace(packets=50, payload_bytes=512, redundancy=0.5, seed=6)
        assert all(len(record.payload) == 512 for record in trace)
        assert trace.metadata["redundancy"] == 0.5

    def test_redundancy_trace_actually_redundant(self):
        """A redundant trace should compress well with the RE encoder."""
        from repro.middleboxes import REEncoder

        encoder = REEncoder(Simulator(), "enc", cache_capacity=1024 * 1024)
        trace = redundancy_trace(packets=100, payload_bytes=512, redundancy=0.8, seed=7)
        for record in trace:
            encoder.process_packet(record.to_packet())
        assert encoder.encoded_bytes > 0.3 * encoder.total_bytes

    def test_zero_redundancy_trace_barely_encodes(self):
        from repro.middleboxes import REEncoder

        encoder = REEncoder(Simulator(), "enc", cache_capacity=1024 * 1024)
        trace = redundancy_trace(packets=100, payload_bytes=512, redundancy=0.0, seed=8)
        for record in trace:
            encoder.process_packet(record.to_packet())
        assert encoder.encoded_bytes < 0.05 * encoder.total_bytes

    def test_scan_trace_targets(self):
        trace = scan_trace(targets=30)
        assert len(trace) == 30
        assert len({record.nw_dst for record in trace}) == 30
        assert all(SYN in record.flags for record in trace)

    def test_constant_rate_trace_rate_and_flows(self):
        trace = constant_rate_trace(rate=500.0, duration=2.0, flows=50)
        assert len(trace) == 1000
        assert trace.flow_count() == 50
        inter_arrival = trace.records[1].time - trace.records[0].time
        assert inter_arrival == pytest.approx(1 / 500.0)


class TestReplay:
    def test_replay_into_middlebox(self):
        sim = Simulator()
        monitor = PassiveMonitor(sim, "mon")
        trace = constant_rate_trace(rate=100.0, duration=0.5, flows=10)
        stats = replay_trace_through(sim, trace, monitor)
        assert stats.injected == 50
        assert monitor.counters.packets_received == 50

    def test_replay_speedup_compresses_time(self):
        sim = Simulator()
        monitor = PassiveMonitor(sim, "mon")
        trace = constant_rate_trace(rate=100.0, duration=1.0, flows=10)
        replayer = TraceReplayer.into_node(sim, trace, monitor, speedup=10.0)
        replayer.schedule()
        sim.run()
        assert replayer.stats.last_time <= 0.11

    def test_replay_start_offset(self):
        sim = Simulator()
        monitor = PassiveMonitor(sim, "mon")
        trace = constant_rate_trace(rate=100.0, duration=0.1, flows=5)
        replayer = TraceReplayer.into_node(sim, trace, monitor, start_at=5.0)
        replayer.schedule()
        sim.run(until=4.9)
        assert monitor.counters.packets_received == 0
        sim.run()
        assert monitor.counters.packets_received == 10

    def test_replay_limit(self):
        sim = Simulator()
        monitor = PassiveMonitor(sim, "mon")
        trace = constant_rate_trace(rate=100.0, duration=1.0, flows=10)
        replayer = TraceReplayer.into_node(sim, trace, monitor, limit=25)
        assert replayer.schedule() == 25
        sim.run()
        assert monitor.counters.packets_received == 25

    def test_invalid_speedup_rejected(self):
        sim = Simulator()
        monitor = PassiveMonitor(sim, "mon")
        with pytest.raises(ValueError):
            TraceReplayer.into_node(sim, Trace(), monitor, speedup=0.0)

    def test_replay_via_host_traverses_network(self):
        from repro.core.flowspace import FlowPattern
        from repro.net import SDNController, Switch, Topology

        sim = Simulator()
        topo = Topology(sim)
        source = topo.add_host("src", "10.5.1.254")
        sink = topo.add_host("dst", "192.0.2.20")
        switch = topo.add_node(Switch(sim, "s1"))
        topo.connect(source, switch)
        topo.connect(switch, sink)
        sdn = SDNController(sim, topo)
        handle = sdn.route(FlowPattern(nw_dst="192.0.2.20"), source, sink)
        sim.run_until(handle.installed)
        trace = constant_rate_trace(rate=200.0, duration=0.25, flows=5)
        replayer = TraceReplayer.via_host(sim, trace, source)
        replayer.schedule()
        sim.run()
        assert len(sink.received) == 50
