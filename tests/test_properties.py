"""Property-based tests (hypothesis) for core data structures and invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import crypto
from repro.core.chunks import ChunkCodec, deserialize_payload, serialize_payload
from repro.core.config import HierarchicalConfig
from repro.core.flowspace import FlowKey, FlowPattern, IPv4Prefix, int_to_ip, ip_to_int
from repro.core.state import PerFlowStateStore, StateRole
from repro.middleboxes.monitor import MonitorStats
from repro.middleboxes.re import PacketCache

# -- strategies -----------------------------------------------------------------------------------

ip_addresses = st.integers(min_value=0, max_value=0xFFFFFFFF).map(int_to_ip)
ports = st.integers(min_value=0, max_value=65535)
protocols = st.sampled_from([1, 6, 17])

flow_keys = st.builds(
    FlowKey,
    nw_proto=protocols,
    nw_src=ip_addresses,
    nw_dst=ip_addresses,
    tp_src=ports,
    tp_dst=ports,
)

json_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**31), max_value=2**31),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=30),
    st.binary(max_size=64),
)
payloads = st.recursive(
    json_scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=8), children, max_size=4),
    ),
    max_leaves=12,
)


# -- address / pattern properties -------------------------------------------------------------------


@given(st.integers(min_value=0, max_value=0xFFFFFFFF))
def test_ip_int_roundtrip(value):
    assert ip_to_int(int_to_ip(value)) == value


@given(ip_addresses, st.integers(min_value=0, max_value=32))
def test_prefix_contains_its_own_network(address, length):
    prefix = IPv4Prefix.parse(f"{address}/{length}")
    assert prefix.contains_ip(int_to_ip(prefix.network))
    assert prefix.contains_prefix(prefix)


@given(flow_keys)
def test_flow_key_dict_roundtrip(key):
    assert FlowKey.from_dict(key.as_dict()) == key


@given(flow_keys)
def test_bidirectional_key_is_canonical(key):
    """Both directions of a flow map to the same canonical key, and it is one of the two."""
    canonical = key.bidirectional()
    assert canonical == key.reversed().bidirectional()
    assert canonical in (key, key.reversed())


@given(flow_keys)
def test_fully_specified_pattern_matches_only_its_flow(key):
    pattern = FlowPattern.from_flow(key)
    assert pattern.matches(key)
    assert pattern.covers(FlowPattern.from_flow(key))


@given(flow_keys, st.integers(min_value=0, max_value=32))
def test_prefix_pattern_covers_fully_specified_pattern(key, length):
    broad = FlowPattern(nw_src=f"{key.nw_src}/{length}")
    narrow = FlowPattern.from_flow(key)
    assert broad.matches(key)
    assert broad.covers(narrow)
    assert broad.intersects(narrow)


@given(flow_keys)
def test_pattern_dict_roundtrip(key):
    pattern = FlowPattern.from_flow(key)
    assert FlowPattern.parse(pattern.as_dict()) == pattern


# -- sealing and serialisation properties --------------------------------------------------------------


@given(st.binary(max_size=2048))
def test_seal_unseal_roundtrip(data):
    key = crypto.SealingKey.derive("property")
    assert crypto.unseal(key, crypto.seal(key, data)) == data


@given(payloads)
@settings(max_examples=60)
def test_payload_serialisation_roundtrip(payload):
    assert deserialize_payload(serialize_payload(payload)) == payload


@given(payloads, st.booleans())
@settings(max_examples=40)
def test_chunk_codec_roundtrip(payload, compress):
    codec = ChunkCodec.for_mb_type("property-mb", compress=compress)
    key = FlowKey(6, "10.0.0.1", "192.0.2.1", 1, 2)
    chunk = codec.seal_perflow(key, payload, StateRole.SUPPORTING)
    assert codec.unseal_perflow(chunk) == payload


# -- configuration properties -----------------------------------------------------------------------------

config_keys = st.lists(
    st.text(alphabet="abcdefgh", min_size=1, max_size=5), min_size=1, max_size=3
).map(".".join)
config_values = st.lists(st.one_of(st.integers(), st.text(max_size=10), st.booleans()), max_size=4)


@given(st.dictionaries(config_keys, config_values, min_size=1, max_size=8))
def test_config_export_import_roundtrip(entries):
    config = HierarchicalConfig()
    written = {}
    for key, values in entries.items():
        # Skip keys that would conflict with an already-written interior/leaf key.
        try:
            config.set(key, values)
        except Exception:
            continue
        written[key] = list(values)
    clone = HierarchicalConfig.from_flat(config.export())
    assert clone == config
    for key, values in written.items():
        if config.has(key):
            assert clone.get_values(key) == config.get_values(key)


# -- state store properties ----------------------------------------------------------------------------------


@given(st.lists(flow_keys, min_size=1, max_size=40))
def test_store_query_wildcard_returns_every_entry(keys):
    store = PerFlowStateStore()
    for index, key in enumerate(keys):
        store.put(key, index)
    results = store.query(FlowPattern.wildcard())
    assert len(results) == len({key.bidirectional() for key in keys})


@given(st.lists(flow_keys, min_size=1, max_size=30), st.integers(min_value=0, max_value=32))
def test_store_query_partitions_by_prefix(keys, length):
    """Entries matching a prefix plus entries not matching it account for the whole store."""
    store = PerFlowStateStore()
    for index, key in enumerate(keys):
        store.put(key, index)
    pattern = FlowPattern(nw_src=f"{keys[0].nw_src}/{length}")
    matching = {key for key, _ in store.query(pattern)}
    for key in store.keys():
        if key in matching:
            assert pattern.matches_either_direction(key)
        else:
            assert not pattern.matches_either_direction(key)


@given(st.lists(flow_keys, unique=True, min_size=1, max_size=30))
def test_store_remove_matching_then_query_empty(keys):
    store = PerFlowStateStore()
    for index, key in enumerate(keys):
        store.put(key, index)
    removed = store.remove_matching(FlowPattern.wildcard())
    assert len(store) == 0
    assert len(removed) == len({key.bidirectional() for key in keys})


# -- middlebox state-structure properties ---------------------------------------------------------------------


@given(
    st.lists(st.tuples(st.integers(0, 5000), st.integers(0, 10**6)), max_size=5),
    st.lists(st.tuples(st.integers(0, 5000), st.integers(0, 10**6)), max_size=5),
)
def test_monitor_stats_merge_is_commutative_on_counters(a_entries, b_entries):
    a = MonitorStats()
    b = MonitorStats()
    for packets, size in a_entries:
        a.total_packets += packets
        a.total_bytes += size
    for packets, size in b_entries:
        b.total_packets += packets
        b.total_bytes += size
    ab = MonitorStats.merge(a, b)
    ba = MonitorStats.merge(b, a)
    assert ab.total_packets == ba.total_packets == a.total_packets + b.total_packets
    assert ab.total_bytes == ba.total_bytes


@given(st.lists(st.binary(min_size=1, max_size=200), min_size=1, max_size=30))
def test_packet_cache_reads_back_last_insert(contents):
    cache = PacketCache(4096)
    for content in contents:
        offset = cache.insert(content)
        assert cache.read(offset, len(content)) == content


@given(st.lists(st.binary(min_size=1, max_size=120), min_size=1, max_size=40))
def test_packet_cache_clone_equals_original(contents):
    cache = PacketCache(2048)
    for content in contents:
        cache.insert(content)
    assert cache.clone().to_payload() == cache.to_payload()
    assert PacketCache.from_payload(cache.to_payload()).to_payload() == cache.to_payload()


@given(st.lists(st.binary(min_size=1, max_size=64), min_size=1, max_size=20), st.binary(min_size=1, max_size=64))
def test_identical_insert_sequences_keep_caches_identical(contents, extra):
    """The RE sync invariant: two caches fed the same insert sequence stay byte-identical."""
    a, b = PacketCache(2048), PacketCache(2048)
    for content in contents:
        a.insert(content)
        b.insert(content)
    assert a.to_payload() == b.to_payload()
    a.insert(extra)
    b.insert(extra)
    assert a.to_payload() == b.to_payload()
