"""Tests for the transactional northbound API and its SDN support.

Covers the transaction builder (steps, composites, declarative ordering),
coordinated re-routing (route installation gated on the move's per-flow
put-ACKs rather than whole-operation completion), all-or-nothing failure
semantics (route rollback, destination-hold release, cancelled finalisation),
the atomic multi-pattern route swap, and the clone_config failure paths.
"""

import pytest

from repro.apps import build_two_instance_scenario
from repro.core import (
    ControllerConfig,
    FlowPattern,
    MBController,
    NorthboundAPI,
    StepStatus,
    TransactionAbortedError,
    TransactionError,
    TransferGuarantee,
    TransferSpec,
)
from repro.core.errors import StateError, UnknownMiddleboxError
from repro.middleboxes import DummyMiddlebox, PassiveMonitor
from repro.net import tcp_packet


class FailingDestination(DummyMiddlebox):
    """Accepts the first *accept* puts, then errors on every later one."""

    def __init__(self, sim, name, *, accept=0):
        super().__init__(sim, name)
        self._accept = accept
        self.puts_seen = 0

    def put_perflow(self, chunk):
        self.puts_seen += 1
        if self.puts_seen > self._accept:
            raise StateError("destination import failed (simulated)")
        super().put_perflow(chunk)


def monitor_scenario(**kwargs):
    return build_two_instance_scenario(
        mb_factory=lambda sim, name: PassiveMonitor(sim, name), mb_names=("mon1", "mon2"), **kwargs
    )


def feed(sim, mb, count, *, spacing=0.0005, flows=10):
    for index in range(count):
        packet = tcp_packet(
            f"10.1.1.{index % flows + 1}", "172.16.0.10", 1000 + index % flows, 80, b"payload"
        )
        sim.schedule(spacing * index, mb.receive, packet, 1)


@pytest.fixture
def dummy_txn(sim):
    controller = MBController(sim, ControllerConfig(quiescence_timeout=0.2))
    northbound = NorthboundAPI(controller)
    src = DummyMiddlebox(sim, "t-src", chunk_count=40)
    dst = DummyMiddlebox(sim, "t-dst")
    controller.register(src)
    controller.register(dst)
    return controller, northbound, src, dst


class TestBuilder:
    def test_single_move_step_equivalent_to_primitive(self, sim, dummy_txn):
        _, northbound, _, dst = dummy_txn
        txn = northbound.transaction()
        move = txn.move("t-src", "t-dst", None)
        handle = txn.commit()
        result = sim.run_until(handle.done, limit=100)
        assert result is handle
        assert handle.status == "committed"
        assert move.handle.record.chunks_transferred == 80  # 40 flows x 2 roles
        assert len(dst.support_store) == 40

    def test_steps_run_in_declaration_order_by_default(self, sim, dummy_txn):
        _, northbound, _, _ = dummy_txn
        order = []
        txn = northbound.transaction()
        txn.call(lambda: order.append("a"), name="a")
        txn.call(lambda: order.append("b"), name="b")
        txn.call(lambda: order.append("c"), name="c")
        handle = txn.commit()
        sim.run_until(handle.done, limit=10)
        assert order == ["a", "b", "c"]

    def test_empty_transaction_commits_immediately(self, sim, dummy_txn):
        _, northbound, _, _ = dummy_txn
        handle = northbound.transaction().commit()
        assert handle.done.done and handle.status == "committed"

    def test_commit_twice_raises(self, sim, dummy_txn):
        _, northbound, _, _ = dummy_txn
        txn = northbound.transaction()
        txn.call(lambda: None)
        txn.commit()
        with pytest.raises(TransactionError):
            txn.commit()
        with pytest.raises(TransactionError):
            txn.call(lambda: None)
        with pytest.raises(TransactionError):
            txn.barrier()  # a step added after commit would never be wired

    def test_barrier_honours_explicit_after_edge(self, sim, dummy_txn):
        _, northbound, _, _ = dummy_txn
        order = []
        txn = northbound.transaction()

        def slow_fn():
            future = sim.timeout(0.05)
            future.add_done_callback(lambda f: order.append("slow"))
            return future

        slow = txn.call(slow_fn, name="slow")
        barrier = txn.barrier([], after=slow)
        txn.call(lambda: order.append("late"), name="late", after=barrier)
        handle = txn.commit()
        sim.run_until(handle.done, limit=10)
        assert order == ["slow", "late"]

    def test_per_step_progress_and_aggregate(self, sim, dummy_txn):
        _, northbound, _, _ = dummy_txn
        txn = northbound.transaction()
        txn.stats("t-src", None)
        txn.move("t-src", "t-dst", None)
        handle = txn.commit()
        sim.run_until(handle.done, limit=100)
        assert [record.status for record in handle.steps] == [StepStatus.DONE, StepStatus.DONE]
        assert all(record.duration is not None for record in handle.steps)
        aggregate = handle.aggregate()
        assert aggregate["operations"] == 1
        assert aggregate["chunks_transferred"] == 80
        assert aggregate["steps_done"] == aggregate["steps_total"] == 2


class TestCoordinatedReroute:
    def test_reroute_starts_at_state_installed_not_completion(self, sim, dummy_txn):
        """For an order-preserving move the per-flow put-ACKs all arrive well
        before the operation completes (replays + releases still drain); the
        coordinated reroute must start in that window."""
        _, northbound, src, _ = dummy_txn
        src.generate_events_at_rate(2000.0, duration=2.0)
        routed_at = []

        def reroute():
            routed_at.append(sim.now)
            return sim.timeout(0.002)

        txn = northbound.transaction()
        move = txn.move("t-src", "t-dst", None, spec=TransferSpec(guarantee=TransferGuarantee.ORDER_PRESERVING))
        txn.reroute(apply=reroute, after=move, label="reroute(all)")
        handle = txn.commit()
        sim.run_until(handle.done, limit=100)
        assert move.handle.state_installed.done
        assert routed_at, "reroute never ran"
        assert routed_at[0] < move.handle.record.completed_at

    def test_migrate_composite_orders_patterns_sequentially(self, sim):
        scenario = monitor_scenario()
        feed(scenario.sim, scenario.mb1, 40, flows=20)
        scenario.sim.run(until=0.1)
        started = []

        def reroute(pattern):
            started.append(pattern)
            return scenario.route_via(scenario.mb2, pattern)

        patterns = [FlowPattern(nw_src="10.1.1.0/28"), FlowPattern(nw_src="10.1.1.16/28")]
        txn = scenario.northbound.transaction()
        moves = txn.migrate("mon1", "mon2", patterns, reroute=reroute, query_stats=True)
        handle = txn.commit()
        scenario.sim.run_until(handle.done, limit=100)
        assert started == patterns
        assert all(move.handle.completed.done for move in moves)
        # The second pattern's move may not start before the first is routed.
        first_route = next(r for r in handle.steps if r.name.startswith("reroute") and "10.1.1.0/28" in r.name)
        second_move = moves[1].record
        assert second_move.started_at >= first_route.detail["requested_at"]


class TestAbortAndRollback:
    def test_failing_move_cancels_pending_steps_and_releases_holds(self, sim):
        controller = MBController(sim, ControllerConfig(quiescence_timeout=0.2))
        northbound = NorthboundAPI(controller)
        src = DummyMiddlebox(sim, "f-src", chunk_count=20)
        dst = FailingDestination(sim, "f-dst", accept=5)
        controller.register(src)
        controller.register(dst)
        ran = []
        txn = northbound.transaction()
        move = txn.move("f-src", "f-dst", None, spec=TransferSpec(guarantee=TransferGuarantee.ORDER_PRESERVING))
        txn.reroute(apply=lambda: sim.timeout(0.002), after=move, label="reroute(all)")
        txn.call(lambda: ran.append("terminate"), name="terminate")
        handle = txn.commit()
        with pytest.raises(TransactionAbortedError) as excinfo:
            sim.run_until(handle.done, limit=100)
        assert excinfo.value.step == "move(f-src->f-dst)"
        sim.run(until=sim.now + 1.0)
        assert ran == []
        statuses = {record.name: record.status for record in handle.steps}
        assert statuses["terminate"] is StepStatus.CANCELLED
        assert handle.status == "aborted"
        # Order-preserving holds installed by the ACKed puts were released.
        assert not dst._held_flows
        assert not dst._held_packets

    def test_abort_rolls_back_installed_routes(self, sim):
        scenario = monitor_scenario()
        feed(scenario.sim, scenario.mb1, 30, flows=10)
        scenario.sim.run(until=0.1)
        pattern = FlowPattern(nw_src="10.1.1.0/28")
        path = [scenario.client_gw, scenario.ingress, scenario.mb2, scenario.egress, scenario.server_gw]
        routes_before = set(scenario.sdn.routes)

        def explode():
            raise StateError("post-route step failed")

        txn = scenario.northbound.transaction()
        move = txn.move("mon1", "mon2", pattern)
        txn.reroute(scenario.sdn, pattern, path, after=move, priority=500)
        txn.call(explode, name="explode")
        handle = txn.commit()
        with pytest.raises(TransactionAbortedError):
            scenario.sim.run_until(handle.done, limit=100)
        scenario.sim.run(until=scenario.sim.now + 1.0)
        # The swap's routes were removed again and its rules left no trace.
        assert set(scenario.sdn.routes) == routes_before
        reroute_record = next(r for r in handle.steps if r.name.startswith("reroute"))
        assert reroute_record.status is StepStatus.ROLLED_BACK

    def test_rebalance_reroute_failure_aborts_its_own_move(self, sim):
        """A composite step that fails on one half (the reroute) must abort
        its other half (the in-flight move): the source delete is cancelled
        and the busiest replica keeps its state."""
        scenario = monitor_scenario(quiescence_timeout=0.3)
        feed(scenario.sim, scenario.mb1, 30, flows=10)
        scenario.sim.run(until=0.1)
        state_before = len(scenario.mb1.report_store)

        def failing_routing(mb, pattern):
            future = scenario.sim.event(name="failing-route")
            scenario.sim.schedule(0.001, future.fail, StateError("route install failed"))
            return future

        txn = scenario.northbound.transaction()
        step = txn.rebalance(
            ["mon1", "mon2"], {"mon1": FlowPattern(nw_src="10.1.1.0/24")}, failing_routing
        )
        handle = txn.commit()
        with pytest.raises(TransactionAbortedError):
            scenario.sim.run_until(handle.done, limit=100)
        scenario.sim.run(until=scenario.sim.now + 2.0)
        assert step.handle is not None
        # The move was aborted with the transaction: no finalisation, and the
        # source's state survives (the delete was cancelled).
        assert step.handle.record.finalized_at is None
        assert len(scenario.mb1.report_store) == state_before

    def test_abort_cancels_source_delete_of_completed_move(self, sim):
        scenario = monitor_scenario(quiescence_timeout=0.3)
        feed(scenario.sim, scenario.mb1, 30, flows=10)
        scenario.sim.run(until=0.1)
        state_before = len(scenario.mb1.report_store)
        assert state_before > 0

        def explode():
            raise StateError("late step failed")

        txn = scenario.northbound.transaction()
        txn.move("mon1", "mon2", None)
        txn.call(explode, name="explode")
        handle = txn.commit()
        with pytest.raises(TransactionAbortedError):
            scenario.sim.run_until(handle.done, limit=100)
        # Run far past the quiescence timeout: the rolled-back move must NOT
        # delete the source's state.
        scenario.sim.run(until=scenario.sim.now + 2.0)
        assert len(scenario.mb1.report_store) == state_before


class TestSwapRoutes:
    def test_swap_validates_all_paths_before_touching_switches(self, sim):
        from repro.core import NetworkError

        scenario = monitor_scenario()
        rules_before = scenario.sdn.rules_installed
        good = (FlowPattern(nw_src="10.1.1.0/28"),
                [scenario.client_gw, scenario.ingress, scenario.mb2, scenario.egress, scenario.server_gw])
        # ingress has no port toward the server gateway (all paths go through a middlebox)
        bad = (FlowPattern(nw_src="10.1.2.0/28"), [scenario.client_gw, scenario.ingress, scenario.server_gw])
        with pytest.raises(NetworkError):
            scenario.sdn.swap_routes([good, bad], priority=300)
        scenario.sim.run(until=scenario.sim.now + 0.1)
        assert scenario.sdn.rules_installed == rules_before

    def test_swap_is_make_before_break_and_rolls_back(self, sim):
        scenario = monitor_scenario()
        pattern = FlowPattern(nw_dst="172.16.0.0/16")
        old = scenario.routes[0]
        path = [scenario.client_gw, scenario.ingress, scenario.mb2, scenario.egress, scenario.server_gw]
        swap = scenario.sdn.swap_routes([(pattern, path)], priority=400, replace=[old])
        # Before install completes the replaced route is still present.
        assert old.route_id in scenario.sdn.routes
        scenario.sim.run_until(swap.installed)
        scenario.sim.run(until=scenario.sim.now + 0.1)
        assert old.route_id not in scenario.sdn.routes
        assert all(route.route_id in scenario.sdn.routes for route in swap.routes)
        # Rollback removes the new routes and restores the replaced one.
        swap.rollback()
        scenario.sim.run(until=scenario.sim.now + 0.1)
        assert all(route.route_id not in scenario.sdn.routes for route in swap.routes)
        assert any(handle.pattern == pattern and handle.path == old.path for handle in scenario.sdn.routes.values())


class TestCloneConfigFailurePaths:
    def test_clone_config_fails_future_when_destination_vanishes(self, sim):
        """The read succeeds but the write target was unregistered in between:
        the returned future must fail instead of leaking an unresolved event
        (and the error must not corrupt the read future's callback chain)."""
        controller = MBController(sim, ControllerConfig(quiescence_timeout=0.2))
        northbound = NorthboundAPI(controller)
        src = PassiveMonitor(sim, "cc-src")
        dst = PassiveMonitor(sim, "cc-dst")
        controller.register(src)
        controller.register(dst)
        future = northbound.clone_config("cc-src", "cc-dst")
        controller.unregister("cc-dst")  # vanishes while the read is in flight
        sim.run(until=sim.now + 1.0)
        assert future.done
        assert isinstance(future.exception, UnknownMiddleboxError)

    def test_clone_config_fails_future_when_source_unknown(self, sim):
        controller = MBController(sim, ControllerConfig(quiescence_timeout=0.2))
        northbound = NorthboundAPI(controller)
        controller.register(PassiveMonitor(sim, "cc-dst"))
        future = northbound.clone_config("ghost", "cc-dst")
        assert future.done
        assert isinstance(future.exception, UnknownMiddleboxError)

    def test_clone_config_read_failure_propagates(self, sim):
        controller = MBController(sim, ControllerConfig(quiescence_timeout=0.2))
        northbound = NorthboundAPI(controller)
        src = PassiveMonitor(sim, "cc-src")
        dst = PassiveMonitor(sim, "cc-dst")
        controller.register(src)
        controller.register(dst)
        future = northbound.clone_config("cc-src", "cc-dst")
        controller.unregister("cc-src")  # its reply is discarded: read never fires
        sim.run(until=sim.now + 1.0)
        # The read can never complete; the clone future must not block a
        # transaction forever when the caller resolves it externally.
        assert not future.done  # still pending is acceptable for a dead read...
        future.fail(UnknownMiddleboxError("cc-src vanished"))  # caller cancels
        assert future.done
