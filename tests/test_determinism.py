"""Deterministic seeding: reproducibility rests on no ambient randomness.

The chaos harness promises bit-for-bit reproduction from a single seed.  That
only holds if every random draw in ``src/`` flows from an explicitly seeded
generator — one ``random.Random(seed)`` threaded through the chaos runner and
fault plans, and seeded ``numpy`` generators in the traffic module.  These
tests grep the source tree for module-level randomness (the global
``random.*`` functions and the global ``np.random.*`` mutable state) and
verify end-to-end reproducibility of representative workloads.
"""

from __future__ import annotations

import pathlib
import re

import numpy as np

SRC_ROOT = pathlib.Path(__file__).resolve().parent.parent / "src"

#: Module-level random calls: `random.<fn>(` not preceded by `.` (which would
#: be an instance's own `rng.random(...)`) and not `random.Random(` itself.
GLOBAL_RANDOM = re.compile(r"(?<![.\w])random\.(?!Random\b)\w+\s*\(")

#: Global numpy randomness: anything under np.random except default_rng /
#: Generator (seeded object construction).
GLOBAL_NP_RANDOM = re.compile(r"np\.random\.(?!default_rng\b|Generator\b)\w+\s*\(")

#: Wall-clock reads and asyncio sleeps: only the realtime runtime package may
#: touch the wall clock or the event loop; everywhere else must schedule
#: through the shared runtime interface to keep simulated runs deterministic.
WALL_CLOCK = re.compile(r"(?<![.\w])time\.(time|monotonic|perf_counter)\s*\(")
ASYNC_SLEEP = re.compile(r"(?<![.\w])asyncio\.sleep\s*\(")

#: The one package allowed to read the wall clock / drive asyncio.
RUNTIME_PACKAGE = pathlib.PurePath("repro", "runtime")


def _source_lines():
    for path in sorted(SRC_ROOT.rglob("*.py")):
        for number, line in enumerate(path.read_text().splitlines(), start=1):
            stripped = line.split("#", 1)[0]
            if stripped.strip():
                yield path.relative_to(SRC_ROOT), number, stripped


class TestNoAmbientRandomness:
    def test_no_module_level_random_calls_in_src(self):
        offenders = [
            f"{path}:{number}: {line.strip()}"
            for path, number, line in _source_lines()
            if GLOBAL_RANDOM.search(line)
        ]
        assert not offenders, (
            "module-level random.* usage breaks seeded chaos reproducibility; "
            "thread a random.Random(seed) instead:\n" + "\n".join(offenders)
        )

    def test_no_global_numpy_randomness_in_src(self):
        offenders = [
            f"{path}:{number}: {line.strip()}"
            for path, number, line in _source_lines()
            if GLOBAL_NP_RANDOM.search(line)
        ]
        assert not offenders, (
            "global np.random state breaks seeded reproducibility; "
            "use np.random.default_rng(seed):\n" + "\n".join(offenders)
        )

    def test_no_wall_clock_reads_outside_the_runtime_package(self):
        offenders = [
            f"{path}:{number}: {line.strip()}"
            for path, number, line in _source_lines()
            if WALL_CLOCK.search(line) and RUNTIME_PACKAGE not in path.parents
        ]
        assert not offenders, (
            "wall-clock reads outside src/repro/runtime/ break simulated-mode "
            "determinism; use the runtime's `now` instead:\n" + "\n".join(offenders)
        )

    def test_no_asyncio_sleep_outside_the_runtime_package(self):
        offenders = [
            f"{path}:{number}: {line.strip()}"
            for path, number, line in _source_lines()
            if ASYNC_SLEEP.search(line) and RUNTIME_PACKAGE not in path.parents
        ]
        assert not offenders, (
            "asyncio.sleep outside src/repro/runtime/ bypasses the shared "
            "scheduling interface; use runtime.schedule/timeout instead:\n" + "\n".join(offenders)
        )


class TestSeededReproducibility:
    def test_traffic_generators_reproduce_from_seed(self):
        from repro.traffic.generators import constant_rate_trace, enterprise_cloud_trace

        first = enterprise_cloud_trace(http_flows=10, other_flows=4, seed=5)
        second = enterprise_cloud_trace(http_flows=10, other_flows=4, seed=5)
        assert [record.payload for record in first.records] == [
            record.payload for record in second.records
        ]
        assert constant_rate_trace(rate=500, duration=0.1, seed=7).records[3].payload == (
            constant_rate_trace(rate=500, duration=0.1, seed=7).records[3].payload
        )

    def test_traffic_generators_accept_a_shared_rng(self):
        """One master generator can be threaded through several traces."""
        from repro.traffic.generators import constant_rate_trace, redundancy_trace

        master = np.random.default_rng(123)
        first = constant_rate_trace(rate=500, duration=0.05, rng=master)
        second = redundancy_trace(packets=20, rng=master)
        replay_master = np.random.default_rng(123)
        first_again = constant_rate_trace(rate=500, duration=0.05, rng=replay_master)
        second_again = redundancy_trace(packets=20, rng=replay_master)
        assert [r.payload for r in first.records] == [r.payload for r in first_again.records]
        assert [r.payload for r in second.records] == [r.payload for r in second_again.records]

    def test_chaos_runs_reproduce_from_seed(self):
        from repro.testing import ChaosSpec, run_chaos

        spec = ChaosSpec(seed=31337, guarantee="loss_free", mode="precopy", profile="chaotic", shards=4)
        first = run_chaos(spec)
        second = run_chaos(spec)
        assert first.executed_events == second.executed_events
        assert first.settled_at == second.settled_at
        assert first.retransmits == second.retransmits
        assert first.drops == second.drops
