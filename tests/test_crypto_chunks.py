"""Unit tests for chunk sealing (crypto) and chunk serialisation."""

import pytest

from repro.core import crypto
from repro.core.chunks import ChunkCodec, deserialize_payload, serialize_payload
from repro.core.errors import SealError, StateError
from repro.core.flowspace import FlowKey
from repro.core.state import StateRole


class TestSealingKey:
    def test_derive_is_deterministic(self):
        a = crypto.SealingKey.derive("monitor")
        b = crypto.SealingKey.derive("monitor")
        assert a == b

    def test_derive_differs_per_secret(self):
        assert crypto.SealingKey.derive("monitor") != crypto.SealingKey.derive("ids")

    def test_generate_produces_distinct_keys(self):
        assert crypto.SealingKey.generate() != crypto.SealingKey.generate()


class TestSealUnseal:
    key = crypto.SealingKey.derive("test")

    def test_roundtrip(self):
        plaintext = b"the quick brown fox" * 10
        assert crypto.unseal(self.key, crypto.seal(self.key, plaintext)) == plaintext

    def test_empty_plaintext(self):
        assert crypto.unseal(self.key, crypto.seal(self.key, b"")) == b""

    def test_ciphertext_differs_from_plaintext(self):
        plaintext = b"x" * 64
        sealed = crypto.seal(self.key, plaintext)
        assert plaintext not in sealed

    def test_tamper_detection(self):
        sealed = bytearray(crypto.seal(self.key, b"secret state"))
        sealed[20] ^= 0xFF
        with pytest.raises(crypto.SealError):
            crypto.unseal(self.key, bytes(sealed))

    def test_wrong_key_rejected(self):
        sealed = crypto.seal(self.key, b"secret state")
        other = crypto.SealingKey.derive("other")
        with pytest.raises(crypto.SealError):
            crypto.unseal(other, sealed)

    def test_too_short_blob_rejected(self):
        with pytest.raises(crypto.SealError):
            crypto.unseal(self.key, b"short")

    def test_sealed_size_accounts_for_overhead(self):
        sealed = crypto.seal(self.key, b"a" * 100)
        assert len(sealed) == crypto.sealed_size(100)

    def test_nonce_must_be_correct_length(self):
        with pytest.raises(ValueError):
            crypto.seal(self.key, b"data", nonce=b"short")

    def test_deterministic_with_fixed_nonce(self):
        nonce = b"n" * 16
        assert crypto.seal(self.key, b"data", nonce=nonce) == crypto.seal(self.key, b"data", nonce=nonce)


class TestPayloadSerialisation:
    def test_scalar_roundtrip(self):
        for payload in (1, 1.5, "text", True, None):
            assert deserialize_payload(serialize_payload(payload)) == payload

    def test_nested_structure_roundtrip(self):
        payload = {"a": [1, 2, {"b": "c"}], "d": None}
        assert deserialize_payload(serialize_payload(payload)) == payload

    def test_bytes_roundtrip(self):
        payload = {"blob": b"\x00\x01\xff" * 10}
        assert deserialize_payload(serialize_payload(payload)) == payload

    def test_tuple_roundtrip(self):
        payload = {"pair": (1, "two")}
        assert deserialize_payload(serialize_payload(payload)) == payload

    def test_flowkey_roundtrip(self):
        key = FlowKey(6, "10.0.0.1", "192.0.2.1", 1, 2)
        payload = {"key": key}
        assert deserialize_payload(serialize_payload(payload))["key"] == key

    def test_compression_reduces_size_for_repetitive_payloads(self):
        payload = {"data": "A" * 5000}
        raw = serialize_payload(payload, compress=False)
        compressed = serialize_payload(payload, compress=True)
        assert len(compressed) < len(raw)
        assert deserialize_payload(compressed) == payload

    def test_unserialisable_object_rejected(self):
        class Opaque:
            pass

        with pytest.raises(StateError):
            serialize_payload({"x": Opaque()})

    def test_unknown_marker_rejected(self):
        with pytest.raises(StateError):
            deserialize_payload(b"Xgarbage")

    def test_empty_payload_rejected(self):
        with pytest.raises(StateError):
            deserialize_payload(b"")


class TestChunkCodec:
    key = FlowKey(6, "10.0.0.1", "192.0.2.1", 1000, 80)

    def test_perflow_roundtrip(self):
        codec = ChunkCodec.for_mb_type("monitor")
        chunk = codec.seal_perflow(self.key, {"packets": 5}, StateRole.REPORTING)
        assert chunk.key == self.key
        assert chunk.role is StateRole.REPORTING
        assert codec.unseal_perflow(chunk) == {"packets": 5}

    def test_same_type_codecs_interoperate(self):
        """State sealed by one instance must be readable by a peer of the same type."""
        chunk = ChunkCodec.for_mb_type("monitor").seal_perflow(self.key, {"x": 1}, StateRole.SUPPORTING)
        assert ChunkCodec.for_mb_type("monitor").unseal_perflow(chunk) == {"x": 1}

    def test_cross_type_unsealing_fails(self):
        chunk = ChunkCodec.for_mb_type("monitor").seal_perflow(self.key, {"x": 1}, StateRole.SUPPORTING)
        with pytest.raises(SealError):
            ChunkCodec.for_mb_type("ids").unseal_perflow(chunk)

    def test_blob_is_opaque(self):
        codec = ChunkCodec.for_mb_type("monitor")
        chunk = codec.seal_perflow(self.key, {"secret": "internal-structure"}, StateRole.SUPPORTING)
        assert b"internal-structure" not in chunk.blob

    def test_shared_roundtrip(self):
        codec = ChunkCodec.for_mb_type("re-decoder")
        chunk = codec.seal_shared({"cache": b"\x01" * 100}, StateRole.SUPPORTING)
        assert codec.unseal_shared(chunk)["cache"] == b"\x01" * 100

    def test_compressed_codec_roundtrip(self):
        codec = ChunkCodec.for_mb_type("monitor", compress=True)
        chunk = codec.seal_perflow(self.key, {"data": "z" * 1000}, StateRole.REPORTING)
        assert codec.unseal_perflow(chunk)["data"] == "z" * 1000

    def test_compressed_chunks_are_smaller(self):
        payload = {"data": "z" * 2000}
        plain = ChunkCodec.for_mb_type("monitor").seal_perflow(self.key, payload, StateRole.REPORTING)
        packed = ChunkCodec.for_mb_type("monitor", compress=True).seal_perflow(self.key, payload, StateRole.REPORTING)
        assert packed.size < plain.size
