"""Tests for iterative pre-copy state transfer and its dirty tracking.

Covers the satellite checklist of the pre-copy PR: store-level versioned
dirty-key tracking, flows dirtied mid-round being resent by the next round,
round tags preventing a superseded round from overwriting newer destination
state, ``precopy`` with ``max_rounds=0`` degrading to snapshot behaviour, and
loss-free losing zero updates under sustained traffic.
"""

import pytest

from repro.apps import run_guarantee_scenario
from repro.core import (
    ControllerConfig,
    FlowKey,
    MBController,
    NorthboundAPI,
    TransferGuarantee,
    TransferMode,
    TransferSpec,
)
from repro.core.errors import SpecError
from repro.core.state import PerFlowStateStore, StateRole
from repro.middleboxes import DummyMiddlebox
from repro.net import Simulator, tcp_packet


def key_for(index: int) -> FlowKey:
    return FlowKey(6, f"10.5.0.{index + 1}", "192.0.2.10", 1000 + index, 80)


# =========================================================================================
# TransferSpec: the new mode axis
# =========================================================================================


class TestPrecopySpec:
    def test_default_spec_is_snapshot(self):
        spec = TransferSpec.default()
        assert spec.mode is TransferMode.SNAPSHOT
        assert not spec.is_precopy

    def test_precopy_constructor_and_describe(self):
        spec = TransferSpec.precopy(max_rounds=2, dirty_threshold=5)
        assert spec.mode is TransferMode.PRECOPY
        assert spec.is_precopy
        assert spec.describe() == "loss_free+precopy2+thr5"

    def test_precopy_with_zero_rounds_is_not_iterative(self):
        assert not TransferSpec.precopy(max_rounds=0).is_precopy

    def test_validation(self):
        with pytest.raises(ValueError):
            TransferSpec(mode="precopy")  # must be the enum
        with pytest.raises(ValueError):
            TransferSpec(max_rounds=-1)
        with pytest.raises(ValueError):
            TransferSpec(dirty_threshold=-1)

    def test_parse_accepts_mode_fields(self):
        parsed = TransferSpec.parse({"mode": "precopy", "max_rounds": 2, "dirty_threshold": 3})
        assert parsed.mode is TransferMode.PRECOPY
        assert parsed.max_rounds == 2
        assert parsed.dirty_threshold == 3
        with pytest.raises(SpecError):
            TransferSpec.parse({"mode": "postcopy"})


# =========================================================================================
# Store-level versioned dirty tracking
# =========================================================================================


class TestDirtyTracking:
    def test_mutations_only_tracked_while_armed(self):
        store = PerFlowStateStore()
        store.put(key_for(0), {"v": 0})
        assert store.dirty_count == 0  # not tracking yet
        store.begin_dirty_tracking()
        store.put(key_for(1), {"v": 1})
        store.get_or_create(key_for(0), dict)  # in-place mutation accessor counts
        store.remove(key_for(1))
        assert store.dirty_count == 2
        store.end_dirty_tracking()
        store.put(key_for(2), {"v": 2})
        assert store.dirty_count == 0

    def test_drain_returns_keys_in_dirtying_order_and_clears(self):
        store = PerFlowStateStore()
        for index in range(3):
            store.put(key_for(index), {"v": index})
        store.begin_dirty_tracking()
        store.get_or_create(key_for(2), dict)
        store.get_or_create(key_for(0), dict)
        drained = store.drain_dirty()
        assert drained == [key_for(2).bidirectional(), key_for(0).bidirectional()]
        assert store.dirty_count == 0
        store.get_or_create(key_for(1), dict)
        assert store.drain_dirty() == [key_for(1).bidirectional()]

    def test_plain_get_does_not_dirty(self):
        store = PerFlowStateStore()
        store.put(key_for(0), {"v": 0})
        store.begin_dirty_tracking()
        store.get(key_for(0))
        assert store.dirty_count == 0

    def test_middlebox_packet_processing_marks_dirty(self, sim):
        """The data plane dirties flows via ProcessResult.updated_flows."""
        mb = DummyMiddlebox(sim, "d-src", chunk_count=4)
        mb.support_store.begin_dirty_tracking()
        key = mb.flow_key_for(2)
        mb.receive(tcp_packet(key.nw_src, key.nw_dst, key.tp_src, key.tp_dst, b"x"), 0)
        sim.run(until=sim.now + 0.01)
        assert mb.support_store.dirty_count == 1
        assert mb.dirty_perflow_count(StateRole.SUPPORTING) == 1
        assert mb.support_store.drain_dirty() == [key.bidirectional()]

    def test_get_perflow_dirty_final_marks_transfer_and_stops_tracking(self, sim):
        mb = DummyMiddlebox(sim, "d-final", chunk_count=3)
        mb.support_store.begin_dirty_tracking()
        mb.support_store.get_or_create(mb.flow_key_for(1), dict)
        from repro.core.flowspace import FlowPattern

        chunks = mb.get_perflow_dirty(StateRole.SUPPORTING, FlowPattern.wildcard(), mark_transfer=True)
        assert [chunk.key for chunk in chunks] == [mb.flow_key_for(1).bidirectional()]
        assert mb.transferred_flow_count() == 3  # every match frozen, not just the dirty one
        assert not mb.support_store.tracking_dirty


# =========================================================================================
# Round tags: superseded rounds never overwrite newer destination state
# =========================================================================================


class TestRoundSupersession:
    def seal(self, mb, index, value):
        key = mb.flow_key_for(index)
        return mb.codec.seal_perflow(key, {"index": index, "data": value}, StateRole.SUPPORTING)

    def test_stale_round_put_is_ignored(self, sim):
        dst = DummyMiddlebox(sim, "d-dst")
        key = dst.flow_key_for(0).bidirectional()
        dst.put_perflow(self.seal(dst, 0, "round2"), round=(7, 2))
        dst.put_perflow(self.seal(dst, 0, "round1"), round=(7, 1))  # stale: must not install
        assert dst.support_store.get(key)["data"] == "round2"
        assert dst.counters.stale_round_puts == 1

    def test_newer_round_and_newer_operation_supersede(self, sim):
        dst = DummyMiddlebox(sim, "d-dst2")
        key = dst.flow_key_for(0).bidirectional()
        dst.put_perflow(self.seal(dst, 0, "op7.r1"), round=(7, 1))
        dst.put_perflow(self.seal(dst, 0, "op7.r2"), round=(7, 2))
        assert dst.support_store.get(key)["data"] == "op7.r2"
        # A later operation's round 0 outranks any earlier operation's rounds.
        dst.put_perflow(self.seal(dst, 0, "op9.r0"), round=(9, 0))
        assert dst.support_store.get(key)["data"] == "op9.r0"
        assert dst.counters.stale_round_puts == 0

    def test_untagged_snapshot_put_always_installs(self, sim):
        dst = DummyMiddlebox(sim, "d-dst3")
        key = dst.flow_key_for(0).bidirectional()
        dst.put_perflow(self.seal(dst, 0, "tagged"), round=(7, 2))
        dst.put_perflow(self.seal(dst, 0, "untagged"))
        assert dst.support_store.get(key)["data"] == "untagged"

    def test_unrelated_transfer_end_does_not_kill_dirty_tracking(self, sim):
        """A clone/merge's TRANSFER_END at a pre-copy move's source must not
        wipe the move's dirty set (it belongs to the move, not the clone)."""
        src = DummyMiddlebox(sim, "d-src5", chunk_count=3)
        src.support_store.begin_dirty_tracking()
        src.support_store.get_or_create(src.flow_key_for(1), dict)
        src.end_transfer()  # whole-middlebox reset from an unrelated operation
        assert src.support_store.tracking_dirty
        assert src.support_store.dirty_count == 1

    def test_end_dirty_tracking_is_scoped(self, sim):
        """The failed-pre-copy cleanup stops tracking but leaves transfer
        markers owned by concurrent operations untouched."""
        src = DummyMiddlebox(sim, "d-src6", chunk_count=3)
        src._transferred_flows.add(src.flow_key_for(0).bidirectional())  # another op's marker
        src.support_store.begin_dirty_tracking()
        src.end_dirty_tracking()
        assert not src.support_store.tracking_dirty
        assert src.transferred_flow_count() == 1  # concurrent op's freeze survives


# =========================================================================================
# The pre-copy move: rounds, resends, freeze, equivalence, conservation
# =========================================================================================


def build_loaded_pair(chunks=60, quiescence=0.1):
    """Controller + populated dummy pair, ready for a move under packet load."""
    sim = Simulator()
    controller = MBController(sim, ControllerConfig(quiescence_timeout=quiescence))
    northbound = NorthboundAPI(controller)
    src = DummyMiddlebox(sim, "p-src", chunk_count=chunks)
    dst = DummyMiddlebox(sim, "p-dst")
    controller.register(src)
    controller.register(dst)
    return sim, controller, northbound, src, dst


def support_packet_total(*middleboxes):
    """Sum of per-flow packet counters across the given middleboxes' stores."""
    total = 0
    for mb in middleboxes:
        total += sum(rec.get("packets", 0) for _, rec in mb.support_store.items())
    return total


class TestPrecopyMove:
    def test_flows_dirtied_mid_round_are_resent(self):
        sim, controller, northbound, src, dst = build_loaded_pair()
        injected = src.drive_traffic_at_rate(2000.0, 0.05)
        handle = northbound.move_internal("p-src", "p-dst", None, spec=TransferSpec.precopy())
        record = sim.run_until(handle.finalized, limit=100)
        sim.run(until=sim.now + 0.5)
        assert record.mode == "precopy"
        assert injected > 0
        delta_rounds = [r for r in record.rounds if r["round"] > 0 and not r["final"]]
        assert delta_rounds, "traffic during the bulk round must trigger a delta round"
        assert sum(r["chunks"] for r in delta_rounds) > 0
        # Every source update survived the resends: the destination's counters
        # match what the source accumulated (conservation).
        assert support_packet_total(src, dst) == injected

    def test_round_records_measure_bytes_and_dirty_sets(self):
        sim, controller, northbound, src, dst = build_loaded_pair()
        src.drive_traffic_at_rate(2000.0, 0.05)
        handle = northbound.move_internal("p-src", "p-dst", None, spec=TransferSpec.precopy(max_rounds=2))
        record = sim.run_until(handle.finalized, limit=100)
        assert record.rounds[0]["round"] == 0
        assert record.rounds[0]["chunks"] == 120  # bulk: 60 flows x 2 roles
        assert record.rounds[0]["bytes"] > 0
        assert record.rounds[-1]["final"] is True
        assert record.precopy_rounds == len(record.rounds) - 1
        assert record.precopy_rounds <= 2 + 1  # bulk + at most max_rounds deltas
        assert record.freeze_started_at is not None
        assert record.freeze_window < record.duration
        summary = controller.stats.by_mode()
        assert summary["precopy"]["operations"] == 1
        assert controller.stats.precopy_rounds_total == record.precopy_rounds

    def test_quiet_source_freezes_after_the_bulk_round(self):
        """With no traffic the dirty set is empty: one bulk round, then freeze."""
        sim, controller, northbound, src, dst = build_loaded_pair()
        handle = northbound.move_internal("p-src", "p-dst", None, spec=TransferSpec.precopy())
        record = sim.run_until(handle.finalized, limit=100)
        assert record.precopy_rounds == 1  # just the bulk round
        assert record.rounds[-1]["final"] and record.rounds[-1]["chunks"] == 0
        assert len(dst.support_store) == 60

    def test_max_rounds_zero_matches_snapshot_behaviour(self):
        """PRECOPY with max_rounds=0 must degrade to bit-for-bit snapshot."""

        def run(spec):
            sim, controller, northbound, src, dst = build_loaded_pair()
            src.drive_traffic_at_rate(2000.0, 0.02)
            handle = northbound.move_internal("p-src", "p-dst", None, spec=spec)
            record = sim.run_until(handle.finalized, limit=100)
            sim.run(until=sim.now + 0.5)
            contents = {key: dict(rec) for key, rec in dst.support_store.items()}
            return record, contents, controller.stats

        snap_record, snap_contents, snap_stats = run(TransferSpec.default())
        pre_record, pre_contents, pre_stats = run(TransferSpec.precopy(max_rounds=0))
        assert pre_record.mode == "snapshot"
        assert pre_record.precopy_rounds == 0 and pre_record.rounds == []
        assert pre_record.chunks_transferred == snap_record.chunks_transferred
        assert pre_record.puts_acked == snap_record.puts_acked
        assert pre_record.events_received == snap_record.events_received
        assert pre_record.events_buffered == snap_record.events_buffered
        assert pre_record.events_forwarded == snap_record.events_forwarded
        assert pre_record.duration == pytest.approx(snap_record.duration, rel=1e-6)
        assert pre_record.freeze_window == pytest.approx(snap_record.freeze_window, rel=1e-6)
        assert pre_contents == snap_contents
        assert pre_stats.messages_sent == snap_stats.messages_sent
        assert pre_stats.messages_received == snap_stats.messages_received

    def test_loss_free_precopy_loses_zero_updates_under_sustained_traffic(self):
        """The scenario harness: monitors under live load, per-flow conservation."""
        result = run_guarantee_scenario(
            TransferSpec.precopy(), packets_during_move=120, packet_spacing=0.0005
        )
        assert result.record.mode == "precopy"
        assert result.updates_lost == 0

    def test_precopy_composes_with_batching_and_order_preserving(self):
        spec = TransferSpec.precopy(guarantee=TransferGuarantee.ORDER_PRESERVING, batch_size=8)
        sim, controller, northbound, src, dst = build_loaded_pair()
        src.drive_traffic_at_rate(2000.0, 0.05)
        handle = northbound.move_internal("p-src", "p-dst", None, spec=spec)
        record = sim.run_until(handle.finalized, limit=100)
        sim.run(until=sim.now + 0.5)
        assert record.mode == "precopy"
        assert record.batches_sent > 0
        # Order preservation covers *every* moved flow: the blanket hold at
        # the freeze is matched by a release per flow (clean flows included),
        # and none stay held.
        assert record.releases_sent >= 60
        assert not dst._held_flows and not dst._held_packets
        assert len(dst.support_store) == 60

    def test_precopy_shrinks_freeze_window_under_load(self):
        def run(spec):
            sim, controller, northbound, src, dst = build_loaded_pair(chunks=200)
            src.drive_traffic_at_rate(8000.0, 0.05)
            handle = northbound.move_internal("p-src", "p-dst", None, spec=spec)
            record = sim.run_until(handle.finalized, limit=100)
            return record

        snapshot = run(TransferSpec.default())
        precopy = run(TransferSpec.precopy())
        assert precopy.freeze_window * 2 <= snapshot.freeze_window

    def test_dirty_threshold_stops_iterating_early(self):
        sim, controller, northbound, src, dst = build_loaded_pair()
        src.drive_traffic_at_rate(2000.0, 0.2)
        eager = TransferSpec.precopy(max_rounds=5, dirty_threshold=10_000)
        handle = northbound.move_internal("p-src", "p-dst", None, spec=eager)
        record = sim.run_until(handle.finalized, limit=100)
        assert record.precopy_rounds == 1  # threshold satisfied right after bulk

    def test_order_preserving_holds_cover_flows_clean_at_the_freeze(self):
        """A flow with no final-round chunk must still be held and released."""
        sim, controller, northbound, src, dst = build_loaded_pair()
        spec = TransferSpec.precopy(guarantee=TransferGuarantee.ORDER_PRESERVING)
        handle = northbound.move_internal("p-src", "p-dst", None, spec=spec)
        # No traffic at all: every flow is clean at the freeze, so the only
        # hold coverage comes from the blanket TRANSFER_HOLD.
        held_max = {"count": 0}
        original = dst.hold_flows

        def tracking_hold(keys):
            original(keys)
            held_max["count"] = max(held_max["count"], len(dst._held_flows))

        dst.hold_flows = tracking_hold
        record = sim.run_until(handle.finalized, limit=100)
        sim.run(until=sim.now + 0.5)
        assert held_max["count"] == 60  # all moved flows were held at the freeze
        assert record.releases_sent == 60  # and each one released
        assert not dst._held_flows and not dst._held_packets

    def test_precopy_survives_concurrent_clone_finalizing_at_its_source(self):
        """A clone/merge from the same source finalizes (TRANSFER_END) while
        the pre-copy move is mid-round; the move's dirty tracking must survive
        and loss-free conservation must still hold."""
        sim, controller, northbound, src, dst = build_loaded_pair(quiescence=0.02)
        injected = src.drive_traffic_at_rate(2000.0, 0.1)
        clone = northbound.clone_support("p-src", "p-dst")
        move = northbound.move_internal("p-src", "p-dst", None, spec=TransferSpec.precopy())
        sim.run_until(clone.finalized, limit=100)  # clone's TRANSFER_END lands mid-move
        record = sim.run_until(move.finalized, limit=100)
        sim.run(until=sim.now + 0.5)
        assert record.mode == "precopy"
        assert support_packet_total(src, dst) == injected

    def test_concurrent_precopy_from_same_source_degrades_to_snapshot(self):
        """Two overlapping pre-copy moves would corrupt the one dirty-tracking
        context per store; the second must fall back to snapshot and nothing
        may be lost."""
        sim, controller, northbound, src, dst = build_loaded_pair()
        dst2 = DummyMiddlebox(sim, "p-dst2")
        controller.register(dst2)
        injected = src.drive_traffic_at_rate(2000.0, 0.05)
        first = northbound.move_internal("p-src", "p-dst", None, spec=TransferSpec.precopy())
        second = northbound.move_internal("p-src", "p-dst2", None, spec=TransferSpec.precopy())
        sim.run_until(first.finalized, limit=100)
        sim.run_until(second.finalized, limit=100)
        sim.run(until=sim.now + 0.5)
        assert first.record.mode == "precopy"
        assert second.record.mode == "snapshot"  # degraded, not corrupted
        assert support_packet_total(src, dst, dst2) >= injected  # no updates lost

    def test_dirty_count_is_restricted_to_the_move_pattern(self, sim):
        """Background traffic outside the pattern must not stall convergence."""
        from repro.core.flowspace import FlowPattern

        mb = DummyMiddlebox(sim, "d-pat", chunk_count=4)
        mb.support_store.begin_dirty_tracking()
        for index in range(4):
            mb.support_store.get_or_create(mb.flow_key_for(index), dict)
        narrow = FlowPattern(nw_src=mb.flow_key_for(0).nw_src, nw_dst=mb.flow_key_for(0).nw_dst)
        assert mb.dirty_perflow_count(StateRole.SUPPORTING) == 4
        assert mb.dirty_perflow_count(StateRole.SUPPORTING, narrow) < 4

    def test_install_rounds_are_pruned_with_the_state(self, sim):
        """Round tags die with the flow's entry, so the map cannot leak."""
        dst = DummyMiddlebox(sim, "d-prune")
        key = dst.flow_key_for(0)
        chunk = dst.codec.seal_perflow(key, {"index": 0, "data": "x"}, StateRole.SUPPORTING)
        dst.put_perflow(chunk, round=(3, 1))
        assert dst.support_store._install_rounds
        dst.support_store.remove(key)
        assert not dst.support_store._install_rounds

    def test_clone_with_precopy_spec_runs_as_snapshot(self, sim, controller, northbound, monitor_pair):
        handle = northbound.merge_internal("mon1", "mon2", spec=TransferSpec.precopy())
        record = sim.run_until(handle.completed)
        assert record.mode == "snapshot"

    def test_precopy_composes_with_shards_and_batched_dispatch(self):
        sim = Simulator()
        controller = MBController(
            sim, ControllerConfig(quiescence_timeout=0.1, num_shards=4, dispatch_tick=0.0)
        )
        northbound = NorthboundAPI(controller)
        src = DummyMiddlebox(sim, "s-src", chunk_count=80)
        dst = DummyMiddlebox(sim, "s-dst")
        controller.register(src)
        controller.register(dst)
        injected = src.drive_traffic_at_rate(2000.0, 0.05)
        handle = northbound.move_internal("s-src", "s-dst", None, spec=TransferSpec.precopy())
        record = sim.run_until(handle.finalized, limit=100)
        sim.run(until=sim.now + 0.5)
        assert record.mode == "precopy"
        assert len(dst.support_store) == 80
        assert support_packet_total(src, dst) == injected
        assert controller.stats.batches_dispatched > 0  # dispatch coalesced round puts

    def test_precopy_composes_with_transactions(self):
        sim, controller, northbound, src, dst = build_loaded_pair()
        src.drive_traffic_at_rate(2000.0, 0.05)
        txn = northbound.transaction()
        txn.move("p-src", "p-dst", None, spec=TransferSpec.precopy())
        handle = txn.commit()
        sim.run_until(handle.done, limit=100)
        sim.run(until=sim.now + 0.5)
        assert handle.status == "committed"
        records = controller.stats.records_of_mode("precopy")
        assert len(records) == 1 and records[0].precopy_rounds >= 1
        assert len(dst.support_store) == 60
