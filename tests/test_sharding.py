"""Shard routing edge cases for the sharded controller runtime.

Covers the three scenarios called out for the sharding tentpole:

* a wildcard pattern spanning every shard (events arrive on multiple shard
  loops and are all delivered, exactly once, to the broadcasting operation);
* cross-shard merge barrier ordering (a transaction's ``quiesce_shards``
  barrier drains the shards of two moves homed on different shards before a
  dependent merge starts);
* single-shard (N=1) equivalence with the pre-shard controller (bit-for-bit
  golden numbers captured from the seed implementation);

plus the consistent-hash ring invariants and the batched southbound
dispatcher (framing, per-channel FIFO, reply routing).
"""

from __future__ import annotations

import itertools

import pytest

from repro.core import (
    ControllerConfig,
    FlowKey,
    FlowPattern,
    MBController,
    NorthboundAPI,
    ShardRing,
)
from repro.core import messages
from repro.core.messages import MessageType
from repro.middleboxes import DummyMiddlebox, PassiveMonitor
from repro.net import Simulator, tcp_packet


def build(num_shards: int, *, pairs: int = 2, chunks: int = 60, dispatch_tick=None, quiescence: float = 0.1):
    """A controller with *num_shards* shards and *pairs* dummy src/dst pairs."""
    sim = Simulator()
    controller = MBController(
        sim,
        ControllerConfig(quiescence_timeout=quiescence, num_shards=num_shards, dispatch_tick=dispatch_tick),
    )
    nb = NorthboundAPI(controller)
    boxes = []
    for index in range(pairs):
        src = DummyMiddlebox(sim, f"src-{index}", chunk_count=chunks)
        dst = DummyMiddlebox(sim, f"dst-{index}")
        controller.register(src)
        controller.register(dst)
        boxes.append((src, dst))
    return sim, controller, nb, boxes


# =========================================================================================
# Consistent-hash ring invariants
# =========================================================================================


class TestShardRing:
    def test_both_flow_directions_map_to_the_same_shard(self):
        ring = ShardRing(8)
        key = FlowKey(6, "10.0.0.1", "192.0.2.10", 12345, 80)
        assert ring.shard_for_key(key) == ring.shard_for_key(key.reversed())

    def test_placement_is_deterministic_across_ring_instances(self):
        keys = [FlowKey(6, f"10.0.{i % 7}.{i % 250 + 1}", "192.0.2.10", 1000 + i, 80) for i in range(200)]
        a, b = ShardRing(4), ShardRing(4)
        assert [a.shard_for_key(k) for k in keys] == [b.shard_for_key(k) for k in keys]

    def test_flow_space_spreads_over_every_shard(self):
        ring = ShardRing(4)
        keys = [FlowKey(6, f"10.{i % 5}.{i % 9}.{i % 250 + 1}", "192.0.2.10", 1000 + i, 80) for i in range(400)]
        owners = {ring.shard_for_key(key) for key in keys}
        assert owners == {0, 1, 2, 3}

    def test_exact_pattern_maps_to_single_shard(self):
        ring = ShardRing(4)
        key = FlowKey(6, "10.0.0.1", "192.0.2.10", 12345, 80)
        pattern = FlowPattern.from_flow(key)
        assert ring.shards_for_pattern(pattern) == (ring.shard_for_key(key),)

    def test_wildcard_and_prefix_patterns_broadcast_to_all_shards(self):
        ring = ShardRing(4)
        assert ring.shards_for_pattern(None) == (0, 1, 2, 3)
        assert ring.shards_for_pattern(FlowPattern.wildcard()) == (0, 1, 2, 3)
        prefix = FlowPattern.parse({"nw_proto": 6, "nw_src": "10.0.0.0/24", "nw_dst": "192.0.2.10", "tp_src": 1, "tp_dst": 2})
        assert ring.shards_for_pattern(prefix) == (0, 1, 2, 3)

    def test_slash32_spelling_matches_bare_host_shard(self):
        # '10.0.0.1/32' parses to the same flows as '10.0.0.1'; both spellings
        # must produce the same ring token, or an exact-pattern operation
        # would be homed/watched on a different shard than its flow's events.
        ring = ShardRing(4)
        bare = FlowPattern.parse({"nw_proto": 6, "nw_src": "10.0.0.1", "nw_dst": "10.0.0.2", "tp_src": 1, "tp_dst": 2})
        slash = FlowPattern.parse(
            {"nw_proto": 6, "nw_src": "10.0.0.1/32", "nw_dst": "10.0.0.2/32", "tp_src": 1, "tp_dst": 2}
        )
        key = FlowKey(6, "10.0.0.1", "10.0.0.2", 1, 2)
        assert ring.shards_for_pattern(slash) == ring.shards_for_pattern(bare) == (ring.shard_for_key(key),)

    def test_single_shard_owns_everything(self):
        ring = ShardRing(1)
        key = FlowKey(6, "10.0.0.1", "192.0.2.10", 12345, 80)
        assert ring.shard_for_key(key) == 0
        assert ring.shards_for_pattern(None) == (0,)

    def test_invalid_shard_counts_are_rejected(self):
        with pytest.raises(ValueError):
            ShardRing(0)
        with pytest.raises(ValueError):
            ShardRing(2, replicas=0)


# =========================================================================================
# Wildcard pattern spanning shards
# =========================================================================================


class TestWildcardSpansShards:
    def test_events_arrive_on_multiple_shards_and_are_all_delivered(self):
        sim, controller, nb, boxes = build(4, pairs=1, chunks=120)
        src, dst = boxes[0]
        handle = nb.move_internal(src.name, dst.name, None)  # wildcard: broadcast interest
        operation = handle._operation
        assert [shard.shard_id for shard in operation.shards] == [0, 1, 2, 3]
        src.generate_events_at_rate(4000.0, 0.02)
        sim.run_until(handle.completed, limit=100)
        sim.run(until=2.0)  # drain the remaining event stream + quiescence
        assert src.events_generated == 80
        record = handle.record
        assert record.events_received == 80
        assert record.events_forwarded == 80  # loss-free: every update replayed
        assert record.events_dropped == 0
        shard_events = [shard["events"] for shard in controller.shard_summary()["shards"]]
        assert sum(shard_events) == 80
        # The event keys hash across the ring: several shard loops handled them.
        assert sum(1 for count in shard_events if count > 0) >= 2

    def test_exact_pattern_operation_is_homed_on_its_flow_shard(self):
        sim, controller, nb, boxes = build(4, pairs=1, chunks=40)
        src, dst = boxes[0]
        key = src.flow_key_for(7)
        pattern = FlowPattern.from_flow(key)
        handle = nb.move_internal(src.name, dst.name, pattern)
        operation = handle._operation
        owning = controller.coordinator.ring.shard_for_key(key)
        assert operation.home_shard.shard_id == owning
        assert [shard.shard_id for shard in operation.shards] == [owning]
        sim.run_until(handle.completed, limit=100)
        assert handle.record.chunks_transferred == 2  # supporting + reporting chunk

    def test_concurrent_wildcard_moves_spread_across_home_shards(self):
        sim, controller, nb, boxes = build(4, pairs=8, chunks=30)
        handles = [nb.move_internal(src.name, dst.name, None) for src, dst in boxes]
        homes = {handle.record.home_shard for handle in handles}
        assert len(homes) == 4  # round-robin placement uses every shard
        for handle in handles:
            sim.run_until(handle.completed, limit=100)
        assert all(handle.record.puts_acked == 60 for handle in handles)


# =========================================================================================
# Cross-shard merge barrier ordering
# =========================================================================================


class TestCrossShardMergeBarrier:
    def _scenario(self):
        sim = Simulator()
        controller = MBController(sim, ControllerConfig(quiescence_timeout=0.1, num_shards=4))
        nb = NorthboundAPI(controller)
        monitors = [PassiveMonitor(sim, f"mon-{index}") for index in range(3)]
        for monitor in monitors:
            controller.register(monitor)
        for index in range(40):
            packet = tcp_packet(f"10.0.{index % 4}.{index + 1}", "192.0.2.10", 1000 + index, 80, b"x")
            sim.schedule(0.0002 * index, monitors[0].receive, packet, 1)
            sim.schedule(0.0002 * index, monitors[1].receive, packet.copy() if hasattr(packet, "copy") else packet, 1)
        sim.run(until=0.05)
        return sim, controller, nb, monitors

    def test_merge_starts_after_moves_on_other_shards_quiesce(self):
        sim, controller, nb, monitors = self._scenario()
        txn = nb.transaction()
        move_a = txn.move(monitors[0].name, monitors[2].name, None)
        move_b = txn.move(monitors[1].name, monitors[2].name, None, after=[])
        barrier = txn.barrier([move_a, move_b], quiesce_shards=True)
        merge = txn.merge(monitors[0].name, monitors[2].name, after=barrier)
        handle = txn.commit()
        sim.run_until(handle.done, limit=100)

        # Ordering: the merge began only after both moves completed *and* the
        # coordinator's cross-shard barrier observed their shards drained.
        assert merge.record.started_at >= barrier.record.finished_at
        assert barrier.record.finished_at >= move_a.record.finished_at
        assert barrier.record.finished_at >= move_b.record.finished_at
        assert controller.coordinator.barriers_issued >= 1
        assert handle.status == "committed"

    def test_coordinator_owns_transactions_for_their_lifetime(self):
        sim, controller, nb, monitors = self._scenario()
        txn = nb.transaction()
        txn.move(monitors[0].name, monitors[2].name, None)
        assert txn not in controller.coordinator.active_transactions
        handle = txn.commit()
        assert txn in controller.coordinator.active_transactions
        sim.run_until(handle.done, limit=100)
        assert txn not in controller.coordinator.active_transactions

    def test_shard_barrier_resolves_only_once_loops_drain(self):
        sim, controller, nb, boxes = build(4, pairs=4, chunks=80)
        handles = [nb.move_internal(src.name, dst.name, None) for src, dst in boxes]
        barrier = controller.coordinator.barrier()
        drained_at = sim.run_until(barrier, limit=100)
        busy_until = max(shard._cpu._free_at for shard in controller.coordinator.shards)
        assert drained_at >= busy_until - 1e-12
        for handle in handles:
            sim.run_until(handle.completed, limit=100)


# =========================================================================================
# Single-shard (N=1) equivalence with the pre-shard controller
# =========================================================================================


class TestSingleShardEquivalence:
    """Golden numbers captured from the seed (pre-shard) controller.

    The workloads below were run on the controller as it existed before the
    sharding refactor; with ``num_shards=1`` the sharded runtime must
    reproduce the same durations, message counts, and simulator event count
    bit-for-bit.
    """

    @staticmethod
    def _reset_wire_counters():
        """Pin the global xid/event-id counters so message sizes (and hence
        channel transfer times) match the capture environment exactly."""
        import repro.core.events as events_module
        import repro.core.messages as messages_module
        import repro.core.operations as operations_module

        messages_module._xids = itertools.count(1)
        events_module._event_ids = itertools.count(1)
        operations_module._operation_ids = itertools.count(1)

    def _workload(self, concurrency, chunks, events_rate=0.0, **config):
        self._reset_wire_counters()
        sim = Simulator()
        controller = MBController(sim, ControllerConfig(quiescence_timeout=0.1, **config))
        nb = NorthboundAPI(controller)
        pairs = []
        for index in range(concurrency):
            src = DummyMiddlebox(sim, f"src-{index}", chunk_count=chunks)
            dst = DummyMiddlebox(sim, f"dst-{index}")
            controller.register(src)
            controller.register(dst)
            pairs.append((src, dst))
        handles = [nb.move_internal(src.name, dst.name, None) for src, dst in pairs]
        if events_rate:
            for src, _ in pairs:
                src.generate_events_at_rate(events_rate, 0.05)
        for handle in handles:
            sim.run_until(handle.completed, limit=5000)
        durations = [handle.record.duration for handle in handles]
        return durations, controller.stats.messages_received, controller.stats.messages_sent, sim.executed_events

    def test_contended_workload_matches_pre_shard_golden_numbers(self):
        durations, received, sent, executed = self._workload(2, 50, events_rate=200.0)
        assert durations == [0.016581392, 0.016621392]
        assert (received, sent, executed) == (412, 206, 1440)

    def test_single_move_matches_pre_shard_golden_numbers(self):
        durations, received, sent, executed = self._workload(1, 80)
        assert durations == [pytest.approx(0.013291392, abs=1e-9)]
        assert (received, sent, executed) == (322, 162, 1130)

    def test_default_config_is_single_shard(self):
        config = ControllerConfig()
        assert config.num_shards == 1
        assert config.dispatch_tick is None

    def test_uncontended_move_duration_is_shard_count_invariant(self):
        baseline, *_ = self._workload(1, 80)
        for num_shards in (2, 4, 8):
            durations, *_ = self._workload(1, 80, num_shards=num_shards)
            assert durations == baseline  # sharding adds no overhead to a lone op

    def test_sharding_relieves_contention(self):
        serial, *_ = self._workload(8, 100)
        sharded, *_ = self._workload(8, 100, num_shards=4)
        assert max(sharded) < max(serial) / 2


# =========================================================================================
# Batched southbound dispatch
# =========================================================================================


class TestBatchedDispatch:
    def test_batch_frame_round_trip(self):
        chunk = _sealed_chunks(1)[0]
        chunk_msg = messages.put_perflow("mb", chunk, seq=7)
        release_msg = messages.transfer_release("mb", [chunk.key])
        frame = messages.batch_message("mb", [chunk_msg, release_msg])
        inner = messages.decode_batch(messages.Message.decode(frame.encode()))
        assert [m.type for m in inner] == [MessageType.PUT_PERFLOW, MessageType.TRANSFER_RELEASE]
        assert inner[0].xid == chunk_msg.xid and inner[1].xid == release_msg.xid
        assert inner[0].body["seq"] == 7

    def test_decode_batch_rejects_non_batch(self):
        from repro.core.errors import ProtocolError

        with pytest.raises(ProtocolError):
            messages.decode_batch(messages.transfer_end("mb"))

    def test_same_tick_puts_coalesce_into_one_channel_message(self):
        sim, controller, nb, boxes = build(1, pairs=1, chunks=0, dispatch_tick=0.0)
        src, dst = boxes[0]
        channel = controller.channel_for(dst.name)
        before = channel.to_mb.messages
        acked = []
        for chunk in _sealed_chunks(5):
            message = messages.put_perflow(dst.name, chunk)
            controller.send(dst.name, message, on_reply=lambda reply: acked.append(reply.type))
        sim.run(until=1.0)
        assert channel.to_mb.messages == before + 1  # one BATCH frame on the wire
        assert channel.to_mb.batches == 1
        assert channel.to_mb.framed_messages == 5
        assert controller.stats.batches_dispatched == 1
        assert controller.stats.messages_coalesced == 5
        assert acked == [MessageType.ACK] * 5  # every inner xid ACKed individually

    def test_non_batchable_request_preserves_channel_fifo(self):
        sim, controller, nb, boxes = build(1, pairs=1, chunks=0, dispatch_tick=0.0)
        src, dst = boxes[0]
        channel = controller.channel_for(dst.name)
        delivered = []
        original = channel._mb_handler
        channel.bind_middlebox(lambda message: (delivered.append(message.type), original(message)))
        controller.send(dst.name, messages.put_perflow(dst.name, _sealed_chunks(1)[0]))
        # A get issued in the same instant must not overtake the queued put:
        # the dispatcher flushes the destination's queue before a direct send.
        controller.send(dst.name, messages.get_stats(dst.name, FlowPattern.wildcard()))
        sim.run(until=1.0)
        assert delivered == [MessageType.PUT_PERFLOW, MessageType.GET_STATS]

    def test_queued_messages_for_unregistered_middlebox_are_dropped(self):
        sim, controller, nb, boxes = build(1, pairs=1, chunks=0, dispatch_tick=0.001)
        src, dst = boxes[0]
        channel = controller.channel_for(dst.name)
        before = channel.to_mb.messages
        controller.send(dst.name, messages.put_perflow(dst.name, _sealed_chunks(1)[0]))
        controller.unregister(dst.name)
        sim.run(until=1.0)
        assert channel.to_mb.messages == before  # flush found the mb gone: dropped

    def test_move_with_batched_dispatch_loses_nothing(self):
        plain = self._move(dispatch_tick=None)
        framed = self._move(dispatch_tick=0.0005)
        assert framed["puts_acked"] == plain["puts_acked"] == 120
        assert framed["events_dropped"] == 0
        assert framed["wire_messages"] < plain["wire_messages"]  # O(batches), not O(messages)
        # BATCH frames are pure framing: the middlebox counts the same number
        # of logical requests whether or not the controller coalesced the wire.
        assert framed["requests_handled"] == plain["requests_handled"]

    def _move(self, dispatch_tick):
        sim, controller, nb, boxes = build(1, pairs=1, chunks=60, dispatch_tick=dispatch_tick)
        src, dst = boxes[0]
        handle = nb.move_internal(src.name, dst.name, None)
        src.generate_events_at_rate(1000.0, 0.01)
        sim.run_until(handle.completed, limit=100)
        sim.run(until=2.0)
        record = handle.record
        return {
            "puts_acked": record.puts_acked,
            "events_dropped": record.events_dropped,
            "wire_messages": controller.channel_for(dst.name).to_mb.messages,
            "requests_handled": controller._registration(dst.name).agent.stats.requests_handled,
        }


def _sealed_chunks(count: int):
    """Properly sealed per-flow chunks, exported from a populated dummy."""
    from repro.core.state import StateRole

    exporter = DummyMiddlebox(Simulator(), "chunk-source", chunk_count=count)
    return exporter.get_perflow(StateRole.SUPPORTING, FlowPattern.wildcard())[:count]
