"""Unit tests for the state taxonomy and state stores."""

import pytest

from repro.core.errors import GranularityError, StateError
from repro.core.flowspace import FlowKey, FlowPattern
from repro.core.state import (
    AccessMode,
    PerFlowStateStore,
    SharedStateSlot,
    StateRole,
    StateScope,
    TAXONOMY,
    state_class,
)


def key(i: int, src_subnet: str = "10.0.0") -> FlowKey:
    return FlowKey(6, f"{src_subnet}.{i + 1}", "192.0.2.10", 1000 + i, 80)


class TestTaxonomy:
    def test_table1_has_five_classes(self):
        assert len(TAXONOMY) == 5

    def test_configuration_is_shared_and_read_only(self):
        cls = state_class(StateRole.CONFIGURING, StateScope.SHARED)
        assert cls.mb_access is AccessMode.READ
        assert not cls.movable
        assert not cls.cloneable

    def test_supporting_state_read_write(self):
        cls = state_class(StateRole.SUPPORTING, StateScope.PER_FLOW)
        assert cls.mb_access is AccessMode.READ_WRITE
        assert cls.movable and cls.cloneable

    def test_reporting_state_write_only(self):
        cls = state_class(StateRole.REPORTING, StateScope.PER_FLOW)
        assert cls.mb_access is AccessMode.WRITE

    def test_shared_reporting_not_cloneable(self):
        """Cloning shared reporting state would double-report (section 4.1.3)."""
        cls = state_class(StateRole.REPORTING, StateScope.SHARED)
        assert cls.movable
        assert not cls.cloneable

    def test_no_per_flow_configuration_class(self):
        with pytest.raises(StateError):
            state_class(StateRole.CONFIGURING, StateScope.PER_FLOW)


class TestPerFlowStateStore:
    def test_put_get_remove(self):
        store = PerFlowStateStore()
        store.put(key(0), "value")
        assert store.get(key(0)) == "value"
        assert len(store) == 1
        assert store.remove(key(0)) == "value"
        assert store.get(key(0)) is None

    def test_bidirectional_lookup(self):
        store = PerFlowStateStore()
        store.put(key(0), "value")
        assert store.get(key(0).reversed()) == "value"
        assert key(0).reversed() in store

    def test_unidirectional_mode(self):
        store = PerFlowStateStore(bidirectional=False)
        store.put(key(0), "value")
        assert store.get(key(0).reversed()) is None

    def test_get_or_create(self):
        store = PerFlowStateStore()
        created = store.get_or_create(key(1), lambda: {"n": 0})
        created["n"] = 5
        assert store.get_or_create(key(1), lambda: {"n": 0})["n"] == 5

    def test_query_by_pattern(self):
        store = PerFlowStateStore()
        for i in range(10):
            store.put(key(i, "10.0.0" if i < 6 else "10.0.9"), i)
        matches = store.query(FlowPattern(nw_src="10.0.0.0/24"))
        assert len(matches) == 6

    def test_query_wildcard_returns_all(self):
        store = PerFlowStateStore()
        for i in range(5):
            store.put(key(i), i)
        assert len(store.query(FlowPattern.wildcard())) == 5

    def test_query_matches_reverse_direction(self):
        store = PerFlowStateStore()
        store.put(key(0), "v")
        matches = store.query(FlowPattern(nw_src="192.0.2.0/24"))
        assert len(matches) == 1

    def test_granularity_violation_raises(self):
        """Requests finer than the MB's granularity must error (section 4.1.2)."""
        store = PerFlowStateStore(granularity=("nw_proto", "nw_src", "tp_src"))
        store.put(key(0), "v")
        with pytest.raises(GranularityError):
            store.query(FlowPattern(nw_dst="192.0.2.10"))

    def test_coarser_than_granularity_is_allowed(self):
        store = PerFlowStateStore(granularity=("nw_proto", "nw_src", "tp_src"))
        store.put(key(0), "v")
        assert len(store.query(FlowPattern(nw_src="10.0.0.0/24"))) == 1

    def test_remove_matching(self):
        store = PerFlowStateStore()
        for i in range(10):
            store.put(key(i, "10.0.0" if i % 2 == 0 else "10.0.9"), i)
        removed = store.remove_matching(FlowPattern(nw_src="10.0.0.0/24"))
        assert len(removed) == 5
        assert len(store) == 5

    def test_count_matching(self):
        store = PerFlowStateStore()
        for i in range(8):
            store.put(key(i), i)
        assert store.count_matching(FlowPattern(nw_dst="192.0.2.10")) == 8

    def test_linear_scan_counts_steps(self):
        store = PerFlowStateStore()
        for i in range(20):
            store.put(key(i), i)
        store.scan_steps = 0
        store.query(FlowPattern(nw_src="10.0.0.1"))
        assert store.scan_steps == 20

    def test_indexed_store_scans_fewer_entries(self):
        indexed = PerFlowStateStore(indexed=True)
        for i in range(50):
            indexed.put(key(i), i)
        indexed.scan_steps = 0
        matches = indexed.query(FlowPattern(nw_src="10.0.0.5"))
        assert len(matches) == 1
        assert indexed.scan_steps < 50

    def test_indexed_store_falls_back_for_prefix_queries(self):
        indexed = PerFlowStateStore(indexed=True)
        for i in range(10):
            indexed.put(key(i), i)
        assert len(indexed.query(FlowPattern(nw_src="10.0.0.0/24"))) == 10

    def test_indexed_store_serves_port_only_patterns_from_port_index(self):
        """Regression: a pattern wildcarding the address fields used to force a
        full linear scan on an indexed store (only a source-address index
        existed).  The port index must now bound the scan to its postings."""
        indexed = PerFlowStateStore(indexed=True)
        for i in range(50):
            indexed.put(key(i), i)
        indexed.scan_steps = 0
        matches = indexed.query(FlowPattern(tp_src=1007))
        assert len(matches) == 1
        assert indexed.scan_steps < 50

    def test_indexed_store_picks_smallest_posting_set(self):
        indexed = PerFlowStateStore(indexed=True)
        # 40 flows share a destination port; each has a unique source port.
        for i in range(40):
            indexed.put(FlowKey(6, f"10.1.0.{i + 1}", "192.0.2.10", 5000 + i, 80), i)
        indexed.scan_steps = 0
        matches = indexed.query(FlowPattern(tp_src=5003, tp_dst=80))
        assert len(matches) == 1
        # The unique source port (1 posting) must win over the shared
        # destination port (40 postings).
        assert indexed.scan_steps == 1

    def test_exact_pattern_scans_single_shard_without_index(self):
        """Regression companion: a fully pinned concrete pattern on a plain
        (non-indexed) store is routed to the single shard owning the canonical
        key instead of walking all shards."""
        store = PerFlowStateStore(shard_count=16)
        for i in range(320):
            store.put(key(i % 250, src_subnet=f"10.{i // 250}.0"), i)
        total = len(store)
        target = key(7)
        store.scan_steps = 0
        matches = store.query(
            FlowPattern(
                nw_proto=target.nw_proto,
                nw_src=target.nw_src,
                nw_dst=target.nw_dst,
                tp_src=target.tp_src,
                tp_dst=target.tp_dst,
            )
        )
        assert len(matches) == 1
        # Only the owning shard was walked — a small fraction of the store.
        assert 0 < store.scan_steps < total / 2

    def test_clear(self):
        store = PerFlowStateStore()
        store.put(key(0), 1)
        store.clear()
        assert len(store) == 0

    def test_keys_and_items(self):
        store = PerFlowStateStore()
        store.put(key(0), "a")
        store.put(key(1), "b")
        assert len(store.keys()) == 2
        assert dict(store.items())[key(0).bidirectional()] == "a"


class TestSharedStateSlot:
    def test_replace(self):
        slot = SharedStateSlot({"count": 1})
        slot.replace({"count": 5})
        assert slot.value == {"count": 5}

    def test_merge_with_hook(self):
        slot = SharedStateSlot({"count": 1}, merge=lambda a, b: {"count": a["count"] + b["count"]})
        slot.merge_in({"count": 4})
        assert slot.value == {"count": 5}
        assert slot.merge_count == 1

    def test_merge_without_hook_replaces(self):
        slot = SharedStateSlot({"count": 1})
        slot.merge_in({"count": 9})
        assert slot.value == {"count": 9}

    def test_clone_value_with_hook(self):
        slot = SharedStateSlot({"items": [1, 2]}, clone=lambda value: {"items": list(value["items"])})
        cloned = slot.clone_value()
        cloned["items"].append(3)
        assert slot.value == {"items": [1, 2]}

    def test_clone_value_default_returns_same_object(self):
        slot = SharedStateSlot({"x": 1})
        assert slot.clone_value() is slot.value
