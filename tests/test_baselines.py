"""Tests for the baseline systems (VM snapshot, config+routing, Split/Merge)."""

import pytest

from repro.apps import build_re_migration_scenario, build_two_instance_scenario
from repro.baselines import (
    APPLICABILITY_MATRIX,
    ConfigRoutingREMigration,
    SplitMergeMigration,
    clone_via_snapshot,
    expected_added_latency,
    expected_buffered_packets,
    hold_up_from_trace,
    scale_down_hold_up,
    snapshot_migration_report,
    snapshot_size,
)
from repro.core import FlowPattern
from repro.middleboxes import IDS, PassiveMonitor
from repro.net import Simulator
from repro.traffic import datacenter_flow_durations, datacenter_trace, enterprise_cloud_trace, redundancy_trace


class TestApplicabilityMatrix:
    def test_sdmbn_supports_all_scenarios(self):
        assert all(value == "yes" for value in APPLICABILITY_MATRIX["SDMBN (OpenMB)"].values())

    def test_every_baseline_fails_something(self):
        for name, capabilities in APPLICABILITY_MATRIX.items():
            if name == "SDMBN (OpenMB)":
                continue
            assert any(value != "yes" for value in capabilities.values()), name

    def test_snapshot_cannot_scale_down(self):
        assert APPLICABILITY_MATRIX["VM snapshot"]["scale-down"] == "no"

    def test_matrix_covers_all_three_scenarios(self):
        for capabilities in APPLICABILITY_MATRIX.values():
            assert set(capabilities) == {"scale-up", "scale-down", "migration"}


class TestVMSnapshot:
    def _populated_ids(self):
        sim = Simulator()
        ids = IDS(sim, "ids")
        trace = enterprise_cloud_trace(http_flows=15, other_flows=10, duration=10.0, seed=21)
        for record in trace:
            ids.process_packet(record.to_packet())
        return sim, ids

    def test_snapshot_size_grows_with_state(self):
        sim = Simulator()
        empty = IDS(sim, "empty")
        base = snapshot_size(empty)
        _, populated = self._populated_ids()
        assert snapshot_size(populated) > base

    def test_clone_via_snapshot_copies_everything(self):
        sim, ids = self._populated_ids()
        clone = IDS(sim, "clone")
        copied = clone_via_snapshot(ids, clone)
        assert copied == len(ids.support_store) + len(ids.report_store)
        assert len(clone.support_store) == len(ids.support_store)

    def test_clone_via_snapshot_is_deep(self):
        sim, ids = self._populated_ids()
        clone = IDS(sim, "clone")
        clone_via_snapshot(ids, clone)
        key, connection = next(iter(ids.support_store.items()))
        connection.orig_packets += 100
        assert clone.support_store.get(key).orig_packets != connection.orig_packets

    def test_clone_rejects_different_type(self):
        sim, ids = self._populated_ids()
        with pytest.raises(ValueError):
            clone_via_snapshot(ids, PassiveMonitor(sim, "mon"))

    def test_migration_report_accounts_unneeded_state(self):
        sim, ids = self._populated_ids()
        base = snapshot_size(IDS(sim, "fresh"))
        report = snapshot_migration_report(ids, base_size=base, migrated_pattern=FlowPattern(tp_dst=80))
        assert report.full_bytes > report.base_bytes
        assert report.unneeded_bytes > 0
        assert 0 < report.overhead_ratio <= 1.0

    def test_snapshot_migration_produces_incorrect_log_entries(self):
        """Both snapshot copies log anomalies for the flows the other copy now handles."""
        sim = Simulator()
        old = IDS(sim, "old")
        trace = enterprise_cloud_trace(http_flows=12, other_flows=8, duration=10.0, seed=22, leave_open_fraction=1.0)
        half = len(trace.records) // 2
        for record in trace.records[:half]:
            old.process_packet(record.to_packet())
        new = IDS(sim, "new")
        clone_via_snapshot(old, new)
        # After migration, HTTP flows go to the new instance and the rest stay.
        for record in trace.records[half:]:
            target = new if record.tp_dst == 80 or record.tp_src == 80 else old
            target.process_packet(record.to_packet())
        old.finalize()
        new.finalize()
        assert len(old.incorrect_entries()) > 0
        assert len(new.incorrect_entries()) > 0


class TestConfigRouting:
    def test_hold_up_dominated_by_longest_flow(self):
        durations = [10.0, 100.0, 2000.0]
        report = scale_down_hold_up(durations, decision_time=50.0)
        assert report.active_flows == 2
        assert report.held_up_seconds == pytest.approx(1950.0)

    def test_hold_up_fraction_over_1500s_matches_distribution(self):
        durations = datacenter_flow_durations(20000, seed=30)
        report = scale_down_hold_up(durations)
        assert 0.05 < report.fraction_over_1500s < 0.13
        assert report.held_up_seconds > 1500.0

    def test_hold_up_from_trace(self):
        trace = datacenter_trace(flows=50, seed=31)
        report = hold_up_from_trace(trace, decision_time=5.0)
        assert report.active_flows > 0
        assert report.held_up_seconds > 0

    def test_re_migration_without_cloning_leaves_bytes_undecodable(self):
        scenario = build_re_migration_scenario(cache_capacity=64 * 1024)
        warm_a = redundancy_trace(packets=80, payload_bytes=512, redundancy=0.6, server_subnet="1.1.1", seed=32)
        warm_b = redundancy_trace(packets=80, payload_bytes=512, redundancy=0.6, server_subnet="1.1.2", seed=33)
        scenario.inject(warm_a.merged_with(warm_b), start_at=0.05)
        scenario.sim.run(until=0.5)

        post_b = redundancy_trace(
            packets=100, payload_bytes=512, redundancy=0.6, server_subnet="1.1.2", seed=33, interval=0.004
        )
        app = ConfigRoutingREMigration(
            scenario,
            routing_delay=0.04,  # ten 4 ms-spaced packets reach the old decoder first
            on_cache_switched=lambda: scenario.inject(post_b, start_at=scenario.sim.now),
        )
        scenario.sim.run_until(app.start(), limit=100)
        scenario.sim.run(until=scenario.sim.now + 2.0)
        # The encoded (redundant) bytes of the resumed DC-B traffic cannot be decoded anywhere.
        assert scenario.decoder_a.undecodable_bytes + scenario.decoder_b.undecodable_bytes > 0
        assert scenario.decoder_b.undecodable_packets > 0


class TestSplitMerge:
    def test_analytical_estimates(self):
        assert expected_buffered_packets(1000.0, 0.244) == 244
        assert expected_added_latency(1000.0, 0.8) == pytest.approx(0.4)
        assert expected_added_latency(0.0, 0.8) == 0.0

    def test_suspension_buffers_packets_and_adds_latency(self):
        scenario = build_two_instance_scenario(
            mb_factory=lambda sim, name: PassiveMonitor(sim, name), mb_names=("mon1", "mon2")
        )
        trace = enterprise_cloud_trace(http_flows=40, other_flows=0, duration=30.0, seed=34, leave_open_fraction=1.0)
        scenario.inject(trace, speedup=20.0)
        scenario.sim.run(until=0.3)
        app = SplitMergeMigration(scenario, pattern=FlowPattern(nw_dst="172.16.0.0/16"))
        report = scenario.sim.run_until(app.start(), limit=100)
        assert report.details["buffered_packets"] > 0
        assert report.details["mean_added_latency"] > 0
        # Buffered packets are eventually released and processed by the new instance.
        scenario.sim.run(until=scenario.sim.now + 1.0)
        assert scenario.mb2.counters.packets_received >= report.details["buffered_packets"]

    def test_openmb_move_adds_far_less_latency_than_split_merge(self):
        """The headline comparison: suspension adds orders of magnitude more latency."""
        from repro.apps.scaling import ScaleUpApp

        def added_latency(use_split_merge: bool) -> float:
            scenario = build_two_instance_scenario(
                mb_factory=lambda sim, name: PassiveMonitor(sim, name), mb_names=("mon1", "mon2")
            )
            trace = enterprise_cloud_trace(
                http_flows=40, other_flows=0, duration=30.0, seed=35, leave_open_fraction=1.0
            )
            scenario.inject(trace, speedup=20.0)
            scenario.sim.run(until=0.3)
            pattern = FlowPattern(nw_dst="172.16.0.0/16")
            if use_split_merge:
                app = SplitMergeMigration(scenario, pattern=pattern)
                report = scenario.sim.run_until(app.start(), limit=100)
                return report.details["mean_added_latency"]
            app = ScaleUpApp(
                scenario.sim,
                scenario.northbound,
                existing_mb="mon1",
                new_mb="mon2",
                patterns=[pattern],
                update_routing=lambda p: scenario.route_via(scenario.mb2, p),
            )
            scenario.sim.run_until(app.start(), limit=100)
            # OpenMB keeps processing packets during the move; the added latency is the
            # transfer slowdown on in-flight packets, bounded by the slowdown factor.
            costs = scenario.mb1.costs
            return costs.packet_processing * (costs.transfer_slowdown - 1.0)

        assert added_latency(True) > 100 * added_latency(False)
