"""Unit tests for the PRADS-like passive monitor."""


from repro.core.flowspace import FlowPattern
from repro.core.state import StateRole
from repro.middleboxes.monitor import (
    EVENT_ASSET_DETECTED,
    FlowRecord,
    MonitorStats,
    PassiveMonitor,
    combined_statistics,
)
from repro.net import Simulator, tcp_packet, udp_packet
from repro.net.packet import SYN


def feed(monitor, count=10, dst="192.0.2.10", dport=80, src_prefix="10.0.0"):
    for index in range(count):
        monitor.process_packet(tcp_packet(f"{src_prefix}.{index + 1}", dst, 1000 + index, dport, b"data"))


class TestFlowRecords:
    def test_new_flow_creates_record(self):
        monitor = PassiveMonitor(Simulator(), "mon")
        feed(monitor, count=3)
        assert len(monitor.report_store) == 3
        assert monitor.shared_report.value.flows_seen == 3

    def test_bidirectional_traffic_counted_in_one_record(self):
        monitor = PassiveMonitor(Simulator(), "mon")
        packet = tcp_packet("10.0.0.1", "192.0.2.10", 1000, 80, b"req")
        monitor.process_packet(packet)
        monitor.process_packet(packet.reply(b"resp"))
        assert len(monitor.report_store) == 1
        record = monitor.flow_records()[0]
        assert record.packets == 2
        assert monitor.shared_report.value.flows_seen == 1

    def test_record_counts_bytes_and_syn(self):
        monitor = PassiveMonitor(Simulator(), "mon")
        packet = tcp_packet("10.0.0.1", "192.0.2.10", 1000, 80, b"xyz", flags={SYN})
        monitor.process_packet(packet)
        record = monitor.flow_records()[0]
        assert record.bytes == packet.wire_size
        assert record.syn_seen

    def test_service_detection_by_port(self):
        monitor = PassiveMonitor(Simulator(), "mon")
        monitor.process_packet(tcp_packet("10.0.0.1", "192.0.2.10", 1000, 443, b""))
        assert monitor.flow_records()[0].service == "https"

    def test_flow_record_payload_roundtrip(self):
        monitor = PassiveMonitor(Simulator(), "mon")
        feed(monitor, count=1)
        record = monitor.flow_records()[0]
        assert FlowRecord.from_payload(record.to_payload()) == record


class TestSharedStats:
    def test_protocol_counters(self):
        monitor = PassiveMonitor(Simulator(), "mon")
        monitor.process_packet(tcp_packet("10.0.0.1", "192.0.2.10", 1, 80))
        monitor.process_packet(udp_packet("10.0.0.1", "192.0.2.10", 1, 53))
        stats = monitor.shared_report.value
        assert stats.tcp_packets == 1 and stats.udp_packets == 1 and stats.total_packets == 2

    def test_asset_detection_records_server_and_service(self):
        monitor = PassiveMonitor(Simulator(), "mon")
        feed(monitor, count=2, dport=22)
        assert monitor.shared_report.value.assets["192.0.2.10"] == ["ssh"]

    def test_merge_adds_counters_and_unions_assets(self):
        a = MonitorStats(total_packets=5, tcp_packets=5, flows_seen=2)
        a.record_asset("192.0.2.1", "http")
        b = MonitorStats(total_packets=3, udp_packets=3, flows_seen=1)
        b.record_asset("192.0.2.1", "https")
        b.record_asset("192.0.2.2", "ssh")
        merged = MonitorStats.merge(a, b)
        assert merged.total_packets == 8 and merged.flows_seen == 3
        assert merged.assets["192.0.2.1"] == ["http", "https"]
        assert merged.assets["192.0.2.2"] == ["ssh"]

    def test_merge_does_not_mutate_inputs(self):
        a = MonitorStats(total_packets=5)
        b = MonitorStats(total_packets=3)
        MonitorStats.merge(a, b)
        assert a.total_packets == 5 and b.total_packets == 3

    def test_stats_payload_roundtrip(self):
        stats = MonitorStats(total_packets=10, tcp_packets=7, flows_seen=4)
        stats.record_asset("192.0.2.1", "http")
        assert MonitorStats.from_payload(stats.to_payload()).to_payload() == stats.to_payload()


class TestStateExport:
    def test_perflow_reporting_roundtrip_between_instances(self):
        sim = Simulator()
        src, dst = PassiveMonitor(sim, "a"), PassiveMonitor(sim, "b")
        feed(src, count=6)
        chunks = src.get_perflow(StateRole.REPORTING, FlowPattern.wildcard())
        for chunk in chunks:
            dst.put_perflow(chunk)
        assert len(dst.report_store) == 6
        assert {r.packets for r in dst.flow_records()} == {1}

    def test_shared_reporting_merge_through_southbound(self):
        sim = Simulator()
        src, dst = PassiveMonitor(sim, "a"), PassiveMonitor(sim, "b")
        feed(src, count=4)
        feed(dst, count=2, dst="192.0.2.99")
        dst.put_shared(src.get_shared(StateRole.REPORTING))
        assert dst.shared_report.value.total_packets == 6
        assert dst.shared_report.merge_count == 1

    def test_monitor_has_no_shared_supporting_state(self):
        monitor = PassiveMonitor(Simulator(), "mon")
        assert monitor.get_shared(StateRole.SUPPORTING) is None


class TestReprocessSemantics:
    def test_reprocessed_packets_do_not_touch_shared_counters(self):
        """Replayed packets must not double-count in the shared reporting state."""
        monitor = PassiveMonitor(Simulator(), "mon")
        feed(monitor, count=2)
        before = monitor.shared_report.value.total_packets
        monitor.reprocess(tcp_packet("10.0.0.1", "192.0.2.10", 1000, 80, b"late"), shared=False)
        assert monitor.shared_report.value.total_packets == before
        # ... but the per-flow record is updated.
        assert any(record.packets == 2 for record in monitor.flow_records())

    def test_combined_statistics_after_split_processing(self):
        """Two instances that each saw part of the traffic report the same totals as one."""
        sim = Simulator()
        reference = PassiveMonitor(sim, "ref")
        part_a, part_b = PassiveMonitor(sim, "a"), PassiveMonitor(sim, "b")
        for index in range(40):
            packet = tcp_packet(f"10.0.0.{index % 7 + 1}", "192.0.2.10", 2000 + index % 7, 80, b"x")
            reference.process_packet(packet)
            (part_a if index < 25 else part_b).process_packet(packet)
        combined = combined_statistics([part_a, part_b])
        assert combined["total_packets"] == reference.statistics()["total_packets"]
        assert combined["tcp_packets"] == reference.statistics()["tcp_packets"]


class TestEventsAndStatistics:
    def test_asset_event_raised_when_enabled(self):
        sim = Simulator()
        monitor = PassiveMonitor(sim, "mon")
        events = []
        monitor.set_event_sink(events.append)
        monitor.enable_events(EVENT_ASSET_DETECTED)
        feed(monitor, count=1)
        assert [event.code for event in events] == [EVENT_ASSET_DETECTED]
        assert events[0].values["service"] == "http"

    def test_statistics_shape(self):
        monitor = PassiveMonitor(Simulator(), "mon")
        feed(monitor, count=5)
        stats = monitor.statistics()
        assert stats["total_packets"] == 5
        assert stats["resident_flow_records"] == 5
        assert "assets" in stats
