"""Unit tests for the southbound wire protocol and control channels."""

import pytest

from repro.core import messages
from repro.core.channel import ControlChannel
from repro.core.errors import ProtocolError
from repro.core.events import Event, EventCode
from repro.core.flowspace import FlowKey, FlowPattern
from repro.core.messages import Message, MessageType
from repro.core.state import SharedChunk, StateChunk, StateRole
from repro.net.packet import tcp_packet
from repro.net.simulator import Simulator

KEY = FlowKey(6, "10.0.0.1", "192.0.2.1", 1000, 80)


class TestMessageEncoding:
    def test_roundtrip(self):
        message = messages.get_perflow("mb1", StateRole.SUPPORTING, FlowPattern(tp_dst=80), transfer=True)
        decoded = Message.decode(message.encode())
        assert decoded.type == MessageType.GET_PERFLOW
        assert decoded.mb == "mb1"
        assert decoded.body["transfer"] is True
        assert decoded.xid == message.xid

    def test_reply_to_preserved(self):
        ack = Message(MessageType.ACK, reply_to=42, mb="mb1")
        assert Message.decode(ack.encode()).reply_to == 42

    def test_malformed_json_rejected(self):
        with pytest.raises(ProtocolError):
            Message.decode(b"{not json")

    def test_missing_fields_rejected(self):
        with pytest.raises(ProtocolError):
            Message.decode(b'{"type": "ack"}')

    def test_unencodable_body_rejected(self):
        message = Message(MessageType.ACK, body={"bad": object()})
        with pytest.raises(ProtocolError):
            message.encode()

    def test_wire_size_is_encoded_length(self):
        message = messages.get_config("mb1", "*")
        assert message.wire_size == len(message.encode())

    def test_xids_are_unique(self):
        a = messages.get_config("mb1", "*")
        b = messages.get_config("mb1", "*")
        assert a.xid != b.xid


class TestChunkCodecs:
    def test_perflow_chunk_roundtrip(self):
        chunk = StateChunk(key=KEY, role=StateRole.SUPPORTING, blob=b"\x00\x01binary", metadata={"n": 1})
        decoded = messages.decode_chunk(messages.encode_chunk(chunk))
        assert decoded.key == KEY
        assert decoded.role is StateRole.SUPPORTING
        assert decoded.blob == chunk.blob
        assert decoded.metadata == {"n": 1}

    def test_shared_chunk_roundtrip(self):
        chunk = SharedChunk(role=StateRole.REPORTING, blob=b"shared-bytes")
        decoded = messages.decode_shared_chunk(messages.encode_shared_chunk(chunk))
        assert decoded.role is StateRole.REPORTING
        assert decoded.blob == b"shared-bytes"

    def test_malformed_chunk_rejected(self):
        with pytest.raises(ProtocolError):
            messages.decode_chunk({"role": "supporting"})

    def test_pattern_roundtrip(self):
        pattern = FlowPattern(nw_src="10.0.0.0/8", tp_dst=80)
        assert messages.decode_pattern(messages.encode_pattern(pattern)) == pattern


class TestPacketAndEventCodecs:
    def test_packet_roundtrip_preserves_payload_flags_annotations(self):
        packet = tcp_packet("10.0.0.1", "192.0.2.1", 1, 80, b"\x01\x02payload", flags={"SYN", "ACK"})
        packet.annotations["re_segments"] = [{"type": "raw", "data": b"abc"}]
        packet.encoded_size = 17
        decoded = messages.decode_packet(messages.encode_packet(packet))
        assert decoded.payload == packet.payload
        assert decoded.flags == packet.flags
        assert decoded.annotations["re_segments"][0]["data"] == b"abc"
        assert decoded.encoded_size == 17

    def test_event_message_roundtrip(self):
        packet = tcp_packet("10.0.0.1", "192.0.2.1", 1, 80, b"data")
        event = Event(mb_name="mb1", code=EventCode.REPROCESS, key=KEY, packet=packet, raised_at=1.5)
        message = messages.event_message(event)
        decoded = messages.decode_event(Message.decode(message.encode()))
        assert decoded.mb_name == "mb1"
        assert decoded.is_reprocess
        assert decoded.key == KEY
        assert decoded.packet.payload == b"data"
        assert decoded.raised_at == 1.5

    def test_introspection_event_without_packet(self):
        event = Event(mb_name="nat1", code="nat.mapping_created", key=KEY, values={"external_port": 10001})
        decoded = messages.decode_event(Message.decode(messages.event_message(event).encode()))
        assert decoded.packet is None
        assert decoded.values["external_port"] == 10001

    def test_reprocess_message_carries_packet(self):
        packet = tcp_packet("10.0.0.1", "192.0.2.1", 1, 80, b"data")
        event = Event(mb_name="mb1", code=EventCode.REPROCESS, key=KEY, packet=packet, shared=True)
        message = messages.reprocess_message("mb2", event)
        assert message.type == MessageType.REPROCESS_PACKET
        assert message.mb == "mb2"
        decoded = Message.decode(message.encode())
        assert decoded.body["shared"] is True
        assert messages.decode_packet(decoded.body["packet"]).payload == b"data"


class TestControlChannel:
    def _channel(self, latency=1e-3, bandwidth=1e6):
        sim = Simulator()
        channel = ControlChannel(sim, "chan", latency=latency, bandwidth=bandwidth)
        controller_inbox, mb_inbox = [], []
        channel.bind_controller(controller_inbox.append)
        channel.bind_middlebox(mb_inbox.append)
        return sim, channel, controller_inbox, mb_inbox

    def test_delivery_both_directions(self):
        sim, channel, controller_inbox, mb_inbox = self._channel()
        channel.send_to_middlebox(messages.get_config("mb1", "*"))
        channel.send_to_controller(Message(MessageType.ACK, mb="mb1"))
        sim.run()
        assert len(mb_inbox) == 1 and mb_inbox[0].type == MessageType.GET_CONFIG
        assert len(controller_inbox) == 1 and controller_inbox[0].type == MessageType.ACK

    def test_delivery_time_accounts_for_size(self):
        sim, channel, _, mb_inbox = self._channel(latency=0.0, bandwidth=1000.0)
        message = messages.get_config("mb1", "*")
        delivery = channel.send_to_middlebox(message)
        assert delivery == pytest.approx(message.wire_size / 1000.0)

    def test_messages_reencoded_by_default(self):
        sim, channel, _, mb_inbox = self._channel()
        original = messages.get_config("mb1", "*")
        channel.send_to_middlebox(original)
        sim.run()
        assert mb_inbox[0] is not original
        assert mb_inbox[0].xid == original.xid

    def test_counters(self):
        sim, channel, _, _ = self._channel()
        message = messages.get_config("mb1", "*")
        channel.send_to_middlebox(message)
        sim.run()
        assert channel.to_mb.messages == 1
        assert channel.to_mb.bytes == message.wire_size
        assert channel.total_messages == 1

    def test_in_order_delivery_per_direction(self):
        sim, channel, _, mb_inbox = self._channel(latency=0.0, bandwidth=100.0)
        first = messages.set_config("mb1", "K", list(range(50)))
        second = messages.get_config("mb1", "K")
        channel.send_to_middlebox(first)
        channel.send_to_middlebox(second)
        sim.run()
        assert [m.xid for m in mb_inbox] == [first.xid, second.xid]

    def test_unbound_channel_raises(self):
        sim = Simulator()
        channel = ControlChannel(sim, "chan")
        with pytest.raises(RuntimeError):
            channel.send_to_middlebox(messages.get_config("mb1", "*"))


class TestEventFilter:
    def test_reprocess_always_allowed(self):
        from repro.core.events import EventFilter

        filt = EventFilter()
        event = Event(mb_name="mb", code=EventCode.REPROCESS, key=KEY)
        assert filt.allows(event)

    def test_introspection_requires_subscription(self):
        from repro.core.events import EventFilter

        filt = EventFilter()
        event = Event(mb_name="mb", code="nat.mapping_created", key=KEY)
        assert not filt.allows(event)
        filt.enable("nat.mapping_created")
        assert filt.allows(event)

    def test_pattern_scoped_subscription(self):
        from repro.core.events import EventFilter

        filt = EventFilter()
        filt.enable("lb.flow_assigned", FlowPattern(nw_src="10.0.0.0/8"))
        inside = Event(mb_name="mb", code="lb.flow_assigned", key=KEY)
        outside = Event(mb_name="mb", code="lb.flow_assigned", key=FlowKey(6, "172.16.0.1", "192.0.2.1", 1, 2))
        assert filt.allows(inside)
        assert not filt.allows(outside)

    def test_expiring_subscription(self):
        from repro.core.events import EventFilter

        filt = EventFilter()
        filt.enable("monitor.asset_detected", until=10.0)
        event = Event(mb_name="mb", code="monitor.asset_detected", key=KEY)
        assert filt.allows(event, now=5.0)
        assert not filt.allows(event, now=11.0)

    def test_disable_removes_subscriptions(self):
        from repro.core.events import EventFilter

        filt = EventFilter()
        filt.enable("a")
        filt.enable("a", FlowPattern(tp_dst=80))
        assert filt.disable("a") == 2
        assert filt.subscription_count == 0

    def test_disable_all(self):
        from repro.core.events import EventFilter

        filt = EventFilter()
        filt.enable("a")
        filt.enable("b")
        filt.disable_all()
        assert filt.subscription_count == 0

    def test_event_without_key_matches_any_pattern_subscription(self):
        from repro.core.events import EventFilter

        filt = EventFilter()
        filt.enable("custom", FlowPattern(tp_dst=80))
        assert filt.allows(Event(mb_name="mb", code="custom", key=None))
