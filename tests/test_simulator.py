"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.core.errors import SimulationError, StuckFutureError
from repro.net.simulator import Simulator, all_of


class TestScheduling:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(0.3, order.append, "c")
        sim.schedule(0.1, order.append, "a")
        sim.schedule(0.2, order.append, "b")
        sim.run()
        assert order == ["a", "b", "c"]

    def test_ties_run_in_scheduling_order(self):
        sim = Simulator()
        order = []
        sim.schedule(0.1, order.append, 1)
        sim.schedule(0.1, order.append, 2)
        sim.run()
        assert order == [1, 2]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        times = []
        sim.schedule(0.5, lambda: times.append(sim.now))
        sim.run()
        assert times == [0.5]

    def test_run_until_stops_before_later_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "late")
        sim.run(until=0.5)
        assert fired == []
        assert sim.now == 0.5
        assert sim.pending_events == 1

    def test_run_with_no_events_advances_to_until(self):
        sim = Simulator()
        sim.run(until=3.0)
        assert sim.now == 3.0

    def test_cannot_schedule_into_the_past(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(0.5, lambda: None)
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_nested_scheduling(self):
        sim = Simulator()
        seen = []

        def outer():
            seen.append(sim.now)
            sim.schedule(0.5, lambda: seen.append(sim.now))

        sim.schedule(1.0, outer)
        sim.run()
        assert seen == [1.0, 1.5]

    def test_executed_event_counter(self):
        sim = Simulator()
        for _ in range(5):
            sim.schedule(0.1, lambda: None)
        sim.run()
        assert sim.executed_events == 5


class TestFuture:
    def test_succeed_and_result(self):
        sim = Simulator()
        future = sim.event()
        future.succeed(42)
        assert future.done and future.result == 42

    def test_result_before_completion_raises(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            _ = sim.event().result

    def test_double_completion_rejected(self):
        sim = Simulator()
        future = sim.event()
        future.succeed(1)
        with pytest.raises(SimulationError):
            future.succeed(2)

    def test_fail_propagates_exception(self):
        sim = Simulator()
        future = sim.event()
        future.fail(ValueError("boom"))
        with pytest.raises(ValueError):
            _ = future.result

    def test_callback_after_completion_runs_immediately(self):
        sim = Simulator()
        future = sim.event()
        future.succeed("x")
        seen = []
        future.add_done_callback(lambda f: seen.append(f.result))
        assert seen == ["x"]

    def test_timeout_future(self):
        sim = Simulator()
        future = sim.timeout(2.0, result="done")
        sim.run()
        assert future.result == "done"
        assert sim.now == 2.0

    def test_all_of_collects_results_in_order(self):
        sim = Simulator()
        futures = [sim.timeout(0.3, "c"), sim.timeout(0.1, "a"), sim.timeout(0.2, "b")]
        combined = all_of(sim, futures)
        sim.run()
        assert combined.result == ["c", "a", "b"]

    def test_all_of_empty_completes_immediately(self):
        sim = Simulator()
        assert all_of(sim, []).result == []

    def test_all_of_fails_on_first_failure(self):
        sim = Simulator()
        good = sim.timeout(0.1)
        bad = sim.event()
        combined = all_of(sim, [good, bad])
        bad.fail(RuntimeError("nope"))
        sim.run()
        with pytest.raises(RuntimeError):
            _ = combined.result

    def test_run_until_returns_future_result(self):
        sim = Simulator()
        future = sim.timeout(1.5, "value")
        assert sim.run_until(future) == "value"

    def test_run_until_raises_if_queue_drains(self):
        sim = Simulator()
        pending = sim.event()
        with pytest.raises(SimulationError):
            sim.run_until(pending)


class TestStuckFutureDiagnostics:
    """run_until must diagnose *why* a future can never complete."""

    def test_queue_drain_raises_typed_error_with_diagnosis(self):
        sim = Simulator()
        stuck = sim.event(name="never-completed")
        stuck.add_done_callback(lambda f: None)
        stuck.add_done_callback(lambda f: None)
        sim.schedule(0.5, lambda: None)  # unrelated work that drains first
        with pytest.raises(StuckFutureError) as excinfo:
            sim.run_until(stuck)
        error = excinfo.value
        assert error.reason == "queue-drained"
        assert error.future_name == "never-completed"
        assert error.waiters == 2
        assert error.queue_depth == 0
        assert error.limit is None
        assert "never-completed" in str(error)
        assert "waiters=2" in str(error)

    def test_limit_exceeded_raises_typed_error_with_queue_depth(self):
        sim = Simulator()
        stuck = sim.event(name="gated")
        # Periodic work keeps the queue alive well past the limit.
        def tick():
            sim.schedule(0.1, tick)
        sim.schedule(0.1, tick)
        with pytest.raises(StuckFutureError) as excinfo:
            sim.run_until(stuck, limit=1.0)
        error = excinfo.value
        assert error.reason == "limit-exceeded"
        assert error.limit == 1.0
        assert error.queue_depth >= 1
        assert error.at <= 1.0
        assert sim.pending_events >= 1  # the limit check consumed nothing

    def test_stuck_error_is_a_simulation_error(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.run_until(sim.event())

    def test_limit_check_does_not_consume_the_boundary_event(self):
        # The over-limit event must still be pending after the raise, so a
        # caller that extends the limit and retries sees it execute.
        sim = Simulator()
        gate = sim.event(name="late")
        sim.schedule(2.0, gate.succeed, "finally")
        with pytest.raises(StuckFutureError):
            sim.run_until(gate, limit=1.0)
        assert sim.run_until(gate, limit=3.0) == "finally"


class TestCancellableHandles:
    def test_cancelled_callback_never_runs(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(0.5, fired.append, "no")
        sim.schedule(1.0, fired.append, "yes")
        handle.cancel()
        sim.run()
        assert fired == ["yes"]

    def test_cancelled_events_are_not_counted_as_executed(self):
        sim = Simulator()
        sim.schedule(0.1, lambda: None)
        sim.schedule(0.2, lambda: None).cancel()
        sim.run()
        assert sim.executed_events == 1


class TestSimulatedLane:
    def test_lane_serialises_submitted_work(self):
        sim = Simulator()
        lane = sim.lane("cpu")
        finishes = []
        lane.submit(0.2, lambda: finishes.append(sim.now))
        lane.submit(0.3, lambda: finishes.append(sim.now))
        sim.run()
        assert finishes == [pytest.approx(0.2), pytest.approx(0.5)]

    def test_reserve_tracks_occupancy(self):
        sim = Simulator()
        lane = sim.lane("wire")
        assert lane.reserve(0.1) == pytest.approx(0.1)
        assert lane.reserve(0.1) == pytest.approx(0.2)
        assert lane.idle_at == pytest.approx(0.2)

    def test_dispatch_at_delivers_in_order(self):
        sim = Simulator()
        lane = sim.lane("wire")
        order = []
        lane.dispatch_at(0.2, order.append, "b")
        lane.dispatch_at(0.1, order.append, "a")
        sim.run()
        assert order == ["a", "b"]


class TestProcesses:
    def test_process_with_delays(self):
        sim = Simulator()
        times = []

        def body():
            times.append(sim.now)
            yield 1.0
            times.append(sim.now)
            yield 0.5
            times.append(sim.now)
            return "finished"

        future = sim.process(body())
        sim.run()
        assert times == [0.0, 1.0, 1.5]
        assert future.result == "finished"

    def test_process_waits_on_future_and_receives_result(self):
        sim = Simulator()
        received = []

        def body():
            value = yield sim.timeout(0.5, result=99)
            received.append(value)

        sim.process(body())
        sim.run()
        assert received == [99]

    def test_process_waits_on_list_of_futures(self):
        sim = Simulator()
        results = []

        def body():
            values = yield [sim.timeout(0.2, "a"), sim.timeout(0.1, "b")]
            results.append(values)

        sim.process(body())
        sim.run()
        assert results == [["a", "b"]]

    def test_process_exception_fails_its_future(self):
        sim = Simulator()

        def body():
            yield 0.1
            raise RuntimeError("process error")

        future = sim.process(body())
        sim.run()
        with pytest.raises(RuntimeError):
            _ = future.result

    def test_failed_awaited_future_raises_inside_process(self):
        sim = Simulator()
        failing = sim.event()
        caught = []

        def body():
            try:
                yield failing
            except ValueError as exc:
                caught.append(str(exc))

        sim.process(body())
        sim.schedule(0.1, failing.fail, ValueError("inner"))
        sim.run()
        assert caught == ["inner"]

    def test_yield_none_resumes_soon(self):
        sim = Simulator()
        steps = []

        def body():
            steps.append("first")
            yield None
            steps.append("second")

        sim.process(body())
        sim.run()
        assert steps == ["first", "second"]

    def test_unsupported_yield_value_fails_process(self):
        sim = Simulator()

        def body():
            yield "not a future"

        future = sim.process(body())
        sim.run()
        assert future.exception is not None
