"""Unit tests for the Middlebox base class (southbound implementation, events, forwarding)."""

import pytest

from repro.core.errors import StateError
from repro.core.flowspace import FlowKey, FlowPattern
from repro.core.southbound import ProcessingCosts
from repro.core.state import SharedStateSlot, StateRole
from repro.middleboxes.base import Middlebox, ProcessResult, Verdict
from repro.net import Simulator, Topology, tcp_packet


class EchoMB(Middlebox):
    """A minimal middlebox: counts packets per flow and forwards them."""

    MB_TYPE = "echo"

    def __init__(self, sim, name, **kwargs):
        super().__init__(sim, name, **kwargs)
        self.shared_support = SharedStateSlot({"total": 0}, merge=lambda a, b: {"total": a["total"] + b["total"]})

    def process_packet(self, packet):
        key = packet.flow_key()
        record = self.support_store.get_or_create(key, lambda: {"packets": 0})
        record["packets"] += 1
        self.shared_support.value["total"] += 1
        self.raise_event("echo.packet", key=key)
        return ProcessResult(verdict=Verdict.FORWARD, updated_flows=[key], updated_shared=True)


def make_packet(i=0, payload=b"x"):
    return tcp_packet(f"10.0.0.{i + 1}", "192.0.2.1", 1000 + i, 80, payload)


class TestPacketPath:
    def _wired(self):
        sim = Simulator()
        topo = Topology(sim)
        left = topo.add_host("left", "10.0.0.100")
        right = topo.add_host("right", "192.0.2.100")
        mb = EchoMB(sim, "echo1")
        topo.add_node(mb)
        topo.connect(left, mb)
        topo.connect(mb, right)
        return sim, left, right, mb

    def test_forwards_out_the_other_port(self):
        sim, left, right, mb = self._wired()
        left.send(make_packet())
        sim.run()
        assert len(right.received) == 1
        assert mb.counters.packets_forwarded == 1

    def test_reverse_direction_forwarded_back(self):
        sim, left, right, mb = self._wired()
        right.send(make_packet().reply())
        sim.run()
        assert len(left.received) == 1

    def test_drop_verdict(self):
        sim, left, right, mb = self._wired()
        mb.process_packet = lambda packet: ProcessResult(verdict=Verdict.DROP)
        left.send(make_packet())
        sim.run()
        assert right.received == []
        assert mb.counters.packets_dropped == 1

    def test_forward_replacement_packet(self):
        sim, left, right, mb = self._wired()
        replacement = make_packet(payload=b"rewritten")

        mb.process_packet = lambda packet: ProcessResult(verdict=Verdict.FORWARD, packet=replacement)
        left.send(make_packet())
        sim.run()
        assert right.received[0].payload == b"rewritten"

    def test_egress_port_override(self):
        sim, left, right, mb = self._wired()
        mb.egress_port = mb.port_to(left)
        right.send(make_packet().reply())
        sim.run()
        # The reply came in from the right but is forced back out toward the left host.
        assert len(left.received) == 1

    def test_processing_cost_delays_packets(self):
        sim = Simulator()
        mb = EchoMB(sim, "echo1", costs=ProcessingCosts(packet_processing=5e-3))
        mb.receive(make_packet(), 1)
        sim.run(until=1e-3)
        assert len(mb.support_store) == 0
        sim.run()
        assert len(mb.support_store) == 1

    def test_api_activity_slows_packet_processing(self):
        sim = Simulator()
        costs = ProcessingCosts(packet_processing=1e-3, transfer_slowdown=1.5)
        mb = EchoMB(sim, "echo1", costs=costs)
        mb._note_api_activity(1.0)
        mb.receive(make_packet(), 1)
        sim.run()
        assert mb.counters.processing_time_total == pytest.approx(1.5e-3)


class TestSouthboundState:
    def _populated(self, count=10):
        sim = Simulator()
        mb = EchoMB(sim, "echo1")
        for i in range(count):
            mb.process_packet(make_packet(i))
        return sim, mb

    def test_get_perflow_exports_sealed_chunks(self):
        _, mb = self._populated()
        chunks = mb.get_perflow(StateRole.SUPPORTING, FlowPattern.wildcard())
        assert len(chunks) == 10
        assert all(chunk.blob for chunk in chunks)
        assert all(b"packets" not in chunk.blob for chunk in chunks)

    def test_put_perflow_imports_into_peer(self):
        sim, mb = self._populated()
        peer = EchoMB(sim, "echo2")
        for chunk in mb.get_perflow(StateRole.SUPPORTING, FlowPattern.wildcard()):
            peer.put_perflow(chunk)
        assert len(peer.support_store) == 10
        key = FlowKey(6, "10.0.0.1", "192.0.2.1", 1000, 80)
        assert peer.support_store.get(key)["packets"] == 1

    def test_get_with_mark_transfer_flags_flows(self):
        _, mb = self._populated()
        mb.get_perflow(StateRole.SUPPORTING, FlowPattern.wildcard(), mark_transfer=True)
        assert mb.transferred_flow_count() == 10
        mb.end_transfer()
        assert mb.transferred_flow_count() == 0

    def test_del_perflow_removes_matching(self):
        _, mb = self._populated()
        removed = mb.del_perflow(StateRole.SUPPORTING, FlowPattern(nw_src="10.0.0.1"))
        assert removed == 1
        assert len(mb.support_store) == 9

    def test_get_shared_and_put_shared_merge(self):
        sim, mb = self._populated(5)
        peer = EchoMB(sim, "echo2")
        for i in range(3):
            peer.process_packet(make_packet(i + 50))
        chunk = mb.get_shared(StateRole.SUPPORTING)
        peer.put_shared(chunk)
        assert peer.shared_support.value["total"] == 8

    def test_get_shared_missing_slot_returns_none(self):
        sim, mb = self._populated(1)
        assert mb.get_shared(StateRole.REPORTING) is None

    def test_put_shared_without_slot_raises(self):
        sim, mb = self._populated(1)
        chunk = mb.get_shared(StateRole.SUPPORTING)
        chunk.role = StateRole.REPORTING
        with pytest.raises(StateError):
            mb.put_shared(chunk)

    def test_state_stats(self):
        _, mb = self._populated()
        stats = mb.state_stats(FlowPattern.wildcard())
        assert stats["perflow_supporting"] == 10
        assert stats["shared_supporting"] == 1
        assert stats["shared_reporting"] == 0
        assert stats["config_keys"] == 0

    def test_perflow_count(self):
        _, mb = self._populated(7)
        assert mb.perflow_count(StateRole.SUPPORTING) == 7
        assert mb.perflow_count(StateRole.REPORTING) == 0

    def test_config_roundtrip_through_southbound(self):
        _, mb = self._populated(1)
        mb.set_config("Echo.Threshold", [5])
        assert mb.get_config("Echo.Threshold") == {"Echo.Threshold": [5]}
        mb.del_config("Echo.Threshold")
        assert "Echo.Threshold" not in mb.get_config("*")

    def test_launch_like_copies_configuration(self):
        sim, mb = self._populated(1)
        mb.set_config("Echo.Threshold", [9])
        replica = EchoMB(sim, "echo2")
        replica.launch_like(mb)
        assert replica.config.get_scalar("Echo.Threshold") == 9

    def test_launch_like_rejects_other_types(self):
        sim, mb = self._populated(1)
        from repro.middleboxes import PassiveMonitor
        from repro.core.errors import MiddleboxError

        with pytest.raises(MiddleboxError):
            PassiveMonitor(sim, "mon").launch_like(mb)


class TestEvents:
    def test_reprocess_event_raised_only_for_transferred_flows(self):
        sim = Simulator()
        mb = EchoMB(sim, "echo1")
        events = []
        mb.set_event_sink(events.append)
        mb.process_packet(make_packet(0))
        mb.receive(make_packet(0), 1)
        sim.run()
        assert not any(event.is_reprocess for event in events)
        mb.get_perflow(StateRole.SUPPORTING, FlowPattern.wildcard(), mark_transfer=True)
        mb.receive(make_packet(0), 1)
        sim.run()
        assert any(event.is_reprocess for event in events)

    def test_reprocess_event_carries_packet(self):
        sim = Simulator()
        mb = EchoMB(sim, "echo1")
        events = []
        mb.set_event_sink(events.append)
        mb.process_packet(make_packet(0))
        mb.get_perflow(StateRole.SUPPORTING, FlowPattern.wildcard(), mark_transfer=True)
        mb.receive(make_packet(0, payload=b"replay-me"), 1)
        sim.run()
        reprocess = [event for event in events if event.is_reprocess]
        assert reprocess and reprocess[0].packet.payload == b"replay-me"

    def test_shared_transfer_event_marked_shared(self):
        sim = Simulator()
        mb = EchoMB(sim, "echo1")
        events = []
        mb.set_event_sink(events.append)
        mb.get_shared(StateRole.SUPPORTING, mark_transfer=True)
        mb.receive(make_packet(0), 1)
        sim.run()
        reprocess = [event for event in events if event.is_reprocess]
        assert reprocess and reprocess[0].shared

    def test_introspection_events_filtered_by_default(self):
        sim = Simulator()
        mb = EchoMB(sim, "echo1")
        events = []
        mb.set_event_sink(events.append)
        mb.receive(make_packet(0), 1)
        sim.run()
        assert events == []

    def test_introspection_events_after_enable(self):
        sim = Simulator()
        mb = EchoMB(sim, "echo1")
        events = []
        mb.set_event_sink(events.append)
        mb.enable_events("echo.packet")
        mb.receive(make_packet(0), 1)
        sim.run()
        assert [event.code for event in events] == ["echo.packet"]
        mb.disable_events("echo.packet")
        mb.receive(make_packet(0), 1)
        sim.run()
        assert len(events) == 1

    def test_reprocess_suppresses_forwarding(self):
        sim = Simulator()
        topo = Topology(sim)
        left = topo.add_host("left", "10.0.0.100")
        right = topo.add_host("right", "192.0.2.100")
        mb = EchoMB(sim, "echo1")
        topo.add_node(mb)
        topo.connect(left, mb)
        topo.connect(mb, right)
        mb.reprocess(make_packet(0), shared=False)
        sim.run()
        assert right.received == []
        assert mb.counters.reprocessed_packets == 1
        assert len(mb.support_store) == 1

    def test_reprocess_does_not_raise_further_events(self):
        sim = Simulator()
        mb = EchoMB(sim, "echo1")
        events = []
        mb.set_event_sink(events.append)
        mb.get_shared(StateRole.SUPPORTING, mark_transfer=True)
        mb.reprocess(make_packet(0), shared=True)
        assert not any(event.is_reprocess for event in events)
