"""Unit tests for flow keys, prefixes, and header-field patterns."""

import pytest

from repro.core.flowspace import (
    FIELDS,
    PROTO_TCP,
    PROTO_UDP,
    FlowKey,
    FlowPattern,
    IPv4Prefix,
    int_to_ip,
    ip_to_int,
)


class TestAddressConversion:
    def test_roundtrip(self):
        for address in ("0.0.0.0", "10.1.2.3", "255.255.255.255", "192.0.2.77"):
            assert int_to_ip(ip_to_int(address)) == address

    def test_ip_to_int_known_value(self):
        assert ip_to_int("1.0.0.0") == 1 << 24
        assert ip_to_int("0.0.0.1") == 1

    def test_rejects_bad_addresses(self):
        with pytest.raises(ValueError):
            ip_to_int("10.0.0")
        with pytest.raises(ValueError):
            ip_to_int("300.0.0.1")
        with pytest.raises(ValueError):
            int_to_ip(-1)
        with pytest.raises(ValueError):
            int_to_ip(1 << 33)


class TestIPv4Prefix:
    def test_parse_with_and_without_length(self):
        assert IPv4Prefix.parse("10.0.0.0/8").length == 8
        assert IPv4Prefix.parse("10.1.2.3").length == 32

    def test_network_is_masked(self):
        prefix = IPv4Prefix.parse("10.1.2.3/24")
        assert int_to_ip(prefix.network) == "10.1.2.0"

    def test_contains_ip(self):
        prefix = IPv4Prefix.parse("1.1.2.0/24")
        assert prefix.contains_ip("1.1.2.200")
        assert not prefix.contains_ip("1.1.3.1")

    def test_zero_length_matches_everything(self):
        prefix = IPv4Prefix.parse("0.0.0.0/0")
        assert prefix.contains_ip("8.8.8.8")
        assert prefix.contains_ip("10.0.0.1")

    def test_contains_prefix(self):
        outer = IPv4Prefix.parse("10.0.0.0/8")
        inner = IPv4Prefix.parse("10.1.0.0/16")
        assert outer.contains_prefix(inner)
        assert not inner.contains_prefix(outer)

    def test_invalid_length_rejected(self):
        with pytest.raises(ValueError):
            IPv4Prefix(0, 33)


class TestFlowKey:
    def test_reversed_swaps_endpoints(self):
        key = FlowKey(PROTO_TCP, "10.0.0.1", "192.0.2.1", 1234, 80)
        rev = key.reversed()
        assert rev.nw_src == "192.0.2.1" and rev.tp_src == 80
        assert rev.reversed() == key

    def test_bidirectional_is_direction_independent(self):
        key = FlowKey(PROTO_TCP, "10.0.0.1", "192.0.2.1", 1234, 80)
        assert key.bidirectional() == key.reversed().bidirectional()

    def test_dict_roundtrip(self):
        key = FlowKey(PROTO_UDP, "10.0.0.1", "192.0.2.1", 53, 5353)
        assert FlowKey.from_dict(key.as_dict()) == key

    def test_str_contains_protocol_name(self):
        key = FlowKey(PROTO_TCP, "10.0.0.1", "192.0.2.1", 1234, 80)
        assert "tcp" in str(key)


class TestFlowPatternParsing:
    def test_parse_none_gives_wildcard(self):
        assert FlowPattern.parse(None).is_wildcard
        assert FlowPattern.parse([]).is_wildcard
        assert FlowPattern.parse("").is_wildcard

    def test_parse_paper_notation(self):
        pattern = FlowPattern.parse(["nw_src=1.1.1.0/24"])
        assert pattern.nw_src == "1.1.1.0/24"
        assert pattern.specificity == 1

    def test_parse_mapping(self):
        pattern = FlowPattern.parse({"nw_dst": "192.0.2.0/24", "tp_dst": 80})
        assert pattern.tp_dst == 80
        assert pattern.specificity == 2

    def test_parse_comma_separated_string(self):
        pattern = FlowPattern.parse("nw_src=10.0.0.0/8,tp_dst=443")
        assert pattern.specificity == 2

    def test_parse_rejects_unknown_field(self):
        with pytest.raises(ValueError):
            FlowPattern.parse({"bogus": 1})

    def test_from_flow_is_fully_specified(self):
        key = FlowKey(PROTO_TCP, "10.0.0.1", "192.0.2.1", 1234, 80)
        pattern = FlowPattern.from_flow(key)
        assert pattern.specificity == len(FIELDS)
        assert pattern.matches(key)


class TestFlowPatternMatching:
    key = FlowKey(PROTO_TCP, "10.1.1.5", "172.16.1.9", 40000, 80)

    def test_wildcard_matches_everything(self):
        assert FlowPattern.wildcard().matches(self.key)

    def test_prefix_match_on_source(self):
        assert FlowPattern(nw_src="10.1.1.0/24").matches(self.key)
        assert not FlowPattern(nw_src="10.1.2.0/24").matches(self.key)

    def test_exact_port_match(self):
        assert FlowPattern(tp_dst=80).matches(self.key)
        assert not FlowPattern(tp_dst=443).matches(self.key)

    def test_protocol_match(self):
        assert FlowPattern(nw_proto=PROTO_TCP).matches(self.key)
        assert not FlowPattern(nw_proto=PROTO_UDP).matches(self.key)

    def test_matches_either_direction(self):
        reverse_only = FlowPattern(nw_src="172.16.1.0/24")
        assert not reverse_only.matches(self.key)
        assert reverse_only.matches_either_direction(self.key)

    def test_combined_fields_all_must_match(self):
        pattern = FlowPattern(nw_src="10.1.0.0/16", nw_dst="172.16.0.0/16", tp_dst=80)
        assert pattern.matches(self.key)
        assert not FlowPattern(nw_src="10.1.0.0/16", tp_dst=22).matches(self.key)


class TestFlowPatternRelations:
    def test_covers_broader_prefix_covers_narrower(self):
        broad = FlowPattern(nw_src="10.0.0.0/8")
        narrow = FlowPattern(nw_src="10.1.0.0/16")
        assert broad.covers(narrow)
        assert not narrow.covers(broad)

    def test_wildcard_covers_all(self):
        assert FlowPattern.wildcard().covers(FlowPattern(nw_src="10.0.0.1", tp_dst=80))

    def test_is_finer_than(self):
        finer = FlowPattern(nw_src="10.0.0.1", tp_src=99)
        coarser = FlowPattern(nw_src="10.0.0.0/8")
        assert finer.is_finer_than(coarser)
        assert not coarser.is_finer_than(finer)

    def test_intersects(self):
        a = FlowPattern(nw_src="10.0.0.0/8")
        b = FlowPattern(nw_src="10.1.0.0/16", tp_dst=80)
        c = FlowPattern(nw_src="11.0.0.0/8")
        assert a.intersects(b)
        assert not a.intersects(c)

    def test_equality_and_hash(self):
        a = FlowPattern(nw_src="10.0.0.0/8", tp_dst=80)
        b = FlowPattern(tp_dst=80, nw_src="10.0.0.0/8")
        assert a == b
        assert hash(a) == hash(b)
        assert a != FlowPattern(tp_dst=81, nw_src="10.0.0.0/8")

    def test_as_dict_omits_wildcarded_fields(self):
        pattern = FlowPattern(tp_dst=80)
        assert pattern.as_dict() == {"tp_dst": 80}

    def test_specified_fields_in_canonical_order(self):
        pattern = FlowPattern(tp_dst=80, nw_src="10.0.0.0/8", nw_proto=6)
        assert pattern.specified_fields() == ("nw_proto", "nw_src", "tp_dst")
