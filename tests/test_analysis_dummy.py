"""Tests for the analysis helpers and the dummy (controller-benchmark) middlebox."""

import pytest

from repro.analysis import (
    CDF,
    ActivitySampler,
    compare_ids_outputs,
    compare_log_entries,
    compare_monitor_statistics,
    format_mapping,
    format_series,
    format_table,
    operation_windows,
)
from repro.core import ControllerConfig, MBController, NorthboundAPI
from repro.middleboxes import IDS, DummyMiddlebox, PassiveMonitor
from repro.net import Simulator, tcp_packet


class TestCDF:
    def test_quantiles_and_probabilities(self):
        cdf = CDF.from_samples(range(1, 101))
        assert cdf.at(50) == pytest.approx(0.5)
        assert cdf.quantile(0.9) == pytest.approx(90.1, abs=1.0)
        assert cdf.exceeding(90) == pytest.approx(0.1)

    def test_empty_cdf(self):
        cdf = CDF.from_samples([])
        assert cdf.at(10) == 0.0
        assert cdf.quantile(0.5) == 0.0
        assert cdf.series() == []

    def test_series_is_monotone(self):
        cdf = CDF.from_samples([5, 1, 3, 2, 4])
        series = cdf.series(points=5)
        values = [value for value, _ in series]
        probabilities = [probability for _, probability in series]
        assert values == sorted(values)
        assert probabilities == sorted(probabilities)


class TestLogComparison:
    def test_identical_multisets(self):
        comparison = compare_log_entries(["a", "b", "b"], ["b", "a", "b"])
        assert comparison.identical
        assert comparison.matching == 3

    def test_differences_reported_both_ways(self):
        comparison = compare_log_entries(["a", "b"], ["b", "c"])
        assert not comparison.identical
        assert comparison.only_in_reference == ["a"]
        assert comparison.only_in_candidate == ["c"]
        assert comparison.differences == 2

    def test_compare_ids_outputs_identical_for_same_traffic(self):
        sim = Simulator()
        reference, candidate = IDS(sim, "ref"), IDS(sim, "cand")
        from repro.traffic import enterprise_cloud_trace

        trace = enterprise_cloud_trace(http_flows=8, other_flows=3, duration=5.0, seed=40)
        for record in trace:
            reference.process_packet(record.to_packet())
            candidate.process_packet(record.to_packet())
        reference.finalize()
        candidate.finalize()
        result = compare_ids_outputs(reference, [candidate])
        assert result["conn_log"].identical
        assert result["http_log"].identical

    def test_compare_monitor_statistics_detects_mismatch(self):
        sim = Simulator()
        reference, candidate = PassiveMonitor(sim, "ref"), PassiveMonitor(sim, "cand")
        packet = tcp_packet("10.0.0.1", "192.0.2.1", 1, 80)
        reference.process_packet(packet)
        assert compare_monitor_statistics(reference, [candidate])  # mismatch reported
        candidate.process_packet(packet)
        assert compare_monitor_statistics(reference, [candidate]) == {}


class TestReportFormatting:
    def test_format_table_alignment(self):
        text = format_table("Title", ["col", "value"], [["a", 1], ["longer", 2.5]])
        lines = text.splitlines()
        assert lines[0] == "== Title =="
        assert "col" in lines[1] and "value" in lines[1]
        assert len(lines) == 5

    def test_format_series_and_mapping(self):
        assert "== S ==" in format_series("S", [(1, 2)], x_label="x", y_label="y")
        assert "metric" in format_mapping("M", {"a": 1})

    def test_float_formatting(self):
        text = format_table("T", ["v"], [[0.000012345], [12345.6]])
        assert "e-05" in text and "e+04" in text.lower() or "1.235e" in text


class TestActivitySampler:
    def test_samples_counters_over_time(self):
        sim = Simulator()
        monitor = PassiveMonitor(sim, "mon")
        sampler = ActivitySampler(sim, [monitor], interval=0.01)
        sampler.start(duration=0.1)
        for index in range(20):
            packet = tcp_packet("10.0.0.1", "192.0.2.1", 1000, 80, b"x")
            sim.schedule(0.005 * index, monitor.receive, packet, 1)
        sim.run()
        series = sampler.series["mon"]
        assert len(series.samples) >= 10
        assert series.total_packets() == 20
        rates = series.rates()
        assert any(rate > 0 for _, rate, _, _ in rates)

    def test_operation_windows_extraction(self):
        sim = Simulator()
        controller = MBController(sim, ControllerConfig(quiescence_timeout=0.1))
        nb = NorthboundAPI(controller)
        src = DummyMiddlebox(sim, "src", chunk_count=20)
        dst = DummyMiddlebox(sim, "dst")
        controller.register(src)
        controller.register(dst)
        handle = nb.move_internal("src", "dst", None)
        sim.run_until(handle.finalized)
        windows = operation_windows(controller.stats.records)
        assert len(windows) == 1
        window = windows[0]
        assert window.op_type == "moveInternal"
        assert window.completed_at > window.started_at
        assert window.finalized_at >= window.completed_at
        assert window.chunks == 40  # 20 supporting + 20 reporting chunks


class TestDummyMiddlebox:
    def test_populate_creates_fixed_size_chunks(self):
        dummy = DummyMiddlebox(Simulator(), "dummy", chunk_count=50)
        assert len(dummy.support_store) == 50
        assert len(dummy.report_store) == 50

    def test_flow_keys_are_distinct(self):
        dummy = DummyMiddlebox(Simulator(), "dummy", chunk_count=500)
        keys = {dummy.flow_key_for(index) for index in range(500)}
        assert len(keys) == 500

    def test_generate_reprocess_event_reaches_sink(self):
        dummy = DummyMiddlebox(Simulator(), "dummy", chunk_count=5)
        events = []
        dummy.set_event_sink(events.append)
        dummy.generate_reprocess_event(0)
        assert len(events) == 1 and events[0].is_reprocess

    def test_generate_events_at_rate(self):
        sim = Simulator()
        dummy = DummyMiddlebox(sim, "dummy", chunk_count=10)
        events = []
        dummy.set_event_sink(events.append)
        scheduled = dummy.generate_events_at_rate(100.0, 0.5)
        sim.run()
        assert scheduled == 50
        assert len(events) == 50

    def test_move_between_dummies_transfers_all_chunks(self):
        sim = Simulator()
        controller = MBController(sim, ControllerConfig(quiescence_timeout=0.1))
        nb = NorthboundAPI(controller)
        src = DummyMiddlebox(sim, "src", chunk_count=100)
        dst = DummyMiddlebox(sim, "dst")
        controller.register(src)
        controller.register(dst)
        record = sim.run_until(nb.move_internal("src", "dst", None).completed)
        assert record.chunks_transferred == 200
        assert len(dst.support_store) == 100
