"""End-to-end correctness invariants (paper section 8.2).

The paper's correctness claim: the output of unmodified middleboxes and of
OpenMB-enabled middleboxes subjected to dynamic control (migration, scaling)
is the same.  These tests replay identical workloads through a reference
instance and through a dynamically re-configured deployment and compare the
outputs.
"""


from repro.analysis import compare_ids_outputs, compare_monitor_statistics
from repro.apps import PerFlowMigrationApp, ScaleDownApp, ScaleUpApp, build_two_instance_scenario
from repro.core import FlowPattern
from repro.middleboxes import IDS, PassiveMonitor, combined_statistics
from repro.net import Simulator
from repro.traffic import enterprise_cloud_trace


def monitor_scenario():
    return build_two_instance_scenario(
        mb_factory=lambda sim, name: PassiveMonitor(sim, name), mb_names=("mon1", "mon2")
    )


def ids_scenario():
    return build_two_instance_scenario(mb_factory=lambda sim, name: IDS(sim, name), mb_names=("ids1", "ids2"))


def reference_monitor(trace):
    sim = Simulator()
    reference = PassiveMonitor(sim, "reference")
    for record in trace:
        reference.process_packet(record.to_packet())
    return reference


def reference_ids(trace):
    sim = Simulator()
    reference = IDS(sim, "reference")
    for record in trace:
        reference.process_packet(record.to_packet())
    reference.finalize()
    return reference


class TestMonitorScalingCorrectness:
    def test_scale_up_preserves_aggregate_statistics(self):
        """No over- or under-reporting across a scale-up with live re-balancing.

        The workload is shaped so every flow has started (its state exists at the
        original instance) before the re-balance begins; flows that would start
        inside the move/re-route window are a known limitation of the paper's
        design (their state is neither moved nor replayed) and are exercised
        separately by the baseline comparisons.
        """
        trace = enterprise_cloud_trace(http_flows=30, other_flows=10, duration=15.0, seed=50)
        scenario = monitor_scenario()
        scenario.inject(trace, speedup=40.0)
        # Run until every flow has started (its state exists at mon1) before re-balancing.
        scenario.sim.run(until=0.3)
        app = ScaleUpApp(
            scenario.sim,
            scenario.northbound,
            existing_mb="mon1",
            new_mb="mon2",
            patterns=[FlowPattern(nw_src="10.1.1.0/25")],
            update_routing=lambda p: scenario.route_via(scenario.mb2, p),
        )
        scenario.sim.run_until(app.start(), limit=200)
        scenario.sim.run(until=scenario.sim.now + 3.0)

        reference = reference_monitor(trace)
        mismatches = compare_monitor_statistics(reference, [scenario.mb1, scenario.mb2])
        assert mismatches == {}

    def test_scale_up_then_down_preserves_aggregate_statistics(self):
        trace = enterprise_cloud_trace(http_flows=25, other_flows=5, duration=15.0, seed=51)
        scenario = monitor_scenario()
        scenario.inject(trace, speedup=40.0)
        scenario.sim.run(until=0.3)
        up = ScaleUpApp(
            scenario.sim,
            scenario.northbound,
            existing_mb="mon1",
            new_mb="mon2",
            patterns=[FlowPattern(nw_src="10.1.1.0/24")],
            update_routing=lambda p: scenario.route_via(scenario.mb2, p),
        )
        scenario.sim.run_until(up.start(), limit=200)
        scenario.sim.run(until=scenario.sim.now + 0.2)
        terminated = []
        down = ScaleDownApp(
            scenario.sim,
            scenario.northbound,
            spare_mb="mon2",
            remaining_mb="mon1",
            update_routing=lambda p: scenario.route_via(scenario.mb1, FlowPattern(nw_dst="172.16.0.0/16")),
            terminate=lambda: terminated.append("mon2"),
            wait_for_finalize=True,
        )
        scenario.sim.run_until(down.start(), limit=300)
        scenario.sim.run(until=scenario.sim.now + 3.0)

        # The spare instance has been terminated; the remaining instance alone must
        # account for everything the deployment observed — neither over-reporting
        # (double-counted merges/replays) nor under-reporting (updates lost with the
        # terminated spare).
        assert terminated == ["mon2"]
        reference = reference_monitor(trace)
        alone = combined_statistics([scenario.mb1])
        assert alone["total_packets"] == reference.statistics()["total_packets"]
        assert alone["flows_seen"] == reference.statistics()["flows_seen"]
        assert alone["tcp_packets"] == reference.statistics()["tcp_packets"]


class TestIDSMigrationCorrectness:
    def test_migration_produces_identical_logs(self):
        """conn.log/http.log of the OpenMB deployment match an unmodified IDS (section 8.2)."""
        trace = enterprise_cloud_trace(
            http_flows=20, other_flows=8, duration=15.0, seed=52, leave_open_fraction=0.3
        )
        scenario = ids_scenario()
        scenario.inject(trace, speedup=40.0)
        # Migrate once every HTTP connection has been established at the old instance.
        scenario.sim.run(until=0.3)
        app = PerFlowMigrationApp(
            scenario.sim,
            scenario.northbound,
            old_mb="ids1",
            new_mb="ids2",
            pattern=FlowPattern(tp_dst=80),
            update_routing=lambda p: scenario.route_via(scenario.mb2, p),
            wait_for_finalize=True,
        )
        scenario.sim.run_until(app.start(), limit=300)
        scenario.sim.run(until=scenario.sim.now + 3.0)
        scenario.mb1.finalize()
        scenario.mb2.finalize()

        reference = reference_ids(trace)
        comparison = compare_ids_outputs(reference, [scenario.mb1, scenario.mb2])
        assert comparison["http_log"].identical, comparison["http_log"].only_in_reference[:3]
        assert comparison["conn_log"].identical, (
            comparison["conn_log"].only_in_reference[:3],
            comparison["conn_log"].only_in_candidate[:3],
        )

    def test_migration_without_state_move_is_incorrect(self):
        """Control: re-routing without moving IDS state produces differing logs.

        This is the failure mode of configuration+routing-only control the paper
        describes — it validates that the correctness test above is actually
        sensitive to lost state.
        """
        trace = enterprise_cloud_trace(
            http_flows=20, other_flows=8, duration=20.0, seed=52, leave_open_fraction=0.3
        )
        scenario = ids_scenario()
        scenario.inject(trace, speedup=40.0)
        scenario.sim.run(until=0.25)
        # Re-route HTTP flows without moving their connection state.
        scenario.sim.run_until(scenario.route_via(scenario.mb2, FlowPattern(tp_dst=80)))
        scenario.sim.run(until=scenario.sim.now + 3.0)
        scenario.mb1.finalize()
        scenario.mb2.finalize()
        reference = reference_ids(trace)
        comparison = compare_ids_outputs(reference, [scenario.mb1, scenario.mb2])
        assert not comparison["conn_log"].identical


class TestPerformanceImpact:
    def test_latency_increase_during_get_is_small(self):
        """Per-packet processing latency rises only marginally while a get is serviced."""
        scenario = monitor_scenario()
        trace = enterprise_cloud_trace(http_flows=20, other_flows=5, duration=20.0, seed=53)
        scenario.inject(trace, speedup=40.0)
        scenario.sim.run(until=0.25)
        normal_latency = scenario.mb1.counters.mean_processing_latency
        handle = scenario.northbound.move_internal("mon1", "mon2", FlowPattern(nw_src="10.1.1.0/24"))
        scenario.sim.run_until(handle.completed, limit=100)
        scenario.sim.run(until=scenario.sim.now + 2.0)
        overall_latency = scenario.mb1.counters.mean_processing_latency
        # The overall mean includes packets processed during the transfer; the
        # increase must stay within a few percent (the paper reports about 2%).
        assert overall_latency <= normal_latency * 1.05
