"""Wall-clock soak: continuous transactions under loss on the realtime runtime.

A two-instance deployment runs scale-up / rebalance / scale-down transaction
cycles back to back on the :class:`RealtimeRuntime`, with every control
channel behind a lossy seeded :class:`FaultPlan` (1 % drops, 2x latency
jitter) and the reliable delivery layer recovering.  Live traffic bursts
between cycles keep per-flow seq journals growing, so at the end the four
chaos invariants are checked from state alone:

1. **termination** — every transaction commits within its budget;
2. **no lost updates** — each flow's journal holds every delivered seq
   exactly once, wherever the flow ended up;
3. **no reordering** — journals are strictly increasing (state rides along
   moves intact);
4. **conservation** — exactly one instance holds each flow, no packet holds,
   dirty tracking, or install tags leak — and the runtime's shutdown report
   shows **zero leaked asyncio tasks**.

The 30-second variant is marked ``slow`` and gated behind ``RUN_SLOW=1``; a
~2-second variant runs in tier-1 so the soak path itself cannot rot.
"""

from __future__ import annotations

import itertools
import os
import random
from typing import Dict, List

import pytest

from repro.core import ControllerConfig, FlowPattern, MBController, NorthboundAPI
from repro.core.channel import ControlChannel, FaultPlan
from repro.core.transfer import TransferGuarantee, TransferMode, TransferSpec
from repro.net.packet import tcp_packet
from repro.runtime import RuntimeConfig
from repro.testing import ChaosMiddlebox

FLOWS = 6
A, B = "soak-a", "soak-b"


def _journal_for(middlebox: ChaosMiddlebox, key) -> List[int]:
    seqs = middlebox.flow_seqs()
    return seqs.get(key) or seqs.get(key.bidirectional()) or []


def run_soak(duration: float, *, seed: int = 0, shards: int = 2) -> Dict[str, object]:
    """Run transaction cycles for *duration* runtime seconds; returns the verdict."""
    runtime = RuntimeConfig(mode="realtime").create()
    master = random.Random(seed)
    violations: List[str] = []
    cycles = 0
    try:
        controller = MBController(runtime, ControllerConfig(quiescence_timeout=0.01, num_shards=shards))
        northbound = NorthboundAPI(controller)
        mbs: Dict[str, ChaosMiddlebox] = {}
        for name in (A, B):
            middlebox = ChaosMiddlebox(runtime, name)
            plan = FaultPlan.symmetric(master.randrange(2**31), drop=0.01, jitter=2.0)
            controller.register(middlebox, channel=ControlChannel(runtime, f"chan-{name}", faults=plan))
            mbs[name] = middlebox
        mbs[A].populate(FLOWS)
        keys = {flow: mbs[A].flow_key_for(flow) for flow in range(FLOWS)}
        owners = {flow: A for flow in range(FLOWS)}
        sent: Dict[int, List[int]] = {flow: [] for flow in range(FLOWS)}
        seq = 0
        kinds = itertools.cycle(["scale_up", "rebalance", "scale_down"])
        guarantees = itertools.cycle(["loss_free", "order_preserving"])
        modes = itertools.cycle(["snapshot", "precopy"])
        deadline = runtime.now + duration

        while runtime.now < deadline:
            # Burst live traffic at each flow's current owner.
            for _ in range(2 * FLOWS):
                seq += 1
                flow = seq % FLOWS
                key = keys[flow]
                packet = tcp_packet(key.nw_src, key.nw_dst, key.tp_src, key.tp_dst, b"s", seq=seq)
                sent[flow].append(seq)
                mbs[owners[flow]].receive(packet, 0)

            spec = TransferSpec(
                guarantee=TransferGuarantee(next(guarantees)),
                mode=TransferMode(next(modes)),
                max_rounds=2,
                dirty_threshold=2,
            )
            kind = next(kinds)
            transaction = northbound.transaction()
            new_owner: Dict[int, str] = {}
            if kind == "scale_up":
                transaction.move(A, B, None, spec=spec)
                new_owner = {flow: B for flow in range(FLOWS) if owners[flow] == A}
            elif kind == "scale_down":
                transaction.move(B, A, None, spec=spec)
                new_owner = {flow: A for flow in range(FLOWS) if owners[flow] == B}
            else:  # rebalance: pull the even-index flows back with exact patterns
                for flow in range(0, FLOWS, 2):
                    if owners[flow] == B:
                        transaction.move(B, A, FlowPattern.from_flow(keys[flow]), spec=spec)
                        new_owner[flow] = A
            if not new_owner:
                continue
            handle = transaction.commit()
            try:
                runtime.run_until(handle.done, limit=runtime.now + 10.0)
            except Exception as exc:  # noqa: BLE001 - recorded as a violation
                violations.append(f"termination: cycle {cycles} ({kind}) never settled: {exc}")
                break
            if handle.status != "committed":
                violations.append(f"termination: cycle {cycles} ({kind}) ended {handle.status!r}")
                break
            owners.update(new_owner)
            cycles += 1
            runtime.run(until=runtime.now + 0.01)  # drain releases/acks between cycles

        # Let retransmission timers and finalization work drain fully.
        runtime.run(until=runtime.now + 0.1)

        # -- invariants 2-4 from state alone -----------------------------------------
        for flow in range(FLOWS):
            journals = {name: _journal_for(middlebox, keys[flow]) for name, middlebox in mbs.items()}
            holders = [name for name, seqs in journals.items() if seqs]
            if len(holders) != 1:
                violations.append(f"conservation: flow {flow} held by {holders}, expected exactly one")
                continue
            seqs = journals[holders[0]]
            if len(set(seqs)) != len(seqs):
                doubled = sorted({value for value in seqs if seqs.count(value) > 1})
                violations.append(f"lost-updates: flow {flow} double-applied {doubled[:5]}")
            missing = set(sent[flow]) - set(seqs)
            if missing:
                violations.append(f"lost-updates: flow {flow} missing {sorted(missing)[:5]}")
            if any(later <= earlier for earlier, later in zip(seqs, seqs[1:])):
                violations.append(f"reordering: flow {flow} journal not strictly increasing")
        for name, middlebox in mbs.items():
            if middlebox._held_flows or middlebox._held_packets:
                violations.append(f"conservation: {name} leaked packet holds")
            for role, store in (("support", middlebox.support_store), ("report", middlebox.report_store)):
                if store.tracking_dirty:
                    violations.append(f"conservation: {name}.{role} left dirty tracking armed")
                if store.install_round_count:
                    violations.append(f"conservation: {name}.{role} holds orphaned install tags")
    finally:
        close_report = runtime.close()
    return {"cycles": cycles, "violations": violations, "close": close_report, "delivered": seq}


def _assert_soak_clean(result: Dict[str, object], min_cycles: int) -> None:
    assert not result["violations"], "\n".join(str(v) for v in result["violations"])
    assert result["cycles"] >= min_cycles, f"only {result['cycles']} cycles completed"
    close = result["close"]
    assert close["processes_leaked"] == 0, f"leaked asyncio tasks at shutdown: {close}"
    assert close["lane_backlog"] == 0, f"unexecuted lane work at shutdown: {close}"


def test_soak_quick_two_seconds():
    """Tier-1 guard: a short soak must stay invariant-clean and leak-free."""
    _assert_soak_clean(run_soak(2.0, seed=3), min_cycles=3)


@pytest.mark.slow
@pytest.mark.skipif(not os.environ.get("RUN_SLOW"), reason="30s wall-clock soak; set RUN_SLOW=1")
def test_soak_thirty_seconds():
    """The full 30-second lossy soak from the issue's acceptance criteria."""
    _assert_soak_clean(run_soak(30.0, seed=1), min_cycles=20)
