"""Unit tests for hierarchical configuration state."""

import pytest

from repro.core.config import HierarchicalConfig, join_key, split_key
from repro.core.errors import ConfigError


class TestKeyHelpers:
    def test_split_root_forms(self):
        assert split_key("") == ()
        assert split_key("*") == ()

    def test_split_and_join_roundtrip(self):
        assert join_key(split_key("a.b.c")) == "a.b.c"

    def test_split_ignores_empty_components(self):
        assert split_key("a..b") == ("a", "b")


class TestSetGet:
    def test_set_scalar_becomes_single_element_list(self):
        config = HierarchicalConfig()
        config.set("NumCaches", 2)
        assert config.get_values("NumCaches") == [2]

    def test_set_list_preserves_order(self):
        config = HierarchicalConfig()
        config.set("CacheFlows", ["1.1.1.0/24", "1.1.2.0/24"])
        assert config.get_values("CacheFlows") == ["1.1.1.0/24", "1.1.2.0/24"]

    def test_get_interior_key_returns_nested_dict(self):
        config = HierarchicalConfig()
        config.set("FW.Rules", ["allow *"])
        config.set("FW.DefaultAllow", [False])
        tree = config.get("FW")
        assert set(tree) == {"Rules", "DefaultAllow"}

    def test_get_scalar_with_default(self):
        config = HierarchicalConfig()
        assert config.get_scalar("Missing", 42) == 42
        config.set("Present", ["x"])
        assert config.get_scalar("Present") == "x"

    def test_cannot_set_values_on_root(self):
        config = HierarchicalConfig()
        with pytest.raises(ConfigError):
            config.set("*", [1])

    def test_cannot_set_values_on_interior_key(self):
        config = HierarchicalConfig()
        config.set("A.B", [1])
        with pytest.raises(ConfigError):
            config.set("A", [2])

    def test_get_unknown_key_raises(self):
        config = HierarchicalConfig()
        with pytest.raises(ConfigError):
            config.get("nope")

    def test_get_values_on_interior_key_raises(self):
        config = HierarchicalConfig()
        config.set("A.B", [1])
        with pytest.raises(ConfigError):
            config.get_values("A")

    def test_overwrite_replaces_values(self):
        config = HierarchicalConfig()
        config.set("K", [1, 2])
        config.set("K", [3])
        assert config.get_values("K") == [3]

    def test_version_increments_on_writes(self):
        config = HierarchicalConfig()
        v0 = config.version
        config.set("K", [1])
        config.set("K", [2])
        config.delete("K")
        assert config.version == v0 + 3


class TestDelete:
    def test_delete_leaf(self):
        config = HierarchicalConfig()
        config.set("A.B", [1])
        config.delete("A.B")
        assert not config.has("A.B")
        assert config.has("A")

    def test_delete_subtree(self):
        config = HierarchicalConfig()
        config.set("A.B", [1])
        config.set("A.C", [2])
        config.delete("A")
        assert not config.has("A")

    def test_delete_root_clears_everything(self):
        config = HierarchicalConfig()
        config.set("A.B", [1])
        config.delete("*")
        assert config.keys() == []

    def test_delete_unknown_raises(self):
        config = HierarchicalConfig()
        with pytest.raises(ConfigError):
            config.delete("ghost")


class TestExportImportClone:
    def _populated(self) -> HierarchicalConfig:
        config = HierarchicalConfig()
        config.set("IDS.ScanThreshold", [25])
        config.set("IDS.Rules", ["scan-detect", "http-analyze"])
        config.set("LB.Backends", ["10.0.0.1", "10.0.0.2"])
        return config

    def test_export_is_flat_mapping(self):
        flat = self._populated().export()
        assert flat["IDS.ScanThreshold"] == [25]
        assert flat["LB.Backends"] == ["10.0.0.1", "10.0.0.2"]

    def test_export_subtree(self):
        flat = self._populated().export("IDS")
        assert set(flat) == {"IDS.ScanThreshold", "IDS.Rules"}

    def test_import_flat_roundtrip(self):
        original = self._populated()
        clone = HierarchicalConfig()
        clone.import_flat(original.export())
        assert clone == original

    def test_clone_is_deep(self):
        original = self._populated()
        clone = original.clone()
        clone.set("IDS.ScanThreshold", [99])
        assert original.get_scalar("IDS.ScanThreshold") == 25

    def test_readconfig_writeconfig_idiom(self):
        """The paper's values = readConfig(mb, '*'); writeConfig(other, '*', values)."""
        original = self._populated()
        values = original.export("*")
        other = HierarchicalConfig.from_flat(values)
        assert other == original

    def test_json_roundtrip(self):
        original = self._populated()
        assert HierarchicalConfig.from_json(original.to_json()) == original

    def test_keys_sorted(self):
        config = self._populated()
        assert config.keys() == sorted(config.keys())

    def test_equality_differs_after_change(self):
        a = self._populated()
        b = self._populated()
        assert a == b
        b.set("IDS.ScanThreshold", [30])
        assert a != b
