"""Edge-case and failure-path tests across the framework layers."""

import pytest

from repro.core import (
    ControllerConfig,
    FlowPattern,
    MBController,
    NorthboundAPI,
    OperationError,
    StateRole,
)
from repro.core import messages
from repro.core.channel import ControlChannel
from repro.core.messages import Message, MessageType
from repro.core.southbound import ProcessingCosts
from repro.middleboxes import IDS, DummyMiddlebox, LoadBalancer, PassiveMonitor
from repro.middleboxes.monitor import EVENT_ASSET_DETECTED
from repro.net import Simulator, tcp_packet


class TestSouthboundAgentErrors:
    def _registered_monitor(self):
        sim = Simulator()
        controller = MBController(sim, ControllerConfig(quiescence_timeout=0.2))
        monitor = PassiveMonitor(sim, "mon")
        controller.register(monitor)
        return sim, controller, monitor

    def _collect_replies(self, sim, controller, mb_name, message):
        replies = []
        controller.send(mb_name, message, on_reply=replies.append)
        sim.run(until=sim.now + 2.0)
        return replies

    def test_unknown_message_type_yields_error(self):
        sim, controller, monitor = self._registered_monitor()
        replies = self._collect_replies(sim, controller, "mon", Message("bogus_type", mb="mon"))
        # Unsolicited error replies carry reply_to, so they only reach a registered handler.
        assert replies and replies[0].type == MessageType.ERROR

    def test_get_config_unknown_key_yields_error(self):
        sim, controller, monitor = self._registered_monitor()
        replies = self._collect_replies(sim, controller, "mon", messages.get_config("mon", "No.Such"))
        assert replies[0].type == MessageType.ERROR
        assert "No.Such" in replies[0].body["reason"]

    def test_granularity_error_propagates_as_protocol_error(self):
        sim = Simulator()
        controller = MBController(sim, ControllerConfig(quiescence_timeout=0.2))
        lb = LoadBalancer(sim, "lb", backends=["10.0.0.1"])
        controller.register(lb)
        lb.process_packet(tcp_packet("10.0.0.9", "198.51.100.10", 999, 80))
        replies = []
        controller.send(
            "lb",
            messages.get_perflow("lb", StateRole.SUPPORTING, FlowPattern(nw_dst="198.51.100.10")),
            on_reply=replies.append,
        )
        sim.run(until=1.0)
        assert replies and replies[0].type == MessageType.ERROR

    def test_put_with_corrupted_blob_yields_error(self):
        sim, controller, monitor = self._registered_monitor()
        other = PassiveMonitor(sim, "other")
        controller.register(other)
        monitor.process_packet(tcp_packet("10.0.0.1", "192.0.2.1", 1, 80))
        chunk = monitor.get_perflow(StateRole.REPORTING, FlowPattern.wildcard())[0]
        chunk.blob = b"\x00" * len(chunk.blob)
        replies = self._collect_replies(sim, controller, "other", messages.put_perflow("other", chunk))
        assert replies[0].type == MessageType.ERROR

    def test_duplicate_registration_rejected(self):
        sim, controller, monitor = self._registered_monitor()
        with pytest.raises(OperationError):
            controller.register(monitor)

    def test_events_counted_by_agent(self):
        sim, controller, monitor = self._registered_monitor()
        agent = controller._registrations["mon"].agent
        monitor.enable_events(EVENT_ASSET_DETECTED)
        monitor.receive(tcp_packet("10.0.0.1", "192.0.2.1", 1, 80), 1)
        sim.run(until=0.1)
        assert agent.stats.events_sent == 1


class TestIntrospectionThroughFullStack:
    def test_enable_disable_via_northbound(self):
        sim = Simulator()
        controller = MBController(sim, ControllerConfig(quiescence_timeout=0.2))
        nb = NorthboundAPI(controller)
        monitor = PassiveMonitor(sim, "mon")
        controller.register(monitor)
        seen = []
        nb.subscribe_events(seen.append)

        sim.run_until(nb.enable_events("mon", EVENT_ASSET_DETECTED))
        monitor.receive(tcp_packet("10.0.0.1", "192.0.2.1", 1, 80), 1)
        sim.run(until=sim.now + 0.5)
        assert len(seen) == 1
        assert seen[0].code == EVENT_ASSET_DETECTED
        assert controller.stats.introspection_events == 1

        sim.run_until(nb.disable_events("mon", EVENT_ASSET_DETECTED))
        monitor.receive(tcp_packet("10.0.0.2", "192.0.2.9", 1, 443), 1)
        sim.run(until=sim.now + 0.5)
        assert len(seen) == 1

    def test_pattern_scoped_subscription_through_stack(self):
        sim = Simulator()
        controller = MBController(sim, ControllerConfig(quiescence_timeout=0.2))
        nb = NorthboundAPI(controller)
        monitor = PassiveMonitor(sim, "mon")
        controller.register(monitor)
        seen = []
        nb.subscribe_events(seen.append)
        sim.run_until(nb.enable_events("mon", EVENT_ASSET_DETECTED, ["nw_src=10.5.0.0/16"]))
        monitor.receive(tcp_packet("10.9.0.1", "192.0.2.1", 1, 80), 1)  # outside the pattern
        monitor.receive(tcp_packet("10.5.0.1", "192.0.2.2", 1, 80), 1)  # inside the pattern
        sim.run(until=sim.now + 0.5)
        assert len(seen) == 1
        assert seen[0].key.nw_src == "10.5.0.1"


class TestOperationFailurePaths:
    def test_move_failure_surfaces_via_handle(self):
        """A destination that rejects puts fails the operation rather than hanging."""
        sim = Simulator()
        controller = MBController(sim, ControllerConfig(quiescence_timeout=0.2))
        nb = NorthboundAPI(controller)
        src = PassiveMonitor(sim, "src")
        dst = IDS(sim, "dst")  # wrong type: sealed monitor chunks cannot be unsealed by an IDS
        controller.register(src)
        controller.register(dst)
        src.process_packet(tcp_packet("10.0.0.1", "192.0.2.1", 1, 80))
        handle = nb.move_internal("src", "dst", None)
        with pytest.raises(OperationError):
            sim.run_until(handle.completed, limit=100)
        assert controller.stats.operations_failed == 1

    def test_failed_operation_is_archived(self):
        sim = Simulator()
        controller = MBController(sim, ControllerConfig(quiescence_timeout=0.2))
        nb = NorthboundAPI(controller)
        controller.register(PassiveMonitor(sim, "src"))
        controller.register(IDS(sim, "dst"))
        controller._registrations["src"].middlebox.process_packet(tcp_packet("10.0.0.1", "192.0.2.1", 1, 80))
        handle = nb.move_internal("src", "dst", None)
        sim.run(until=2.0)
        assert handle.completed.exception is not None
        assert len(controller.stats.records) == 1

    def test_move_between_same_type_different_costs_still_works(self):
        sim = Simulator()
        controller = MBController(sim, ControllerConfig(quiescence_timeout=0.1))
        nb = NorthboundAPI(controller)
        fast = PassiveMonitor(sim, "fast", costs=ProcessingCosts(get_per_chunk=50e-6))
        slow = PassiveMonitor(sim, "slow", costs=ProcessingCosts(put_per_chunk=500e-6))
        controller.register(fast)
        controller.register(slow)
        for index in range(10):
            fast.process_packet(tcp_packet(f"10.0.0.{index + 1}", "192.0.2.1", 1000 + index, 80))
        record = sim.run_until(nb.move_internal("fast", "slow", None).completed, limit=100)
        assert record.chunks_transferred == 10


class TestControllerEventDeduplication:
    def test_same_event_not_replayed_twice_for_concurrent_operations(self):
        """A move and a merge sharing a source must not double-replay packets."""
        sim = Simulator()
        controller = MBController(sim, ControllerConfig(quiescence_timeout=0.3))
        nb = NorthboundAPI(controller)
        src = PassiveMonitor(sim, "src")
        dst = PassiveMonitor(sim, "dst")
        controller.register(src)
        controller.register(dst)
        for index in range(40):
            src.process_packet(tcp_packet(f"10.0.0.{index % 8 + 1}", "192.0.2.1", 1000 + index % 8, 80))
        move = nb.move_internal("src", "dst", None)
        merge = nb.merge_internal("src", "dst")
        # Live traffic for the moved flows while both operations are active.
        for index in range(20):
            packet = tcp_packet(f"10.0.0.{index % 8 + 1}", "192.0.2.1", 1000 + index % 8, 80)
            sim.schedule(0.002 * index, src.receive, packet, 1)
        sim.run_until(move.completed, limit=100)
        sim.run_until(merge.completed, limit=100)
        sim.run(until=sim.now + 1.0)
        # Each raised event is replayed at most once at the destination.
        assert dst.counters.reprocessed_packets <= src.counters.reprocess_events_raised

    def test_forward_event_is_idempotent(self):
        sim = Simulator()
        controller = MBController(sim, ControllerConfig(quiescence_timeout=0.2))
        src = DummyMiddlebox(sim, "src", chunk_count=1)
        dst = DummyMiddlebox(sim, "dst")
        controller.register(src)
        controller.register(dst)
        event = src.generate_reprocess_event(0)
        assert controller.forward_event("dst", event) == "sent"
        assert controller.forward_event("dst", event) == "covered"


class TestChannelAndConfigOverrides:
    def test_register_with_custom_channel_parameters(self):
        sim = Simulator()
        controller = MBController(sim, ControllerConfig(quiescence_timeout=0.2))
        monitor = PassiveMonitor(sim, "mon")
        channel = ControlChannel(sim, "slow-chan", latency=5e-3, bandwidth=1e6)
        returned = controller.register(monitor, channel=channel)
        assert returned is channel
        future = controller.read_config("mon", "*")
        sim.run_until(future)
        # The slow channel's latency dominates: at least two 5 ms one-way trips.
        assert sim.now >= 0.01

    def test_channel_for_lookup(self):
        sim = Simulator()
        controller = MBController(sim, ControllerConfig(quiescence_timeout=0.2))
        monitor = PassiveMonitor(sim, "mon")
        channel = controller.register(monitor)
        assert controller.channel_for("mon") is channel
        assert controller.middlebox_names() == ["mon"]

    def test_unregister_then_operation_raises(self):
        sim = Simulator()
        controller = MBController(sim, ControllerConfig(quiescence_timeout=0.2))
        nb = NorthboundAPI(controller)
        controller.register(PassiveMonitor(sim, "mon"))
        controller.unregister("mon")
        from repro.core import UnknownMiddleboxError

        with pytest.raises(UnknownMiddleboxError):
            nb.read_config("mon")

    def test_quiescence_timeout_controls_delete_timing(self):
        def finalize_delay(timeout):
            sim = Simulator()
            controller = MBController(sim, ControllerConfig(quiescence_timeout=timeout))
            nb = NorthboundAPI(controller)
            controller.register(DummyMiddlebox(sim, "s", chunk_count=5))
            controller.register(DummyMiddlebox(sim, "d"))
            handle = nb.move_internal("s", "d", None)
            record = sim.run_until(handle.finalized, limit=100)
            return record.finalized_at - record.completed_at

        assert finalize_delay(0.5) > finalize_delay(0.1)
