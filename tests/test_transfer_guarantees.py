"""Tests for the transfer-strategy architecture (TransferSpec, guarantees,
pipeline optimizations, per-flow holds and releases)."""

import pytest

from repro.apps import GUARANTEE_SCENARIOS, run_guarantee_scenario
from repro.core import FlowKey, TransferGuarantee, TransferSpec
from repro.core import messages
from repro.core.messages import Message, MessageType
from repro.net import tcp_packet


class TestTransferSpec:
    def test_default_is_seed_flavor(self):
        spec = TransferSpec.default()
        assert spec.guarantee is TransferGuarantee.LOSS_FREE
        assert spec.parallelism == 0
        assert spec.batch_size == 1
        assert not spec.early_release

    def test_validation(self):
        with pytest.raises(ValueError):
            TransferSpec(parallelism=-1)
        with pytest.raises(ValueError):
            TransferSpec(batch_size=0)
        with pytest.raises(ValueError):
            TransferSpec(guarantee="loss_free")  # must be the enum

    def test_parse_accepts_spec_guarantee_string_and_dict(self):
        spec = TransferSpec(batch_size=4)
        assert TransferSpec.parse(spec) is spec
        assert TransferSpec.parse(None) == TransferSpec.default()
        assert TransferSpec.parse("order_preserving").guarantee is TransferGuarantee.ORDER_PRESERVING
        parsed = TransferSpec.parse({"guarantee": "no_guarantee", "batch_size": 8})
        assert parsed.guarantee is TransferGuarantee.NO_GUARANTEE
        assert parsed.batch_size == 8
        with pytest.raises(ValueError):
            TransferSpec.parse(42)

    def test_describe_tags(self):
        assert TransferSpec.default().describe() == "loss_free"
        tag = TransferSpec(
            guarantee=TransferGuarantee.NO_GUARANTEE, parallelism=8, batch_size=32, early_release=True
        ).describe()
        assert tag == "no_guarantee+par8+batch32+early-release"

    def test_named_scenarios_cover_all_guarantees(self):
        guarantees = {spec.guarantee for spec in GUARANTEE_SCENARIOS.values()}
        assert guarantees == set(TransferGuarantee)


class TestBatchMessages:
    def test_put_perflow_batch_roundtrip(self, flow_key):
        from repro.core.state import StateChunk, StateRole

        chunks = [
            StateChunk(key=flow_key, role=StateRole.REPORTING, blob=b"x" * 10, metadata={})
            for _ in range(3)
        ]
        message = messages.put_perflow_batch("mb", chunks, hold=True)
        decoded = Message.decode(message.encode())
        assert decoded.type == MessageType.PUT_PERFLOW_BATCH
        assert decoded.body["hold"] is True
        recovered = [messages.decode_chunk(body) for body in decoded.body["chunks"]]
        assert [chunk.key for chunk in recovered] == [flow_key] * 3

    def test_transfer_release_roundtrip(self, flow_key):
        message = messages.transfer_release("mb", [flow_key])
        decoded = Message.decode(message.encode())
        assert decoded.type == MessageType.TRANSFER_RELEASE
        keys = [FlowKey.from_dict(body) for body in decoded.body["keys"]]
        assert keys == [flow_key]


class TestPipelineOptimizations:
    def test_batched_move_transfers_everything(self, sim, controller, northbound, monitor_pair):
        mon1, mon2 = monitor_pair
        handle = northbound.move_internal("mon1", "mon2", None, spec=TransferSpec.batched(8))
        record = sim.run_until(handle.completed)
        assert record.chunks_transferred == 30
        assert record.puts_acked == 30
        assert record.batches_sent >= 30 // 8
        assert len(mon2.report_store) == 30

    def test_batched_move_preserves_record_contents(self, sim, controller, northbound, monitor_pair):
        mon1, mon2 = monitor_pair
        before = {key: (rec.packets, rec.bytes) for key, rec in mon1.report_store.items()}
        handle = northbound.move_internal("mon1", "mon2", None, spec=TransferSpec.batched(8))
        sim.run_until(handle.finalized)
        after = {key: (rec.packets, rec.bytes) for key, rec in mon2.report_store.items()}
        assert before == after

    def test_sequential_move_transfers_everything(self, sim, controller, northbound, monitor_pair):
        _, mon2 = monitor_pair
        handle = northbound.move_internal("mon1", "mon2", None, spec=TransferSpec.sequential())
        record = sim.run_until(handle.completed)
        assert record.chunks_transferred == 30
        assert len(mon2.report_store) == 30

    def test_bounded_window_move_transfers_everything(self, sim, controller, northbound, monitor_pair):
        _, mon2 = monitor_pair
        handle = northbound.move_internal("mon1", "mon2", None, spec=TransferSpec.parallel(window=4))
        record = sim.run_until(handle.completed)
        assert record.chunks_transferred == 30
        assert len(mon2.report_store) == 30

    def test_spec_recorded_on_operation(self, sim, controller, northbound, monitor_pair):
        spec = TransferSpec(guarantee=TransferGuarantee.NO_GUARANTEE, batch_size=8, parallelism=2)
        handle = northbound.move_internal("mon1", "mon2", None, spec=spec)
        record = sim.run_until(handle.completed)
        assert record.guarantee == "no_guarantee"
        assert record.batch_size == 8
        assert record.parallelism == 2


class TestGuaranteeSemantics:
    def test_loss_free_loses_nothing(self):
        result = run_guarantee_scenario("loss_free")
        assert result.updates_lost == 0
        assert result.record.events_dropped == 0
        assert result.record.events_forwarded == result.record.events_received

    def test_no_guarantee_drops_in_transfer_events(self):
        result = run_guarantee_scenario("no_guarantee")
        assert result.record.events_dropped > 0
        assert result.record.events_forwarded == 0
        assert result.updates_lost > 0

    def test_order_preserving_loses_nothing_and_releases_each_flow(self):
        result = run_guarantee_scenario("order_preserving")
        assert result.updates_lost == 0
        assert result.record.releases_sent == 20  # one release per moved flow
        assert result.record.events_forwarded == result.record.events_received

    def test_order_preserving_holds_destination_packets(self):
        result = run_guarantee_scenario("order_preserving", feed_destination=True)
        dst = result.scenario.mb2
        assert result.packets_held > 0
        # Every hold was released and every queued packet processed.
        assert not dst._held_flows
        assert not dst._held_packets

    def test_order_preserving_two_role_state_leaves_no_hold_behind(self, sim, controller, northbound, dummy_pair):
        """Dummies hold supporting AND reporting chunks per flow, so a flow's
        second chunk can stream in after its first was already released; the
        reopen path must re-release it instead of blackholing the flow."""
        src, dst = dummy_pair
        spec = TransferSpec(guarantee=TransferGuarantee.ORDER_PRESERVING)
        handle = northbound.move_internal("dummy-src", "dummy-dst", None, spec=spec)
        record = sim.run_until(handle.completed, limit=100)
        assert record.chunks_transferred == 200  # 100 flows x 2 roles
        assert record.releases_sent >= 100
        sim.run(until=sim.now + 0.5)
        assert not dst._held_flows
        assert not dst._held_packets

    def test_early_release_clears_source_markers_before_finalize(self, sim, controller, northbound, monitor_pair):
        mon1, _ = monitor_pair
        spec = TransferSpec(early_release=True)
        handle = northbound.move_internal("mon1", "mon2", None, spec=spec)
        record = sim.run_until(handle.completed)
        assert record.releases_sent == 30
        # Let the release ACKs drain, but stay well before the quiescence delete.
        sim.run(until=sim.now + 0.05)
        assert mon1.transferred_flow_count() == 0
        assert len(mon1.report_store) == 30  # state not deleted yet

    def test_early_release_reduces_event_volume(self):
        eager = run_guarantee_scenario(TransferSpec(early_release=True))
        plain = run_guarantee_scenario(TransferSpec())
        assert eager.record.events_received < plain.record.events_received

    def test_order_preserving_shared_transfer_records_loss_free(self, sim, controller, northbound, monitor_pair):
        """Shared-state ops have no per-flow hold: an order-preserving request
        actually runs loss-free and must be recorded as such."""
        handle = northbound.merge_internal("mon1", "mon2", spec="order_preserving")
        record = sim.run_until(handle.completed)
        assert record.guarantee == "loss_free"

    def test_stats_aggregate_by_guarantee(self, sim, controller, northbound, monitor_pair):
        handle = northbound.move_internal(
            "mon1", "mon2", None, spec=TransferSpec(guarantee=TransferGuarantee.NO_GUARANTEE)
        )
        sim.run_until(handle.finalized)
        handle = northbound.move_internal("mon2", "mon1", None)
        sim.run_until(handle.finalized)
        summary = controller.stats.by_guarantee()
        assert summary["no_guarantee"]["operations"] == 1
        assert summary["loss_free"]["operations"] == 1
        assert summary["loss_free"]["mean_duration"] > 0


class TestHoldRelease:
    def test_held_packets_queue_until_release(self, sim, monitor_pair):
        _, mon2 = monitor_pair
        packet = tcp_packet("10.9.0.1", "192.0.2.10", 4242, 80, b"payload")
        key = packet.flow_key()
        mon2.hold_flows([key])
        mon2.receive(packet, 1)
        sim.run(until=sim.now + 0.01)
        assert mon2.counters.packets_held == 1
        assert len(mon2.report_store) == 0
        mon2.release_flows([key])
        assert len(mon2.report_store) == 1
        assert not mon2._held_packets

    def test_end_transfer_does_not_lift_holds(self, sim, monitor_pair):
        """TRANSFER_END can come from an unrelated clone/merge; it must not
        release holds owned by a concurrent order-preserving move."""
        _, mon2 = monitor_pair
        packet = tcp_packet("10.9.0.2", "192.0.2.10", 4242, 80, b"payload")
        mon2.hold_flows([packet.flow_key()])
        mon2.receive(packet, 1)
        sim.run(until=sim.now + 0.01)
        mon2.end_transfer()
        assert packet.flow_key().bidirectional() in mon2._held_flows
        assert len(mon2.report_store) == 0
        mon2.release_flows([packet.flow_key()])
        assert len(mon2.report_store) == 1
