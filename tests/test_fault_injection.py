"""Channel-level fault injection and reliable delivery.

Unit coverage of the chaos tentpole's wire layer: the seeded
:class:`~repro.core.channel.FaultPlan` (drops, duplicates, jitter,
reordering, scripted one-shot faults) and the reliable sequenced delivery
layer (cseq stamping, in-order delivery, receiver dedup, cumulative
CHAN_ACKs, retransmit-on-timeout) — plus the guarantee that everything is
byte-identical to the seed protocol when switched off.
"""

from __future__ import annotations

import pytest

from repro.core.channel import (
    ControlChannel,
    FaultPlan,
    FaultProfile,
    ScriptedFault,
)
from repro.core.messages import Message, MessageType
from repro.net import Simulator


def make_channel(sim, **kwargs):
    """A bound channel recording deliveries on both sides."""
    channel = ControlChannel(sim, "chan-test", **kwargs)
    to_mb, to_controller = [], []
    channel.bind_middlebox(to_mb.append)
    channel.bind_controller(to_controller.append)
    return channel, to_mb, to_controller


def request(index: int) -> Message:
    return Message(MessageType.GET_STATS, mb="mb", body={"index": index})


class TestSeedEquivalence:
    def test_plain_channel_is_unsequenced_and_unreliable(self):
        sim = Simulator()
        channel, to_mb, _ = make_channel(sim)
        assert channel.reliable is False
        channel.send_to_middlebox(request(1))
        sim.run()
        assert len(to_mb) == 1
        assert to_mb[0].cseq is None
        assert b"cseq" not in to_mb[0].encode()

    def test_fault_plan_enables_reliability_by_default(self):
        sim = Simulator()
        channel, _, _ = make_channel(sim, faults=FaultPlan.symmetric(1))
        assert channel.reliable is True

    def test_cseq_round_trips_on_the_wire(self):
        message = request(7)
        message.cseq = 42
        decoded = Message.decode(message.encode())
        assert decoded.cseq == 42


class TestRandomFaults:
    def test_certain_drop_loses_the_message(self):
        sim = Simulator()
        plan = FaultPlan(1, to_mb=FaultProfile(drop=1.0))
        channel, to_mb, _ = make_channel(sim, faults=plan, reliable=False)
        channel.send_to_middlebox(request(1))
        sim.run()
        assert to_mb == []
        assert channel.to_mb.dropped == 1

    def test_duplicate_without_reliability_delivers_twice(self):
        sim = Simulator()
        plan = FaultPlan(1, to_mb=FaultProfile(duplicate=1.0))
        channel, to_mb, _ = make_channel(sim, faults=plan, reliable=False)
        channel.send_to_middlebox(request(1))
        sim.run()
        assert len(to_mb) == 2
        assert channel.to_mb.duplicated == 1

    def test_duplicate_with_reliability_is_deduped(self):
        sim = Simulator()
        plan = FaultPlan(1, to_mb=FaultProfile(duplicate=1.0))
        channel, to_mb, _ = make_channel(sim, faults=plan)
        channel.send_to_middlebox(request(1))
        sim.run(until=0.05)
        assert len(to_mb) == 1
        assert channel.to_mb.dedup_discards >= 1

    def test_jitter_delays_delivery(self):
        sim = Simulator()
        plan = FaultPlan(3, to_mb=FaultProfile(jitter=5.0))
        channel, to_mb, _ = make_channel(sim, faults=plan, reliable=False)
        baseline = ControlChannel(sim, "chan-clean")
        clean_deliveries = []
        baseline.bind_middlebox(clean_deliveries.append)
        jittered_at = channel.send_to_middlebox(request(1))
        clean_at = baseline.send_to_middlebox(request(1))
        assert jittered_at > clean_at

    def test_scripted_drop_hits_the_scripted_message_only(self):
        sim = Simulator()
        plan = FaultPlan(1, scripted=[ScriptedFault(kind="drop", direction="to_mb", nth=2)])
        channel, to_mb, _ = make_channel(sim, faults=plan, reliable=False)
        for index in range(1, 4):
            channel.send_to_middlebox(request(index))
        sim.run()
        assert [message.body["index"] for message in to_mb] == [1, 3]
        assert channel.to_mb.dropped == 1

    def test_scripted_drop_counts_payloads_not_acks(self):
        """With reliability on, 'the nth message' means the nth payload frame.

        Bidirectional traffic interleaves CHAN_ACK frames into the to_mb
        direction; the scripted index must skip them (and the drop is then
        repaired by retransmission, so everything still arrives in order).
        """
        sim = Simulator()
        plan = FaultPlan(1, scripted=[ScriptedFault(kind="drop", direction="to_mb", nth=2)])
        channel, to_mb, to_controller = make_channel(sim, faults=plan)
        for index in range(1, 4):
            channel.send_to_middlebox(request(index))
            channel.send_to_controller(Message(MessageType.EVENT, mb="mb", body={"index": index}))
        sim.run(until=1.0)
        assert channel.to_mb.dropped == 1
        assert channel.to_mb.retransmits == 1
        assert [message.body["index"] for message in to_mb] == [1, 2, 3]
        assert [message.body["index"] for message in to_controller] == [1, 2, 3]

    def test_kill_faults_are_exposed_to_the_runner(self):
        plan = FaultPlan(1, scripted=[ScriptedFault(kind="kill", mb="dst", at=0.002)])
        kills = plan.kill_faults()
        assert len(kills) == 1 and kills[0].mb == "dst"

    def test_same_seed_injects_identical_faults(self):
        outcomes = []
        for _ in range(2):
            sim = Simulator()
            plan = FaultPlan.symmetric(99, drop=0.3, duplicate=0.2, jitter=1.0, reorder=0.2)
            channel, to_mb, _ = make_channel(sim, faults=plan, reliable=False)
            for index in range(1, 21):
                channel.send_to_middlebox(request(index))
            sim.run()
            outcomes.append(
                (
                    [message.body["index"] for message in to_mb],
                    channel.to_mb.dropped,
                    channel.to_mb.duplicated,
                    channel.to_mb.reordered,
                )
            )
        assert outcomes[0] == outcomes[1]


class TestReliableDelivery:
    def test_fifo_preserved_under_reordering_and_duplicates(self):
        sim = Simulator()
        plan = FaultPlan.symmetric(7, duplicate=0.3, jitter=3.0, reorder=0.5)
        channel, to_mb, _ = make_channel(sim, faults=plan)
        for index in range(1, 31):
            channel.send_to_middlebox(request(index))
        sim.run(until=1.0)
        assert [message.body["index"] for message in to_mb] == list(range(1, 31))

    def test_drops_are_retransmitted_until_delivered_in_order(self):
        sim = Simulator()
        plan = FaultPlan.symmetric(5, drop=0.3)
        channel, to_mb, _ = make_channel(sim, faults=plan)
        for index in range(1, 31):
            channel.send_to_middlebox(request(index))
        sim.run(until=2.0)
        assert [message.body["index"] for message in to_mb] == list(range(1, 31))
        assert channel.to_mb.dropped > 0
        assert channel.to_mb.retransmits > 0

    def test_both_directions_recover_independently(self):
        sim = Simulator()
        plan = FaultPlan.symmetric(11, drop=0.25, jitter=1.0)
        channel, to_mb, to_controller = make_channel(sim, faults=plan)
        for index in range(1, 16):
            channel.send_to_middlebox(request(index))
            channel.send_to_controller(Message(MessageType.ACK, mb="mb", body={"index": index}))
        sim.run(until=2.0)
        assert [message.body["index"] for message in to_mb] == list(range(1, 16))
        assert [message.body["index"] for message in to_controller] == list(range(1, 16))

    def test_retransmissions_stop_after_cumulative_ack(self):
        """Once everything is acked, the channel goes idle (queue drains)."""
        sim = Simulator()
        channel, to_mb, _ = make_channel(sim, faults=FaultPlan.symmetric(2, drop=0.2))
        for index in range(1, 11):
            channel.send_to_middlebox(request(index))
        sim.run(until=5.0)
        assert sim.pending_events == 0
        assert len(to_mb) == 10

    def test_middlebox_down_abandons_retransmissions(self):
        sim = Simulator()
        channel, to_mb, _ = make_channel(sim, faults=FaultPlan(1, to_mb=FaultProfile(drop=1.0)))
        channel.send_to_middlebox(request(1))
        channel.set_middlebox_down()
        sim.run(until=5.0)
        assert sim.pending_events == 0
        assert to_mb == []

    def test_unbind_controller_abandons_mb_side_retransmissions(self):
        sim = Simulator()
        channel, _, to_controller = make_channel(
            sim, faults=FaultPlan(1, to_controller=FaultProfile(drop=1.0))
        )
        channel.send_to_controller(Message(MessageType.EVENT, mb="mb"))
        channel.unbind_controller()
        sim.run(until=5.0)
        assert sim.pending_events == 0
        assert to_controller == []

    def test_chan_acks_never_reach_the_handlers(self):
        sim = Simulator()
        channel, to_mb, to_controller = make_channel(sim, reliable=True)
        for index in range(1, 4):
            channel.send_to_middlebox(request(index))
        sim.run(until=1.0)
        assert all(message.type != MessageType.CHAN_ACK for message in to_mb)
        assert all(message.type != MessageType.CHAN_ACK for message in to_controller)
        assert channel.to_controller.chan_acks > 0


class TestOperationsOverFaultyChannels:
    """End-to-end: a full move over lossy channels still completes exactly-once."""

    @pytest.mark.parametrize("drop", (0.01, 0.05))
    def test_move_survives_control_message_drops(self, drop):
        from repro.core import ControllerConfig, MBController, NorthboundAPI
        from repro.middleboxes import DummyMiddlebox

        sim = Simulator()
        controller = MBController(sim, ControllerConfig(quiescence_timeout=0.1))
        northbound = NorthboundAPI(controller)
        src = DummyMiddlebox(sim, "fsrc", chunk_count=50)
        dst = DummyMiddlebox(sim, "fdst")
        controller.register(
            src, channel=ControlChannel(sim, "chan-fsrc", faults=FaultPlan.symmetric(21, drop=drop, jitter=2.0))
        )
        controller.register(
            dst, channel=ControlChannel(sim, "chan-fdst", faults=FaultPlan.symmetric(22, drop=drop, jitter=2.0))
        )
        handle = northbound.move_internal("fsrc", "fdst", None)
        record = sim.run_until(handle.completed, limit=30)
        assert record.puts_acked == 100  # supporting + reporting, exactly once
        assert len(dst.support_store) == 50
        assert len(dst.report_store) == 50
        sim.run_until(handle.finalized, limit=60)
        assert len(src.support_store) == 0
