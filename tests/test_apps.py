"""Integration tests for the control applications and scenario builders."""


from repro.apps import (
    FailureRecoveryApp,
    PerFlowMigrationApp,
    REMigrationApp,
    RebalanceApp,
    ScaleDownApp,
    ScaleUpApp,
    build_re_migration_scenario,
    build_two_instance_scenario,
)
from repro.core import FlowPattern
from repro.middleboxes import IDS, NAT, PassiveMonitor, combined_statistics
from repro.net import Simulator, tcp_packet
from repro.traffic import enterprise_cloud_trace, redundancy_trace


def monitor_scenario(**kwargs):
    return build_two_instance_scenario(
        mb_factory=lambda sim, name: PassiveMonitor(sim, name), mb_names=("mon1", "mon2"), **kwargs
    )


class TestScenarioBuilders:
    def test_two_instance_default_route_goes_through_mb1(self):
        scenario = monitor_scenario()
        trace = enterprise_cloud_trace(http_flows=5, other_flows=0, duration=5.0, seed=1)
        scenario.inject(trace, speedup=50.0)
        scenario.sim.run(until=0.5)
        assert scenario.mb1.counters.packets_received > 0
        assert scenario.mb2.counters.packets_received == 0
        assert len(scenario.server_gw.received) > 0

    def test_route_via_switches_traffic_to_mb2(self):
        scenario = monitor_scenario()
        future = scenario.route_via(scenario.mb2, FlowPattern(nw_dst="172.16.0.0/16"))
        scenario.sim.run_until(future)
        trace = enterprise_cloud_trace(http_flows=5, other_flows=0, duration=5.0, seed=2)
        scenario.inject(trace, speedup=50.0, start_at=scenario.sim.now)
        scenario.sim.run(until=scenario.sim.now + 0.5)
        assert scenario.mb2.counters.packets_received > 0

    def test_re_scenario_traffic_reaches_dc_a(self):
        scenario = build_re_migration_scenario(cache_capacity=32 * 1024)
        trace = redundancy_trace(packets=50, payload_bytes=256, server_subnet="1.1.1", seed=3)
        scenario.inject(trace, start_at=0.05)
        scenario.sim.run(until=1.0)
        assert scenario.encoder.counters.packets_received == 50
        assert scenario.decoder_a.counters.packets_received == 50
        assert len(scenario.dc_a_host.received) == 50
        assert scenario.decoder_b.counters.packets_received == 0

    def test_re_scenario_reroute_dc_b(self):
        scenario = build_re_migration_scenario(cache_capacity=32 * 1024)
        future = scenario.reroute_dc_b()
        scenario.sim.run_until(future)
        trace = redundancy_trace(packets=20, payload_bytes=256, server_subnet="1.1.2", seed=4)
        scenario.inject(trace, start_at=scenario.sim.now + 0.01)
        scenario.sim.run(until=scenario.sim.now + 1.0)
        assert scenario.decoder_b.counters.packets_received == 20
        assert len(scenario.dc_b_host.received) == 20


class TestScaleUpApp:
    def test_scale_up_moves_state_and_reroutes(self):
        scenario = monitor_scenario()
        trace = enterprise_cloud_trace(
            http_flows=30, other_flows=5, duration=20.0, seed=5, leave_open_fraction=0.5
        )
        scenario.inject(trace, speedup=40.0)
        scenario.sim.run(until=0.3)
        pattern = FlowPattern(nw_src="10.1.1.0/25")
        app = ScaleUpApp(
            scenario.sim,
            scenario.northbound,
            existing_mb="mon1",
            new_mb="mon2",
            patterns=[pattern],
            update_routing=lambda p: scenario.route_via(scenario.mb2, p),
        )
        report = scenario.sim.run_until(app.start(), limit=100)
        assert report.details["chunks_moved"] > 0
        assert scenario.mb2.config.get_scalar("Monitor.PromiscuousMode") is not None
        scenario.sim.run(until=scenario.sim.now + 1.0)
        # After the re-route, mb2 receives the moved subnet's traffic.
        assert len(scenario.mb2.report_store) >= report.details["chunks_moved"]

    def test_scale_up_preserves_total_packet_accounting(self):
        scenario = monitor_scenario()
        trace = enterprise_cloud_trace(http_flows=20, other_flows=5, duration=20.0, seed=6)
        replayer = scenario.inject(trace, speedup=20.0)
        scenario.sim.run(until=0.3)
        app = ScaleUpApp(
            scenario.sim,
            scenario.northbound,
            existing_mb="mon1",
            new_mb="mon2",
            patterns=[FlowPattern(nw_src="10.1.1.0/24")],
            update_routing=lambda p: scenario.route_via(scenario.mb2, p),
        )
        scenario.sim.run_until(app.start(), limit=100)
        scenario.sim.run(until=scenario.sim.now + 3.0)
        combined = combined_statistics([scenario.mb1, scenario.mb2])
        assert combined["total_packets"] == replayer.stats.injected


class TestScaleDownApp:
    def test_scale_down_consolidates_and_merges(self):
        scenario = monitor_scenario()
        # Split traffic between the two instances first.
        pattern_b = FlowPattern(nw_src="10.1.2.0/24")
        scenario.sim.run_until(scenario.route_via(scenario.mb2, pattern_b))
        trace_a = enterprise_cloud_trace(http_flows=10, other_flows=0, duration=10.0, seed=7, client_subnet="10.1.1")
        trace_b = enterprise_cloud_trace(http_flows=8, other_flows=0, duration=10.0, seed=8, client_subnet="10.1.2")
        scenario.inject(trace_a.merged_with(trace_b), speedup=40.0, start_at=scenario.sim.now)
        scenario.sim.run(until=scenario.sim.now + 0.5)
        packets_b = scenario.mb2.shared_report.value.total_packets
        assert packets_b > 0
        terminated = []
        app = ScaleDownApp(
            scenario.sim,
            scenario.northbound,
            spare_mb="mon2",
            remaining_mb="mon1",
            update_routing=lambda p: scenario.route_via(scenario.mb1, FlowPattern(nw_dst="172.16.0.0/16")),
            terminate=lambda: terminated.append("mon2"),
            wait_for_finalize=True,
        )
        report = scenario.sim.run_until(app.start(), limit=200)
        assert terminated == ["mon2"]
        assert report.details["merge"].chunks_transferred >= 1
        # The remaining instance now accounts for all packets either instance saw.
        assert scenario.mb1.shared_report.value.total_packets >= packets_b
        assert len(scenario.mb2.report_store) == 0  # per-flow state moved away and deleted


class TestRebalanceApp:
    def test_rebalance_moves_from_busiest_to_idlest(self):
        scenario = monitor_scenario()
        trace = enterprise_cloud_trace(http_flows=20, other_flows=0, duration=10.0, seed=9)
        scenario.inject(trace, speedup=40.0)
        scenario.sim.run(until=0.4)
        app = RebalanceApp(
            scenario.sim,
            scenario.northbound,
            replicas=["mon1", "mon2"],
            patterns_by_replica={"mon1": FlowPattern(nw_src="10.1.1.0/26"), "mon2": FlowPattern(nw_src="10.1.1.64/26")},
            update_routing=lambda mb, p: scenario.route_via(mb, p),
        )
        report = scenario.sim.run_until(app.start(), limit=100)
        assert report.details["moved_from"] == "mon1"
        assert report.details["moved_to"] == "mon2"
        assert report.details["chunks_moved"] > 0

    def test_rebalance_noop_when_balanced(self):
        scenario = monitor_scenario()
        app = RebalanceApp(
            scenario.sim,
            scenario.northbound,
            replicas=["mon1", "mon2"],
            patterns_by_replica={},
            update_routing=lambda mb, p: scenario.route_via(mb, p),
        )
        report = scenario.sim.run_until(app.start(), limit=100)
        assert "moved_from" not in report.details


class TestPerFlowMigrationApp:
    def test_ids_migration_moves_connections(self):
        scenario = build_two_instance_scenario(
            mb_factory=lambda sim, name: IDS(sim, name), mb_names=("ids-old", "ids-new")
        )
        trace = enterprise_cloud_trace(http_flows=15, other_flows=5, duration=15.0, seed=10, leave_open_fraction=0.6)
        scenario.inject(trace, speedup=30.0)
        scenario.sim.run(until=0.4)
        connections_before = len(scenario.mb1.support_store)
        app = PerFlowMigrationApp(
            scenario.sim,
            scenario.northbound,
            old_mb="ids-old",
            new_mb="ids-new",
            pattern=FlowPattern(tp_dst=80),
            update_routing=lambda p: scenario.route_via(scenario.mb2, p),
            wait_for_finalize=True,
        )
        report = scenario.sim.run_until(app.start(), limit=200)
        assert 0 < report.details["chunks_moved"] <= connections_before
        assert len(scenario.mb2.support_store) >= report.details["chunks_moved"]
        # The moved connections were deleted (not anomalously closed) at the old instance.
        scenario.mb1.finalize()
        http_incomplete = [e for e in scenario.mb1.incorrect_entries() if e.resp_port == 80]
        assert http_incomplete == []


class TestREMigrationApp:
    def test_migration_keeps_all_traffic_decodable(self):
        scenario = build_re_migration_scenario(cache_capacity=64 * 1024)
        warm = redundancy_trace(packets=120, payload_bytes=512, redundancy=0.6, server_subnet="1.1.1", seed=11)
        warm_b = redundancy_trace(packets=120, payload_bytes=512, redundancy=0.6, server_subnet="1.1.2", seed=12)
        scenario.inject(warm.merged_with(warm_b), start_at=0.05)
        scenario.sim.run(until=0.7)
        app = REMigrationApp(
            scenario.sim,
            scenario.northbound,
            encoder="re-encoder",
            orig_decoder="re-decoder-a",
            new_decoder="re-decoder-b",
            update_routing=scenario.reroute_dc_b,
        )
        report = scenario.sim.run_until(app.start(), limit=100)
        assert report.details["clone_bytes"] > 0
        # Traffic resumes after the migration (the migrated VMs' switchover pause).
        post_a = redundancy_trace(packets=80, payload_bytes=512, redundancy=0.6, server_subnet="1.1.1", seed=11)
        post_b = redundancy_trace(packets=80, payload_bytes=512, redundancy=0.6, server_subnet="1.1.2", seed=12)
        scenario.inject(post_a.merged_with(post_b), start_at=scenario.sim.now + 0.05)
        scenario.sim.run(until=scenario.sim.now + 2.0)
        assert scenario.decoder_b.counters.packets_received > 0
        assert scenario.decoder_a.undecodable_bytes == 0
        assert scenario.decoder_b.undecodable_bytes == 0
        # The encoder now maintains one cache per decoder.
        assert len(scenario.encoder.shared_support.value.caches) == 2

    def test_migration_clones_decoder_configuration(self):
        scenario = build_re_migration_scenario(cache_capacity=32 * 1024)
        scenario.decoder_a.config.set("Decoder.Custom", ["tuned"])
        app = REMigrationApp(
            scenario.sim,
            scenario.northbound,
            encoder="re-encoder",
            orig_decoder="re-decoder-a",
            new_decoder="re-decoder-b",
            update_routing=scenario.reroute_dc_b,
        )
        scenario.sim.run_until(app.start(), limit=100)
        assert scenario.decoder_b.config.get_scalar("Decoder.Custom") == "tuned"


class TestFailureRecoveryApp:
    def test_critical_state_restored_into_replacement(self):
        sim = Simulator()
        from repro.core import ControllerConfig, MBController, NorthboundAPI

        controller = MBController(sim, ControllerConfig(quiescence_timeout=0.2))
        nb = NorthboundAPI(controller)
        nat_old = NAT(sim, "nat-old")
        nat_new = NAT(sim, "nat-new")
        controller.register(nat_old)
        controller.register(nat_new)
        app = FailureRecoveryApp(sim, nb, protected_mb="nat-old")
        sim.run_until(app.arm())
        # Live traffic creates critical state (mappings) at the protected NAT.
        outbound = []
        for index in range(5):
            packet = tcp_packet(f"10.0.0.{index + 1}", "8.8.8.8", 6000 + index, 443)
            nat_old.receive(packet, 1)
        sim.run(until=sim.now + 0.5)
        assert app.events_seen == 5
        # The NAT fails; recover onto the replacement.
        routing_calls = []

        def update_routing():
            routing_calls.append(True)
            return sim.timeout(0.001)

        report = sim.run_until(app.recover_to("nat-new", update_routing=update_routing), limit=100)
        assert report.details["mappings_restored"] == 5
        assert routing_calls == [True]
        # Flows resumed through the replacement keep their external ports.
        original_mapping = next(m for _, m in nat_old.support_store.items() if m.internal_ip == "10.0.0.1")
        result = nat_new.process_packet(tcp_packet("10.0.0.1", "8.8.8.8", 6000, 443))
        assert result.packet.tp_src == original_mapping.external_port
