"""Regression tests for operation failure paths and controller book-keeping.

Covers the satellite fixes of the transfer-strategy refactor:

* a destination ERROR mid-move fails both the ``completed`` and ``finalized``
  futures and archives the operation exactly once (no double archive when the
  quiescence timer later fires);
* ``unregister`` drops the removed middlebox's reply handlers and detaches the
  channel's controller binding so late replies are discarded;
* replay-dedup tokens in ``_forwarded_events`` are pruned when an operation
  finishes instead of growing without bound.
"""

import pytest

from repro.core import ControllerConfig, MBController, NorthboundAPI, TransferSpec
from repro.core.errors import OperationError, StateError
from repro.middleboxes import DummyMiddlebox
from repro.net import tcp_packet


class FailingDestination(DummyMiddlebox):
    """Accepts the first *accept* puts, then errors on every later one."""

    def __init__(self, sim, name, *, accept=0):
        super().__init__(sim, name)
        self._accept = accept
        self.puts_seen = 0

    def put_perflow(self, chunk):
        self.puts_seen += 1
        if self.puts_seen > self._accept:
            raise StateError("destination import failed (simulated)")
        super().put_perflow(chunk)


@pytest.fixture
def failing_move(sim):
    """A controller with a populated source and a destination that errors mid-move."""
    controller = MBController(sim, ControllerConfig(quiescence_timeout=0.2))
    northbound = NorthboundAPI(controller)
    src = DummyMiddlebox(sim, "fsrc", chunk_count=20)
    dst = FailingDestination(sim, "fdst", accept=5)
    controller.register(src)
    controller.register(dst)
    return controller, northbound, src, dst


class TestMoveFailurePaths:
    def test_destination_error_fails_both_futures(self, sim, failing_move):
        controller, northbound, _, _ = failing_move
        handle = northbound.move_internal("fsrc", "fdst", None)
        with pytest.raises(OperationError):
            sim.run_until(handle.completed, limit=100)
        assert handle.completed.done and handle.completed.exception is not None
        assert handle.finalized.done and handle.finalized.exception is not None

    def test_failed_operation_archived_exactly_once(self, sim, failing_move):
        controller, northbound, _, _ = failing_move
        handle = northbound.move_internal("fsrc", "fdst", None)
        with pytest.raises(OperationError):
            sim.run_until(handle.completed, limit=100)
        # Run far past the quiescence timeout: the timer must not finalize (and
        # re-archive) the already-failed operation.
        sim.run(until=sim.now + 10 * controller.config.quiescence_timeout)
        assert len(controller.stats.records) == 1
        assert controller.stats.operations_failed == 1
        assert controller.active_operations() == []

    def test_destination_error_with_batched_pipeline(self, sim, failing_move):
        controller, northbound, _, _ = failing_move
        handle = northbound.move_internal("fsrc", "fdst", None, spec=TransferSpec.batched(8))
        with pytest.raises(OperationError):
            sim.run_until(handle.completed, limit=100)
        sim.run(until=sim.now + 10 * controller.config.quiescence_timeout)
        assert len(controller.stats.records) == 1

    def test_failed_order_preserving_move_releases_destination_holds(self, sim, failing_move):
        from repro.core import TransferGuarantee

        controller, northbound, _, dst = failing_move
        spec = TransferSpec(guarantee=TransferGuarantee.ORDER_PRESERVING)
        handle = northbound.move_internal("fsrc", "fdst", None, spec=spec)
        with pytest.raises(OperationError):
            sim.run_until(handle.completed, limit=100)
        # The failure-path cleanup release must reach the destination and lift
        # every hold installed by the already-ACKed puts.
        sim.run(until=sim.now + 1.0)
        assert not dst._held_flows
        assert not dst._held_packets

    def test_late_replies_after_failure_do_not_resurrect_operation(self, sim, failing_move):
        controller, northbound, _, _ = failing_move
        handle = northbound.move_internal("fsrc", "fdst", None, spec=TransferSpec.sequential())
        with pytest.raises(OperationError):
            sim.run_until(handle.completed, limit=100)
        acked_at_failure = handle.record.puts_acked
        # Remaining chunk-stream replies and put ACKs arrive after the archive;
        # they must not mutate the archived record or dispatch more puts.
        sim.run(until=sim.now + 2.0)
        assert handle.record.puts_acked == acked_at_failure
        assert len(controller.stats.records) == 1

    def test_source_error_fails_once(self, sim, controller, northbound):
        from repro.middleboxes import LoadBalancer

        lb1 = LoadBalancer(sim, "lb1", backends=["10.0.0.1"])
        lb2 = LoadBalancer(sim, "lb2", backends=["10.0.0.1"])
        controller.register(lb1)
        controller.register(lb2)
        # LB state is per-destination, so a 5-tuple move pattern is finer than
        # its granularity and the source rejects the gets with ERROR.
        handle = northbound.move_internal("lb1", "lb2", ["nw_dst=192.0.2.1"])
        with pytest.raises(OperationError):
            sim.run_until(handle.completed, limit=100)
        assert handle.finalized.exception is not None
        sim.run(until=sim.now + 10 * controller.config.quiescence_timeout)
        assert len(controller.stats.records) == 1


class TestUnregisterCleanup:
    def test_unregister_clears_reply_handlers_and_channel_binding(self, sim, controller, northbound, monitor_pair):
        future = northbound.read_config("mon2", "*")
        assert any(name == "mon2" for name, _ in controller._reply_handlers)
        channel = controller.channel_for("mon2")
        controller.unregister("mon2")
        assert not any(name == "mon2" for name, _ in controller._reply_handlers)
        # The late reply is dropped instead of being dispatched through the
        # stale binding (and must not crash the simulation).
        sim.run(until=sim.now + 1.0)
        assert not future.done
        assert channel._controller_handler is None

    def test_unregistered_middlebox_events_are_dropped(self, sim, controller, monitor_pair):
        mon1, _ = monitor_pair
        received_before = controller.stats.events_received
        controller.unregister("mon1")
        # The orphaned instance keeps seeing traffic for transfer-marked state.
        mon1.enable_events("test-code")
        mon1.raise_event("test-code")
        sim.run(until=sim.now + 1.0)
        assert controller.stats.events_received == received_before

    def test_unregister_mid_move_fails_the_operation(self, sim, controller, northbound):
        from repro.core.errors import UnknownMiddleboxError

        src = DummyMiddlebox(sim, "usrc", chunk_count=200)
        dst = DummyMiddlebox(sim, "udst")
        controller.register(src)
        controller.register(dst)
        handle = northbound.move_internal("usrc", "udst", None)
        sim.schedule(0.001, controller.unregister, "udst")
        with pytest.raises(UnknownMiddleboxError):
            sim.run_until(handle.completed, limit=20)
        assert handle.finalized.exception is not None
        sim.run(until=sim.now + 5.0)
        assert len(controller.stats.records) == 1
        assert controller.active_operations() == []

    def test_unregister_after_completion_still_finalizes(self, sim, controller, northbound, monitor_pair):
        """The scale-down idiom: the source is terminated once the move returned."""
        handle = northbound.move_internal("mon1", "mon2", None)
        sim.run_until(handle.completed)
        controller.unregister("mon1")
        record = sim.run_until(handle.finalized, limit=50)
        assert record.finalized_at is not None

    def test_reregistration_after_unregister_works(self, sim, controller, northbound, monitor_pair):
        from repro.middleboxes import PassiveMonitor

        controller.unregister("mon2")
        replacement = PassiveMonitor(sim, "mon2")
        controller.register(replacement)
        values = sim.run_until(northbound.read_config("mon2", "*"))
        assert "Monitor.PromiscuousMode" in values


class TestStrandedStateCleanup:
    """A destination vanishing mid-transfer must not strand holds or round tags."""

    def _precopy_pair(self, sim, controller):
        src = DummyMiddlebox(sim, "psrc", chunk_count=150)
        dst = DummyMiddlebox(sim, "pdst")
        controller.register(src)
        controller.register(dst)
        return src, dst

    def test_dst_unregister_mid_precopy_prunes_round_tags(self, sim, controller, northbound):
        from repro.core.errors import UnknownMiddleboxError

        src, dst = self._precopy_pair(sim, controller)
        spec = TransferSpec.precopy(max_rounds=3, dirty_threshold=0)
        src.drive_traffic_at_rate(5000, duration=0.05, flows=40)
        handle = northbound.move_internal("psrc", "pdst", None, spec=spec)
        # Let the bulk round install some round-tagged chunks, then kill the dst.
        sim.schedule(0.004, controller.unregister, "pdst")
        with pytest.raises(UnknownMiddleboxError):
            sim.run_until(handle.completed, limit=30)
        sim.run(until=sim.now + 1.0)
        # No orphaned (op_id, round) tags survive at the vanished destination...
        assert dst.support_store.install_round_count == 0
        assert dst.report_store.install_round_count == 0
        # ...and the source's dirty tracking was stopped by the scoped cleanup.
        assert not src.support_store.tracking_dirty
        assert not src.report_store.tracking_dirty

    def test_dst_unregister_mid_order_preserving_move_drops_holds(self, sim, controller, northbound):
        from repro.core import TransferGuarantee
        from repro.core.errors import UnknownMiddleboxError

        src, dst = self._precopy_pair(sim, controller)
        spec = TransferSpec(guarantee=TransferGuarantee.ORDER_PRESERVING)
        handle = northbound.move_internal("psrc", "pdst", None, spec=spec)
        sim.schedule(0.003, controller.unregister, "pdst")
        with pytest.raises(UnknownMiddleboxError):
            sim.run_until(handle.completed, limit=30)
        sim.run(until=sim.now + 1.0)
        # The failure-path release can no longer be delivered; the local purge
        # must have lifted every hold and dropped the queued packets.
        assert not dst._held_flows
        assert not dst._held_packets

    def test_failed_move_releases_source_transfer_markers(self, sim, failing_move):
        controller, northbound, src, _ = failing_move
        handle = northbound.move_internal("fsrc", "fdst", None)
        with pytest.raises(OperationError):
            sim.run_until(handle.completed, limit=100)
        sim.run(until=sim.now + 1.0)
        # A dead transfer must not keep the source's flows frozen: frozen
        # flows would stream re-process events to a destination that will
        # never install their state (and poison a standby retry's snapshot).
        assert src.transferred_flow_count() == 0

    def test_killed_instance_is_purged_and_operations_fail_dead(self, sim, controller, northbound):
        from repro.core.errors import InstanceDeadError

        src, dst = self._precopy_pair(sim, controller)
        handle = northbound.move_internal(
            "psrc", "pdst", None, spec=TransferSpec.precopy(max_rounds=2, dirty_threshold=0)
        )
        sim.schedule(0.004, controller.kill, "pdst")
        with pytest.raises(InstanceDeadError):
            sim.run_until(handle.completed, limit=30)
        assert controller.stats.instances_killed == 1
        assert controller.stats.instances_declared_dead == 1
        assert dst.support_store.install_round_count == 0
        assert not controller.is_registered("pdst")


class TestForwardedEventPruning:
    def test_tokens_pruned_when_operation_finishes(self, sim, controller, northbound, monitor_pair):
        mon1, _ = monitor_pair
        handle = northbound.move_internal("mon1", "mon2", None)
        for index in range(20):
            packet = tcp_packet(f"10.0.{index % 3}.{index + 1}", "192.0.2.10", 1000 + index, 80, b"x")
            sim.schedule(0.001 * index, mon1.receive, packet, 1)
        record = sim.run_until(handle.finalized, limit=100)
        sim.run(until=sim.now + 1.0)
        assert record.events_forwarded > 0
        assert len(controller._forwarded_events) == 0
