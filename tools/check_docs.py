#!/usr/bin/env python
"""Documentation checks runnable with the standard library alone.

Three checks, mirroring the CI docs job:

* **docstring coverage** over the public northbound surface (the same
  modules CI runs ``interrogate --fail-under 100`` on), counted the same way
  interrogate does with the repo's ``[tool.interrogate]`` settings
  (``ignore-init-method``, ``ignore-nested-functions``, ``ignore-module``
  false so module docstrings count);
* **markdown link check** over the README and ``docs/``: every relative
  link must resolve to a file in the repository;
* **code-block reference check** over ``docs/``: every ``repro.*`` module or
  attribute named inside a fenced python code block must actually exist in
  ``src/`` (imports and dotted references are resolved statically with
  ``ast``), so the guides cannot drift away from the code they describe.

Exit status is non-zero when any check fails, so the script doubles as a
pre-commit / CI gate where interrogate is unavailable.
"""

from __future__ import annotations

import ast
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Modules whose public surface the docstring sweep covers (kept in sync
#: with the interrogate invocation in .github/workflows/ci.yml).
DOCSTRING_MODULES = [
    "src/repro/core/northbound.py",
    "src/repro/core/transaction.py",
    "src/repro/core/transfer.py",
    "src/repro/core/sharding.py",
    "src/repro/core/operations.py",
    "src/repro/core/state.py",
]

FAIL_UNDER = 100.0

MARKDOWN_ROOTS = ["README.md", "docs"]

#: Inline markdown links: [text](target); excludes images handled the same way.
_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def docstring_coverage(path: Path) -> tuple[int, int, list[str]]:
    """Count docstring-carrying definitions in one module.

    Returns (documented, total, missing-names).  Counts the module itself,
    every class, and every function/method except ``__init__`` and functions
    nested inside other functions — interrogate's view under the repo's
    configuration.
    """
    tree = ast.parse(path.read_text(encoding="utf-8"))
    documented, total, missing = 0, 0, []

    def visit(node: ast.AST, qualname: str, inside_function: bool) -> None:
        nonlocal documented, total
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if inside_function or child.name == "__init__":
                    continue
                name = f"{qualname}.{child.name}" if qualname else child.name
                total += 1
                if ast.get_docstring(child) is not None:
                    documented += 1
                else:
                    missing.append(name)
                visit(child, name, True)
            elif isinstance(child, ast.ClassDef):
                name = f"{qualname}.{child.name}" if qualname else child.name
                total += 1
                if ast.get_docstring(child) is not None:
                    documented += 1
                else:
                    missing.append(name)
                visit(child, name, inside_function)

    total += 1  # the module docstring
    if ast.get_docstring(tree) is not None:
        documented += 1
    else:
        missing.append("(module docstring)")
    visit(tree, "", False)
    return documented, total, missing


def check_docstrings() -> bool:
    """Enforce FAIL_UNDER % docstring coverage on every swept module."""
    ok = True
    for relative in DOCSTRING_MODULES:
        path = REPO_ROOT / relative
        documented, total, missing = docstring_coverage(path)
        coverage = 100.0 * documented / total if total else 100.0
        status = "ok" if coverage >= FAIL_UNDER else "FAIL"
        print(f"docstrings {relative}: {documented}/{total} = {coverage:.1f}% [{status}]")
        if coverage < FAIL_UNDER:
            ok = False
            for name in missing:
                print(f"  missing: {name}")
    return ok


def iter_markdown_files() -> list[Path]:
    """The markdown files the link check covers (README + docs/)."""
    files: list[Path] = []
    for root in MARKDOWN_ROOTS:
        path = REPO_ROOT / root
        if path.is_file():
            files.append(path)
        elif path.is_dir():
            files.extend(sorted(path.glob("**/*.md")))
    return files


def check_links() -> bool:
    """Every relative markdown link must resolve to an existing file."""
    ok = True
    for markdown in iter_markdown_files():
        for target in _LINK_RE.findall(markdown.read_text(encoding="utf-8")):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            resolved = (markdown.parent / target.split("#", 1)[0]).resolve()
            if not resolved.exists():
                print(f"broken link in {markdown.relative_to(REPO_ROOT)}: {target}")
                ok = False
    print(f"links: checked {len(iter_markdown_files())} markdown files")
    return ok


#: Fenced code blocks whose references are verified (```python ... ```).
_FENCE_RE = re.compile(r"```(?:python|py)\n(.*?)```", re.DOTALL)

#: Dotted repro.* references inside a code block (imports and plain mentions).
_DOTTED_RE = re.compile(r"\brepro(?:\.\w+)+")

#: Regex fallback for blocks that do not parse as python: single-line
#: ``from repro.x.y import A, B as C`` (parenthesized imports are handled by
#: the ast path).
_FROM_IMPORT_RE = re.compile(r"^\s*from\s+(repro(?:\.\w+)*)\s+import\s+\(?([\w\s,]+)\)?$", re.MULTILINE)

SRC_ROOT = REPO_ROOT / "src"


def _module_path(dotted: str) -> Path | None:
    """Filesystem path of a repro module/package, or None when it doesn't exist."""
    relative = Path(*dotted.split("."))
    if (SRC_ROOT / relative).with_suffix(".py").exists():
        return (SRC_ROOT / relative).with_suffix(".py")
    if (SRC_ROOT / relative / "__init__.py").exists():
        return SRC_ROOT / relative / "__init__.py"
    return None


def _top_level_names(module_file: Path) -> set[str]:
    """Names a module defines or re-exports at top level (classes, defs, assigns, imports)."""
    tree = ast.parse(module_file.read_text(encoding="utf-8"))
    names: set[str] = set()
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            names.add(node.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            names.add(node.target.id)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                names.add(alias.asname or alias.name.split(".")[0])
    return names


def _resolve_reference(dotted: str) -> str | None:
    """Check one dotted ``repro...`` reference; returns an error string or None.

    The longest importable module prefix is located first; the next component
    (if any) must then be a top-level name in that module.  Deeper components
    (method names, enum members) are not checked — they would require full
    inheritance resolution for little extra safety.
    """
    parts = dotted.split(".")
    module_file = None
    consumed = 0
    for end in range(len(parts), 0, -1):
        candidate = _module_path(".".join(parts[:end]))
        if candidate is not None:
            module_file = candidate
            consumed = end
            break
    if module_file is None:
        return f"no module for {dotted!r}"
    if consumed < len(parts):
        attribute = parts[consumed]
        if attribute not in _top_level_names(module_file):
            return f"{'.'.join(parts[:consumed])} has no attribute {attribute!r} (referenced as {dotted!r})"
    return None


def check_code_blocks() -> bool:
    """Every repro.* name in a docs/ python code block must exist in src/."""
    ok = True
    blocks = 0
    references = 0
    for markdown in iter_markdown_files():
        if markdown.name == "README.md" and markdown.parent == REPO_ROOT:
            continue  # the check covers docs/; the top-level README has its own style
        text = markdown.read_text(encoding="utf-8")
        for block in _FENCE_RE.findall(text):
            blocks += 1
            targets = set(_DOTTED_RE.findall(block))
            try:
                # Parseable blocks get exact import extraction (including
                # parenthesized / multi-line from-imports).
                tree = ast.parse(block)
            except SyntaxError:
                for module, imported in _FROM_IMPORT_RE.findall(block):
                    for name in imported.split(","):
                        name = name.strip().split(" as ")[0].strip()
                        if name:
                            targets.add(f"{module}.{name}")
            else:
                for node in ast.walk(tree):
                    if (
                        isinstance(node, ast.ImportFrom)
                        and node.level == 0
                        and node.module
                        and node.module.split(".")[0] == "repro"
                    ):
                        for alias in node.names:
                            if alias.name != "*":
                                targets.add(f"{node.module}.{alias.name}")
            for dotted in sorted(targets):
                references += 1
                error = _resolve_reference(dotted)
                if error is not None:
                    print(f"bad code reference in {markdown.relative_to(REPO_ROOT)}: {error}")
                    ok = False
    print(f"code blocks: checked {references} repro.* references in {blocks} python blocks")
    return ok


def main() -> int:
    """Run all three checks; returns a shell exit status."""
    docstrings_ok = check_docstrings()
    links_ok = check_links()
    code_blocks_ok = check_code_blocks()
    return 0 if (docstrings_ok and links_ok and code_blocks_ok) else 1


if __name__ == "__main__":
    sys.exit(main())
