#!/usr/bin/env python
"""Documentation checks runnable with the standard library alone.

Two checks, mirroring the CI docs job:

* **docstring coverage** over the public northbound surface (the same
  modules CI runs ``interrogate --fail-under 90`` on), counted the same way
  interrogate does with the repo's ``[tool.interrogate]`` settings
  (``ignore-init-method``, ``ignore-nested-functions``, ``ignore-module``
  false so module docstrings count);
* **markdown link check** over the README and ``docs/``: every relative
  link must resolve to a file in the repository.

Exit status is non-zero when either check fails, so the script doubles as a
pre-commit / CI gate where interrogate is unavailable.
"""

from __future__ import annotations

import ast
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Modules whose public surface the docstring sweep covers (kept in sync
#: with the interrogate invocation in .github/workflows/ci.yml).
DOCSTRING_MODULES = [
    "src/repro/core/northbound.py",
    "src/repro/core/transaction.py",
    "src/repro/core/transfer.py",
    "src/repro/core/sharding.py",
]

FAIL_UNDER = 90.0

MARKDOWN_ROOTS = ["README.md", "docs"]

#: Inline markdown links: [text](target); excludes images handled the same way.
_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def docstring_coverage(path: Path) -> tuple[int, int, list[str]]:
    """Count docstring-carrying definitions in one module.

    Returns (documented, total, missing-names).  Counts the module itself,
    every class, and every function/method except ``__init__`` and functions
    nested inside other functions — interrogate's view under the repo's
    configuration.
    """
    tree = ast.parse(path.read_text(encoding="utf-8"))
    documented, total, missing = 0, 0, []

    def visit(node: ast.AST, qualname: str, inside_function: bool) -> None:
        nonlocal documented, total
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if inside_function or child.name == "__init__":
                    continue
                name = f"{qualname}.{child.name}" if qualname else child.name
                total += 1
                if ast.get_docstring(child) is not None:
                    documented += 1
                else:
                    missing.append(name)
                visit(child, name, True)
            elif isinstance(child, ast.ClassDef):
                name = f"{qualname}.{child.name}" if qualname else child.name
                total += 1
                if ast.get_docstring(child) is not None:
                    documented += 1
                else:
                    missing.append(name)
                visit(child, name, inside_function)

    total += 1  # the module docstring
    if ast.get_docstring(tree) is not None:
        documented += 1
    else:
        missing.append("(module docstring)")
    visit(tree, "", False)
    return documented, total, missing


def check_docstrings() -> bool:
    """Enforce FAIL_UNDER % docstring coverage on every swept module."""
    ok = True
    for relative in DOCSTRING_MODULES:
        path = REPO_ROOT / relative
        documented, total, missing = docstring_coverage(path)
        coverage = 100.0 * documented / total if total else 100.0
        status = "ok" if coverage >= FAIL_UNDER else "FAIL"
        print(f"docstrings {relative}: {documented}/{total} = {coverage:.1f}% [{status}]")
        if coverage < FAIL_UNDER:
            ok = False
            for name in missing:
                print(f"  missing: {name}")
    return ok


def iter_markdown_files() -> list[Path]:
    """The markdown files the link check covers (README + docs/)."""
    files: list[Path] = []
    for root in MARKDOWN_ROOTS:
        path = REPO_ROOT / root
        if path.is_file():
            files.append(path)
        elif path.is_dir():
            files.extend(sorted(path.glob("**/*.md")))
    return files


def check_links() -> bool:
    """Every relative markdown link must resolve to an existing file."""
    ok = True
    for markdown in iter_markdown_files():
        for target in _LINK_RE.findall(markdown.read_text(encoding="utf-8")):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            resolved = (markdown.parent / target.split("#", 1)[0]).resolve()
            if not resolved.exists():
                print(f"broken link in {markdown.relative_to(REPO_ROOT)}: {target}")
                ok = False
    print(f"links: checked {len(iter_markdown_files())} markdown files")
    return ok


def main() -> int:
    """Run both checks; returns a shell exit status."""
    docstrings_ok = check_docstrings()
    links_ok = check_links()
    return 0 if (docstrings_ok and links_ok) else 1


if __name__ == "__main__":
    sys.exit(main())
