#!/usr/bin/env python
"""NAT failure recovery from a live shadow of critical state (paper section 2, R6).

A NAT translates outbound connections from an enterprise's private address
space.  Its address/port mappings are *critical* per-flow supporting state: if
the NAT dies and a replacement starts empty, every in-progress connection
breaks because return traffic no longer maps to the right internal host.

The failure-recovery control application subscribes to the NAT's
``nat.mapping_created`` introspection events, mirrors each advertised mapping
into a shadow table, and — when the NAT fails — bootstraps a replacement by
writing the shadow as static-mapping configuration and re-routing traffic.
Non-critical state (idle timers) simply restarts at defaults, exactly the
trade-off the paper advocates over full state replication.

Run it with::

    python examples/failure_recovery.py
"""

from __future__ import annotations

from repro.apps import FailureRecoveryApp
from repro.core import ControllerConfig, FlowPattern, MBController, NorthboundAPI
from repro.middleboxes import NAT
from repro.net import SDNController, Simulator, Switch, Topology, tcp_packet


def main() -> None:
    sim = Simulator()
    topology = Topology(sim)
    clients = topology.add_host("clients", "10.0.0.254")
    internet = topology.add_host("internet", "198.51.100.1")
    switch = topology.add_node(Switch(sim, "edge-switch"))
    nat_primary = NAT(sim, "nat-primary", external_ip="203.0.113.1")
    nat_standby = NAT(sim, "nat-standby", external_ip="203.0.113.1")
    for node in (nat_primary, nat_standby):
        topology.add_node(node)
    topology.connect(clients, switch)
    topology.connect(switch, nat_primary)
    topology.connect(nat_primary, internet)
    topology.connect(switch, nat_standby)
    topology.connect(nat_standby, internet)

    sdn = SDNController(sim, topology)
    controller = MBController(sim, ControllerConfig(quiescence_timeout=0.5))
    northbound = NorthboundAPI(controller)
    controller.register(nat_primary)
    controller.register(nat_standby)

    # Route outbound traffic through the primary NAT.
    outbound = FlowPattern(nw_src="10.0.0.0/8")
    sim.run_until(sdn.route(outbound, clients, internet, waypoints=["nat-primary"]).installed)

    # Arm the failure-recovery application: it shadows every mapping the NAT creates.
    app = FailureRecoveryApp(sim, northbound, protected_mb="nat-primary")
    sim.run_until(app.arm())

    # Live outbound connections establish mappings.
    for index in range(8):
        clients.send(tcp_packet(f"10.0.0.{index + 1}", "198.51.100.1", 40_000 + index, 443, b"hello"))
    sim.run(until=sim.now + 0.5)
    print(f"primary NAT created {len(nat_primary.support_store)} mappings; "
          f"the recovery app shadowed {len(app.shadow)} of them via introspection events")

    # The primary NAT fails (its links go down).
    for link in list(nat_primary.ports.values()):
        link.set_up(False)
    print("primary NAT failed — recovering onto the standby instance")

    def reroute():
        handle = sdn.route(outbound, clients, internet, waypoints=["nat-standby"], priority=200)
        return handle.installed

    report = sim.run_until(app.recover_to("nat-standby", update_routing=reroute), limit=100)
    print(f"recovery restored {report.details['mappings_restored']} critical mappings "
          f"in {report.duration * 1000:.1f} ms of control-plane time")

    # The same client connections continue through the standby NAT and keep their
    # external ports, so the far end still recognises them.
    before = {
        (mapping.internal_ip, mapping.internal_port): mapping.external_port
        for _, mapping in nat_primary.support_store.items()
    }
    preserved = 0
    for index in range(8):
        clients.send(tcp_packet(f"10.0.0.{index + 1}", "198.51.100.1", 40_000 + index, 443, b"more data"))
    sim.run(until=sim.now + 0.5)
    for _, mapping in nat_standby.support_store.items():
        if before.get((mapping.internal_ip, mapping.internal_port)) == mapping.external_port:
            preserved += 1
    print(f"{preserved} of {len(before)} connections kept their external ports across the failover")
    print(f"packets delivered to the internet host: {len(internet.received)}")


if __name__ == "__main__":
    main()
