#!/usr/bin/env python
"""Quickstart: move live middlebox state between two instances with OpenMB.

This example builds the smallest useful OpenMB deployment:

* two PRADS-like passive monitors registered with the MB controller,
* a stream of flows replayed into the first monitor,
* a ``moveInternal`` call that re-homes the per-flow state for one subnet onto
  the second monitor while traffic keeps flowing,

and prints what the controller and the middleboxes observed.

Run it with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.core import ControllerConfig, MBController, NorthboundAPI
from repro.middleboxes import PassiveMonitor
from repro.net import Simulator
from repro.traffic import TraceReplayer, constant_rate_trace


def main() -> None:
    # 1. A simulator, a controller, and two OpenMB-enabled monitors.
    sim = Simulator()
    controller = MBController(sim, ControllerConfig(quiescence_timeout=0.5))
    northbound = NorthboundAPI(controller)
    mon_a = PassiveMonitor(sim, "monitor-a")
    mon_b = PassiveMonitor(sim, "monitor-b")
    controller.register(mon_a)
    controller.register(mon_b)

    # 2. Replay one second of traffic (500 packets/s over 100 flows) into monitor A.
    trace = constant_rate_trace(rate=500.0, duration=1.0, flows=100, client_subnet="10.7")
    TraceReplayer.into_node(sim, trace, mon_a).schedule()
    sim.run(until=1.1)
    print(f"monitor-a is tracking {len(mon_a.report_store)} flows "
          f"({mon_a.counters.packets_received} packets seen)")

    # 3. Ask how much state exists for the subnet we are about to re-balance.
    stats = sim.run_until(northbound.stats("monitor-a", ["nw_src=10.7.1.0/24"]))
    print(f"stats(monitor-a, nw_src=10.7.1.0/24) -> {stats}")

    # 4. Move the per-flow state for that subnet to monitor B.  Traffic for the
    #    moved flows keeps arriving at monitor A during the move; re-process
    #    events carry those updates to monitor B so nothing is lost.
    handle = northbound.move_internal("monitor-a", "monitor-b", ["nw_src=10.7.1.0/24"])
    more_traffic = constant_rate_trace(rate=500.0, duration=0.5, flows=100, client_subnet="10.7", seed=11)
    TraceReplayer.into_node(sim, more_traffic, mon_a, start_at=sim.now).schedule()
    record = sim.run_until(handle.completed)
    print(f"moveInternal returned after {record.duration * 1000:.1f} ms: "
          f"{record.chunks_transferred} chunks, {record.bytes_transferred} bytes, "
          f"{record.events_forwarded} re-process events forwarded")

    # 5. After the quiescence period the controller deletes the moved state at the source.
    sim.run_until(handle.finalized)
    print(f"after finalisation: monitor-a holds {len(mon_a.report_store)} flow records, "
          f"monitor-b holds {len(mon_b.report_store)}")
    print(f"controller summary: {controller.stats.summary()}")


if __name__ == "__main__":
    main()
