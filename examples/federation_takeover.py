#!/usr/bin/env python
"""Three-domain federation: gossip convergence, domain death, elected takeover.

Three controller domains (per-DC) peer over lossy WAN channels.  Each domain
runs its own :class:`~repro.core.controller.MBController` and gossips two
facts to the others (anti-entropy, tunable fanout/interval/TTL):

* **instance liveness** — built from each controller's heartbeat state;
* **flow ownership** — a versioned directory mapping canonical flow tokens
  to the owning domain.

When one domain's controller dies, the survivors detect the silence, agree on
a successor via rendezvous election (no extra messages — converged views elect
the same winner), and the winner adopts the dead domain's instances and flow
ownership.  The orphaned middlebox keeps its per-flow state throughout: zero
updates are lost across the takeover.

Run it with::

    PYTHONPATH=src python examples/federation_takeover.py
"""

from __future__ import annotations

from repro.apps import FederationOverseerApp
from repro.core import ControllerConfig
from repro.core.channel import FaultPlan
from repro.federation import Federation, FederationConfig, GossipConfig
from repro.net import Simulator, tcp_packet
from repro.testing import ChaosMiddlebox

#: One subnet per domain so flow keys never collide across the federation.
DOMAINS = {"dc-east": "10.21", "dc-west": "10.22", "dc-core": "10.23"}


def main() -> None:
    sim = Simulator()
    federation = Federation(
        sim,
        FederationConfig(
            gossip=GossipConfig(fanout=2, interval=1e-3, ttl=0.5, seed=42),
            suspicion_timeout=2.5e-2,
        ),
    )
    for name in DOMAINS:
        federation.add_domain(name, controller_config=ControllerConfig(quiescence_timeout=0.02))
    # Lossy WAN mesh: 2 ms one-way, 100 Mbit/s, 1% drop with 2x jitter.
    federation.connect_all(latency=2e-3, bandwidth=12.5e6, faults=FaultPlan.symmetric(7, drop=0.01, jitter=2.0))

    # One instance per domain; each domain claims its instance's flows.
    for index, (name, subnet) in enumerate(DOMAINS.items()):
        instance = ChaosMiddlebox(sim, f"mb-{name}", flows=8, subnet=subnet)
        federation.domains[name].register(instance)
        federation.domains[name].claim_flows([instance.flow_key_for(i) for i in range(8)])

    rounds = federation.run_until_converged()
    print(f"3 domains converged on membership + liveness + ownership in {rounds} gossip intervals")

    # Live traffic journals sequence numbers into dc-core's per-flow state.
    victim_mb = federation.middlebox_object("mb-dc-core")
    for seq in range(1, 17):
        key = victim_mb.flow_key_for(seq % 8)
        sim.schedule(2e-4 * seq, victim_mb.receive, tcp_packet(key.nw_src, key.nw_dst, key.tp_src, key.tp_dst, b"w", seq=seq), 0)
    sim.run(until=sim.now + 0.01)
    journal_before = sum(len(seqs) for seqs in victim_mb.flow_seqs().values())

    print("dc-core's controller crashes ...")
    federation.crash_domain("dc-core")
    sim.run(until=sim.now + 0.15)  # suspicion -> obituary gossip -> election -> adoption

    overseer = FederationOverseerApp(sim, federation)
    report = overseer.run(limit=1.0)
    details = report.details
    print(f"survivors: {details['live_domains']}; views converged: {details['converged']}")
    for dead, adopter in details["takeovers"].items():
        print(f"takeover: '{adopter}' adopted domain '{dead}' and its instances")
    for domain, roster in details["instances"].items():
        print(f"  {domain}: {roster}")
    print(f"flow ownership after re-homing: {details['ownership']}")

    journal_after = sum(len(seqs) for seqs in victim_mb.flow_seqs().values())
    print(f"per-flow update journal: {journal_before} entries before the crash, {journal_after} after "
          f"({'zero lost updates' if journal_after >= journal_before else 'UPDATES LOST'})")
    fleet = details["fleet"]
    gossip_rounds = sum(domain.gossip_rounds for domain in federation.domains.values())
    digests = sum(domain.digests_received for domain in federation.domains.values())
    print(f"gossip cost: {gossip_rounds} rounds, {digests} digests absorbed; fleet controller counters "
          f"(merged across domains): {fleet['operations_completed']} operations, "
          f"{fleet['messages_sent']} southbound messages")
    federation.stop()


if __name__ == "__main__":
    main()
