#!/usr/bin/env python
"""Live migration of application VMs with redundancy-elimination middleboxes
(paper sections 2 and 6.1, Figure 6(a)).

Initially every application VM lives in data center A: traffic from a remote
site passes through an RE encoder, crosses the WAN, and is reconstructed by
the RE decoder in DC A.  Half of the VMs (the ``1.1.2.0/24`` subnet) are then
live-migrated to data center B.  The control application:

1. duplicates the original decoder's configuration onto a new decoder in DC B,
2. clones the original decoder's packet cache (shared supporting state),
3. adds a second cache at the encoder (cloned internally from the first),
4. re-routes the migrated subnet to DC B, and
5. switches the encoder to use the second cache for that subnet.

Because the caches are cloned rather than started empty, every encoded byte
remains decodable after the migration.  The script also runs the
configuration+routing-only baseline for contrast (Table 3's comparison).

Run it with::

    python examples/live_migration_re.py
"""

from __future__ import annotations

from repro.apps import REMigrationApp, build_re_migration_scenario
from repro.baselines import ConfigRoutingREMigration
from repro.traffic import redundancy_trace


def build_workload(seed_offset: int = 0):
    """Warm-up and post-migration traffic for both data-center subnets."""
    warm_a = redundancy_trace(packets=150, payload_bytes=512, redundancy=0.6, server_subnet="1.1.1", seed=1 + seed_offset)
    warm_b = redundancy_trace(packets=150, payload_bytes=512, redundancy=0.6, server_subnet="1.1.2", seed=2 + seed_offset)
    post_a = redundancy_trace(packets=100, payload_bytes=512, redundancy=0.6, server_subnet="1.1.1", seed=1 + seed_offset)
    post_b = redundancy_trace(packets=100, payload_bytes=512, redundancy=0.6, server_subnet="1.1.2", seed=2 + seed_offset)
    return warm_a.merged_with(warm_b), post_a, post_b


def run_openmb():
    scenario = build_re_migration_scenario(cache_capacity=128 * 1024)
    warm, post_a, post_b = build_workload()
    scenario.inject(warm)
    scenario.sim.run(until=scenario.sim.now + 0.8)

    app = REMigrationApp(
        scenario.sim,
        scenario.northbound,
        encoder=scenario.encoder.name,
        orig_decoder=scenario.decoder_a.name,
        new_decoder=scenario.decoder_b.name,
        update_routing=scenario.reroute_dc_b,
    )
    report = scenario.sim.run_until(app.start(), limit=100)
    for step in report.steps:
        print(f"    {step}")

    # The migrated VMs' traffic resumes after their switchover pause.
    scenario.inject(post_a.merged_with(post_b), start_at=scenario.sim.now + 0.05)
    scenario.sim.run(until=scenario.sim.now + 2.5)
    return scenario


def run_baseline():
    scenario = build_re_migration_scenario(cache_capacity=128 * 1024)
    warm, post_a, post_b = build_workload()
    scenario.inject(warm)
    scenario.sim.run(until=scenario.sim.now + 0.8)

    app = ConfigRoutingREMigration(
        scenario,
        routing_delay=0.04,  # the routing update lands ~10 packets after the cache switch
        on_cache_switched=lambda: scenario.inject(post_b, start_at=scenario.sim.now),
    )
    scenario.sim.run_until(app.start(), limit=100)
    scenario.inject(post_a, start_at=scenario.sim.now + 0.01)
    scenario.sim.run(until=scenario.sim.now + 2.5)
    return scenario


def summarize(name, scenario):
    encoder = scenario.encoder
    undecodable = scenario.decoder_a.undecodable_bytes + scenario.decoder_b.undecodable_bytes
    print(f"\n{name}:")
    print(f"    total payload bytes seen by the encoder : {encoder.total_bytes}")
    print(f"    redundant bytes eliminated (encoded)    : {encoder.encoded_bytes}")
    print(f"    undecodable bytes at the decoders       : {undecodable}")
    print("    packets delivered to DC A / DC B        : "
          f"{len(scenario.dc_a_host.received)} / {len(scenario.dc_b_host.received)}")


def main() -> None:
    print("== OpenMB live migration (cloneSupport + coordinated routing) ==")
    openmb_scenario = run_openmb()
    print("\n== Configuration + routing only (no state cloning) ==")
    baseline_scenario = run_baseline()

    summarize("OpenMB (SDMBN)", openmb_scenario)
    summarize("Config + routing baseline", baseline_scenario)
    print("\nThe baseline's encoded bytes referencing the new (empty) cache cannot be "
          "reconstructed once the encoder, decoder, and routing fall out of sync; "
          "OpenMB's cloned caches keep every encoded byte decodable.")


if __name__ == "__main__":
    main()
