#!/usr/bin/env python
"""Elastic scaling of a monitoring middlebox (paper section 6.2, Figure 6(b)).

The scenario: one PRADS-like monitor handles all traffic between an enterprise
and its cloud providers.  Load grows, so the operator scales up — a second
monitor instance is launched, half of the client subnet's in-progress flows are
re-balanced onto it (their per-flow reporting state moves with them), and the
SDN controller re-routes those flows.  Later, load drops and the operator
scales back down: the spare instance's per-flow state moves back, its shared
reporting counters are merged, and the instance is terminated.

Throughout, the collective statistics of the deployment must equal what a
single monitor would have reported — no over- or under-counting.

Run it with::

    python examples/elastic_scaling.py
"""

from __future__ import annotations

from repro.apps import ScaleDownApp, ScaleUpApp, build_two_instance_scenario
from repro.core import FlowPattern
from repro.middleboxes import PassiveMonitor, combined_statistics
from repro.net import Simulator
from repro.traffic import enterprise_cloud_trace


def main() -> None:
    scenario = build_two_instance_scenario(
        mb_factory=lambda sim, name: PassiveMonitor(sim, name),
        mb_names=("prads-1", "prads-2"),
    )
    sim = scenario.sim

    # Enterprise-to-cloud workload: HTTP plus other flows, replayed 40x faster.
    trace = enterprise_cloud_trace(http_flows=60, other_flows=20, duration=15.0, seed=7)
    replayer = scenario.inject(trace, speedup=40.0)
    sim.run(until=0.3)
    print(f"[t={sim.now:.2f}s] prads-1 tracks {len(scenario.mb1.report_store)} flows")

    # ---- scale up -----------------------------------------------------------------
    rebalance_pattern = FlowPattern(nw_src="10.1.1.0/25")
    scale_up = ScaleUpApp(
        sim,
        scenario.northbound,
        existing_mb="prads-1",
        new_mb="prads-2",
        patterns=[rebalance_pattern],
        update_routing=lambda pattern: scenario.route_via(scenario.mb2, pattern),
    )
    report = sim.run_until(scale_up.start(), limit=200)
    print(f"[t={sim.now:.2f}s] scale-up complete: moved {report.details['chunks_moved']} state chunks, "
          f"forwarded {report.details['events_forwarded']} re-process events")
    for step in report.steps:
        print(f"    {step}")

    # Let traffic run across both instances for a while.
    sim.run(until=sim.now + 0.4)
    print(f"[t={sim.now:.2f}s] packets so far: prads-1={scenario.mb1.counters.packets_received}, "
          f"prads-2={scenario.mb2.counters.packets_received}")

    # ---- scale down ---------------------------------------------------------------
    scale_down = ScaleDownApp(
        sim,
        scenario.northbound,
        spare_mb="prads-2",
        remaining_mb="prads-1",
        update_routing=lambda pattern: scenario.route_via(
            scenario.mb1, FlowPattern(nw_dst=scenario.server_prefix)
        ),
        terminate=lambda: scenario.controller.unregister("prads-2"),
    )
    report = sim.run_until(scale_down.start(), limit=300)
    print(f"[t={sim.now:.2f}s] scale-down complete: moved {report.details['chunks_moved']} chunks back, "
          "merged shared reporting state")

    # Drain the rest of the trace and compare against a single reference monitor.
    sim.run(until=sim.now + 3.0)
    reference = PassiveMonitor(Simulator(), "reference")
    for record in trace:
        reference.process_packet(record.to_packet())

    deployed = combined_statistics([scenario.mb1])
    expected = reference.statistics()
    print("\ncollective statistics after scaling activity (remaining instance only):")
    for field in ("total_packets", "total_bytes", "tcp_packets", "flows_seen"):
        marker = "OK" if deployed[field] == expected[field] else "MISMATCH"
        print(f"    {field:>14}: deployment={deployed[field]:>8}  reference={expected[field]:>8}  [{marker}]")
    print(f"\ninjected packets: {replayer.stats.injected}; "
          f"controller operations: {scenario.controller.stats.operations_completed}")


if __name__ == "__main__":
    main()
