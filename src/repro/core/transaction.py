"""Transactional northbound API: composite operations as one operation graph.

The paper's value proposition is *joint* control of middlebox state and
routing, but the six primitives of section 5 leave the joint part to every
control application: clone the configuration, query stats, move state, and
only then re-route — hand-sequenced with raw futures.  This module turns that
recurring choreography into a first-class object:

``nb.transaction()`` yields a :class:`Transaction` builder on which an
application declares **steps** — ``clone_config``, ``move``, ``clone``,
``merge``, ``reroute``, ``write_config``, ``end_transfer``, ``barrier``,
``call`` — plus **composite verbs** (``migrate``, ``rebalance``, ``drain``)
that expand into the correct paper sequence.  A single ``commit()`` returns a
:class:`TransactionHandle` with per-step progress, aggregate statistics, and
all-or-nothing failure semantics.

Three behaviours distinguish a transaction from hand-sequencing:

* **coordinated re-routing** — a ``reroute`` attached to a ``move`` starts as
  soon as the move's per-flow put-ACKs have all arrived
  (``OperationHandle.state_installed``) instead of after whole-operation
  completion, shrinking the window in which traffic still reaches the old
  instance;
* **declarative ordering** — each step depends on the previously declared
  step by default; explicit ``after=`` / ``barrier()`` edges express the rest
  of the operation graph;
* **all-or-nothing failure** — the first failing step aborts the whole
  transaction: pending steps are cancelled, in-flight operations are failed
  (releasing any order-preserving destination packet holds), installed routes
  are rolled back, and completed-but-unfinalised operations have their
  destructive post-quiescence step (the source delete) cancelled so the
  source keeps its state.

The legacy primitives (``moveInternal`` & co.) remain available unchanged;
each is semantically a single-step transaction.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..net.simulator import Future, all_of
from .errors import TransactionAbortedError, TransactionError
from .flowspace import FlowPattern
from .operations import OperationHandle
from .transfer import TransferSpec

_txn_ids = itertools.count(1)


class StepStatus(enum.Enum):
    """Lifecycle of one transaction step."""

    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"
    ROLLED_BACK = "rolled_back"


@dataclass
class StepRecord:
    """Per-step progress exposed on the transaction handle."""

    step_id: int
    name: str
    status: StepStatus = StepStatus.PENDING
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    error: Optional[str] = None
    #: Step-specific measurements (operation records, route windows, ...).
    detail: Dict[str, object] = field(default_factory=dict)

    @property
    def duration(self) -> Optional[float]:
        """Seconds from step start to finish (None while pending/running)."""
        if self.started_at is None or self.finished_at is None:
            return None
        return self.finished_at - self.started_at


# =========================================================================================
# Steps
# =========================================================================================


class _Step:
    """One node of the operation graph."""

    def __init__(self, txn: "Transaction", name: str) -> None:
        self.txn = txn
        self.record = StepRecord(step_id=len(txn.steps) + 1, name=name)
        #: (step, mode) dependency edges; mode "done" waits for the step's
        #: completion, mode "installed" for its state_installed point.
        self.deps: List[Tuple["_Step", str]] = []
        #: Resolves when the step completes (or fails).
        self.gate: Future = txn.sim.event(name=f"txn{txn.txn_id}.{self.record.step_id}:{name}")
        #: Resolves at the step's state-installed point (operation steps
        #: bridge it to the operation handle; other steps alias the gate).
        self.installed: Future = txn.sim.event(name=f"txn{txn.txn_id}.{self.record.step_id}:{name}.installed")
        self._exception: Optional[BaseException] = None

    # -- lifecycle ---------------------------------------------------------------------

    def start(self) -> None:
        """Mark the step running and launch it; a launch error fails the txn."""
        self.record.status = StepStatus.RUNNING
        self.record.started_at = self.txn.sim.now
        self.txn._notify(self, "start")
        try:
            self.run()
        except Exception as exc:  # a step that cannot even launch fails the txn
            self._fail(exc)

    def run(self) -> None:
        """Launch the step's work (subclass hook)."""
        raise NotImplementedError

    def _succeed(self, result: object = None) -> None:
        """Complete the step: resolve the gate and notify the coordinator."""
        if self.gate.done:
            return
        self.record.status = StepStatus.DONE
        self.record.finished_at = self.txn.sim.now
        if not self.installed.done:
            self.installed.succeed(result)
        self.txn._notify(self, "done")
        self.gate.succeed(result)

    def _fail(self, exc: BaseException) -> None:
        """Fail the step: record the error and trigger the transaction abort."""
        if self.gate.done:
            return
        self.record.status = StepStatus.FAILED
        self.record.finished_at = self.txn.sim.now
        self.record.error = str(exc)
        self._exception = exc
        if not self.installed.done:
            self.installed.fail(exc)
        self.txn._notify(self, "failed")
        self.gate.fail(exc)

    def _resolve_future(self, future: Future) -> None:
        """Tie the step's outcome to *future*."""
        future.add_done_callback(
            lambda f: self._fail(f.exception) if f.exception is not None else self._succeed(f._result)
        )

    # -- abort support ------------------------------------------------------------------

    def cancel(self) -> None:
        """Called for PENDING steps when the transaction aborts."""
        self.record.status = StepStatus.CANCELLED

    def abort_inflight(self, exc: Exception) -> None:
        """Called for RUNNING steps when another step failed; default: nothing."""

    def rollback(self) -> None:
        """Called (reverse order) for DONE steps when the transaction aborts."""


class _CallStep(_Step):
    """Run an arbitrary callable; a returned future is awaited."""

    def __init__(self, txn: "Transaction", name: str, fn: Callable[[], object]) -> None:
        super().__init__(txn, name)
        self.fn = fn

    def run(self) -> None:
        """Invoke the callable; await its result when it returns a future."""
        result = self.fn()
        if isinstance(result, Future):
            self._resolve_future(result)
        else:
            self._succeed(result)


class _CloneConfigStep(_Step):
    """Duplicate a configuration (sub)tree from one middlebox onto another."""

    def __init__(self, txn: "Transaction", src: str, dst: str, key: str) -> None:
        super().__init__(txn, f"clone_config({src}->{dst})")
        self.src, self.dst, self.key = src, dst, key

    def run(self) -> None:
        """Issue the read+write composition through the northbound API."""
        self._resolve_future(self.txn.nb.clone_config(self.src, self.dst, self.key))


class _WriteConfigStep(_Step):
    """Set configuration values on one middlebox."""

    def __init__(self, txn: "Transaction", mb: str, key: str, values) -> None:
        super().__init__(txn, f"write_config({mb},{key})")
        self.mb, self.key, self.values = mb, key, values

    def run(self) -> None:
        """Issue the writeConfig call."""
        self._resolve_future(self.txn.nb.write_config(self.mb, self.key, self.values))


class _StatsStep(_Step):
    """Query state statistics; the reply lands in the step's ``detail``."""

    def __init__(self, txn: "Transaction", mb: str, pattern) -> None:
        super().__init__(txn, f"stats({mb})")
        self.mb, self.pattern = mb, pattern

    def run(self) -> None:
        """Issue the stats query and stash its reply on success."""

        def stash(future: Future) -> None:
            if future.exception is None:
                self.record.detail["stats"] = future.result

        future = self.txn.nb.stats(self.mb, self.pattern)
        future.add_done_callback(stash)
        self._resolve_future(future)


class _EndTransferStep(_Step):
    """Tell a middlebox an in-progress clone/merge transfer has completed."""

    def __init__(self, txn: "Transaction", mb: str) -> None:
        super().__init__(txn, f"end_transfer({mb})")
        self.mb = mb

    def run(self) -> None:
        """Issue the endTransfer call."""
        self._resolve_future(self.txn.nb.end_transfer(self.mb))


class _OperationStep(_Step):
    """A stateful operation (move/clone/merge) as one step."""

    def __init__(
        self,
        txn: "Transaction",
        kind: str,
        src: str,
        dst: str,
        pattern: Optional[FlowPattern] = None,
        spec: Optional[TransferSpec] = None,
        wait_finalized: bool = False,
    ) -> None:
        super().__init__(txn, f"{kind}({src}->{dst})")
        self.kind = kind
        self.src, self.dst = src, dst
        self.pattern = pattern
        self.spec = spec
        self.wait_finalized = wait_finalized
        self.handle: Optional[OperationHandle] = None

    def run(self) -> None:
        """Start the operation and bridge its futures to the step's own."""
        nb = self.txn.nb
        if self.kind == "move":
            self.handle = nb.move_internal(self.src, self.dst, self.pattern, spec=self.spec)
        elif self.kind == "clone":
            self.handle = nb.clone_support(self.src, self.dst, spec=self.spec)
        elif self.kind == "merge":
            self.handle = nb.merge_internal(self.src, self.dst, spec=self.spec)
        else:  # pragma: no cover - builder only produces the three kinds
            raise TransactionError(f"unknown operation kind {self.kind!r}")
        self.record.detail["operation"] = self.handle.record
        # Bridge the operation's state-installed point to the step's own
        # future so coordinated reroutes can be declared before the operation
        # exists.
        self.handle.state_installed.add_done_callback(
            lambda f: None
            if self.installed.done
            else (self.installed.fail(f.exception) if f.exception is not None else self.installed.succeed(f._result))
        )
        self._resolve_future(self.handle.finalized if self.wait_finalized else self.handle.completed)

    @property
    def operation_record(self):
        """The operation's measurement record (None before the step runs)."""
        return None if self.handle is None else self.handle.record

    def abort_inflight(self, exc: Exception) -> None:
        """Fail the running operation (releases destination packet holds)."""
        if self.handle is not None:
            self.txn.controller.abort_operation(self.handle, str(exc))

    def rollback(self) -> None:
        """Cancel the completed operation's destructive post-quiescence step.

        A completed operation cannot be un-done, but the delete at the source
        can still be cancelled so the source keeps its state after the abort.
        """
        if self.handle is not None:
            if self.txn.controller.abort_operation(self.handle, "transaction rolled back"):
                self.record.status = StepStatus.ROLLED_BACK


RouteChange = Tuple[FlowPattern, Sequence]


class _RerouteStep(_Step):
    """Install routing for one or more patterns, with rollback on abort.

    Two forms:

    * **declarative** (full rollback): ``sdn`` plus ``changes`` — a list of
      ``(pattern, path)`` pairs handed to
      :meth:`~repro.net.sdn.SDNController.swap_routes` (atomic validation,
      make-before-break replacement);
    * **callback**: ``apply()`` returns a future (or a
      :class:`~repro.net.sdn.RouteHandle`); rollback is possible only when
      the callback's result is a route handle and ``sdn`` was provided.
    """

    def __init__(
        self,
        txn: "Transaction",
        *,
        label: str,
        sdn=None,
        changes: Optional[List[RouteChange]] = None,
        replace: Sequence = (),
        priority: int = 100,
        apply: Optional[Callable[[], object]] = None,
    ) -> None:
        super().__init__(txn, label)
        self.sdn = sdn
        self.changes = changes
        self.replace = list(replace)
        self.priority = priority
        self.apply = apply
        self._swap = None
        self._route_handles: List = []

    def run(self) -> None:
        """Install the routes (declarative swap or application callback)."""
        self.record.detail["requested_at"] = self.txn.sim.now
        if self.changes is not None:
            if self.sdn is None:
                raise TransactionError("reroute with explicit paths requires the sdn controller")
            self._swap = self.sdn.swap_routes(self.changes, priority=self.priority, replace=self.replace)
            self._route_handles = list(self._swap.routes)
            self._resolve_future(self._swap.installed)
            return
        if self.apply is None:
            raise TransactionError("reroute needs either (sdn, pattern, path) or an apply callback")
        result = self.apply()
        from ..net.sdn import RouteHandle

        if isinstance(result, RouteHandle):
            self._route_handles = [result]
            self._resolve_future(result.installed if result.installed is not None else self.txn.sim.timeout(0.0))
        elif isinstance(result, Future):
            self._resolve_future(result)
        else:
            self._succeed(result)

    def _succeed(self, result: object = None) -> None:
        """Stamp the route-install time before completing the step."""
        self.record.detail["installed_at"] = self.txn.sim.now
        super()._succeed(result)

    def abort_inflight(self, exc: Exception) -> None:
        """Partially installed routes roll back like completed ones."""
        self.rollback()

    def rollback(self) -> None:
        """Remove installed routes (re-installing any the swap replaced)."""
        rolled = False
        if self._swap is not None:
            self._swap.rollback()
            rolled = True
        elif self.sdn is not None and self._route_handles:
            for handle in self._route_handles:
                self.sdn.remove_route(handle)
            rolled = True
        if rolled and self.record.status in (StepStatus.DONE, StepStatus.RUNNING):
            self.record.status = StepStatus.ROLLED_BACK


class _BarrierStep(_Step):
    """Synchronisation point: completes when all its dependencies have."""

    def __init__(self, txn: "Transaction", label: str = "barrier") -> None:
        super().__init__(txn, label)
        #: Extra futures (e.g. operation ``finalized``) gathered at start.
        self._extra: List[Callable[[], Optional[Future]]] = []

    def run(self) -> None:
        """Gather the extra futures (finalisation, shard quiesce) and wait."""
        futures = [future for thunk in self._extra if (future := thunk()) is not None]
        if futures:
            self._resolve_future(all_of(self.txn.sim, futures))
        else:
            self._succeed(None)


class _RebalanceStep(_Step):
    """Dynamic composite: measure load, move state off the busiest replica,
    and re-route once the moved state is installed."""

    def __init__(
        self,
        txn: "Transaction",
        replicas: Sequence[str],
        patterns_by_replica: Dict[str, object],
        update_routing: Callable[[str, FlowPattern], object],
        *,
        spec: Optional[TransferSpec] = None,
        min_imbalance: int = 2,
    ) -> None:
        super().__init__(txn, f"rebalance({','.join(replicas)})")
        self.replicas = list(replicas)
        self.patterns_by_replica = dict(patterns_by_replica)
        self.update_routing = update_routing
        self.spec = spec
        self.min_imbalance = min_imbalance
        self.handle: Optional[OperationHandle] = None

    def run(self) -> None:
        """Measure per-replica load, then decide whether (and what) to move."""
        measurements = [self.txn.nb.stats(replica, None) for replica in self.replicas]
        all_of(self.txn.sim, measurements).add_done_callback(self._on_loads)

    def _on_loads(self, future: Future) -> None:
        """With loads in hand: no-op when balanced, else move + reroute."""
        if future.exception is not None:
            self._fail(future.exception)
            return
        loads = {
            replica: stats.get("perflow_supporting", 0) + stats.get("perflow_reporting", 0)
            for replica, stats in zip(self.replicas, future.result)
        }
        self.record.detail["loads_before"] = dict(loads)
        busiest = max(loads, key=loads.get)
        idlest = min(loads, key=loads.get)
        if busiest == idlest or loads[busiest] - loads[idlest] < self.min_imbalance:
            self.record.detail["balanced"] = True
            self._succeed(self.record.detail)
            return
        pattern = self.patterns_by_replica.get(busiest)
        if pattern is None:
            self.record.detail["no_pattern_for"] = busiest
            self._succeed(self.record.detail)
            return
        pattern = pattern if isinstance(pattern, FlowPattern) else FlowPattern.parse(pattern)
        self.record.detail["moved_from"] = busiest
        self.record.detail["moved_to"] = idlest
        self.handle = self.txn.nb.move_internal(busiest, idlest, pattern, spec=self.spec)
        self.record.detail["operation"] = self.handle.record
        routed = self.txn.sim.event(name=f"{self.record.name}.routed")

        def reroute(installed: Future) -> None:
            # Coordinated re-routing: install the new route as soon as the
            # moved state is fully installed, overlapping with the tail of
            # the operation (releases/replays) instead of waiting for it.
            if installed.exception is not None:
                routed.fail(installed.exception)
                return
            result = self.update_routing(idlest, pattern)
            if isinstance(result, Future):
                result.add_done_callback(
                    lambda f: routed.fail(f.exception) if f.exception is not None else routed.succeed(f._result)
                )
            else:
                routed.succeed(result)

        self.handle.state_installed.add_done_callback(reroute)
        self._resolve_future(all_of(self.txn.sim, [self.handle.completed, routed]))

    @property
    def operation_record(self):
        """The re-balancing move's record (None when no move was needed)."""
        return None if self.handle is None else self.handle.record

    def abort_inflight(self, exc: Exception) -> None:
        """Fail the in-flight re-balancing move."""
        if self.handle is not None:
            self.txn.controller.abort_operation(self.handle, str(exc))

    def rollback(self) -> None:
        """Cancel the completed move's pending post-quiescence source delete.

        Mirrors ``_OperationStep.rollback`` so the busiest replica keeps its
        state when a later step aborts the transaction.
        """
        if self.handle is not None:
            if self.txn.controller.abort_operation(self.handle, "transaction rolled back"):
                self.record.status = StepStatus.ROLLED_BACK


# =========================================================================================
# Handle and coordinator
# =========================================================================================


class TransactionHandle:
    """Progress and outcome of one committed transaction."""

    def __init__(self, txn: "Transaction") -> None:
        self._txn = txn
        #: Resolves with this handle when every step is done; fails with
        #: :class:`TransactionAbortedError` after rollback on the first error.
        self.done: Future = txn.sim.event(name=f"txn{txn.txn_id}.done")

    @property
    def steps(self) -> List[StepRecord]:
        """Per-step progress, in declaration order."""
        return [step.record for step in self._txn.steps]

    @property
    def status(self) -> str:
        """Transaction status: ``running``, ``committed``, or ``aborted``."""
        return self._txn.status

    @property
    def operation_records(self) -> List:
        """Records of every stateful operation the transaction ran."""
        records = []
        for step in self._txn.steps:
            record = getattr(step, "operation_record", None)
            if record is not None:
                records.append(record)
        return records

    def aggregate(self) -> Dict[str, object]:
        """Roll-up statistics across every operation step."""
        records = self.operation_records
        return {
            "operations": len(records),
            "chunks_transferred": sum(r.chunks_transferred for r in records),
            "bytes_transferred": sum(r.bytes_transferred for r in records),
            "events_received": sum(r.events_received for r in records),
            "events_forwarded": sum(r.events_forwarded for r in records),
            "puts_acked": sum(r.puts_acked for r in records),
            "releases_sent": sum(r.releases_sent for r in records),
            "steps_done": sum(1 for s in self.steps if s.status is StepStatus.DONE),
            "steps_total": len(self.steps),
        }


PatternLike = Union[FlowPattern, Dict[str, object], List[str], str, None]


class Transaction:
    """Builder + coordinator for one composite northbound transaction."""

    def __init__(self, northbound) -> None:
        self.nb = northbound
        self.controller = northbound.controller
        self.sim = self.controller.sim
        self.txn_id = next(_txn_ids)
        self.steps: List[_Step] = []
        self.status = "building"
        self.handle: Optional[TransactionHandle] = None
        #: Optional callable receiving human-readable step progress messages.
        self.observer: Optional[Callable[[str], None]] = None
        self._aborting = False
        self._done_count = 0

    # -- building -------------------------------------------------------------------------

    @staticmethod
    def _normalize_deps(after, op_mode: str = "done") -> List[Tuple[_Step, str]]:
        """Coerce ``after=`` into (step, mode) edges.

        Accepts a step, a ``(step, mode)`` tuple, or a list of either.  A bare
        step means its completion, except that *operation* steps referenced
        from a reroute (``op_mode="installed"``) mean their state-installed
        point — the coordinated re-route edge.
        """
        if isinstance(after, tuple) and len(after) == 2 and isinstance(after[1], str):
            after = [after]
        elif isinstance(after, _Step):
            after = [after]
        edges: List[Tuple[_Step, str]] = []
        for dep in after:
            if isinstance(dep, tuple):
                edges.append(dep)
            elif isinstance(dep, (_OperationStep, _RebalanceStep)):
                edges.append((dep, op_mode))
            else:
                edges.append((dep, "done"))
        return edges

    def _add(self, step: _Step, after=None, *, op_mode: str = "done") -> _Step:
        """Append *step* with its dependency edges (default: previous step)."""
        if self.status != "building":
            raise TransactionError("cannot add steps after commit()")
        if after is None:
            if self.steps:
                step.deps.append((self.steps[-1], "done"))
        else:
            step.deps.extend(self._normalize_deps(after, op_mode))
        self.steps.append(step)
        return step

    def _pattern(self, pattern: PatternLike) -> Optional[FlowPattern]:
        """Coerce a PatternLike into a FlowPattern, passing None through."""
        if pattern is None or isinstance(pattern, FlowPattern):
            return pattern
        return FlowPattern.parse(pattern)

    def clone_config(self, src: str, dst: str, key: str = "*", *, after=None) -> _Step:
        """Duplicate *src*'s configuration (sub)tree onto *dst*."""
        return self._add(_CloneConfigStep(self, src, dst, key), after)

    def write_config(self, mb: str, key: str, values, *, after=None) -> _Step:
        """Set configuration values on a middlebox."""
        return self._add(_WriteConfigStep(self, mb, key, values), after)

    def stats(self, mb: str, pattern: PatternLike = None, *, after=None) -> _Step:
        """Query state statistics (result lands in the step's ``detail``)."""
        return self._add(_StatsStep(self, mb, self._pattern(pattern)), after)

    def end_transfer(self, mb: str, *, after=None) -> _Step:
        """Tell *mb* an in-progress clone/merge transfer has completed."""
        return self._add(_EndTransferStep(self, mb), after)

    def move(
        self,
        src: str,
        dst: str,
        pattern: PatternLike = None,
        *,
        spec=None,
        wait_finalized: bool = False,
        after=None,
    ) -> _OperationStep:
        """moveInternal as a step; exposes ``installed`` for coordinated reroutes."""
        spec = TransferSpec.parse(spec)
        return self._add(_OperationStep(self, "move", src, dst, self._pattern(pattern), spec, wait_finalized), after)

    def clone(self, src: str, dst: str, *, spec=None, wait_finalized: bool = False, after=None) -> _OperationStep:
        """cloneSupport as a step."""
        return self._add(_OperationStep(self, "clone", src, dst, None, TransferSpec.parse(spec), wait_finalized), after)

    def merge(self, src: str, dst: str, *, spec=None, wait_finalized: bool = False, after=None) -> _OperationStep:
        """mergeInternal as a step."""
        return self._add(_OperationStep(self, "merge", src, dst, None, TransferSpec.parse(spec), wait_finalized), after)

    def reroute(
        self,
        sdn=None,
        pattern: PatternLike = None,
        path: Optional[Sequence] = None,
        *,
        changes: Optional[List[RouteChange]] = None,
        replace: Sequence = (),
        priority: int = 100,
        apply: Optional[Callable[[], object]] = None,
        after=None,
        label: Optional[str] = None,
    ) -> _RerouteStep:
        """Install routing for the affected flows, with rollback on abort.

        ``reroute(sdn, pattern, path)`` swaps routes atomically through the
        SDN controller (full rollback); ``reroute(apply=callback)`` defers to
        an application callback (rollback only when the callback returns a
        :class:`~repro.net.sdn.RouteHandle` and ``sdn`` is given).  When
        ``after=`` names a move/clone/merge step, the reroute starts at that
        operation's *state-installed* point — after the relevant per-flow
        put-ACKs — rather than after whole-operation completion.
        """
        resolved = self._pattern(pattern)
        if changes is None and path is not None:
            if resolved is None:
                raise TransactionError("reroute with a path requires a pattern")
            changes = [(resolved, list(path))]
        step = _RerouteStep(
            self,
            label=label or f"reroute({resolved!r})",
            sdn=sdn,
            changes=changes,
            replace=replace,
            priority=priority,
            apply=apply,
        )
        return self._add(step, after, op_mode="installed")

    def call(self, fn: Callable[[], object], *, name: str = "call", after=None) -> _Step:
        """Run an arbitrary callable as a step (a returned future is awaited)."""
        return self._add(_CallStep(self, name, fn), after)

    def barrier(
        self,
        steps: Optional[Sequence[_Step]] = None,
        *,
        finalized: bool = False,
        quiesce_shards: bool = False,
        after=None,
    ) -> _Step:
        """Wait for *steps* (default: every step declared so far) to complete.

        Args:
            steps: the steps to wait on; ``None`` covers every step declared
                so far.
            finalized: additionally wait for the post-quiescence finalisation
                of every operation step covered.
            quiesce_shards: additionally wait for the **cross-shard barrier**:
                the controller shards hosting the covered operations must
                drain their event/ACK loops before the barrier completes.
                This is how a transaction orders a step (e.g. a merge) behind
                operations homed on *different* shards — step completion alone
                only proves each shard's own loop reached the completion
                point, not that every shard's in-flight handling for those
                operations has been absorbed.
            after: further explicit dependency edges, as on every other step.

        Returns:
            The barrier step.

        Raises:
            TransactionError: when called after :meth:`commit`.
        """
        if self.status != "building":
            raise TransactionError("cannot add steps after commit()")
        covered = list(steps) if steps is not None else list(self.steps)
        barrier = _BarrierStep(self)
        for dep in covered:
            barrier.deps.append((dep, "done"))
        if after is not None:
            barrier.deps.extend(self._normalize_deps(after))
        if finalized:
            for dep in covered:
                if isinstance(dep, _OperationStep):
                    barrier._extra.append(lambda d=dep: None if d.handle is None else d.handle.finalized)
        if quiesce_shards:
            operation_steps = [dep for dep in covered if isinstance(dep, _OperationStep)]

            def shard_barrier() -> Future:
                shard_ids: List[int] = []
                for dep in operation_steps:
                    operation = None if dep.handle is None else dep.handle._operation
                    if operation is not None:
                        shard_ids.extend(shard.shard_id for shard in operation.shards)
                return self.controller.coordinator.barrier(shard_ids or None)

            barrier._extra.append(shard_barrier)
        # A barrier's edges are all explicit; bypass the default previous-step
        # edge _add() would attach.
        self.steps.append(barrier)
        return barrier

    # -- composite verbs ---------------------------------------------------------------------

    def migrate(
        self,
        src: str,
        dst: str,
        patterns: Sequence[PatternLike],
        *,
        clone_configuration: bool = True,
        spec=None,
        reroute: Optional[Callable[[FlowPattern], object]] = None,
        sdn=None,
        paths: Optional[Dict[FlowPattern, Sequence]] = None,
        query_stats: bool = False,
        wait_for_finalize: bool = False,
    ) -> List[_OperationStep]:
        """The paper's migration sequence for each pattern: (cloneConfig once,)
        stats → moveInternal → re-route after the per-flow put-ACKs.

        ``reroute`` is a per-pattern callback (``reroute(pattern) -> future``);
        alternatively ``sdn`` + ``paths`` give declarative routes with full
        rollback.  Returns the move steps, in pattern order.
        """
        if clone_configuration:
            self.clone_config(src, dst)
        moves: List[_OperationStep] = []
        previous: Optional[_Step] = None
        for raw in patterns:
            pattern = self._pattern(raw)
            deps = [(previous, "done")] if previous is not None else None
            if query_stats:
                stat = self.stats(src, pattern, after=deps)
                deps = [(stat, "done")]
            move = self.move(src, dst, pattern, spec=spec, wait_finalized=wait_for_finalize, after=deps)
            route_kwargs: Dict[str, object] = {"after": move}
            if reroute is not None:
                route_kwargs["apply"] = lambda p=pattern: reroute(p)
            elif sdn is not None and paths is not None:
                route_kwargs["sdn"] = sdn
                route_kwargs["changes"] = [(pattern, list(paths[pattern]))]
            else:
                raise TransactionError("migrate needs a reroute callback or sdn + paths")
            route = self.reroute(pattern=pattern, **route_kwargs)
            # The next pattern starts only once this one has both returned
            # and been re-routed (the sequential paper choreography).
            previous = self.barrier([move, route])
            moves.append(move)
        return moves

    def drain(
        self,
        src: str,
        dst: str,
        *,
        pattern: PatternLike = None,
        spec=None,
        merge_shared: bool = True,
        reroute: Optional[Callable[[FlowPattern], object]] = None,
        sdn=None,
        path: Optional[Sequence] = None,
        terminate: Optional[Callable[[], object]] = None,
        wait_for_finalize: bool = True,
    ) -> Dict[str, _Step]:
        """Consolidate *src* into *dst* (the scale-down sequence): move all
        per-flow state, merge the shared state, re-route, wait for
        finalisation, then terminate the drained instance."""
        resolved = self._pattern(pattern) or FlowPattern.wildcard()
        steps: Dict[str, _Step] = {}
        steps["move"] = self.move(src, dst, resolved, spec=spec)
        previous: _Step = steps["move"]
        if merge_shared:
            steps["merge"] = self.merge(src, dst, spec=spec, after=previous)
            previous = steps["merge"]
        route_kwargs: Dict[str, object] = {"after": (previous, "done"), "pattern": resolved}
        if reroute is not None:
            route_kwargs["apply"] = lambda: reroute(resolved)
        elif sdn is not None and path is not None:
            route_kwargs["sdn"] = sdn
            route_kwargs["changes"] = [(resolved, list(path))]
        else:
            raise TransactionError("drain needs a reroute callback or sdn + path")
        steps["reroute"] = self.reroute(**route_kwargs)
        tail: _Step = steps["reroute"]
        if wait_for_finalize:
            operation_steps = [s for s in steps.values() if isinstance(s, _OperationStep)]
            steps["finalized"] = self.barrier([*operation_steps, tail], finalized=True)
            tail = steps["finalized"]
        if terminate is not None:
            steps["terminate"] = self.call(terminate, name=f"terminate({src})", after=tail)
        return steps

    def rebalance(
        self,
        replicas: Sequence[str],
        patterns_by_replica: Dict[str, object],
        update_routing: Callable[[str, FlowPattern], object],
        *,
        spec=None,
        min_imbalance: int = 2,
        after=None,
    ) -> _RebalanceStep:
        """Measure per-replica load and move state from the busiest to the
        idlest replica, re-routing as soon as the moved state is installed."""
        step = _RebalanceStep(
            self, replicas, patterns_by_replica, update_routing, spec=TransferSpec.parse(spec), min_imbalance=min_imbalance
        )
        return self._add(step, after)

    # -- committing ----------------------------------------------------------------------------

    def commit(self) -> TransactionHandle:
        """Freeze the operation graph and start executing it.

        The committing transaction is adopted by the controller's
        :class:`~repro.core.sharding.ShardCoordinator` (the shared authority
        for cross-shard state) and released when it resolves either way.

        Returns:
            The :class:`TransactionHandle` tracking per-step progress.

        Raises:
            TransactionError: when the transaction was already committed.
        """
        if self.status != "building":
            raise TransactionError("transaction already committed")
        self.status = "running"
        self.handle = TransactionHandle(self)
        if not self.steps:
            self.status = "committed"
            self.handle.done.succeed(self.handle)
            return self.handle
        coordinator = self.controller.coordinator
        coordinator.adopt_transaction(self)
        self.handle.done.add_done_callback(lambda _future: coordinator.release_transaction(self))
        for step in self.steps:
            self._wire(step)
        return self.handle

    def _wire(self, step: _Step) -> None:
        """Arm *step* to start once its dependency futures all resolve."""
        if not step.deps:
            self.sim.schedule(0.0, step.start)
            return
        futures = [dep.gate if mode == "done" else dep.installed for dep, mode in step.deps]

        def on_ready(future: Future) -> None:
            if self._aborting or future.exception is not None:
                return  # the failing dependency already triggered the abort
            step.start()

        all_of(self.sim, futures).add_done_callback(on_ready)

    def _notify(self, step: _Step, phase: str) -> None:
        """Per-step progress hook: drives completion/abort and the observer."""
        if phase == "failed":
            self._on_step_failed(step)
        elif phase == "done":
            self._on_step_done(step)
        if self.observer is not None:
            self.observer(f"txn step {step.record.step_id}/{len(self.steps)} {step.record.name}: {phase}")

    def _on_step_done(self, step: _Step) -> None:
        """Commit the transaction once the last step completes."""
        if self._aborting:
            return
        self._done_count += 1
        if self._done_count == len(self.steps):
            self.status = "committed"
            if not self.handle.done.done:
                self.handle.done.succeed(self.handle)

    def _on_step_failed(self, step: _Step) -> None:
        """First failure: cancel pending, abort running, roll back done steps."""
        if self._aborting:
            return
        self._aborting = True
        self.status = "aborted"
        cause = step._exception or Exception(step.record.error or "step failed")
        abort_exc = TransactionAbortedError(
            f"transaction aborted: step {step.record.name!r} failed: {cause}",
            step=step.record.name,
            cause=cause,
        )
        # 1. Pending steps never start.
        for other in self.steps:
            if other.record.status is StepStatus.PENDING:
                other.cancel()
        # 2. In-flight steps are aborted (operations fail, releasing any
        #    destination packet holds; partially installed routes roll back).
        #    The failing step itself is included: a composite step can fail on
        #    one half (e.g. a rebalance's reroute) while its other half (the
        #    move) is still running and must not finalise.
        step.abort_inflight(abort_exc)
        for other in self.steps:
            if other is not step and other.record.status is StepStatus.RUNNING:
                other.abort_inflight(abort_exc)
        # 3. Completed steps roll back in reverse declaration order.
        for other in reversed(self.steps):
            if other is not step and other.record.status in (StepStatus.DONE, StepStatus.ROLLED_BACK):
                other.rollback()
        if self.handle is not None and not self.handle.done.done:
            self.handle.done.fail(abort_exc)
