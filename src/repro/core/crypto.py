"""Sealing of exported state chunks.

The paper (section 4.1.2) lets middleboxes encrypt per-flow and shared state
chunks before exporting them so the controller and control applications see
only opaque blobs.  This module provides a small, dependency-free
authenticated encryption scheme built from the standard library:

* keystream: SHAKE-256 keyed by the middlebox's sealing key and the nonce;
* integrity: HMAC-SHA-256 over nonce plus ciphertext (encrypt-then-MAC).

The construction is deliberately simple — the point of the reproduction is the
*architecture* (state crosses the API sealed, and tampering is detected), not
cryptographic novelty — but it is a real cipher: without the key the plaintext
is not recoverable, and any bit flip is rejected.
"""

from __future__ import annotations

import hashlib
import hmac
import os
from dataclasses import dataclass

_MAC_LEN = 32
_NONCE_LEN = 16


class SealError(Exception):
    """Raised when a sealed blob fails authentication or is malformed."""


def _keystream(key: bytes, nonce: bytes, length: int) -> bytes:
    """Generate *length* keystream bytes from SHAKE-256(key || nonce).

    A single extendable-output call replaces the earlier SHA-256 counter-mode
    loop: one hash invocation per sealed chunk instead of one per 32 bytes,
    which matters when a million-flow transfer seals a million chunks.
    """
    return hashlib.shake_256(key + nonce).digest(length)


def _xor(data: bytes, keystream: bytes) -> bytes:
    """XOR *data* with *keystream* (equal lengths) in one big-int operation.

    ``int.from_bytes``/``to_bytes`` run in C, so this is orders of magnitude
    faster than a per-byte Python loop on the multi-hundred-byte payloads a
    state chunk carries.
    """
    if not data:
        return b""
    return (int.from_bytes(data, "big") ^ int.from_bytes(keystream, "big")).to_bytes(
        len(data), "big"
    )


@dataclass(frozen=True)
class SealingKey:
    """A middlebox's sealing key: an encryption key and a MAC key."""

    enc_key: bytes
    mac_key: bytes

    @classmethod
    def generate(cls) -> "SealingKey":
        """Create a fresh random key pair."""
        return cls(os.urandom(32), os.urandom(32))

    @classmethod
    def derive(cls, secret: str) -> "SealingKey":
        """Derive a deterministic key pair from a textual secret.

        Middlebox instances of the same type share a secret so that state
        sealed by one instance can be unsealed by its peers (required for
        move/clone/merge between instances).
        """
        base = hashlib.sha256(secret.encode("utf-8")).digest()
        enc_key = hashlib.sha256(base + b"enc").digest()
        mac_key = hashlib.sha256(base + b"mac").digest()
        return cls(enc_key, mac_key)


def seal(key: SealingKey, plaintext: bytes, *, nonce: bytes | None = None) -> bytes:
    """Encrypt and authenticate *plaintext*, returning a self-contained blob."""
    if nonce is None:
        nonce = os.urandom(_NONCE_LEN)
    if len(nonce) != _NONCE_LEN:
        raise ValueError(f"nonce must be {_NONCE_LEN} bytes")
    ciphertext = _xor(plaintext, _keystream(key.enc_key, nonce, len(plaintext)))
    tag = hmac.new(key.mac_key, nonce + ciphertext, hashlib.sha256).digest()
    return nonce + ciphertext + tag


def unseal(key: SealingKey, blob: bytes) -> bytes:
    """Authenticate and decrypt a blob produced by :func:`seal`."""
    if len(blob) < _NONCE_LEN + _MAC_LEN:
        raise SealError("sealed blob is too short")
    nonce = blob[:_NONCE_LEN]
    tag = blob[-_MAC_LEN:]
    ciphertext = blob[_NONCE_LEN:-_MAC_LEN]
    expected = hmac.new(key.mac_key, nonce + ciphertext, hashlib.sha256).digest()
    if not hmac.compare_digest(tag, expected):
        raise SealError("sealed blob failed authentication")
    return _xor(ciphertext, _keystream(key.enc_key, nonce, len(ciphertext)))


def sealed_size(plaintext_length: int) -> int:
    """Size in bytes of the sealed form of a plaintext of the given length."""
    return plaintext_length + _NONCE_LEN + _MAC_LEN
