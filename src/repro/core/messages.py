"""Southbound wire protocol.

The paper's prototype exchanges JSON messages between the MB controller and
middleboxes over UNIX sockets to invoke operations, carry state, raise events,
and acknowledge puts.  This module defines that message schema and its JSON
encoding.  The controller/MB channel (:mod:`repro.core.channel`) models the
transfer time of each encoded message, so message sizes directly influence the
controller-performance results (Figures 10a/10b).
"""

from __future__ import annotations

import base64
import itertools
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Sequence

from .errors import ProtocolError
from .flowspace import FlowKey, FlowPattern
from .state import SharedChunk, StateChunk, StateRole

_xids = itertools.count(1)


class MessageType:
    """Message type tags used on the wire."""

    # controller -> middlebox requests
    #: Framed batch of several southbound requests delivered as one channel
    #: message (the batched-dispatch optimization); each inner message keeps
    #: its own xid and is ACKed/answered individually.
    BATCH = "batch"
    GET_CONFIG = "get_config"
    SET_CONFIG = "set_config"
    DEL_CONFIG = "del_config"
    GET_PERFLOW = "get_perflow"
    #: Pre-copy delta round: export only the flows dirtied since the last
    #: drain; with ``final`` set, additionally freeze (mark-transfer) the
    #: pattern and stop dirty tracking (the stop-and-copy round).
    GET_PERFLOW_DELTA = "get_perflow_delta"
    PUT_PERFLOW = "put_perflow"
    PUT_PERFLOW_BATCH = "put_perflow_batch"
    DEL_PERFLOW = "del_perflow"
    #: Install order-preserving packet holds for a list of flows without
    #: resending their chunks (the pre-copy stop-and-copy covers flows whose
    #: state is already current at the destination).
    TRANSFER_HOLD = "transfer_hold"
    TRANSFER_RELEASE = "transfer_release"
    GET_SHARED = "get_shared"
    PUT_SHARED = "put_shared"
    GET_STATS = "get_stats"
    ENABLE_EVENTS = "enable_events"
    DISABLE_EVENTS = "disable_events"
    TRANSFER_END = "transfer_end"
    REPROCESS_PACKET = "reprocess_packet"

    # middlebox -> controller responses
    CONFIG_VALUE = "config_value"
    STATE_CHUNK = "state_chunk"
    SHARED_STATE = "shared_state"
    GET_COMPLETE = "get_complete"
    STATS_REPLY = "stats_reply"
    ACK = "ack"
    ERROR = "error"

    # middlebox -> controller notifications
    EVENT = "event"
    #: Periodic liveness beacon (middlebox -> controller); carries no body.
    #: The controller refreshes the sender's last-seen clock and drops it.
    HEARTBEAT = "heartbeat"

    # channel-level control (never dispatched to the controller or agent)
    #: Cumulative acknowledgement of the reliable channel layer: ``body.cum``
    #: is the highest channel sequence number (``cseq``) delivered in order.
    CHAN_ACK = "chan_ack"

    # controller <-> controller federation (inter-domain channels only; these
    # never appear on a middlebox control channel, so the single-domain wire
    # stays byte-identical to the seed protocol)
    #: Anti-entropy gossip digest: membership, instance liveness, and the
    #: versioned flow-ownership directory of the sending domain.
    FED_GOSSIP = "fed_gossip"
    #: Ask a peer domain to lend an instance as a cross-domain move destination.
    FED_MOVE_REQUEST = "fed_move_request"
    #: Grant (or refuse) a pending FED_MOVE_REQUEST.
    FED_MOVE_GRANT = "fed_move_grant"
    #: The borrowing domain finished (or aborted) the move; the instance
    #: returns to its home domain.
    FED_MOVE_DONE = "fed_move_done"


#: Request types whose ACK the controller waits for.
ACKED_REQUESTS = frozenset(
    {
        MessageType.SET_CONFIG,
        MessageType.DEL_CONFIG,
        MessageType.PUT_PERFLOW,
        MessageType.PUT_PERFLOW_BATCH,
        MessageType.DEL_PERFLOW,
        MessageType.TRANSFER_HOLD,
        MessageType.TRANSFER_RELEASE,
        MessageType.PUT_SHARED,
        MessageType.REPROCESS_PACKET,
        MessageType.TRANSFER_END,
        MessageType.ENABLE_EVENTS,
        MessageType.DISABLE_EVENTS,
    }
)


@dataclass
class Message:
    """One southbound protocol message."""

    type: str
    xid: int = field(default_factory=lambda: next(_xids))
    #: xid of the request this message responds to (for responses/acks).
    reply_to: Optional[int] = None
    mb: str = ""
    body: Dict[str, Any] = field(default_factory=dict)
    #: Channel sequence number stamped by the reliable delivery layer
    #: (:class:`~repro.core.channel.ControlChannel` with ``reliable=True``).
    #: Omitted from the wire when None, so the seed protocol is byte-identical
    #: whenever reliability is off.
    cseq: Optional[int] = None

    def as_wire(self) -> Dict[str, Any]:
        """Return the JSON-serialisable wire dict (used directly for batch frames)."""
        wire: Dict[str, Any] = {"type": self.type, "xid": self.xid, "mb": self.mb, "body": self.body}
        if self.reply_to is not None:
            wire["reply_to"] = self.reply_to
        if self.cseq is not None:
            wire["cseq"] = self.cseq
        return wire

    @classmethod
    def from_wire(cls, wire: Dict[str, Any]) -> "Message":
        """Rebuild a message from its wire dict; raises ProtocolError when malformed."""
        for required in ("type", "xid"):
            if required not in wire:
                raise ProtocolError(f"message missing field {required!r}")
        return cls(
            type=wire["type"],
            xid=wire["xid"],
            reply_to=wire.get("reply_to"),
            mb=wire.get("mb", ""),
            body=wire.get("body", {}),
            cseq=wire.get("cseq"),
        )

    def encode(self) -> bytes:
        """Encode to the JSON wire form."""
        try:
            return json.dumps(self.as_wire(), sort_keys=True, separators=(",", ":")).encode("utf-8")
        except (TypeError, ValueError) as exc:
            raise ProtocolError(f"cannot encode message {self.type}: {exc}") from exc

    @classmethod
    def decode(cls, data: bytes) -> "Message":
        """Decode a message from its JSON wire form."""
        try:
            wire = json.loads(data.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise ProtocolError(f"malformed message: {exc}") from exc
        return cls.from_wire(wire)

    @property
    def wire_size(self) -> int:
        """Size of the encoded message in bytes."""
        return len(self.encode())


# -- body encoding helpers -------------------------------------------------------


def encode_pattern(pattern: FlowPattern) -> dict:
    return pattern.as_dict()


def decode_pattern(body: dict) -> FlowPattern:
    return FlowPattern.parse(body)


def encode_chunk(chunk: StateChunk) -> dict:
    """Encode a per-flow chunk for transport inside a STATE_CHUNK message."""
    return {
        "key": chunk.key.as_dict(),
        "role": chunk.role.value,
        "blob": base64.b64encode(chunk.blob).decode("ascii"),
        "metadata": chunk.metadata,
    }


def decode_chunk(body: dict) -> StateChunk:
    try:
        return StateChunk(
            key=FlowKey.from_dict(body["key"]),
            role=StateRole(body["role"]),
            blob=base64.b64decode(body["blob"]),
            metadata=dict(body.get("metadata", {})),
        )
    except (KeyError, ValueError) as exc:
        raise ProtocolError(f"malformed state chunk: {exc}") from exc


def encode_shared_chunk(chunk: SharedChunk) -> dict:
    """Encode a shared-state chunk for transport inside a SHARED_STATE message."""
    return {
        "role": chunk.role.value,
        "blob": base64.b64encode(chunk.blob).decode("ascii"),
        "metadata": chunk.metadata,
    }


def decode_shared_chunk(body: dict) -> SharedChunk:
    try:
        return SharedChunk(
            role=StateRole(body["role"]),
            blob=base64.b64decode(body["blob"]),
            metadata=dict(body.get("metadata", {})),
        )
    except (KeyError, ValueError) as exc:
        raise ProtocolError(f"malformed shared chunk: {exc}") from exc


# -- request constructors -----------------------------------------------------------


def get_config(mb: str, key: str) -> Message:
    return Message(MessageType.GET_CONFIG, mb=mb, body={"key": key})


def set_config(mb: str, key: str, values: list) -> Message:
    return Message(MessageType.SET_CONFIG, mb=mb, body={"key": key, "values": values})


def del_config(mb: str, key: str) -> Message:
    return Message(MessageType.DEL_CONFIG, mb=mb, body={"key": key})


def get_perflow(
    mb: str,
    role: StateRole,
    pattern: FlowPattern,
    *,
    transfer: bool = False,
    track_dirty: bool = False,
    compress: bool = False,
) -> Message:
    """Request per-flow state; ``transfer=True`` marks exported chunks for re-process events.

    ``track_dirty=True`` is the pre-copy bulk round: instead of marking the
    flows (freezing them behind event buffering), the source arms dirty-key
    tracking at the snapshot instant and keeps processing packets normally.
    ``compress=True`` asks the source to seal each exported chunk with its
    payload zlib-compressed (the :class:`~repro.core.transfer.TransferSpec`
    negotiation).  Both fields are omitted from the wire when False so
    plain snapshot transfers stay byte-identical to the seed protocol.
    """
    body: Dict[str, Any] = {"role": role.value, "pattern": encode_pattern(pattern), "transfer": transfer}
    if track_dirty:
        body["track_dirty"] = True
    if compress:
        body["compress"] = True
    return Message(MessageType.GET_PERFLOW, mb=mb, body=body)


def get_perflow_delta(
    mb: str,
    role: StateRole,
    pattern: FlowPattern,
    *,
    round: Sequence[int],
    final: bool = False,
    compress: bool = False,
) -> Message:
    """Request the chunks dirtied since the last drain (one pre-copy round).

    ``round`` is the (operation id, round index) pair identifying the round on
    the wire — observability for traces; the source does not interpret it.
    The authoritative round tags are stamped by the *controller* onto the
    round's put messages, where the destination uses them to discard installs
    a newer round superseded.  With ``final=True`` this is the stop-and-copy
    round: the source additionally marks every pattern-matching flow for
    re-process events and stops dirty tracking, so updates from that instant
    on surface as events.  The reply is a chunk stream followed by
    GET_COMPLETE carrying the count of pattern-matching flows re-dirtied while
    the round was being exported (the controller's signal for whether another
    round is worthwhile).  ``compress=True`` asks the source to seal the
    round's chunks zlib-compressed, as in :func:`get_perflow`.
    """
    body: Dict[str, Any] = {
        "role": role.value,
        "pattern": encode_pattern(pattern),
        "round": list(round),
    }
    if final:
        body["final"] = True
    if compress:
        body["compress"] = True
    return Message(MessageType.GET_PERFLOW_DELTA, mb=mb, body=body)


def put_perflow(
    mb: str,
    chunk: StateChunk,
    *,
    hold: bool = False,
    seq: Optional[int] = None,
    round: Optional[Sequence[int]] = None,
) -> Message:
    """Install one per-flow chunk; ``hold=True`` (order-preserving transfers)
    makes the destination queue fresh packets for the flow until its
    TRANSFER_RELEASE arrives.  ``seq`` is the controller's transfer sequence
    token, stamped for wire-level observability; the authoritative
    replay-vs-install ordering uses the controller's ACK-time bookkeeping
    (see :meth:`MBController.forward_event`).  ``round`` is the pre-copy round
    tag — (operation id, round index) — the destination uses to discard puts
    superseded by a newer round; omitted for snapshot transfers."""
    body: Dict[str, Any] = {"chunk": encode_chunk(chunk)}
    if hold:
        body["hold"] = True
    if seq is not None:
        body["seq"] = seq
    if round is not None:
        body["round"] = list(round)
    return Message(MessageType.PUT_PERFLOW, mb=mb, body=body)


def put_perflow_batch(
    mb: str,
    chunks: list,
    *,
    hold: bool = False,
    seq: Optional[int] = None,
    round: Optional[Sequence[int]] = None,
    compressed: bool = False,
) -> Message:
    """Install several per-flow chunks with a single message and a single ACK.

    Batching amortises the controller's per-message handling cost across
    ``len(chunks)`` chunks — the bulk-transfer optimization of the
    :class:`~repro.core.transfer.TransferSpec` pipeline.  ``seq`` carries the
    controller's transfer sequence token (wire-level observability; the
    controller's ACK-time bookkeeping is authoritative for ordering); ``round``
    is the pre-copy round tag applied to every chunk in the batch.
    ``compressed`` marks the batch as carrying zlib-compressed chunk payloads
    (observability only — each payload's marker byte is self-describing);
    omitted from the wire when False so uncompressed transfers stay
    byte-identical to the seed framing.
    """
    body: Dict[str, Any] = {"chunks": [encode_chunk(chunk) for chunk in chunks]}
    if hold:
        body["hold"] = True
    if seq is not None:
        body["seq"] = seq
    if round is not None:
        body["round"] = list(round)
    if compressed:
        body["compressed"] = True
    return Message(MessageType.PUT_PERFLOW_BATCH, mb=mb, body=body)


def transfer_hold(mb: str, keys: list) -> Message:
    """Install per-flow packet holds for *keys* at a destination middlebox.

    Used by order-preserving pre-copy transfers at the stop-and-copy freeze:
    flows that are clean at the freeze get no final-round put (which is how
    snapshot transfers install holds), yet their fresh packets must still
    queue behind the ordered replay of post-freeze events.  Every held flow
    is later lifted by its ``TRANSFER_RELEASE``.
    """
    return Message(
        MessageType.TRANSFER_HOLD,
        mb=mb,
        body={"keys": [key.as_dict() for key in keys]},
    )


def transfer_release(mb: str, keys: list) -> Message:
    """Release per-flow transfer involvement for *keys* at a middlebox.

    At a move destination this lifts the order-preserving hold (queued packets
    are processed in arrival order); at a source it clears the per-flow
    transfer marker so the flow stops raising re-process events
    (the early-release optimization).  Unlike TRANSFER_END this is per-flow,
    not whole-middlebox.
    """
    return Message(
        MessageType.TRANSFER_RELEASE,
        mb=mb,
        body={"keys": [key.as_dict() for key in keys]},
    )


def del_perflow(mb: str, role: StateRole, pattern: FlowPattern) -> Message:
    return Message(
        MessageType.DEL_PERFLOW,
        mb=mb,
        body={"role": role.value, "pattern": encode_pattern(pattern)},
    )


def get_shared(mb: str, role: StateRole, *, transfer: bool = False) -> Message:
    return Message(MessageType.GET_SHARED, mb=mb, body={"role": role.value, "transfer": transfer})


def put_shared(mb: str, chunk: SharedChunk) -> Message:
    return Message(MessageType.PUT_SHARED, mb=mb, body={"chunk": encode_shared_chunk(chunk)})


def get_stats(mb: str, pattern: FlowPattern) -> Message:
    return Message(MessageType.GET_STATS, mb=mb, body={"pattern": encode_pattern(pattern)})


def enable_events(mb: str, code: str, pattern: Optional[FlowPattern] = None, until: Optional[float] = None) -> Message:
    body: Dict[str, Any] = {"code": code}
    if pattern is not None:
        body["pattern"] = encode_pattern(pattern)
    if until is not None:
        body["until"] = until
    return Message(MessageType.ENABLE_EVENTS, mb=mb, body=body)


def disable_events(mb: str, code: str, pattern: Optional[FlowPattern] = None) -> Message:
    body: Dict[str, Any] = {"code": code}
    if pattern is not None:
        body["pattern"] = encode_pattern(pattern)
    return Message(MessageType.DISABLE_EVENTS, mb=mb, body=body)


def transfer_end(mb: str, *, dirty_only: bool = False, shared_only: bool = False) -> Message:
    """Tell a middlebox an in-progress transfer has ended (scoped resets).

    The unscoped form is the app-facing whole-middlebox reset (clear every
    per-flow transfer marker and the shared-transfer flag).  Two scoped
    variants keep concurrent operations' state intact: ``shared_only=True``
    is what a finalizing clone/merge sends — those operations only ever arm
    the shared-transfer flag, so they must not clear per-flow markers owned
    by a concurrent move; ``dirty_only=True`` is the cleanup a failed
    pre-copy move owes its source — stop dirty tracking, touch nothing else.
    The flags are omitted from the wire when False.
    """
    body: Dict[str, Any] = {}
    if dirty_only:
        body["dirty_only"] = True
    if shared_only:
        body["shared_only"] = True
    return Message(MessageType.TRANSFER_END, mb=mb, body=body)


def chan_ack(channel_name: str, cumulative: int) -> Message:
    """Channel-layer cumulative ack: every cseq up to *cumulative* was delivered.

    Consumed by the :class:`~repro.core.channel.ControlChannel` itself — the
    controller and southbound agent never see these frames.
    """
    return Message(MessageType.CHAN_ACK, mb=channel_name, body={"cum": cumulative})


def heartbeat(mb: str) -> Message:
    """Liveness beacon a middlebox agent sends on its heartbeat interval."""
    return Message(MessageType.HEARTBEAT, mb=mb)


# -- batched southbound dispatch ------------------------------------------------------

#: Request types the controller's batched dispatcher may coalesce into one
#: BATCH frame per destination channel per tick.  These are the hot-path
#: messages of a state transfer (state installs, replays, releases, deletes);
#: control-plane requests with streamed replies (gets, stats) stay unframed.
BATCHABLE_REQUESTS = frozenset(
    {
        MessageType.PUT_PERFLOW,
        MessageType.PUT_PERFLOW_BATCH,
        MessageType.REPROCESS_PACKET,
        MessageType.TRANSFER_RELEASE,
        MessageType.DEL_PERFLOW,
    }
)


def batch_message(mb: str, frames: list) -> Message:
    """Frame several southbound requests as one BATCH channel message.

    The frame pays the channel's per-message latency once for ``len(frames)``
    requests; each inner message keeps its own xid, so replies and ACKs route
    exactly as they would have unbatched.
    """
    return Message(MessageType.BATCH, mb=mb, body={"frames": [frame.as_wire() for frame in frames]})


def decode_batch(message: Message) -> list:
    """Unpack a BATCH frame into its inner messages, in dispatch order."""
    if message.type != MessageType.BATCH:
        raise ProtocolError(f"not a batch message: {message.type!r}")
    return [Message.from_wire(wire) for wire in message.body.get("frames", [])]


# -- packet and event codecs ----------------------------------------------------------

from ..net.packet import Packet  # noqa: E402  (placed here to keep the dependency local)
from .events import Event  # noqa: E402


def encode_packet(packet: Packet) -> dict:
    """Encode a full packet (payload, flags, and middlebox annotations) for transport."""
    from .chunks import encode_value

    wire = {
        "nw_src": packet.nw_src,
        "nw_dst": packet.nw_dst,
        "nw_proto": packet.nw_proto,
        "tp_src": packet.tp_src,
        "tp_dst": packet.tp_dst,
        "payload": base64.b64encode(packet.payload).decode("ascii"),
        "flags": sorted(packet.flags),
        "seq": packet.seq,
        "created_at": packet.created_at,
    }
    if packet.annotations:
        wire["annotations"] = encode_value(dict(packet.annotations))
    if packet.encoded_size is not None:
        wire["encoded_size"] = packet.encoded_size
    return wire


def decode_packet(body: dict) -> Packet:
    from .chunks import decode_value

    try:
        packet = Packet(
            nw_src=body["nw_src"],
            nw_dst=body["nw_dst"],
            nw_proto=int(body["nw_proto"]),
            tp_src=int(body["tp_src"]),
            tp_dst=int(body["tp_dst"]),
            payload=base64.b64decode(body.get("payload", "")),
            flags=frozenset(body.get("flags", [])),
            seq=int(body.get("seq", 0)),
            created_at=float(body.get("created_at", 0.0)),
        )
    except (KeyError, ValueError) as exc:
        raise ProtocolError(f"malformed packet encoding: {exc}") from exc
    if "annotations" in body:
        packet.annotations = decode_value(body["annotations"])
    if "encoded_size" in body:
        packet.encoded_size = int(body["encoded_size"])
    return packet


def event_message(event: Event) -> Message:
    """Build the EVENT message a middlebox sends to the controller."""
    body: Dict[str, Any] = {
        "code": event.code,
        "event_id": event.event_id,
        "raised_at": event.raised_at,
        "shared": event.shared,
        "values": dict(event.values),
    }
    if event.key is not None:
        body["key"] = event.key.as_dict()
    if event.packet is not None:
        body["packet"] = encode_packet(event.packet)
    return Message(MessageType.EVENT, mb=event.mb_name, body=body)


def decode_event(message: Message) -> Event:
    """Reconstruct an :class:`Event` from an EVENT message."""
    body = message.body
    key = FlowKey.from_dict(body["key"]) if "key" in body else None
    packet = decode_packet(body["packet"]) if "packet" in body else None
    return Event(
        mb_name=message.mb,
        code=body.get("code", ""),
        key=key,
        packet=packet,
        values=dict(body.get("values", {})),
        raised_at=float(body.get("raised_at", 0.0)),
        shared=bool(body.get("shared", False)),
    )


def reprocess_message(
    mb: str, event: Event, *, shared: Optional[bool] = None, seq: Optional[int] = None
) -> Message:
    """Build the message the controller sends to the destination MB to replay a packet.

    ``shared`` overrides the event's own shared flag: a *re*-replay issued
    because a later state chunk overwrote the flow's per-flow state must not
    re-apply the shared-state component a previous replay already applied
    (shared puts merge, so that component survived).  ``seq`` is the
    controller's transfer sequence token for this replay (wire-level
    observability; the controller re-stamps the token at replay-ACK time for
    the authoritative ordering against state installs).
    """
    body: Dict[str, Any] = {"shared": event.shared if shared is None else shared}
    if event.key is not None:
        body["key"] = event.key.as_dict()
    if event.packet is not None:
        body["packet"] = encode_packet(event.packet)
    if seq is not None:
        body["seq"] = seq
    return Message(MessageType.REPROCESS_PACKET, mb=mb, body=body)


# -- controller <-> controller federation ---------------------------------------------


def fed_gossip(
    peer: str,
    domain: str,
    sent_at: float,
    *,
    membership: Sequence[Dict[str, Any]],
    liveness: Sequence[Dict[str, Any]],
    ownership: Sequence[Dict[str, Any]],
) -> Message:
    """Build one anti-entropy gossip digest for an inter-domain channel.

    ``sent_at`` is the sender's (shared simulated) clock at transmission time;
    the receiver turns it into a one-way delay sample that feeds the smoothed
    WAN latency/jitter estimate used for cross-domain precopy pacing.  The
    three digest sections are the wire form of the sender's versioned maps
    (:class:`repro.federation.gossip.VersionedMap`).
    """
    return Message(
        MessageType.FED_GOSSIP,
        mb=peer,
        body={
            "domain": domain,
            "sent_at": sent_at,
            "membership": list(membership),
            "liveness": list(liveness),
            "ownership": list(ownership),
        },
    )


def fed_move_request(peer: str, domain: str, instance: str) -> Message:
    """Ask *peer* to lend *instance* as the destination of a cross-domain move."""
    return Message(MessageType.FED_MOVE_REQUEST, mb=peer, body={"domain": domain, "instance": instance})


def fed_move_grant(request: Message, peer: str, domain: str, *, granted: bool, reason: str = "") -> Message:
    """Answer a FED_MOVE_REQUEST; ``reason`` is omitted from the wire when empty."""
    body: Dict[str, Any] = {"domain": domain, "instance": request.body.get("instance", ""), "granted": granted}
    if reason:
        body["reason"] = reason
    return Message(MessageType.FED_MOVE_GRANT, reply_to=request.xid, mb=peer, body=body)


def fed_move_done(peer: str, domain: str, instance: str, *, ok: bool) -> Message:
    """Return a lent instance to its home domain after the move finished/aborted."""
    return Message(MessageType.FED_MOVE_DONE, mb=peer, body={"domain": domain, "instance": instance, "ok": ok})
