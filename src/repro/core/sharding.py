"""Sharded controller runtime: flow-space partitioning and the shard coordinator.

The seed controller serialises *every* received message — chunk streams, put
ACKs, re-process events — through one simulated CPU, which is exactly the
bottleneck the paper profiles in section 8.3 and the reason average operation
time grows linearly with the number of simultaneous operations (Figure 10b).
This module partitions that event loop:

* :class:`ShardRing` — a consistent-hash ring that owns the flow space.  A
  concrete (canonical, bidirectional) :class:`~repro.core.flowspace.FlowKey`
  always maps to exactly one shard; a
  :class:`~repro.core.flowspace.FlowPattern` maps to the set of shards that
  could own matching flows — one shard for a fully specified five-tuple,
  *every* shard for wildcard/prefix patterns (hash partitioning spreads the
  matching flows across the whole ring, so pattern-scoped work is broadcast
  to all matching shards).
* :class:`ControllerShard` — one controller event/ACK loop: its own simulated
  CPU (the per-message handling cost is charged here, not globally) and its
  own interest registry mapping a source middlebox to the operations that
  want its re-process events.
* :class:`ShardCoordinator` — the shared brain above the shards.  It owns the
  ring, assigns every stateful operation a *home shard* (the shard whose loop
  sends the operation's southbound requests and absorbs their replies),
  routes incoming messages to shards, tracks active transactions, and
  provides the cross-shard **barrier** primitive transactions use to order a
  merge behind moves running on different shards.

With ``num_shards=1`` (the default) the runtime collapses to the seed's
single-CPU behaviour bit-for-bit: one shard, one CPU serialisation point, the
same callback schedule.
"""

from __future__ import annotations

import bisect
import hashlib
import itertools
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

from ..net.simulator import Future, Simulator
from .flowspace import FlowKey, FlowPattern, int_to_ip

if TYPE_CHECKING:  # pragma: no cover
    from .operations import _StatefulOperation
    from .transaction import Transaction

#: Virtual nodes per shard on the consistent-hash ring.  Enough replicas keep
#: the per-shard share of the flow space within a few percent of uniform.
DEFAULT_RING_REPLICAS = 64


def stable_hash(token: str) -> int:
    """Hash *token* to a 64-bit ring position, stable across processes.

    Python's built-in ``hash`` is salted per process; the ring must place the
    same flow on the same shard in every run, so positions come from a keyed
    blake2b digest instead.
    """
    digest = hashlib.blake2b(token.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class ShardRing:
    """Consistent-hash partitioning of the flow space across N shards.

    Each shard owns :data:`DEFAULT_RING_REPLICAS` points on a 64-bit ring; a
    flow key is served by the shard owning the first point at or after the
    key's hash.  Consistent hashing (rather than ``hash % N``) keeps most of
    the flow space stable when a deployment re-sizes the shard count.
    """

    def __init__(self, num_shards: int, *, replicas: int = DEFAULT_RING_REPLICAS) -> None:
        """Build the ring.

        Args:
            num_shards: number of partitions; must be >= 1.
            replicas: virtual nodes per shard (higher = smoother balance).

        Raises:
            ValueError: when ``num_shards`` or ``replicas`` is < 1.
        """
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self.num_shards = num_shards
        self.replicas = replicas
        points: List[Tuple[int, int]] = []
        for shard in range(num_shards):
            for replica in range(replicas):
                points.append((stable_hash(f"shard-{shard}:{replica}"), shard))
        points.sort()
        self._points = [point for point, _ in points]
        self._owners = [owner for _, owner in points]

    def shard_for_token(self, token: str) -> int:
        """Map an arbitrary string *token* to its owning shard id."""
        if self.num_shards == 1:
            return 0
        index = bisect.bisect_right(self._points, stable_hash(token))
        if index == len(self._points):
            index = 0
        return self._owners[index]

    @staticmethod
    def canonical_token(key: FlowKey) -> str:
        """The ring token of a flow: its canonical (bidirectional) five-tuple."""
        k = key.bidirectional()
        return f"{k.nw_proto}|{k.nw_src}|{k.nw_dst}|{k.tp_src}|{k.tp_dst}"

    def shard_for_key(self, key: FlowKey) -> int:
        """Owning shard of a concrete flow (both packet directions agree)."""
        return self.shard_for_token(self.canonical_token(key))

    @staticmethod
    def exact_key_of(pattern: Optional[FlowPattern]) -> Optional[FlowKey]:
        """The single concrete flow a pattern pins, or None when it spans many.

        A pattern is exact when all five header fields are constrained and
        both address fields are host (/32) values rather than prefixes.  The
        addresses are normalised through the parsed prefix — a host written
        as ``"10.0.0.1/32"`` must produce the same ring token as the bare
        ``"10.0.0.1"`` carried by the flow's keys, or the operation would be
        homed/watched on a different shard than its events.
        """
        if pattern is None or pattern.specificity < 5:
            return None
        if pattern._src_prefix.length != 32 or pattern._dst_prefix.length != 32:
            return None
        return FlowKey(
            pattern.nw_proto,
            int_to_ip(pattern._src_prefix.network),
            int_to_ip(pattern._dst_prefix.network),
            pattern.tp_src,
            pattern.tp_dst,
        )

    def shards_for_pattern(self, pattern: Optional[FlowPattern]) -> Tuple[int, ...]:
        """Shard ids that could own flows matching *pattern*.

        A fully specified five-tuple lives on exactly one shard; any wildcard
        or prefix pattern is hash-spread over the whole ring, so pattern-
        scoped work (event interest, gets, deletes) is broadcast to every
        shard.
        """
        exact = self.exact_key_of(pattern)
        if exact is not None:
            return (self.shard_for_key(exact),)
        return tuple(range(self.num_shards))


@dataclass
class ShardStats:
    """Counters kept by one controller shard's event loop."""

    #: Messages (replies, ACKs, events) whose handling this shard's CPU ran.
    messages: int = 0
    #: Re-process/introspection events among those messages.
    events: int = 0
    #: Total simulated CPU time this shard spent handling messages.
    busy_time: float = 0.0
    #: Stateful operations whose home loop this shard is/was.
    operations_homed: int = 0


class ControllerShard:
    """One partition of the controller: a CPU, its queue, and event interest.

    Every message routed to a shard is charged to *this* shard's simulated
    CPU; two shards never contend with each other, which is what converts the
    seed's O(total messages) serial bottleneck into O(messages per shard).
    """

    def __init__(self, sim: Simulator, shard_id: int) -> None:
        self.sim = sim
        self.shard_id = shard_id
        self.stats = ShardStats()
        #: This shard's CPU: a runtime lane serialising all message handling.
        #: On the simulator it is tick arithmetic; on the realtime runtime it
        #: is this shard's own asyncio task — shards genuinely run in parallel.
        self._cpu = sim.lane(f"shard-{shard_id}")
        #: Source middlebox name -> operations registered for its events.
        self._interest: Dict[str, List["_StatefulOperation"]] = {}

    # -- CPU model ---------------------------------------------------------------------

    def on_cpu(self, cost: float, work: Callable[[], None]) -> None:
        """Run *work* after *cost* seconds of this shard's (serialised) CPU time."""
        self.stats.messages += 1
        self.stats.busy_time += cost
        self._cpu.submit(cost, work)

    @property
    def idle_at(self) -> float:
        """Earliest runtime time at which this shard's CPU queue is empty."""
        return self._cpu.idle_at

    # -- event interest ----------------------------------------------------------------

    def watch(self, src: str, operation: "_StatefulOperation") -> None:
        """Register *operation* for re-process events raised by *src* on this shard."""
        self._interest.setdefault(src, []).append(operation)

    def unwatch(self, src: str, operation: "_StatefulOperation") -> None:
        """Drop a previously registered interest (no-op when absent)."""
        operations = self._interest.get(src)
        if operations and operation in operations:
            operations.remove(operation)
            if not operations:
                del self._interest[src]

    def operations_for(self, src: str) -> List["_StatefulOperation"]:
        """Operations interested in events from *src*, in registration order."""
        return list(self._interest.get(src, []))


class ShardCoordinator:
    """Shared coordinator above the controller shards.

    Owns the consistent-hash ring, places operations on home shards, tracks
    the transactions currently executing against the sharded runtime, and
    provides the cross-shard barrier transactions use to order steps that
    span shards (e.g. a merge behind moves homed on different shards).
    """

    def __init__(self, sim: Simulator, num_shards: int = 1, *, replicas: int = DEFAULT_RING_REPLICAS) -> None:
        """Create the coordinator and its shards.

        Args:
            sim: the simulation kernel the shards schedule on.
            num_shards: number of controller shards (1 = the seed behaviour).
            replicas: virtual ring nodes per shard.

        Raises:
            ValueError: when ``num_shards`` or ``replicas`` is < 1.
        """
        self.sim = sim
        self.ring = ShardRing(num_shards, replicas=replicas)
        self.shards = [ControllerShard(sim, shard_id) for shard_id in range(num_shards)]
        #: Round-robin cursor spreading multi-shard operations across homes.
        self._placement = itertools.count()
        #: Transactions currently executing (owned here so cross-shard state
        #: has a single authority; released when the transaction resolves).
        self.active_transactions: List["Transaction"] = []
        self.barriers_issued = 0

    @property
    def num_shards(self) -> int:
        """Number of controller shards."""
        return len(self.shards)

    # -- placement / routing ------------------------------------------------------------

    def shard_for_key(self, key: FlowKey) -> ControllerShard:
        """The shard owning a concrete flow."""
        return self.shards[self.ring.shard_for_key(key)]

    def shard_for_name(self, name: str) -> ControllerShard:
        """Deterministic shard for non-flow-scoped traffic of one middlebox."""
        return self.shards[self.ring.shard_for_token(f"mb:{name}")]

    def shards_for_pattern(self, pattern: Optional[FlowPattern]) -> List[ControllerShard]:
        """Every shard that could own flows matching *pattern* (broadcast set)."""
        return [self.shards[shard_id] for shard_id in self.ring.shards_for_pattern(pattern)]

    def home_shard(self, pattern: Optional[FlowPattern]) -> ControllerShard:
        """Pick the home shard for a new stateful operation.

        An exact-pattern operation is homed on the shard owning its flow
        (affinity: the flow's events and the operation's ACK loop share a
        CPU).  A multi-shard pattern has no natural owner, so homes are dealt
        round-robin to balance concurrent operations across the shards.
        """
        candidates = self.shards_for_pattern(pattern)
        if len(candidates) == 1:
            shard = candidates[0]
        else:
            shard = candidates[next(self._placement) % len(candidates)]
        shard.stats.operations_homed += 1
        return shard

    # -- operation interest -------------------------------------------------------------

    def register_operation(self, operation: "_StatefulOperation") -> None:
        """Broadcast *operation*'s event interest to every matching shard."""
        for shard in operation.shards:
            shard.watch(operation.src, operation)

    def release_operation(self, operation: "_StatefulOperation") -> None:
        """Remove a finished operation's interest from its shards."""
        for shard in operation.shards:
            shard.unwatch(operation.src, operation)

    # -- transactions -------------------------------------------------------------------

    def adopt_transaction(self, transaction: "Transaction") -> None:
        """Take ownership of a committing transaction (released on resolve)."""
        self.active_transactions.append(transaction)

    def release_transaction(self, transaction: "Transaction") -> None:
        """Drop a transaction that finished (committed or aborted)."""
        if transaction in self.active_transactions:
            self.active_transactions.remove(transaction)

    # -- cross-shard barrier ------------------------------------------------------------

    def barrier(self, shard_ids: Optional[Sequence[int]] = None) -> Future:
        """A future that resolves once the named shards' CPU queues drain.

        Args:
            shard_ids: shards to quiesce; ``None`` means every shard.

        Returns:
            A :class:`~repro.net.simulator.Future` succeeding (with the
            simulated completion time) when each listed shard has finished
            all message handling issued before — and during — the wait.  The
            check re-arms while new work keeps a shard busy, so the barrier
            observes a genuinely drained loop, not a snapshot.
        """
        shards = self.shards if shard_ids is None else [self.shards[i] for i in sorted(set(shard_ids))]
        self.barriers_issued += 1
        future = self.sim.event(name=f"shard-barrier({','.join(str(s.shard_id) for s in shards)})")

        def check() -> None:
            horizon = max(shard.idle_at for shard in shards) if shards else self.sim.now
            if horizon <= self.sim.now:
                future.succeed(self.sim.now)
            else:
                self.sim.schedule_at(horizon, check)

        self.sim.schedule(0.0, check)
        return future

    # -- reporting ----------------------------------------------------------------------

    def summary(self) -> Dict[str, object]:
        """Per-shard counters plus ring/transaction roll-ups (for benchmarks)."""
        return {
            "num_shards": self.num_shards,
            "barriers_issued": self.barriers_issued,
            "active_transactions": len(self.active_transactions),
            "shards": [
                {
                    "shard": shard.shard_id,
                    "messages": shard.stats.messages,
                    "events": shard.stats.events,
                    "busy_time": shard.stats.busy_time,
                    "operations_homed": shard.stats.operations_homed,
                }
                for shard in self.shards
            ],
        }


__all__ = [
    "DEFAULT_RING_REPLICAS",
    "ControllerShard",
    "ShardCoordinator",
    "ShardRing",
    "ShardStats",
    "stable_hash",
]
