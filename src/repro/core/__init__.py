"""OpenMB core: state taxonomy, southbound and northbound APIs, and the MB controller."""

from .channel import ControlChannel, FaultPlan, FaultProfile, ScriptedFault
from .config import HierarchicalConfig
from .controller import ControllerConfig, MBController
from .errors import (
    ConfigError,
    GranularityError,
    InstanceDeadError,
    MiddleboxError,
    NetworkError,
    OpenMBError,
    OperationAbortedError,
    OperationError,
    PatternError,
    ProtocolError,
    SealError,
    SimulationError,
    SpecError,
    StateError,
    TransactionAbortedError,
    TransactionError,
    UnknownMiddleboxError,
    ValidationError,
)
from .events import Event, EventCode, EventFilter
from .flowspace import FlowKey, FlowPattern, IPv4Prefix
from .northbound import NorthboundAPI
from .operations import OperationHandle, OperationRecord, OperationType, StandbyRetryHandle
from .sharding import ControllerShard, ShardCoordinator, ShardRing, ShardStats
from .southbound import MiddleboxInterface, ProcessingCosts, SouthboundAgent
from .state import (
    AccessMode,
    PerFlowStateStore,
    SharedChunk,
    SharedStateSlot,
    StateChunk,
    StateRole,
    StateScope,
    state_class,
)
from .stats import ControllerStats
from .transaction import StepRecord, StepStatus, Transaction, TransactionHandle
from .transfer import TransferGuarantee, TransferMode, TransferSpec

__all__ = [
    "ControlChannel",
    "FaultPlan",
    "FaultProfile",
    "ScriptedFault",
    "InstanceDeadError",
    "StandbyRetryHandle",
    "HierarchicalConfig",
    "ControllerConfig",
    "MBController",
    "NorthboundAPI",
    "Event",
    "EventCode",
    "EventFilter",
    "FlowKey",
    "FlowPattern",
    "IPv4Prefix",
    "OperationHandle",
    "OperationRecord",
    "OperationType",
    "MiddleboxInterface",
    "ProcessingCosts",
    "SouthboundAgent",
    "ControllerShard",
    "ShardCoordinator",
    "ShardRing",
    "ShardStats",
    "AccessMode",
    "PerFlowStateStore",
    "SharedChunk",
    "SharedStateSlot",
    "StateChunk",
    "StateRole",
    "StateScope",
    "state_class",
    "ControllerStats",
    "StepRecord",
    "StepStatus",
    "Transaction",
    "TransactionHandle",
    "TransferGuarantee",
    "TransferMode",
    "TransferSpec",
    "OpenMBError",
    "StateError",
    "GranularityError",
    "ConfigError",
    "SealError",
    "ProtocolError",
    "OperationError",
    "OperationAbortedError",
    "MiddleboxError",
    "UnknownMiddleboxError",
    "NetworkError",
    "SimulationError",
    "ValidationError",
    "PatternError",
    "SpecError",
    "TransactionError",
    "TransactionAbortedError",
]
