"""Flow identifiers and header-field patterns.

The southbound API identifies per-flow state with a *HeaderFieldList* (paper
section 4.1.2): a set of packet header fields, possibly a subset of the full
five-tuple, and possibly using prefixes.  This module provides:

* :class:`FlowKey` — a concrete five-tuple identifying one transport flow.
* :class:`FlowPattern` — a HeaderFieldList: a partially specified match over
  the five-tuple supporting exact values, IPv4 prefixes, and wildcards.

Patterns are used both by middleboxes (to name the granularity at which they
keep per-flow state) and by control applications (to name which flows an
operation applies to).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Optional, Tuple

#: Header fields recognised in a pattern, in canonical order.
FIELDS = ("nw_proto", "nw_src", "nw_dst", "tp_src", "tp_dst")

#: Convenience protocol numbers.
PROTO_TCP = 6
PROTO_UDP = 17
PROTO_ICMP = 1

_PROTO_NAMES = {PROTO_TCP: "tcp", PROTO_UDP: "udp", PROTO_ICMP: "icmp"}


def ip_to_int(address: str) -> int:
    """Convert a dotted-quad IPv4 address to its 32-bit integer value."""
    parts = address.split(".")
    if len(parts) != 4:
        raise ValueError(f"not an IPv4 address: {address!r}")
    value = 0
    for part in parts:
        octet = int(part)
        if not 0 <= octet <= 255:
            raise ValueError(f"not an IPv4 address: {address!r}")
        value = (value << 8) | octet
    return value


def int_to_ip(value: int) -> str:
    """Convert a 32-bit integer to a dotted-quad IPv4 address."""
    if not 0 <= value <= 0xFFFFFFFF:
        raise ValueError(f"not a 32-bit value: {value!r}")
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


@dataclass(frozen=True)
class IPv4Prefix:
    """An IPv4 prefix (``address/length``) used for prefix matches in patterns."""

    network: int
    length: int

    def __post_init__(self) -> None:
        if not 0 <= self.length <= 32:
            raise ValueError(f"prefix length out of range: {self.length}")
        mask = self.mask
        object.__setattr__(self, "network", self.network & mask)

    @classmethod
    def parse(cls, text: str) -> "IPv4Prefix":
        """Parse ``a.b.c.d/len`` or a bare address (treated as /32)."""
        if "/" in text:
            addr, _, length = text.partition("/")
            return cls(ip_to_int(addr), int(length))
        return cls(ip_to_int(text), 32)

    @property
    def mask(self) -> int:
        if self.length == 0:
            return 0
        return (0xFFFFFFFF << (32 - self.length)) & 0xFFFFFFFF

    def contains_ip(self, address: str) -> bool:
        """Return True when *address* falls inside this prefix."""
        return (ip_to_int(address) & self.mask) == self.network

    def contains_prefix(self, other: "IPv4Prefix") -> bool:
        """Return True when *other* is fully contained in this prefix."""
        if other.length < self.length:
            return False
        return (other.network & self.mask) == self.network

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{int_to_ip(self.network)}/{self.length}"


@dataclass(frozen=True, order=True, slots=True)
class FlowKey:
    """A concrete transport flow: protocol plus source/destination IP and port.

    ``FlowKey`` is directional.  :meth:`reversed` gives the opposite direction
    and :meth:`bidirectional` gives a canonical key shared by both directions,
    which is what connection-oriented middleboxes index their state by.

    Declared with ``slots=True``: at a million resident flows the store keeps
    a ``FlowKey`` per entry (plus copies in dirty sets, indexes, and transfer
    bookkeeping), and dropping the per-instance ``__dict__`` roughly halves
    the key's footprint.
    """

    nw_proto: int
    nw_src: str
    nw_dst: str
    tp_src: int
    tp_dst: int

    def reversed(self) -> "FlowKey":
        """Return the key for the opposite packet direction."""
        return FlowKey(self.nw_proto, self.nw_dst, self.nw_src, self.tp_dst, self.tp_src)

    def bidirectional(self) -> "FlowKey":
        """Return a canonical key identical for both directions of the flow."""
        forward = (self.nw_src, self.tp_src)
        backward = (self.nw_dst, self.tp_dst)
        if forward <= backward:
            return self
        return self.reversed()

    def as_dict(self) -> dict:
        """Return a plain-dict form suitable for JSON messages."""
        return {
            "nw_proto": self.nw_proto,
            "nw_src": self.nw_src,
            "nw_dst": self.nw_dst,
            "tp_src": self.tp_src,
            "tp_dst": self.tp_dst,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "FlowKey":
        return cls(
            int(data["nw_proto"]),
            str(data["nw_src"]),
            str(data["nw_dst"]),
            int(data["tp_src"]),
            int(data["tp_dst"]),
        )

    def __str__(self) -> str:
        proto = _PROTO_NAMES.get(self.nw_proto, str(self.nw_proto))
        return f"{proto} {self.nw_src}:{self.tp_src} -> {self.nw_dst}:{self.tp_dst}"


class FlowPattern:
    """A HeaderFieldList: a partially specified match over flow header fields.

    Each of the five fields may be:

    * absent / ``None`` — wildcard;
    * an exact value (``int`` for protocol and ports, dotted quad for IPs);
    * for IP fields, a prefix string such as ``"1.1.1.0/24"``.

    Patterns compare packets and flow keys (:meth:`matches`), other patterns
    (:meth:`covers`), and report how many fields they pin (:attr:`specificity`),
    which the per-flow state stores use to honour the paper's granularity rule.
    """

    __slots__ = ("nw_proto", "_src_prefix", "_dst_prefix", "tp_src", "tp_dst", "_src_text", "_dst_text")

    def __init__(
        self,
        nw_proto: Optional[int] = None,
        nw_src: Optional[str] = None,
        nw_dst: Optional[str] = None,
        tp_src: Optional[int] = None,
        tp_dst: Optional[int] = None,
    ) -> None:
        self.nw_proto = nw_proto
        self.tp_src = tp_src
        self.tp_dst = tp_dst
        self._src_text = nw_src
        self._dst_text = nw_dst
        self._src_prefix = IPv4Prefix.parse(nw_src) if nw_src is not None else None
        self._dst_prefix = IPv4Prefix.parse(nw_dst) if nw_dst is not None else None

    # -- construction helpers -------------------------------------------------

    @classmethod
    def wildcard(cls) -> "FlowPattern":
        """The pattern that matches every flow (the empty HeaderFieldList)."""
        return cls()

    @classmethod
    def from_flow(cls, key: FlowKey) -> "FlowPattern":
        """The fully specified pattern matching exactly *key*."""
        return cls(key.nw_proto, key.nw_src, key.nw_dst, key.tp_src, key.tp_dst)

    @classmethod
    def parse(cls, fields: Mapping[str, object] | Iterable[str] | str | None) -> "FlowPattern":
        """Parse the HeaderFieldList notation used in the paper's examples.

        Accepts a mapping (``{"nw_src": "1.1.1.0/24"}``), an iterable of
        ``"field=value"`` strings (``["nw_src=1.1.1.0/24"]``), a single such
        string, or ``None`` / ``[]`` / ``""`` for the wildcard pattern.
        """
        from .errors import PatternError

        if fields is None:
            return cls.wildcard()
        if isinstance(fields, str):
            fields = [part for part in fields.split(",") if part.strip()]
        if isinstance(fields, Mapping):
            items = dict(fields)
        else:
            items = {}
            for entry in fields:
                name, _, value = str(entry).partition("=")
                name = name.strip()
                if not name:
                    continue
                items[name] = value.strip()
        kwargs: dict = {}
        for name, value in items.items():
            if name not in FIELDS:
                raise PatternError(f"unknown header field {name!r} (expected one of {', '.join(FIELDS)})")
            if value is None or value == "*":
                continue
            if name in ("nw_proto", "tp_src", "tp_dst"):
                try:
                    kwargs[name] = int(value)
                except (TypeError, ValueError):
                    raise PatternError(f"field {name!r} requires an integer, got {value!r}") from None
            else:
                kwargs[name] = str(value)
        try:
            return cls(**kwargs)
        except ValueError as exc:  # bad IP address / prefix in an address field
            raise PatternError(f"malformed pattern {items!r}: {exc}") from exc

    # -- field access ---------------------------------------------------------

    @property
    def nw_src(self) -> Optional[str]:
        return self._src_text

    @property
    def nw_dst(self) -> Optional[str]:
        return self._dst_text

    def as_dict(self) -> dict:
        """Return only the specified fields as a plain dict (JSON friendly)."""
        result: dict = {}
        if self.nw_proto is not None:
            result["nw_proto"] = self.nw_proto
        if self._src_text is not None:
            result["nw_src"] = self._src_text
        if self._dst_text is not None:
            result["nw_dst"] = self._dst_text
        if self.tp_src is not None:
            result["tp_src"] = self.tp_src
        if self.tp_dst is not None:
            result["tp_dst"] = self.tp_dst
        return result

    @property
    def specificity(self) -> int:
        """Number of constrained fields (prefixes count as constrained)."""
        return len(self.as_dict())

    @property
    def is_wildcard(self) -> bool:
        return self.specificity == 0

    def specified_fields(self) -> Tuple[str, ...]:
        """Names of the fields this pattern constrains, in canonical order."""
        present = self.as_dict()
        return tuple(field for field in FIELDS if field in present)

    # -- matching -------------------------------------------------------------

    def matches(self, key: FlowKey) -> bool:
        """Return True when the concrete flow *key* falls inside this pattern."""
        if self.nw_proto is not None and key.nw_proto != self.nw_proto:
            return False
        if self.tp_src is not None and key.tp_src != self.tp_src:
            return False
        if self.tp_dst is not None and key.tp_dst != self.tp_dst:
            return False
        if self._src_prefix is not None and not self._src_prefix.contains_ip(key.nw_src):
            return False
        if self._dst_prefix is not None and not self._dst_prefix.contains_ip(key.nw_dst):
            return False
        return True

    def matches_either_direction(self, key: FlowKey) -> bool:
        """Return True when the pattern matches *key* or its reverse direction.

        Middleboxes index connection state bidirectionally, so state selection
        by pattern must consider both packet directions.
        """
        return self.matches(key) or self.matches(key.reversed())

    def covers(self, other: "FlowPattern") -> bool:
        """Return True when every flow matched by *other* is matched by self."""
        if self.nw_proto is not None and other.nw_proto != self.nw_proto:
            return False
        if self.tp_src is not None and other.tp_src != self.tp_src:
            return False
        if self.tp_dst is not None and other.tp_dst != self.tp_dst:
            return False
        for mine, theirs in ((self._src_prefix, other._src_prefix), (self._dst_prefix, other._dst_prefix)):
            if mine is None:
                continue
            if theirs is None or not mine.contains_prefix(theirs):
                return False
        return True

    def is_finer_than(self, other: "FlowPattern") -> bool:
        """Return True when this pattern constrains fields *other* leaves open.

        Used to enforce the paper's rule that requests at a granularity finer
        than the middlebox maintains must return an error.
        """
        mine = set(self.specified_fields())
        theirs = set(other.specified_fields())
        return bool(mine - theirs)

    def intersects(self, other: "FlowPattern") -> bool:
        """Return True when some flow could match both patterns."""
        if self.nw_proto is not None and other.nw_proto is not None and self.nw_proto != other.nw_proto:
            return False
        if self.tp_src is not None and other.tp_src is not None and self.tp_src != other.tp_src:
            return False
        if self.tp_dst is not None and other.tp_dst is not None and self.tp_dst != other.tp_dst:
            return False
        for mine, theirs in ((self._src_prefix, other._src_prefix), (self._dst_prefix, other._dst_prefix)):
            if mine is None or theirs is None:
                continue
            if not (mine.contains_prefix(theirs) or theirs.contains_prefix(mine)):
                return False
        return True

    # -- dunder protocol ------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FlowPattern):
            return NotImplemented
        return self.as_dict() == other.as_dict()

    def __hash__(self) -> int:
        return hash(tuple(sorted(self.as_dict().items())))

    def __iter__(self) -> Iterator[Tuple[str, object]]:
        return iter(self.as_dict().items())

    def __repr__(self) -> str:
        fields = ", ".join(f"{name}={value}" for name, value in self.as_dict().items())
        return f"FlowPattern({fields or '*'})"
