"""Control channels between the MB controller and middleboxes.

The paper's prototype uses JSON over UNIX sockets.  Here each middlebox is
connected to the controller by a :class:`ControlChannel` that encodes every
message to its JSON wire form (so sizes are realistic), models transfer time
as ``latency + size / bandwidth``, and delivers the decoded message to the
other side on the simulated clock.  Both directions keep counters used by the
controller-performance benchmarks.

Two opt-in layers harden the channel for the chaos experiments:

* a seeded :class:`FaultPlan` injects per-direction faults — message drops,
  latency jitter, duplicates, reordering — plus scripted one-shot faults
  ("drop the 7th controller→MB message", "kill the destination at t=2ms");
* **reliable delivery**: every payload message is stamped with a per-direction
  monotonic channel sequence number (``cseq``), the receiver delivers strictly
  in sequence order (out-of-order arrivals wait in a resequencing buffer,
  duplicates are discarded), acknowledges cumulatively with lightweight
  ``CHAN_ACK`` frames, and the sender retransmits unacknowledged messages on a
  timeout.  Per-channel FIFO therefore survives drops, duplicates, and
  reordering, and retransmitted requests are idempotent at the receiver.

Both layers are off by default: a channel constructed without a fault plan
(and without ``reliable=True``) behaves — and schedules — exactly like the
seed implementation, byte-for-byte on the wire.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..net.simulator import Simulator
from .messages import Message, MessageType, batch_message, chan_ack

#: Default one-way control-channel latency (seconds): a LAN round trip share.
DEFAULT_CONTROL_LATENCY = 200e-6

#: Default control-channel bandwidth (bytes/second): 1 Gbps.
DEFAULT_CONTROL_BANDWIDTH = 125_000_000.0

#: Retransmit timeout as a multiple of the one-way channel latency (≈4 RTTs).
DEFAULT_RTO_LATENCY_MULTIPLE = 8.0


# =========================================================================================
# Fault model
# =========================================================================================


@dataclass
class FaultProfile:
    """Random fault probabilities for one direction of a control channel.

    ``drop``, ``duplicate``, and ``reorder`` are per-message probabilities;
    ``jitter`` is the maximum *extra* delivery latency expressed as a multiple
    of the channel's base latency (``jitter=2.0`` means each message is
    delayed by up to 2x the base latency, uniformly).
    """

    drop: float = 0.0
    duplicate: float = 0.0
    jitter: float = 0.0
    reorder: float = 0.0

    @property
    def active(self) -> bool:
        """True when any fault of this profile can actually fire."""
        return self.drop > 0 or self.duplicate > 0 or self.jitter > 0 or self.reorder > 0


@dataclass
class ScriptedFault:
    """One deterministic, one-shot fault from a chaos scenario's script.

    Two kinds are understood:

    * ``kind="drop"`` — the channel silently drops the *nth* payload message
      (1-based; CHAN_ACK frames are not counted) transmitted in *direction*
      (``"to_mb"`` or ``"to_controller"``);
    * ``kind="kill"`` — the middlebox named *mb* crashes at simulated time
      *at*.  Kill faults are not executed by the channel; the chaos runner
      (:mod:`repro.testing.chaos`) reads them from the plan and schedules the
      controller-side crash.
    """

    kind: str
    direction: str = "to_mb"
    nth: int = 0
    mb: str = ""
    at: float = 0.0
    #: Set once the fault has fired (one-shot bookkeeping).
    fired: bool = False


class FaultPlan:
    """A seeded, deterministic fault-injection plan for one control channel.

    All randomness flows from a single ``random.Random(seed)``, so two runs
    with the same plan (and the same simulated workload) inject byte-for-byte
    identical faults — the property the chaos harness's reproducibility
    invariant rests on.
    """

    def __init__(
        self,
        seed: int = 0,
        *,
        to_mb: Optional[FaultProfile] = None,
        to_controller: Optional[FaultProfile] = None,
        scripted: Optional[List[ScriptedFault]] = None,
    ) -> None:
        self.seed = seed
        self.rng = random.Random(seed)
        self.to_mb = to_mb or FaultProfile()
        self.to_controller = to_controller or FaultProfile()
        self.scripted: List[ScriptedFault] = list(scripted or [])

    @classmethod
    def symmetric(
        cls,
        seed: int = 0,
        *,
        drop: float = 0.0,
        duplicate: float = 0.0,
        jitter: float = 0.0,
        reorder: float = 0.0,
        scripted: Optional[List[ScriptedFault]] = None,
    ) -> "FaultPlan":
        """A plan applying the same fault probabilities in both directions."""
        return cls(
            seed,
            to_mb=FaultProfile(drop=drop, duplicate=duplicate, jitter=jitter, reorder=reorder),
            to_controller=FaultProfile(drop=drop, duplicate=duplicate, jitter=jitter, reorder=reorder),
            scripted=scripted,
        )

    def profile_for(self, direction: str) -> FaultProfile:
        """The random-fault profile applied to *direction* of the channel."""
        return self.to_mb if direction == "to_mb" else self.to_controller

    def take_scripted_drop(self, direction: str, index: int) -> bool:
        """Consume a scripted drop for the *index*-th message of *direction*."""
        for fault in self.scripted:
            if fault.kind == "drop" and not fault.fired and fault.direction == direction and fault.nth == index:
                fault.fired = True
                return True
        return False

    def kill_faults(self) -> List[ScriptedFault]:
        """The scripted instance-kill faults (executed by the chaos runner)."""
        return [fault for fault in self.scripted if fault.kind == "kill"]


# =========================================================================================
# Channel accounting
# =========================================================================================


@dataclass
class ChannelStats:
    """Counters for one direction of a control channel."""

    messages: int = 0
    bytes: int = 0
    #: BATCH frames among ``messages`` (each counts as one wire message).
    batches: int = 0
    #: Requests delivered inside those BATCH frames.
    framed_messages: int = 0
    #: Fault injection: messages lost / delivered twice / delayed out of order.
    dropped: int = 0
    duplicated: int = 0
    reordered: int = 0
    #: Reliable delivery: retransmitted payloads, duplicates discarded at the
    #: receiver, and CHAN_ACK frames sent in this direction.
    retransmits: int = 0
    dedup_discards: int = 0
    chan_acks: int = 0

    def record(self, size: int) -> None:
        self.messages += 1
        self.bytes += size


class _ReliableDirection:
    """Sender + receiver state for one direction of a reliable channel."""

    __slots__ = ("next_cseq", "unacked", "timer_armed", "expected", "pending", "closed")

    def __init__(self) -> None:
        # Sender side: next sequence number to stamp, unacknowledged messages
        # as cseq -> [message, last transmission time].
        self.next_cseq = 1
        self.unacked: Dict[int, list] = {}
        self.timer_armed = False
        # Receiver side: next sequence expected, out-of-order resequencing buffer.
        self.expected = 1
        self.pending: Dict[int, Message] = {}
        #: True once the receiving endpoint went away: retransmissions stop.
        self.closed = False


# =========================================================================================
# The channel
# =========================================================================================


class ControlChannel:
    """A bidirectional message channel between the controller and one middlebox."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        *,
        latency: float = DEFAULT_CONTROL_LATENCY,
        bandwidth: float = DEFAULT_CONTROL_BANDWIDTH,
        reencode: bool = True,
        faults: Optional[FaultPlan] = None,
        reliable: Optional[bool] = None,
        retransmit_timeout: Optional[float] = None,
    ) -> None:
        self.sim = sim
        self.name = name
        self.latency = latency
        self.bandwidth = bandwidth
        self.reencode = reencode
        self.faults = faults
        #: Reliable delivery defaults to on exactly when faults are injected:
        #: a lossy channel without retransmission would wedge every ACK-gated
        #: operation, and a clean channel needs no sequencing overhead.
        self.reliable = (faults is not None) if reliable is None else reliable
        self.retransmit_timeout = (
            retransmit_timeout
            if retransmit_timeout is not None
            else max(DEFAULT_RTO_LATENCY_MULTIPLE * latency, 1e-4)
        )
        self.to_mb = ChannelStats()
        self.to_controller = ChannelStats()
        self._rel: Dict[str, _ReliableDirection] = {
            "to_mb": _ReliableDirection(),
            "to_controller": _ReliableDirection(),
        }
        #: Payload frames (excluding CHAN_ACKs) transmitted per direction —
        #: the index space scripted "drop the nth message" faults refer to,
        #: kept separate so ack frames and retransmissions do not skew it.
        self._payload_sent: Dict[str, int] = {"to_mb": 0, "to_controller": 0}
        self._controller_handler: Optional[Callable[[Message], None]] = None
        self._mb_handler: Optional[Callable[[Message], None]] = None
        #: True once the controller side was explicitly detached (unregister):
        #: middlebox->controller messages are then dropped instead of raising.
        self._controller_detached = False
        #: True once the middlebox side crashed (kill): controller->middlebox
        #: deliveries are discarded and retransmissions stop.
        self._mb_down = False
        #: Serialisation points: one runtime lane per direction models wire
        #: occupancy (``reserve``) and delivers in order (``dispatch_at``).
        #: On the realtime runtime each direction is its own asyncio task.
        self._wire = {
            "to_mb": sim.lane(f"{name}:to_mb"),
            "to_controller": sim.lane(f"{name}:to_controller"),
        }

    # -- wiring ---------------------------------------------------------------------

    def bind_controller(self, handler: Callable[[Message], None]) -> None:
        """Register the controller-side message handler.

        Re-binding after :meth:`unbind_controller` revives the channel: the
        MB→controller reliable-direction state is reset wholesale (both the
        closed sender half and the receiver's resequencing expectations) so a
        reused channel starts a fresh, consistent session.
        """
        self._controller_handler = handler
        if self._controller_detached:
            self._rel["to_controller"] = _ReliableDirection()
        self._controller_detached = False

    def unbind_controller(self) -> None:
        """Detach the controller side (the middlebox was unregistered).

        Subsequent middlebox->controller messages — late replies, lingering
        events from a terminated instance — are silently dropped instead of
        being dispatched through a stale binding.  The middlebox-side reliable
        sender stops retransmitting: there is no controller left to ack.
        """
        self._controller_handler = None
        self._controller_detached = True
        self._rel["to_controller"].closed = True
        self._rel["to_controller"].unacked.clear()

    def bind_middlebox(self, handler: Callable[[Message], None]) -> None:
        """Register the middlebox-side message handler.

        Re-binding after :meth:`set_middlebox_down` (an instance revived or a
        channel object reused for a replacement) resets the controller→MB
        reliable-direction state wholesale — without this the sender half
        would stay ``closed`` and silently stop tracking/retransmitting.
        """
        self._mb_handler = handler
        if self._mb_down:
            self._rel["to_mb"] = _ReliableDirection()
        self._mb_down = False

    def set_middlebox_down(self) -> None:
        """The middlebox instance crashed: stop delivering (and retransmitting) to it.

        Controller->middlebox deliveries already in flight are discarded at
        arrival; the controller-side reliable sender drops its unacked queue
        so a dead instance cannot keep retransmission timers alive forever.
        """
        self._mb_down = True
        self._rel["to_mb"].closed = True
        self._rel["to_mb"].unacked.clear()

    @property
    def middlebox_down(self) -> bool:
        """True once the middlebox side of the channel was declared crashed."""
        return self._mb_down

    @property
    def controller_detached(self) -> bool:
        """True once the controller side was detached (middlebox unregistered)."""
        return self._controller_detached

    # -- sending ---------------------------------------------------------------------

    def send_to_middlebox(self, message: Message) -> float:
        """Send a message from the controller to the middlebox; returns delivery time."""
        if self._mb_handler is None:
            raise RuntimeError(f"channel {self.name} has no middlebox handler bound")
        self._stamp_reliable("to_mb", message)
        return self._transmit(message, "to_mb")

    def send_many_to_middlebox(self, batch: list) -> float:
        """Deliver several requests as one framed BATCH channel message.

        This is the wire half of the controller's batched southbound
        dispatch: the channel pays its per-message latency (and one
        serialisation slot) once for the whole batch instead of once per
        request.  A single-element batch degenerates to a plain send.
        Returns the delivery time of the frame.
        """
        if not batch:
            return self.sim.now
        if len(batch) == 1:
            return self.send_to_middlebox(batch[0])
        frame = batch_message(batch[0].mb, batch)
        self.to_mb.batches += 1
        self.to_mb.framed_messages += len(batch)
        return self.send_to_middlebox(frame)

    def send_to_controller(self, message: Message) -> float:
        """Send a message from the middlebox to the controller; returns delivery time."""
        if self._controller_handler is None:
            if self._controller_detached:
                return self.sim.now  # unregistered middlebox: drop silently
            raise RuntimeError(f"channel {self.name} has no controller handler bound")
        self._stamp_reliable("to_controller", message)
        return self._transmit(message, "to_controller")

    def _stamp_reliable(self, direction: str, message: Message) -> None:
        """Sequence a payload message and track it for retransmission.

        CHAN_ACK frames stay unsequenced (they are the ack channel itself);
        with the direction's sender half closed (endpoint gone) the message is
        still stamped for receiver-side consistency but no longer tracked.
        """
        if not self.reliable or message.type == MessageType.CHAN_ACK:
            return
        state = self._rel[direction]
        message.cseq = state.next_cseq
        state.next_cseq += 1
        if not state.closed:
            state.unacked[message.cseq] = [message, self.sim.now]
            self._arm_retransmit(direction)

    # -- the wire ---------------------------------------------------------------------

    def _stats_for(self, direction: str) -> ChannelStats:
        return self.to_mb if direction == "to_mb" else self.to_controller

    def _transmit(self, message: Message, direction: str) -> float:
        """Serialise, apply faults, and schedule delivery of one message."""
        stats = self._stats_for(direction)
        wire = self._wire[direction]
        encoded = message.encode()
        stats.record(len(encoded))
        transfer = len(encoded) / self.bandwidth if self.bandwidth else 0.0
        finish = wire.reserve(transfer)
        delivery_time = finish + self.latency
        if message.type != MessageType.CHAN_ACK:
            self._payload_sent[direction] += 1
        if self.faults is not None:
            delivery_time = self._apply_faults(message, encoded, direction, stats, delivery_time)
            if delivery_time is None:
                return finish + self.latency  # dropped on the wire
        delivered = Message.decode(encoded) if self.reencode else message
        receiver = self._receive_at_middlebox if direction == "to_mb" else self._receive_at_controller
        wire.dispatch_at(delivery_time, receiver, delivered)
        return delivery_time

    def _apply_faults(
        self,
        message: Message,
        encoded: bytes,
        direction: str,
        stats: ChannelStats,
        delivery_time: float,
    ) -> Optional[float]:
        """Mutate one delivery according to the fault plan; None = dropped.

        The random draws happen in a fixed order for every message (drop,
        reorder, jitter, duplicate) so a given seed always produces the same
        fault sequence regardless of which probabilities are zero.
        """
        plan = self.faults
        if message.type != MessageType.CHAN_ACK and plan.take_scripted_drop(
            direction, self._payload_sent[direction]
        ):
            stats.dropped += 1
            return None
        profile = plan.profile_for(direction)
        if not profile.active:
            return delivery_time
        rng = plan.rng
        if rng.random() < profile.drop:
            stats.dropped += 1
            return None
        if rng.random() < profile.reorder:
            # Push the message past roughly one successor's delivery window.
            stats.reordered += 1
            delivery_time += 2.0 * self.latency * (1.0 + rng.random())
        if profile.jitter > 0:
            delivery_time += rng.random() * profile.jitter * self.latency
        if rng.random() < profile.duplicate:
            stats.duplicated += 1
            copy = Message.decode(encoded) if self.reencode else message
            receiver = self._receive_at_middlebox if direction == "to_mb" else self._receive_at_controller
            self._wire[direction].dispatch_at(delivery_time + self.latency * rng.random(), receiver, copy)
        return delivery_time

    # -- receiving (reliability layer) --------------------------------------------------

    def _receive_at_middlebox(self, message: Message) -> None:
        """Arrival at the middlebox endpoint: ack absorption, resequencing, dispatch."""
        if self._mb_down or self._mb_handler is None:
            return
        if message.type == MessageType.CHAN_ACK:
            self._absorb_ack("to_controller", message)
            return
        if not self.reliable or message.cseq is None:
            self._mb_handler(message)
            return
        self._sequenced_deliver("to_mb", message, self._mb_handler, self._ack_to_controller)

    def _receive_at_controller(self, message: Message) -> None:
        """Arrival at the controller endpoint: ack absorption, resequencing, dispatch."""
        if self._controller_handler is None:
            return  # detached (unregistered middlebox): drop silently
        if message.type == MessageType.CHAN_ACK:
            self._absorb_ack("to_mb", message)
            return
        if not self.reliable or message.cseq is None:
            self._controller_handler(message)
            return
        self._sequenced_deliver("to_controller", message, self._controller_handler, self._ack_to_mb)

    def _sequenced_deliver(
        self,
        direction: str,
        message: Message,
        handler: Callable[[Message], None],
        send_ack: Callable[[int], None],
    ) -> None:
        """Deliver in cseq order: buffer gaps, discard duplicates, ack cumulatively."""
        state = self._rel[direction]
        cseq = message.cseq
        if cseq < state.expected or cseq in state.pending:
            # Retransmission of something already delivered (or already
            # buffered): discard, but re-ack so the sender stops resending.
            self._stats_for(direction).dedup_discards += 1
            send_ack(state.expected - 1)
            return
        state.pending[cseq] = message
        while state.expected in state.pending:
            next_message = state.pending.pop(state.expected)
            state.expected += 1
            handler(next_message)
        send_ack(state.expected - 1)

    def _ack_to_controller(self, cumulative: int) -> None:
        """Middlebox endpoint acks controller→MB sequence *cumulative*."""
        if self._controller_detached:
            return
        self.to_controller.chan_acks += 1
        self._transmit(chan_ack(self.name, cumulative), "to_controller")

    def _ack_to_mb(self, cumulative: int) -> None:
        """Controller endpoint acks MB→controller sequence *cumulative*."""
        if self._mb_down:
            return
        self.to_mb.chan_acks += 1
        self._transmit(chan_ack(self.name, cumulative), "to_mb")

    def _absorb_ack(self, direction: str, message: Message) -> None:
        """Drop every unacked message of *direction* covered by a cumulative ack."""
        state = self._rel[direction]
        cumulative = int(message.body.get("cum", 0))
        for cseq in [cseq for cseq in state.unacked if cseq <= cumulative]:
            del state.unacked[cseq]

    # -- retransmission -----------------------------------------------------------------

    def _arm_retransmit(self, direction: str) -> None:
        """Schedule the direction's retransmit check (one timer at a time)."""
        state = self._rel[direction]
        if state.timer_armed:
            return
        state.timer_armed = True
        self.sim.schedule(self.retransmit_timeout, self._retransmit_check, direction)

    def _retransmit_check(self, direction: str) -> None:
        """Resend the oldest unacked message once it ages past the RTO.

        Only the head of the unacked queue is retransmitted: acks are
        cumulative, so a single gap leaves the entire tail unacknowledged even
        though the receiver already buffered it.  Resending just the gap head
        lets the receiver drain its resequencing buffer and jump the
        cumulative ack over the whole tail — without this, one drop in a long
        pipelined chunk stream triggers a go-back-N retransmission storm.
        """
        state = self._rel[direction]
        state.timer_armed = False
        if state.closed or not state.unacked:
            return
        cutoff = self.sim.now - self.retransmit_timeout + 1e-12
        head = min(state.unacked)
        entry = state.unacked[head]
        if entry[1] <= cutoff:
            self._stats_for(direction).retransmits += 1
            entry[1] = self.sim.now
            self._transmit(entry[0], direction)
        self._arm_retransmit(direction)

    # -- accounting ------------------------------------------------------------------

    @property
    def total_messages(self) -> int:
        return self.to_mb.messages + self.to_controller.messages

    @property
    def total_bytes(self) -> int:
        return self.to_mb.bytes + self.to_controller.bytes

    @property
    def total_retransmits(self) -> int:
        """Retransmitted payload messages across both directions."""
        return self.to_mb.retransmits + self.to_controller.retransmits

    @property
    def total_dropped(self) -> int:
        """Messages lost to injected faults across both directions."""
        return self.to_mb.dropped + self.to_controller.dropped
