"""Control channels between the MB controller and middleboxes.

The paper's prototype uses JSON over UNIX sockets.  Here each middlebox is
connected to the controller by a :class:`ControlChannel` that encodes every
message to its JSON wire form (so sizes are realistic), models transfer time
as ``latency + size / bandwidth``, and delivers the decoded message to the
other side on the simulated clock.  Both directions keep counters used by the
controller-performance benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..net.simulator import Simulator
from .messages import Message, batch_message

#: Default one-way control-channel latency (seconds): a LAN round trip share.
DEFAULT_CONTROL_LATENCY = 200e-6

#: Default control-channel bandwidth (bytes/second): 1 Gbps.
DEFAULT_CONTROL_BANDWIDTH = 125_000_000.0


@dataclass
class ChannelStats:
    """Counters for one direction of a control channel."""

    messages: int = 0
    bytes: int = 0
    #: BATCH frames among ``messages`` (each counts as one wire message).
    batches: int = 0
    #: Requests delivered inside those BATCH frames.
    framed_messages: int = 0

    def record(self, size: int) -> None:
        self.messages += 1
        self.bytes += size


class ControlChannel:
    """A bidirectional message channel between the controller and one middlebox."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        *,
        latency: float = DEFAULT_CONTROL_LATENCY,
        bandwidth: float = DEFAULT_CONTROL_BANDWIDTH,
        reencode: bool = True,
    ) -> None:
        self.sim = sim
        self.name = name
        self.latency = latency
        self.bandwidth = bandwidth
        self.reencode = reencode
        self.to_mb = ChannelStats()
        self.to_controller = ChannelStats()
        self._controller_handler: Optional[Callable[[Message], None]] = None
        self._mb_handler: Optional[Callable[[Message], None]] = None
        #: True once the controller side was explicitly detached (unregister):
        #: middlebox->controller messages are then dropped instead of raising.
        self._controller_detached = False
        # Serialisation points: each direction delivers messages in order.
        self._mb_free_at = 0.0
        self._controller_free_at = 0.0

    # -- wiring ---------------------------------------------------------------------

    def bind_controller(self, handler: Callable[[Message], None]) -> None:
        """Register the controller-side message handler."""
        self._controller_handler = handler
        self._controller_detached = False

    def unbind_controller(self) -> None:
        """Detach the controller side (the middlebox was unregistered).

        Subsequent middlebox->controller messages — late replies, lingering
        events from a terminated instance — are silently dropped instead of
        being dispatched through a stale binding.
        """
        self._controller_handler = None
        self._controller_detached = True

    def bind_middlebox(self, handler: Callable[[Message], None]) -> None:
        """Register the middlebox-side message handler."""
        self._mb_handler = handler

    # -- sending ---------------------------------------------------------------------

    def send_to_middlebox(self, message: Message) -> float:
        """Send a message from the controller to the middlebox; returns delivery time."""
        if self._mb_handler is None:
            raise RuntimeError(f"channel {self.name} has no middlebox handler bound")
        return self._send(message, self.to_mb, self._mb_handler, "_mb_free_at")

    def send_many_to_middlebox(self, batch: list) -> float:
        """Deliver several requests as one framed BATCH channel message.

        This is the wire half of the controller's batched southbound
        dispatch: the channel pays its per-message latency (and one
        serialisation slot) once for the whole batch instead of once per
        request.  A single-element batch degenerates to a plain send.
        Returns the delivery time of the frame.
        """
        if not batch:
            return self.sim.now
        if len(batch) == 1:
            return self.send_to_middlebox(batch[0])
        frame = batch_message(batch[0].mb, batch)
        self.to_mb.batches += 1
        self.to_mb.framed_messages += len(batch)
        return self.send_to_middlebox(frame)

    def send_to_controller(self, message: Message) -> float:
        """Send a message from the middlebox to the controller; returns delivery time."""
        if self._controller_handler is None:
            if self._controller_detached:
                return self.sim.now  # unregistered middlebox: drop silently
            raise RuntimeError(f"channel {self.name} has no controller handler bound")
        return self._send(message, self.to_controller, self._controller_handler, "_controller_free_at")

    def _send(
        self,
        message: Message,
        stats: ChannelStats,
        handler: Callable[[Message], None],
        free_attr: str,
    ) -> float:
        encoded = message.encode()
        stats.record(len(encoded))
        transfer = len(encoded) / self.bandwidth if self.bandwidth else 0.0
        start = max(self.sim.now, getattr(self, free_attr))
        finish = start + transfer
        setattr(self, free_attr, finish)
        delivery_time = finish + self.latency
        delivered = Message.decode(encoded) if self.reencode else message
        self.sim.schedule_at(delivery_time, handler, delivered)
        return delivery_time

    # -- accounting ------------------------------------------------------------------

    @property
    def total_messages(self) -> int:
        return self.to_mb.messages + self.to_controller.messages

    @property
    def total_bytes(self) -> int:
        return self.to_mb.bytes + self.to_controller.bytes
