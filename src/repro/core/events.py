"""State events: packet re-processing and introspection.

Section 4.2 of the paper augments the southbound API with events raised by
middleboxes when they establish or manipulate state:

* **Re-process events** (section 4.2.1) — raised while a move or clone is in
  progress (and until the corresponding routing change takes effect) whenever
  a packet updates state that was exported.  The event carries the packet; the
  destination middlebox re-processes it *without external side effects*, which
  is how OpenMB achieves atomicity without suspending traffic.
* **Introspection events** (section 4.2.2) — MB-specific notifications (a NAT
  created a mapping, a load balancer assigned a flow to a server).  They carry
  an event code, the key of the affected state, and MB-specific values, and
  can be enabled or disabled per code and per flow pattern so the controller
  and network are not overloaded.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .flowspace import FlowKey, FlowPattern
from ..net.packet import Packet

_event_ids = itertools.count(1)


class EventCode:
    """Well-known event codes.  Middleboxes define additional codes."""

    #: A packet updated state that is being (or was) moved or cloned.
    REPROCESS = "openmb.reprocess"
    #: Generic "state created" introspection code prefix.
    STATE_CREATED = "openmb.state_created"
    #: Generic "state updated" introspection code prefix.
    STATE_UPDATED = "openmb.state_updated"
    #: Generic "state removed" introspection code prefix.
    STATE_REMOVED = "openmb.state_removed"
    #: Controller-originated: a middlebox instance was declared dead (crash or
    #: missed liveness deadline).  ``values["reason"]`` carries the cause.
    INSTANCE_DOWN = "openmb.instance_down"


@dataclass
class Event:
    """One event raised by a middlebox."""

    mb_name: str
    code: str
    key: Optional[FlowKey] = None
    packet: Optional[Packet] = None
    values: Dict[str, object] = field(default_factory=dict)
    raised_at: float = 0.0
    event_id: int = field(default_factory=lambda: next(_event_ids))
    #: True for shared-state re-process events (no per-flow key applies).
    shared: bool = False

    @property
    def is_reprocess(self) -> bool:
        return self.code == EventCode.REPROCESS

    def to_wire(self) -> dict:
        """JSON-encodable form used by the southbound message protocol."""
        wire: dict = {
            "mb": self.mb_name,
            "code": self.code,
            "event_id": self.event_id,
            "raised_at": self.raised_at,
            "shared": self.shared,
            "values": dict(self.values),
        }
        if self.key is not None:
            wire["key"] = self.key.as_dict()
        if self.packet is not None:
            wire["packet"] = {
                "nw_src": self.packet.nw_src,
                "nw_dst": self.packet.nw_dst,
                "nw_proto": self.packet.nw_proto,
                "tp_src": self.packet.tp_src,
                "tp_dst": self.packet.tp_dst,
                "payload_len": self.packet.payload_size,
            }
        return wire


class EventFilter:
    """Controls which introspection events a middlebox generates.

    Re-process events are never filtered (they are required for correctness);
    introspection events are generated only when a subscription matching their
    code and key is active.  Subscriptions may carry an expiry time, matching
    the paper's "receive all events only for a limited period of time".
    """

    def __init__(self) -> None:
        self._subscriptions: List[Tuple[str, FlowPattern, Optional[float]]] = []

    def enable(self, code: str, pattern: Optional[FlowPattern] = None, *, until: Optional[float] = None) -> None:
        """Enable events with *code* for flows matching *pattern* (default: all)."""
        self._subscriptions.append((code, pattern or FlowPattern.wildcard(), until))

    def disable(self, code: str, pattern: Optional[FlowPattern] = None) -> int:
        """Remove subscriptions for *code* (and pattern, when given); returns count removed."""
        before = len(self._subscriptions)
        self._subscriptions = [
            (existing_code, existing_pattern, until)
            for existing_code, existing_pattern, until in self._subscriptions
            if not (existing_code == code and (pattern is None or existing_pattern == pattern))
        ]
        return before - len(self._subscriptions)

    def disable_all(self) -> None:
        self._subscriptions.clear()

    def allows(self, event: Event, now: float = 0.0) -> bool:
        """Return True when *event* should be generated at simulated time *now*."""
        if event.is_reprocess:
            return True
        for code, pattern, until in self._subscriptions:
            if code != event.code:
                continue
            if until is not None and now > until:
                continue
            if event.key is None or pattern.matches_either_direction(event.key):
                return True
        return False

    @property
    def subscription_count(self) -> int:
        return len(self._subscriptions)
