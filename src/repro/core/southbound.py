"""The MB-facing ("southbound") API.

Two pieces live here:

* :class:`MiddleboxInterface` — the abstract API every OpenMB-enabled
  middlebox implements (paper section 4): configuration get/set/del, per-flow
  and shared supporting/reporting state get/put/del, state statistics, event
  subscription management, transfer marking, and side-effect-free packet
  re-processing.
* :class:`SouthboundAgent` — the "common code base" the paper adds to each
  middlebox (~500 LOC in their prototype): it receives protocol messages from
  the controller over the middlebox's control channel, invokes the interface,
  models the middlebox-side processing cost of each operation on the simulated
  clock, streams per-flow chunks back one message at a time, sends ACKs, and
  forwards every event the middlebox raises to the controller.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from itertools import islice
from typing import Callable, Iterator, List, Optional

from ..net.packet import Packet
from ..net.simulator import Simulator
from . import messages
from .channel import ControlChannel
from .errors import GranularityError, MiddleboxError, OpenMBError, StateError
from .events import Event
from .flowspace import FlowPattern
from .messages import Message, MessageType
from .state import SharedChunk, StateChunk, StateRole


@dataclass
class ProcessingCosts:
    """Simulated middlebox-side costs of packet and API processing (seconds).

    Defaults are calibrated to give the *shapes* the paper reports: get time
    linear in the number of chunks and roughly 6x the cost of puts, per-packet
    latency rising by about 2 % while a get is being serviced, and per-chunk
    costs higher for middleboxes with deep per-flow state (the IDS) than for
    shallow ones (the passive monitor).
    """

    #: Per-packet processing time during normal operation.
    packet_processing: float = 200e-6
    #: Multiplier applied to packet processing while a get/put is in progress.
    transfer_slowdown: float = 1.02
    #: Fixed cost before the first chunk of a per-flow get is produced.
    get_base: float = 2e-3
    #: Cost per entry scanned during a per-flow get (the linear search).
    get_scan_per_entry: float = 1.5e-6
    #: Serialisation + send cost per exported per-flow chunk.
    get_per_chunk: float = 600e-6
    #: Cost to deserialise and install one per-flow chunk (≈ get/6 in the paper).
    put_per_chunk: float = 100e-6
    #: Cost to delete per-flow state matching a pattern (per chunk removed).
    del_per_chunk: float = 10e-6
    #: Fixed cost for exporting shared state plus per-byte serialisation cost.
    shared_get_base: float = 1e-3
    shared_get_per_byte: float = 65e-9
    #: Fixed cost for importing (or merging) shared state plus per-byte cost.
    shared_put_base: float = 1e-3
    shared_put_per_byte: float = 30e-9
    #: Cost of configuration operations and other small control actions.
    config_op: float = 500e-6
    #: Cost for re-processing a replayed packet (no external side effects).
    reprocess_packet: float = 150e-6


class MiddleboxInterface(abc.ABC):
    """Abstract southbound API implemented by every OpenMB-enabled middlebox."""

    name: str
    mb_type: str
    costs: ProcessingCosts

    # -- configuration state (section 4.1.1) ------------------------------------

    @abc.abstractmethod
    def get_config(self, key: str) -> dict:
        """Return the configuration subtree under *key* as a flat mapping."""

    @abc.abstractmethod
    def set_config(self, key: str, values: list) -> None:
        """Set the ordered values stored under *key*."""

    @abc.abstractmethod
    def del_config(self, key: str) -> None:
        """Delete *key* and its subtree."""

    # -- per-flow state (sections 4.1.2-4.1.3) ------------------------------------

    @abc.abstractmethod
    def get_perflow(
        self,
        role: StateRole,
        pattern: FlowPattern,
        *,
        mark_transfer: bool = False,
        track_dirty: bool = False,
        compress: Optional[bool] = None,
    ) -> List[StateChunk]:
        """Export sealed per-flow chunks of the given role matching *pattern*.

        With ``mark_transfer`` the exported flows are flagged so subsequent
        packets touching them raise re-process events.  With ``track_dirty``
        the store instead arms dirty-key tracking at the snapshot instant (the
        pre-copy bulk round): the flows stay un-frozen and later mutations are
        recorded for the delta rounds.  ``compress`` overrides the
        implementation's payload-compression default for this export.
        """

    def iter_perflow(
        self,
        role: StateRole,
        pattern: FlowPattern,
        *,
        mark_transfer: bool = False,
        track_dirty: bool = False,
        compress: Optional[bool] = None,
    ) -> Iterator[StateChunk]:
        """Stream sealed per-flow chunks instead of materialising the list.

        The southbound agent pumps this iterator in bounded batches so a
        million-flow export never resides in memory at once.  The default
        delegates to :meth:`get_perflow`, so implementations that only provide
        the list form remain correct (they just pay the full materialisation).
        Implementations whose setup side effects must happen at the *call*
        (arming dirty tracking, marking flows) should override this with an
        eager-setup generator.
        """
        return iter(
            self.get_perflow(
                role,
                pattern,
                mark_transfer=mark_transfer,
                track_dirty=track_dirty,
                compress=compress,
            )
        )

    def get_perflow_dirty(
        self,
        role: StateRole,
        pattern: FlowPattern,
        *,
        mark_transfer: bool = False,
        compress: Optional[bool] = None,
    ) -> List[StateChunk]:
        """Export chunks for flows dirtied since the last drain (pre-copy round).

        ``mark_transfer`` makes this the final stop-and-copy round: every flow
        matching *pattern* is flagged for re-process events and dirty tracking
        stops.  The default returns nothing, so middleboxes without per-flow
        stores still accept pre-copy requests (the controller simply sees an
        always-empty dirty set and freezes immediately).
        """
        return []

    def iter_perflow_dirty(
        self,
        role: StateRole,
        pattern: FlowPattern,
        *,
        mark_transfer: bool = False,
        compress: Optional[bool] = None,
    ) -> Iterator[StateChunk]:
        """Stream the dirty-delta chunks; default delegates to the list form."""
        return iter(
            self.get_perflow_dirty(
                role, pattern, mark_transfer=mark_transfer, compress=compress
            )
        )

    def dirty_perflow_count(self, role: StateRole, pattern: Optional[FlowPattern] = None) -> int:
        """Number of flows currently dirty in the store of the given role.

        With *pattern* the count covers matching flows only (the convergence
        signal for pattern-restricted pre-copy moves).
        """
        return 0

    @abc.abstractmethod
    def put_perflow(self, chunk: StateChunk, *, round: Optional[tuple] = None) -> None:
        """Import one sealed per-flow chunk.

        ``round`` is the pre-copy round tag; an implementation must drop the
        chunk when a newer round already installed state for its flow.
        """

    @abc.abstractmethod
    def del_perflow(self, role: StateRole, pattern: FlowPattern) -> int:
        """Delete per-flow state of the given role matching *pattern*; returns count."""

    # -- shared state ---------------------------------------------------------------

    @abc.abstractmethod
    def get_shared(self, role: StateRole, *, mark_transfer: bool = False) -> Optional[SharedChunk]:
        """Export the sealed shared state of the given role (None when the MB has none)."""

    @abc.abstractmethod
    def put_shared(self, chunk: SharedChunk) -> None:
        """Import shared state, merging with any existing shared state."""

    # -- statistics, events, transfers ----------------------------------------------

    @abc.abstractmethod
    def state_stats(self, pattern: FlowPattern) -> dict:
        """Counts and sizes of state matching *pattern* (the ``stats`` call)."""

    @abc.abstractmethod
    def enable_events(self, code: str, pattern: Optional[FlowPattern] = None, until: Optional[float] = None) -> None:
        """Enable generation of introspection events with *code*."""

    @abc.abstractmethod
    def disable_events(self, code: str, pattern: Optional[FlowPattern] = None) -> None:
        """Disable generation of introspection events with *code*."""

    @abc.abstractmethod
    def end_transfer(self) -> None:
        """Clear transfer markers set by get operations (clone/merge completion)."""

    def end_dirty_tracking(self) -> None:
        """Stop pre-copy dirty tracking without touching transfer markers.

        The scoped cleanup a failed pre-copy move owes its source.  Default:
        no-op, for middleboxes without per-flow stores.
        """

    def end_shared_transfer(self) -> None:
        """Clear only the shared-transfer flag (a clone/merge finalizing).

        Per-flow transfer markers — owned by moves — survive.  The default
        falls back to the whole-middlebox reset for implementations that
        predate the scoped variant.
        """
        self.end_transfer()

    def hold_flows(self, keys: List) -> None:
        """Queue fresh packets for *keys* until :meth:`release_flows` is called.

        Used by order-preserving transfers: the destination must not process
        live packets for a moved flow until the controller has replayed the
        flow's buffered events in order.  The default is a no-op so that
        middleboxes without a data plane still accept order-preserving puts.
        """

    def release_flows(self, keys: List) -> None:
        """End per-flow transfer involvement for *keys* (TRANSFER_RELEASE).

        Lifts any packet hold installed by :meth:`hold_flows` (queued packets
        are processed in arrival order) and clears the flows' transfer markers
        so they stop raising re-process events.  Default: no-op.
        """

    def purge_transfer_state(self) -> int:
        """Drop all transfer involvement locally (crash/teardown cleanup).

        The controller calls this when the instance is unregistered or
        declared dead mid-operation: holds, queued packets, install-round
        tags, dirty tracking, and transfer markers must not outlive the
        operations that owned them.  Returns the number of queued packets
        discarded; the default (for middleboxes without a data plane) is a
        no-op.
        """
        return 0

    @abc.abstractmethod
    def reprocess(self, packet: Packet, *, shared: bool) -> None:
        """Re-process a replayed packet to update state, suppressing side effects."""

    @abc.abstractmethod
    def perflow_count(self, role: StateRole) -> int:
        """Number of per-flow state entries of the given role (for scan-cost modelling)."""

    @abc.abstractmethod
    def set_event_sink(self, sink: Callable[[Event], None]) -> None:
        """Register where raised events are delivered (the southbound agent)."""


@dataclass
class AgentStats:
    """Counters kept by a southbound agent."""

    requests_handled: int = 0
    chunks_sent: int = 0
    chunks_received: int = 0
    events_sent: int = 0
    errors_sent: int = 0
    gets_in_progress: int = 0


class SouthboundAgent:
    """Message-level adapter between one middlebox and its control channel."""

    def __init__(self, sim: Simulator, middlebox: MiddleboxInterface, channel: ControlChannel) -> None:
        self.sim = sim
        self.middlebox = middlebox
        self.channel = channel
        self.stats = AgentStats()
        # The middlebox handles state-import work sequentially (a single control
        # thread in the paper's prototype), so puts queue behind one another:
        # one runtime lane serialises them.
        self._import = sim.lane(f"import:{middlebox.name}")
        #: Liveness beacon period; None (the default) sends no heartbeats, so
        #: the seed's event schedule is untouched unless liveness is enabled.
        self._heartbeat_interval: Optional[float] = None
        channel.bind_middlebox(self.handle_message)
        middlebox.set_event_sink(self.send_event)

    # -- liveness ----------------------------------------------------------------------

    def start_heartbeats(self, interval: float) -> None:
        """Begin sending periodic HEARTBEAT beacons to the controller.

        The loop stops by itself when the instance crashes or is unregistered,
        so a dead agent cannot keep the simulator's event queue alive.
        """
        if self._heartbeat_interval is not None:
            self._heartbeat_interval = interval
            return
        self._heartbeat_interval = interval
        self.sim.schedule(interval, self._heartbeat_tick)

    def stop_heartbeats(self) -> None:
        """Stop the heartbeat loop (instance terminated or crashed)."""
        self._heartbeat_interval = None

    def _heartbeat_tick(self) -> None:
        """Send one beacon and reschedule, unless the agent is dead/detached."""
        if self._heartbeat_interval is None:
            return
        if self.channel.middlebox_down or self.channel.controller_detached:
            self._heartbeat_interval = None
            return
        self.channel.send_to_controller(messages.heartbeat(self.middlebox.name))
        self.sim.schedule(self._heartbeat_interval, self._heartbeat_tick)

    # -- middlebox -> controller -------------------------------------------------------

    def send_event(self, event: Event) -> None:
        """Forward an event raised by the middlebox to the controller."""
        self.stats.events_sent += 1
        self.channel.send_to_controller(messages.event_message(event))

    def _send(self, message: Message) -> None:
        self.channel.send_to_controller(message)

    def _ack(self, request: Message, body: Optional[dict] = None) -> None:
        self._send(Message(MessageType.ACK, reply_to=request.xid, mb=self.middlebox.name, body=body or {}))

    def _error(self, request: Message, reason: str) -> None:
        self.stats.errors_sent += 1
        self._send(Message(MessageType.ERROR, reply_to=request.xid, mb=self.middlebox.name, body={"reason": reason}))

    # -- controller -> middlebox -------------------------------------------------------

    def handle_message(self, message: Message) -> None:
        """Dispatch one request from the controller.

        A BATCH frame is pure framing: it is not counted as a request itself
        (its inner messages are, as they re-enter here), so
        ``requests_handled`` equals the logical request count whether or not
        the controller coalesced the wire.
        """
        if message.type != MessageType.BATCH:
            self.stats.requests_handled += 1
        handler = {
            MessageType.BATCH: self._handle_batch,
            MessageType.GET_CONFIG: self._handle_get_config,
            MessageType.SET_CONFIG: self._handle_set_config,
            MessageType.DEL_CONFIG: self._handle_del_config,
            MessageType.GET_PERFLOW: self._handle_get_perflow,
            MessageType.GET_PERFLOW_DELTA: self._handle_get_perflow_delta,
            MessageType.PUT_PERFLOW: self._handle_put_perflow,
            MessageType.PUT_PERFLOW_BATCH: self._handle_put_perflow_batch,
            MessageType.DEL_PERFLOW: self._handle_del_perflow,
            MessageType.TRANSFER_HOLD: self._handle_transfer_hold,
            MessageType.TRANSFER_RELEASE: self._handle_transfer_release,
            MessageType.GET_SHARED: self._handle_get_shared,
            MessageType.PUT_SHARED: self._handle_put_shared,
            MessageType.GET_STATS: self._handle_get_stats,
            MessageType.ENABLE_EVENTS: self._handle_enable_events,
            MessageType.DISABLE_EVENTS: self._handle_disable_events,
            MessageType.TRANSFER_END: self._handle_transfer_end,
            MessageType.REPROCESS_PACKET: self._handle_reprocess,
        }.get(message.type)
        if handler is None:
            self._error(message, f"unsupported message type {message.type!r}")
            return
        try:
            handler(message)
        except (StateError, GranularityError, MiddleboxError) as exc:
            self._error(message, str(exc))

    def _handle_batch(self, message: Message) -> None:
        """Unframe a BATCH and dispatch its inner requests in order.

        Each inner message runs through the normal handler table, so costs,
        ACKs, and error replies are identical to the unbatched case — the
        batch only saved the channel round-trips.
        """
        for inner in messages.decode_batch(message):
            self.handle_message(inner)

    # configuration ---------------------------------------------------------------------

    def _handle_get_config(self, message: Message) -> None:
        def respond() -> None:
            try:
                values = self.middlebox.get_config(message.body.get("key", "*"))
            except Exception as exc:  # config errors become protocol errors
                self._error(message, str(exc))
                return
            self._send(
                Message(
                    MessageType.CONFIG_VALUE,
                    reply_to=message.xid,
                    mb=self.middlebox.name,
                    body={"values": values},
                )
            )

        self.sim.schedule(self.middlebox.costs.config_op, respond)

    def _handle_set_config(self, message: Message) -> None:
        def respond() -> None:
            try:
                self.middlebox.set_config(message.body["key"], list(message.body.get("values", [])))
            except Exception as exc:
                self._error(message, str(exc))
                return
            self._ack(message)

        self.sim.schedule(self.middlebox.costs.config_op, respond)

    def _handle_del_config(self, message: Message) -> None:
        def respond() -> None:
            try:
                self.middlebox.del_config(message.body["key"])
            except Exception as exc:
                self._error(message, str(exc))
                return
            self._ack(message)

        self.sim.schedule(self.middlebox.costs.config_op, respond)

    # per-flow state ----------------------------------------------------------------------

    def _handle_get_perflow(self, message: Message) -> None:
        role = StateRole(message.body["role"])
        pattern = FlowPattern.parse(message.body.get("pattern"))
        mark_transfer = bool(message.body.get("transfer", False))
        track_dirty = bool(message.body.get("track_dirty", False))
        compress = True if message.body.get("compress") else None
        costs = self.middlebox.costs
        scan_cost = costs.get_base + costs.get_scan_per_entry * self.middlebox.perflow_count(role)
        self.stats.gets_in_progress += 1

        def run_get() -> None:
            try:
                chunks = self.middlebox.iter_perflow(
                    role,
                    pattern,
                    mark_transfer=mark_transfer,
                    track_dirty=track_dirty,
                    compress=compress,
                )
            except OpenMBError as exc:
                self.stats.gets_in_progress -= 1
                self._error(message, str(exc))
                return
            self._pump_chunks(message, role, chunks, pattern if track_dirty else None)

        self.sim.schedule(scan_cost, run_get)

    def _handle_get_perflow_delta(self, message: Message) -> None:
        """One pre-copy round: stream the dirtied chunks, report residual dirt.

        ``final`` requests the stop-and-copy round (mark-transfer the pattern,
        stop tracking).  The GET_COMPLETE reply always carries the dirty count
        *at completion time* — dirt that accumulated while this round was
        being exported — which is what the controller compares against the
        spec's ``dirty_threshold``.

        Unlike the bulk get, the pre-scan cost here is charged per *dirty*
        entry, not per stored entry: the sharded store tracks dirty keys
        explicitly, so a delta round over a million-flow store costs
        O(dirtied) — that is what keeps the stop-and-copy freeze window flat
        as the store scales.
        """
        role = StateRole(message.body["role"])
        pattern = FlowPattern.parse(message.body.get("pattern"))
        final = bool(message.body.get("final", False))
        compress = True if message.body.get("compress") else None
        costs = self.middlebox.costs
        scan_cost = costs.get_base + costs.get_scan_per_entry * self.middlebox.dirty_perflow_count(
            role, pattern
        )
        self.stats.gets_in_progress += 1

        def run_get() -> None:
            try:
                chunks = self.middlebox.iter_perflow_dirty(
                    role, pattern, mark_transfer=final, compress=compress
                )
            except OpenMBError as exc:
                self.stats.gets_in_progress -= 1
                self._error(message, str(exc))
                return
            self._pump_chunks(message, role, chunks, pattern)

        self.sim.schedule(scan_cost, run_get)

    #: Chunks drawn from a middlebox export iterator per pump step.  Bounds the
    #: agent's resident set during a get to one batch of sealed chunks, however
    #: large the matching flow set is.
    GET_STREAM_BATCH = 256

    def _pump_chunks(
        self,
        message: Message,
        role: StateRole,
        chunks: Iterator[StateChunk],
        dirty_pattern: Optional[FlowPattern],
        sent: int = 0,
    ) -> None:
        """Stream an export iterator in bounded batches.

        Draws up to :data:`GET_STREAM_BATCH` chunks, schedules each one chunk
        per message spaced by the per-chunk serialisation cost, and re-arms
        itself after the batch's worth of cost.  The resulting wire schedule is
        identical to materialising the whole list up front — chunk *j* still
        leaves at ``t0 + (j + 1) * get_per_chunk`` and GET_COMPLETE at
        ``t0 + n * get_per_chunk`` — but peak memory is O(batch), not O(flows).
        """
        costs = self.middlebox.costs
        try:
            batch = list(islice(chunks, self.GET_STREAM_BATCH))
        except OpenMBError as exc:
            self.stats.gets_in_progress -= 1
            self._error(message, str(exc))
            return
        for index, chunk in enumerate(batch):
            self.sim.schedule(costs.get_per_chunk * (index + 1), self._send_chunk, message, chunk)
        sent += len(batch)
        if len(batch) == self.GET_STREAM_BATCH:
            self.sim.schedule(
                costs.get_per_chunk * len(batch),
                self._pump_chunks,
                message,
                role,
                chunks,
                dirty_pattern,
                sent,
            )
            return
        self.sim.schedule(
            costs.get_per_chunk * len(batch),
            self._send_get_complete,
            message,
            role,
            sent,
            dirty_pattern,
        )

    def _send_chunk(self, request: Message, chunk: StateChunk) -> None:
        self.stats.chunks_sent += 1
        reply = messages.Message(
            MessageType.STATE_CHUNK,
            reply_to=request.xid,
            mb=self.middlebox.name,
            body={"chunk": messages.encode_chunk(chunk)},
        )
        self._send(reply)

    def _send_get_complete(
        self, request: Message, role: StateRole, count: int, dirty_pattern: Optional[FlowPattern] = None
    ) -> None:
        self.stats.gets_in_progress -= 1
        body = {"role": role.value, "count": count}
        if dirty_pattern is not None:
            # Dirt that accumulated while the chunks were being exported —
            # restricted to the transfer's pattern — is the controller's
            # signal for whether another pre-copy round pays off.
            body["dirty"] = self.middlebox.dirty_perflow_count(role, dirty_pattern)
        self._send(
            Message(
                MessageType.GET_COMPLETE,
                reply_to=request.xid,
                mb=self.middlebox.name,
                body=body,
            )
        )

    @staticmethod
    def _round_tag(message: Message) -> Optional[tuple]:
        """Decode a put's pre-copy round tag (None for snapshot puts)."""
        raw = message.body.get("round")
        return tuple(raw) if raw is not None else None

    def _handle_put_perflow(self, message: Message) -> None:
        chunk = messages.decode_chunk(message.body["chunk"])
        hold = bool(message.body.get("hold", False))
        round_tag = self._round_tag(message)

        def respond() -> None:
            try:
                # The round kwarg is only passed when tagged, so middlebox
                # subclasses that override put_perflow with the legacy
                # single-argument signature keep working for snapshot puts.
                if round_tag is None:
                    self.middlebox.put_perflow(chunk)
                else:
                    self.middlebox.put_perflow(chunk, round=round_tag)
            except OpenMBError as exc:
                self._error(message, str(exc))
                return
            if hold:
                self.middlebox.hold_flows([chunk.key])
            self.stats.chunks_received += 1
            self._ack(message, {"key": chunk.key.as_dict(), "role": chunk.role.value})

        self._import.submit(self.middlebox.costs.put_per_chunk, respond)

    def _handle_put_perflow_batch(self, message: Message) -> None:
        chunks = [messages.decode_chunk(body) for body in message.body.get("chunks", [])]
        hold = bool(message.body.get("hold", False))
        round_tag = self._round_tag(message)

        def respond() -> None:
            installed = 0
            try:
                for chunk in chunks:
                    if round_tag is None:
                        self.middlebox.put_perflow(chunk)
                    else:
                        self.middlebox.put_perflow(chunk, round=round_tag)
                    installed += 1
            except OpenMBError as exc:
                self.stats.chunks_received += installed
                self._error(message, str(exc))
                return
            if hold:
                self.middlebox.hold_flows([chunk.key for chunk in chunks])
            self.stats.chunks_received += len(chunks)
            self._ack(message, {"count": len(chunks)})

        # Importing a batch occupies the single import thread for the sum of the
        # per-chunk costs, but produces a single ACK.
        self._import.submit(self.middlebox.costs.put_per_chunk * max(1, len(chunks)), respond)

    def _handle_del_perflow(self, message: Message) -> None:
        role = StateRole(message.body["role"])
        pattern = FlowPattern.parse(message.body.get("pattern"))

        def respond() -> None:
            try:
                removed = self.middlebox.del_perflow(role, pattern)
            except OpenMBError as exc:
                self._error(message, str(exc))
                return
            self._ack(message, {"removed": removed})

        # Model the deletion cost as proportional to the number of entries scanned.
        cost = self.middlebox.costs.del_per_chunk * max(1, self.middlebox.perflow_count(role))
        self.sim.schedule(cost, respond)

    # shared state --------------------------------------------------------------------------

    def _handle_get_shared(self, message: Message) -> None:
        role = StateRole(message.body["role"])
        mark_transfer = bool(message.body.get("transfer", False))
        costs = self.middlebox.costs

        def respond() -> None:
            chunk = self.middlebox.get_shared(role, mark_transfer=mark_transfer)
            if chunk is None:
                self._send(
                    Message(
                        MessageType.GET_COMPLETE,
                        reply_to=message.xid,
                        mb=self.middlebox.name,
                        body={"role": role.value, "count": 0},
                    )
                )
                return
            delay = costs.shared_get_per_byte * chunk.size
            self.sim.schedule(
                delay,
                self._send,
                Message(
                    MessageType.SHARED_STATE,
                    reply_to=message.xid,
                    mb=self.middlebox.name,
                    body={"chunk": messages.encode_shared_chunk(chunk)},
                ),
            )

        self.sim.schedule(costs.shared_get_base, respond)

    def _handle_put_shared(self, message: Message) -> None:
        chunk = messages.decode_shared_chunk(message.body["chunk"])
        costs = self.middlebox.costs
        delay = costs.shared_put_base + costs.shared_put_per_byte * chunk.size

        def respond() -> None:
            try:
                self.middlebox.put_shared(chunk)
            except OpenMBError as exc:
                self._error(message, str(exc))
                return
            self._ack(message, {"role": chunk.role.value})

        self.sim.schedule(delay, respond)

    # statistics, events, transfers -------------------------------------------------------------

    def _handle_get_stats(self, message: Message) -> None:
        pattern = FlowPattern.parse(message.body.get("pattern"))

        def respond() -> None:
            try:
                stats = self.middlebox.state_stats(pattern)
            except OpenMBError as exc:
                self._error(message, str(exc))
                return
            self._send(
                Message(
                    MessageType.STATS_REPLY,
                    reply_to=message.xid,
                    mb=self.middlebox.name,
                    body={"stats": stats},
                )
            )

        self.sim.schedule(self.middlebox.costs.config_op, respond)

    def _handle_enable_events(self, message: Message) -> None:
        pattern = FlowPattern.parse(message.body.get("pattern")) if "pattern" in message.body else None
        self.middlebox.enable_events(message.body["code"], pattern, message.body.get("until"))
        self._ack(message)

    def _handle_disable_events(self, message: Message) -> None:
        pattern = FlowPattern.parse(message.body.get("pattern")) if "pattern" in message.body else None
        self.middlebox.disable_events(message.body["code"], pattern)
        self._ack(message)

    def _handle_transfer_end(self, message: Message) -> None:
        if message.body.get("dirty_only", False):
            # Scoped pre-copy cleanup: stop dirty tracking, leave transfer
            # markers owned by concurrent operations untouched.
            self.middlebox.end_dirty_tracking()
        elif message.body.get("shared_only", False):
            # A finalizing clone/merge only ever armed the shared flag; it
            # must not clear per-flow markers owned by a concurrent move.
            self.middlebox.end_shared_transfer()
        else:
            self.middlebox.end_transfer()
        self._ack(message)

    def _handle_transfer_hold(self, message: Message) -> None:
        from .flowspace import FlowKey

        keys = [FlowKey.from_dict(body) for body in message.body.get("keys", [])]
        self.middlebox.hold_flows(keys)
        self._ack(message, {"count": len(keys)})

    def _handle_transfer_release(self, message: Message) -> None:
        from .flowspace import FlowKey

        keys = [FlowKey.from_dict(body) for body in message.body.get("keys", [])]
        self.middlebox.release_flows(keys)
        self._ack(message, {"count": len(keys)})

    def _handle_reprocess(self, message: Message) -> None:
        packet = messages.decode_packet(message.body["packet"]) if "packet" in message.body else None
        shared = bool(message.body.get("shared", False))

        def respond() -> None:
            if packet is not None:
                self.middlebox.reprocess(packet, shared=shared)
            self._ack(message)

        self.sim.schedule(self.middlebox.costs.reprocess_packet, respond)
