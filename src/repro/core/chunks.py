"""Encoding and sealing of state chunks.

Per-flow and shared state cross the southbound API as *sealed chunks*: the
middlebox serialises its native state object to bytes, encrypts it with its
type-wide sealing key, and hands the controller an opaque blob tagged only
with the flow key (for per-flow state) and the state role.  This module holds
the serialisation format (a JSON envelope with explicit support for ``bytes``
and a small set of registered object codecs) and the helpers that turn native
objects into :class:`~repro.core.state.StateChunk` /
:class:`~repro.core.state.SharedChunk` instances and back.
"""

from __future__ import annotations

import base64
import json
import zlib
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple

from . import crypto
from .errors import SealError, StateError
from .flowspace import FlowKey
from .state import SharedChunk, StateChunk, StateRole

#: Registry of object codecs: tag -> (type, to_plain, from_plain).
_CODECS: Dict[str, Tuple[type, Callable[[Any], Any], Callable[[Any], Any]]] = {}


def register_codec(tag: str, cls: type, to_plain: Callable[[Any], Any], from_plain: Callable[[Any], Any]) -> None:
    """Register a codec so instances of *cls* can appear inside chunk payloads.

    Middlebox modules register their state classes at import time; the tag is
    embedded in the serialised form so the receiving instance reconstructs the
    same type.
    """
    _CODECS[tag] = (cls, to_plain, from_plain)


def _encode_value(value: Any) -> Any:
    """Recursively convert a payload value to JSON-encodable form."""
    if isinstance(value, bytes):
        return {"__bytes__": base64.b64encode(value).decode("ascii")}
    if isinstance(value, tuple):
        return {"__tuple__": [_encode_value(item) for item in value]}
    if isinstance(value, FlowKey):
        return {"__flowkey__": value.as_dict()}
    if isinstance(value, dict):
        return {str(key): _encode_value(item) for key, item in value.items()}
    if isinstance(value, (list,)):
        return [_encode_value(item) for item in value]
    for tag, (cls, to_plain, _) in _CODECS.items():
        if isinstance(value, cls):
            return {"__obj__": tag, "data": _encode_value(to_plain(value))}
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise StateError(f"cannot serialise value of type {type(value).__name__} in a state chunk")


def _decode_value(value: Any) -> Any:
    """Inverse of :func:`_encode_value`."""
    if isinstance(value, dict):
        if "__bytes__" in value and len(value) == 1:
            return base64.b64decode(value["__bytes__"])
        if "__tuple__" in value and len(value) == 1:
            return tuple(_decode_value(item) for item in value["__tuple__"])
        if "__flowkey__" in value and len(value) == 1:
            return FlowKey.from_dict(value["__flowkey__"])
        if "__obj__" in value and "data" in value and len(value) == 2:
            tag = value["__obj__"]
            if tag not in _CODECS:
                raise StateError(f"no codec registered for serialised object tag {tag!r}")
            _, _, from_plain = _CODECS[tag]
            return from_plain(_decode_value(value["data"]))
        return {key: _decode_value(item) for key, item in value.items()}
    if isinstance(value, list):
        return [_decode_value(item) for item in value]
    return value


def encode_value(value: Any) -> Any:
    """Public helper: convert a payload value to JSON-encodable form."""
    return _encode_value(value)


def decode_value(value: Any) -> Any:
    """Public helper: inverse of :func:`encode_value`."""
    return _decode_value(value)


def serialize_payload(payload: Any, *, compress: bool = False) -> bytes:
    """Serialise a native state payload to bytes (optionally zlib-compressed).

    Compression reproduces the paper's section 8.3 optimisation where state is
    compressed by roughly 38 % to reduce controller-side transfer time.
    """
    raw = json.dumps(_encode_value(payload), sort_keys=True, separators=(",", ":")).encode("utf-8")
    if compress:
        return b"Z" + zlib.compress(raw, level=6)
    return b"R" + raw


def deserialize_payload(data: bytes) -> Any:
    """Reconstruct a native state payload from its serialised form."""
    if not data:
        raise StateError("empty state payload")
    marker, body = data[:1], data[1:]
    if marker == b"Z":
        body = zlib.decompress(body)
    elif marker != b"R":
        raise StateError(f"unknown payload marker {marker!r}")
    return _decode_value(json.loads(body.decode("utf-8")))


@dataclass
class ChunkCodec:
    """Seals and unseals state chunks for one middlebox type.

    Instances of the same middlebox type share a sealing key (derived from the
    type name), so state exported by one instance can only be imported by a
    peer of the same type — the controller in between sees ciphertext.
    """

    key: crypto.SealingKey
    compress: bool = False

    @classmethod
    def for_mb_type(cls, mb_type: str, *, compress: bool = False) -> "ChunkCodec":
        return cls(crypto.SealingKey.derive(f"openmb-mb-type:{mb_type}"), compress=compress)

    # -- per-flow chunks -------------------------------------------------------

    def seal_perflow(
        self,
        flow_key: FlowKey,
        payload: Any,
        role: StateRole,
        metadata: Optional[dict] = None,
        *,
        compress: Optional[bool] = None,
    ) -> StateChunk:
        """Serialise and encrypt one per-flow state object.

        *compress* overrides the codec-wide default for this one chunk —
        transfers negotiate compression per :class:`TransferSpec`, so a get
        serving a compressing transfer passes ``True`` here without flipping
        the codec every other caller shares.
        """
        use_compress = self.compress if compress is None else compress
        blob = crypto.seal(self.key, serialize_payload(payload, compress=use_compress))
        return StateChunk(key=flow_key, role=role, blob=blob, metadata=dict(metadata or {}))

    def unseal_perflow(self, chunk: StateChunk) -> Any:
        """Decrypt and deserialise one per-flow chunk."""
        try:
            raw = crypto.unseal(self.key, chunk.blob)
        except crypto.SealError as exc:
            raise SealError(str(exc)) from exc
        return deserialize_payload(raw)

    # -- shared chunks ---------------------------------------------------------

    def seal_shared(
        self,
        payload: Any,
        role: StateRole,
        metadata: Optional[dict] = None,
        *,
        compress: Optional[bool] = None,
    ) -> SharedChunk:
        """Serialise and encrypt one shared state object.

        *compress* overrides the codec-wide default for this one chunk, as in
        :meth:`seal_perflow`.
        """
        use_compress = self.compress if compress is None else compress
        blob = crypto.seal(self.key, serialize_payload(payload, compress=use_compress))
        return SharedChunk(role=role, blob=blob, metadata=dict(metadata or {}))

    def unseal_shared(self, chunk: SharedChunk) -> Any:
        """Decrypt and deserialise one shared chunk."""
        try:
            raw = crypto.unseal(self.key, chunk.blob)
        except crypto.SealError as exc:
            raise SealError(str(exc)) from exc
        return deserialize_payload(raw)
