"""Transfer guarantees and pipeline tuning for stateful operations.

The paper's prototype implements exactly one flavor of state movement:
sequential per-chunk get→put with unconditional event buffering.  Real
deployments want to trade consistency for speed, so the controller accepts a
:class:`TransferSpec` with every ``moveInternal`` / ``cloneSupport`` /
``mergeInternal`` call.  A spec combines:

* a **guarantee** (:class:`TransferGuarantee`) — what happens to the packets
  that keep updating state while its transfer is in flight:

  - ``NO_GUARANTEE``: re-process events raised during the transfer are
    dropped; updates made at the source after its state was snapshotted may be
    lost.  Fastest, weakest.
  - ``LOSS_FREE``: events are buffered per flow until the destination has
    ACKed the put for that flow's state, then replayed (the seed's behaviour,
    paper Figure 5).  No update is lost, but replays can interleave with
    packets the destination processes directly.
  - ``ORDER_PRESERVING``: additionally, puts carry a *hold* flag so the
    destination queues fresh packets for a moved flow until the controller has
    replayed that flow's buffered events in order and sent a per-flow
    ``TRANSFER_RELEASE``.  Updates are applied in arrival order; slowest.

* a **mode** (:class:`TransferMode`) — how the bulk of the state crosses the
  wire relative to the freeze point:

  - ``SNAPSHOT``: the seed's single-pass discipline.  One get marks every
    matching flow as in-transfer up front, so the event-buffering window (the
    "freeze") spans the *whole* transfer and grows with total state size.
  - ``PRECOPY``: iterative pre-copy borrowed from live VM migration.  The
    bulk round streams a snapshot while the source keeps processing packets
    un-frozen; versioned dirty-key tracking records which flows were updated;
    up to ``max_rounds`` bounded delta rounds resend only the dirtied chunks
    (round-tagged so a stale round can never overwrite newer destination
    state); once the dirty set falls to ``dirty_threshold`` or the round
    budget is spent, a short stop-and-copy round marks the flows in-transfer
    and moves only the final dirty delta — the freeze window shrinks from
    O(total state) to O(final delta).  ``max_rounds=0`` degrades to
    bit-for-bit ``SNAPSHOT`` behaviour.

* **optimizations** for the chunk pipeline:

  - ``parallelism`` — how many put messages may be in flight (unACKed) at
    once.  ``0`` means unbounded (puts issued as chunks stream in, the seed's
    behaviour); ``1`` is the fully sequential strawman that waits for each
    put's ACK before issuing the next.
  - ``batch_size`` — how many chunks are packed into one
    ``PUT_PERFLOW_BATCH`` message.  Batching amortises the controller's
    per-message cost over many chunks (one ACK per batch instead of one per
    chunk), which is the standard lever for bulk inter-node transfers.
  - ``early_release`` — as soon as a flow's state is installed at the
    destination and its buffered events are flushed, send the *source* a
    per-flow ``TRANSFER_RELEASE`` so it stops raising re-process events for
    that flow.  Reduces event volume during long transfers, at the cost of
    losing updates that hit the source after the release (weaker than pure
    loss-free; use with NO_GUARANTEE or after rerouting).

``TransferSpec.default()`` reproduces the seed's single hard-coded flavor
exactly (loss-free, unbounded pipelined puts, no batching, no early release),
so existing control applications keep their semantics.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Dict, Union


class TransferGuarantee(enum.Enum):
    """Consistency level applied to in-transfer state updates."""

    NO_GUARANTEE = "no_guarantee"
    LOSS_FREE = "loss_free"
    ORDER_PRESERVING = "order_preserving"


class TransferMode(enum.Enum):
    """How state crosses the wire relative to the freeze point.

    ``SNAPSHOT`` is the paper's single-pass copy (freeze spans the whole
    transfer); ``PRECOPY`` streams bulk + bounded dirty-delta rounds first and
    freezes only for the final delta.  See the module docstring.
    """

    SNAPSHOT = "snapshot"
    PRECOPY = "precopy"


@dataclass(frozen=True)
class TransferSpec:
    """How a stateful northbound operation moves its chunks and events.

    See the module docstring for the meaning of each field.  Instances are
    immutable and hashable so they can key per-configuration statistics.
    """

    guarantee: TransferGuarantee = TransferGuarantee.LOSS_FREE
    #: Maximum put/batch messages awaiting an ACK; 0 = unbounded (seed default).
    parallelism: int = 0
    #: Chunks per PUT_PERFLOW_BATCH message; 1 = one classic put per chunk.
    batch_size: int = 1
    #: Release the source's per-flow transfer marker as soon as the flow is moved.
    early_release: bool = False
    #: Copy discipline: single-pass SNAPSHOT (the seed) or iterative PRECOPY.
    mode: TransferMode = TransferMode.SNAPSHOT
    #: Pre-copy only: maximum dirty-delta rounds between the bulk round and the
    #: final stop-and-copy.  0 degrades PRECOPY to bit-for-bit SNAPSHOT.
    max_rounds: int = 3
    #: Pre-copy only: stop iterating (and freeze) once the dirty set is this small.
    dirty_threshold: int = 0
    #: Pre-copy only: WAN-adaptive inter-round pacing gain.  After each
    #: non-final round the operation waits ``wan_pacing`` times the *measured*
    #: duration of the round it just finished before starting the next one, so
    #: the gap between delta rounds stretches automatically with the observed
    #: bandwidth, latency, and jitter of the (possibly inter-domain) channel.
    #: ``0.0`` (the default) keeps today's back-to-back round scheduling.
    wan_pacing: float = 0.0
    #: Negotiate zlib compression of chunk payloads for this transfer: the
    #: source seals each exported chunk compressed and the batch framing is
    #: marked so the destination knows what it is installing.  Reproduces the
    #: paper's section 8.3 optimisation (~38 % smaller state) as a per-transfer
    #: knob — the WAN lever for cross-datacenter moves where bandwidth, not
    #: CPU, is the scarce resource.
    compress: bool = False

    def __post_init__(self) -> None:
        """Validate field ranges; raises ValueError on malformed specs."""
        if not isinstance(self.guarantee, TransferGuarantee):
            raise ValueError(f"guarantee must be a TransferGuarantee, got {self.guarantee!r}")
        if not isinstance(self.mode, TransferMode):
            raise ValueError(f"mode must be a TransferMode, got {self.mode!r}")
        if self.parallelism < 0:
            raise ValueError(f"parallelism must be >= 0, got {self.parallelism}")
        if self.batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.max_rounds < 0:
            raise ValueError(f"max_rounds must be >= 0, got {self.max_rounds}")
        if self.dirty_threshold < 0:
            raise ValueError(f"dirty_threshold must be >= 0, got {self.dirty_threshold}")
        if self.wan_pacing < 0:
            raise ValueError(f"wan_pacing must be >= 0, got {self.wan_pacing}")

    # -- canned configurations ---------------------------------------------------------

    @classmethod
    def default(cls) -> "TransferSpec":
        """The seed's behaviour: loss-free, pipelined single-chunk puts."""
        return cls()

    @classmethod
    def sequential(cls, guarantee: TransferGuarantee = TransferGuarantee.LOSS_FREE) -> "TransferSpec":
        """Strictly sequential puts: wait for each ACK before the next put."""
        return cls(guarantee=guarantee, parallelism=1)

    @classmethod
    def parallel(
        cls, window: int = 0, guarantee: TransferGuarantee = TransferGuarantee.LOSS_FREE
    ) -> "TransferSpec":
        """Pipelined puts with up to *window* messages in flight (0 = unbounded)."""
        return cls(guarantee=guarantee, parallelism=window)

    @classmethod
    def batched(
        cls, batch_size: int = 32, guarantee: TransferGuarantee = TransferGuarantee.LOSS_FREE
    ) -> "TransferSpec":
        """Pack *batch_size* chunks per put message, one ACK per batch."""
        return cls(guarantee=guarantee, batch_size=batch_size)

    @classmethod
    def precopy(
        cls,
        max_rounds: int = 3,
        dirty_threshold: int = 0,
        guarantee: TransferGuarantee = TransferGuarantee.LOSS_FREE,
        **fields: Any,
    ) -> "TransferSpec":
        """Iterative pre-copy: bulk + dirty-delta rounds, then a short freeze."""
        return cls(
            guarantee=guarantee,
            mode=TransferMode.PRECOPY,
            max_rounds=max_rounds,
            dirty_threshold=dirty_threshold,
            **fields,
        )

    # -- parsing -----------------------------------------------------------------------

    @classmethod
    def parse(cls, value: Union["TransferSpec", TransferGuarantee, str, Dict[str, Any], None]) -> "TransferSpec":
        """Coerce a user-supplied value into a spec.

        Accepts an existing spec, a guarantee (enum or its string value), a
        mapping of constructor fields, or None (the default spec).  Malformed
        input raises :class:`~repro.core.errors.SpecError`.
        """
        from .errors import SpecError

        def guarantee_of(raw: object) -> TransferGuarantee:
            if isinstance(raw, TransferGuarantee):
                return raw
            try:
                return TransferGuarantee(raw)
            except ValueError:
                known = ", ".join(g.value for g in TransferGuarantee)
                raise SpecError(f"unknown transfer guarantee {raw!r} (expected one of {known})") from None

        def mode_of(raw: object) -> TransferMode:
            if isinstance(raw, TransferMode):
                return raw
            try:
                return TransferMode(raw)
            except ValueError:
                known = ", ".join(m.value for m in TransferMode)
                raise SpecError(f"unknown transfer mode {raw!r} (expected one of {known})") from None

        if value is None:
            return cls.default()
        if isinstance(value, cls):
            return value
        if isinstance(value, (TransferGuarantee, str)):
            return cls(guarantee=guarantee_of(value))
        if isinstance(value, dict):
            fields = dict(value)
            guarantee = guarantee_of(fields.pop("guarantee", TransferGuarantee.LOSS_FREE))
            mode = mode_of(fields.pop("mode", TransferMode.SNAPSHOT))
            known_fields = {
                "parallelism",
                "batch_size",
                "early_release",
                "max_rounds",
                "dirty_threshold",
                "wan_pacing",
                "compress",
            }
            unknown = sorted(set(fields) - known_fields)
            if unknown:
                raise SpecError(
                    f"unknown TransferSpec field(s) {', '.join(map(repr, unknown))} "
                    f"(expected guarantee, mode, {', '.join(sorted(known_fields))})"
                )
            try:
                return cls(guarantee=guarantee, mode=mode, **fields)
            except (TypeError, ValueError) as exc:
                raise SpecError(f"malformed TransferSpec mapping {value!r}: {exc}") from exc
        raise SpecError(f"cannot interpret {value!r} as a TransferSpec")

    # -- derived properties ------------------------------------------------------------

    @property
    def holds_destination_flows(self) -> bool:
        """True when puts must carry the hold flag (order-preserving mode).

        Pre-copy operations apply the hold only to their final stop-and-copy
        puts (the operation gates it per round); this property states the
        guarantee-level requirement.
        """
        return self.guarantee is TransferGuarantee.ORDER_PRESERVING

    @property
    def is_precopy(self) -> bool:
        """True when the transfer actually iterates (PRECOPY with rounds > 0).

        ``PRECOPY`` with ``max_rounds=0`` is defined to degrade to bit-for-bit
        ``SNAPSHOT`` behaviour, so it reports False here.
        """
        return self.mode is TransferMode.PRECOPY and self.max_rounds > 0

    def describe(self) -> str:
        """Short human-readable tag used in benchmark tables and records."""
        parts = [self.guarantee.value]
        if self.is_precopy:
            parts.append(f"precopy{self.max_rounds}")
            if self.dirty_threshold > 0:
                parts.append(f"thr{self.dirty_threshold}")
            if self.wan_pacing > 0:
                parts.append(f"wan{self.wan_pacing:g}")
        if self.parallelism == 1:
            parts.append("seq")
        elif self.parallelism > 1:
            parts.append(f"par{self.parallelism}")
        if self.batch_size > 1:
            parts.append(f"batch{self.batch_size}")
        if self.early_release:
            parts.append("early-release")
        if self.compress:
            parts.append("zlib")
        return "+".join(parts)
