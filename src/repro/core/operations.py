"""Northbound operation state machines.

The controller (paper section 5) turns each northbound call into a sequence of
southbound requests.  The sequencing logic for the three stateful operations —
``moveInternal``, ``cloneSupport``, and ``mergeInternal`` — lives here.

Since the transfer-strategy refactor each stateful operation is composed from
two pluggable pieces parameterised by a
:class:`~repro.core.transfer.TransferSpec`:

* a **chunk pipeline** (:class:`ChunkPipeline`) that ships streamed state
  chunks to the destination — sequentially (window of 1), pipelined (bounded
  or unbounded window), or batched (many chunks per ``PUT_PERFLOW_BATCH``
  message with a single ACK);
* a **guarantee policy** (:class:`GuaranteePolicy` subclasses) that decides
  what happens to the re-process events raised while the transfer is in
  flight — dropped (``NO_GUARANTEE``), buffered per flow until the
  destination ACKs that flow's state and then replayed (``LOSS_FREE``, the
  paper's Figure 5), or replayed in order behind a destination-side per-flow
  packet hold that is lifted with ``TRANSFER_RELEASE`` (``ORDER_PRESERVING``).

``TransferSpec.default()`` reproduces the seed's original single flavor:
loss-free with puts issued as chunks stream in.

* **move** (Figure 5): issue per-flow supporting and reporting gets at the
  source; stream every chunk through the pipeline to the destination; apply
  the guarantee policy to events; the operation *returns* when both gets have
  completed, every put is ACKed, and the policy has drained (for
  order-preserving: every moved flow released); after a quiescence period with
  no further events, delete the moved state at the source.
* **clone**: get shared supporting state at the source, put it at the
  destination; forward shared re-process events after the put is ACKed; after
  quiescence, tell the source the transfer ended (no delete).
* **merge**: like clone but for shared supporting *and* shared reporting
  state; the destination's own merge logic combines the states.
"""

from __future__ import annotations

import enum
import itertools
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Deque, Dict, List, Optional, Set, Tuple, TYPE_CHECKING

from ..net.simulator import Future
from . import messages
from .events import Event
from .flowspace import FlowKey, FlowPattern
from .messages import Message, MessageType
from .state import StateChunk, StateRole
from .transfer import TransferGuarantee, TransferMode, TransferSpec

if TYPE_CHECKING:  # pragma: no cover
    from .controller import MBController

_operation_ids = itertools.count(1)


class OperationType(enum.Enum):
    """Kinds of northbound operations the controller brokers."""

    READ_CONFIG = "readConfig"
    WRITE_CONFIG = "writeConfig"
    STATS = "stats"
    MOVE = "moveInternal"
    CLONE = "cloneSupport"
    MERGE = "mergeInternal"


@dataclass
class OperationRecord:
    """Measurements collected for one northbound operation."""

    op_id: int
    type: OperationType
    src: str
    dst: str
    pattern: Optional[FlowPattern] = None
    started_at: float = 0.0
    completed_at: Optional[float] = None
    finalized_at: Optional[float] = None
    chunks_transferred: int = 0
    bytes_transferred: int = 0
    events_received: int = 0
    events_buffered: int = 0
    events_forwarded: int = 0
    events_dropped: int = 0
    #: Events raised before this operation started (stale markers left by a
    #: failed predecessor move): their updates are already inside this
    #: operation's snapshot, so replaying them would double-apply.
    events_stale: int = 0
    puts_acked: int = 0
    batches_sent: int = 0
    releases_sent: int = 0
    deleted_chunks: int = 0
    #: Controller shard whose event/ACK loop ran this operation.
    home_shard: int = 0
    #: TransferSpec parameters the operation ran with.
    guarantee: str = TransferGuarantee.LOSS_FREE.value
    parallelism: int = 0
    batch_size: int = 1
    early_release: bool = False
    #: Copy discipline the operation ran under ("snapshot" or "precopy").
    mode: str = TransferMode.SNAPSHOT.value
    #: Pre-copy: copy rounds performed before the stop-and-copy freeze
    #: (the bulk round counts as one; snapshot operations report 0).
    precopy_rounds: int = 0
    #: WAN-adaptive inter-round pacing gain the operation ran with
    #: (see :attr:`~repro.core.transfer.TransferSpec.wan_pacing`).
    wan_pacing: float = 0.0
    #: Per-round measurements: one dict per copy round with ``round``,
    #: ``chunks``, ``bytes``, ``dirty_after`` (flows re-dirtied while the round
    #: streamed), ``duration``, and ``final`` (the stop-and-copy round).
    rounds: List[dict] = field(default_factory=list)
    #: When the freeze (event-buffering window) began: the operation start for
    #: snapshot transfers, the stop-and-copy round for pre-copy transfers.
    freeze_started_at: Optional[float] = None

    @property
    def duration(self) -> Optional[float]:
        """Time from start until the operation returned (None while running)."""
        if self.completed_at is None:
            return None
        return self.completed_at - self.started_at

    @property
    def freeze_window(self) -> Optional[float]:
        """Length of the event-buffering/freeze window (None while running).

        For snapshot moves this equals :attr:`duration`; for pre-copy moves it
        covers only the final stop-and-copy round — the quantity the pre-copy
        discipline exists to shrink.
        """
        if self.completed_at is None or self.freeze_started_at is None:
            return None
        return self.completed_at - self.freeze_started_at


class OperationHandle:
    """What a control application gets back from a stateful northbound call.

    Three futures resolve in order:

    * ``state_installed`` — every state chunk the source exported has been put
      and ACKed at the destination.  This is the earliest point at which
      re-routing the affected flows is safe, and it is what the transaction
      coordinator orders route installation on (re-process events absorb the
      remaining races);
    * ``completed`` — the operation returns in the paper's sense (all puts
      ACKed, and — for order-preserving transfers — every moved flow
      released);
    * ``finalized`` — the post-quiescence step ran (delete at the source for
      moves, transfer-end for clone/merge).
    """

    def __init__(self, sim, record: OperationRecord) -> None:
        self.record = record
        self.state_installed: Future = sim.event(name=f"{record.type.value}#{record.op_id}.installed")
        self.completed: Future = sim.event(name=f"{record.type.value}#{record.op_id}")
        self.finalized: Future = sim.event(name=f"{record.type.value}#{record.op_id}.finalized")
        #: Back-reference for transaction abort; set by the operation itself.
        self._operation: Optional["_StatefulOperation"] = None

    @property
    def op_id(self) -> int:
        """The operation's controller-assigned identifier."""
        return self.record.op_id


class StandbyRetryHandle:
    """Handle facade over a move that retries onto a standby destination.

    Crash-safe moves (``move_internal(..., standby=...)``) return this instead
    of a plain :class:`OperationHandle`.  It mirrors the handle surface —
    ``record`` / ``op_id`` / ``state_installed`` / ``completed`` /
    ``finalized`` — but the futures are *outer* futures: when the primary
    destination dies mid-move (:class:`~repro.core.errors.UnknownMiddleboxError`,
    which covers both crashes and unregisters) while the source and the
    standby are still alive, a fresh move is started against the standby and
    the outer futures resolve with the retry's outcome.  The retry is
    loss-free because a failed move never deletes (or finalises) anything at
    the source: the second attempt re-exports the full, current state.
    """

    def __init__(
        self,
        controller: "MBController",
        src: str,
        dst: str,
        pattern: Optional[FlowPattern],
        spec: Optional[TransferSpec],
        standby: str,
    ) -> None:
        self.controller = controller
        self.sim = controller.sim
        self.src = src
        self.pattern = pattern
        self.spec = spec
        self.standby = standby
        #: Per-attempt inner handles, primary first.
        self.attempts: List[OperationHandle] = []
        self.retried = False
        #: True between the retry decision and the standby attempt's launch
        #: (the window where the source's marker release is still in flight).
        self._awaiting_retry = False
        self.state_installed: Future = self.sim.event(name=f"moveInternal[{src}->{dst}|{standby}].installed")
        self.completed: Future = self.sim.event(name=f"moveInternal[{src}->{dst}|{standby}]")
        self.finalized: Future = self.sim.event(name=f"moveInternal[{src}->{dst}|{standby}].finalized")
        self._start_attempt(dst)

    # -- handle surface ------------------------------------------------------------

    @property
    def record(self) -> OperationRecord:
        """The current (latest) attempt's measurements."""
        return self.attempts[-1].record

    @property
    def op_id(self) -> int:
        """The current attempt's controller-assigned operation id."""
        return self.attempts[-1].op_id

    @property
    def _operation(self):
        """Abort plumbing: transactions abort whichever attempt is current."""
        return self.attempts[-1]._operation

    # -- attempt wiring ------------------------------------------------------------

    def _start_attempt(self, dst: str) -> None:
        """Launch one inner move and chain its futures to the outer ones."""
        self._awaiting_retry = False
        handle = self.controller.move_internal(self.src, dst, self.pattern, self.spec)
        self.attempts.append(handle)
        handle.state_installed.add_done_callback(self._on_installed)
        handle.completed.add_done_callback(lambda future, h=handle: self._on_completed(h, future))
        handle.finalized.add_done_callback(lambda future, h=handle: self._on_finalized(h, future))

    def _on_installed(self, future: Future) -> None:
        """Propagate the first successful install point to the outer future."""
        if future.exception is None and not self.state_installed.done:
            self.state_installed.succeed(future.result)

    def _should_retry(self, exc: BaseException) -> bool:
        """Retry exactly once, when the dst died but src and standby live on."""
        from .errors import UnknownMiddleboxError

        if self.retried or not isinstance(exc, UnknownMiddleboxError):
            return False
        failed_dst = self.attempts[-1].record.dst
        return (
            failed_dst != self.standby
            and not self.controller.is_registered(failed_dst)
            and self.controller.is_registered(self.src)
            and self.controller.is_registered(self.standby)
        )

    def _on_completed(self, handle: OperationHandle, future: Future) -> None:
        """Resolve the outer completion — or launch the standby retry."""
        if handle is not self.attempts[-1]:
            return  # a superseded attempt; its outcome no longer matters
        if future.exception is None:
            if not self.completed.done:
                self.completed.succeed(future.result)
            return
        if self._should_retry(future.exception):
            self.retried = True
            self._awaiting_retry = True
            self.controller.stats.standby_retries += 1
            self._retry_after_source_release()
            return
        if not self.state_installed.done:
            self.state_installed.fail(future.exception)
        if not self.completed.done:
            self.completed.fail(future.exception)

    def _retry_after_source_release(self) -> None:
        """Launch the standby attempt once the source confirmed the marker release.

        The failed attempt left (and its failure cleanup releases) per-flow
        transfer markers at the source.  Events those stale markers raise
        before the release lands carry updates the retry's snapshot will
        already contain — replaying them would double-apply.  Waiting for the
        ACK of a (second, idempotent) release closes the window exactly: the
        source's channel is FIFO in both directions, so every stale-marker
        event is dispatched at the controller *before* this ACK — while no
        retry operation exists to buffer it — and no event can be raised
        after the release applied.
        """
        operation = self.attempts[-1]._operation
        flows = sorted(operation.pipeline._all_flows) if operation is not None else []
        started = {"done": False}

        def begin(_message: Optional[Message] = None) -> None:
            if started["done"]:
                return
            started["done"] = True
            self._start_attempt(self.standby)

        if not flows or not self.controller.try_send(
            self.src, messages.transfer_release(self.src, flows), on_reply=begin
        ):
            begin()

    def _on_finalized(self, handle: OperationHandle, future: Future) -> None:
        """Propagate the *current* attempt's finalisation to the outer future."""
        # _fail resolves completed before finalized, so by the time a failing
        # attempt's finalized callback runs, a retry has already replaced it
        # at attempts[-1] (or is pending behind the source-release ACK) and
        # this guard skips the stale notification.
        if handle is not self.attempts[-1] or self._awaiting_retry:
            return
        if future.exception is None:
            if not self.finalized.done:
                self.finalized.succeed(future.result)
            return
        if not self.state_installed.done:
            self.state_installed.fail(future.exception)
        if not self.completed.done:
            self.completed.fail(future.exception)
        if not self.finalized.done:
            self.finalized.fail(future.exception)


class _StatefulOperation:
    """Shared machinery for move/clone/merge."""

    op_type: OperationType = OperationType.MOVE

    def __init__(
        self,
        controller: "MBController",
        src: str,
        dst: str,
        pattern: Optional[FlowPattern] = None,
        spec: Optional[TransferSpec] = None,
    ) -> None:
        self.controller = controller
        self.sim = controller.sim
        self.src = src
        self.dst = dst
        self.pattern = pattern
        self.spec = spec or TransferSpec.default()
        #: Home shard: the controller loop that sends this operation's
        #: southbound requests and absorbs their replies/ACKs.
        self.home_shard = controller.coordinator.home_shard(pattern)
        #: Every shard the operation's pattern could own flows on; its event
        #: interest is broadcast to all of them (wildcards span the ring).
        self.shards = controller.coordinator.shards_for_pattern(pattern)
        self.record = OperationRecord(
            op_id=next(_operation_ids),
            type=self.op_type,
            src=src,
            dst=dst,
            pattern=pattern,
            started_at=self.sim.now,
            home_shard=self.home_shard.shard_id,
            guarantee=self.spec.guarantee.value,
            parallelism=self.spec.parallelism,
            batch_size=self.spec.batch_size,
            early_release=self.spec.early_release,
            # PRECOPY with max_rounds=0 degrades to snapshot; record what ran.
            mode=(TransferMode.PRECOPY if self.spec.is_precopy else TransferMode.SNAPSHOT).value,
            wan_pacing=self.spec.wan_pacing,
        )
        self.handle = OperationHandle(self.sim, self.record)
        self.handle._operation = self
        self._last_event_at = self.sim.now
        self._finalize_scheduled = False
        self._finalized = False
        self._archived = False
        #: (event id, destination) replay-dedup tokens this operation added;
        #: pruned from the controller when the operation finishes.
        self._forward_tokens: Set[Tuple[int, str]] = set()
        #: (destination, flow key) install-sequence tokens this operation
        #: stamped; pruned alongside the replay tokens.
        self._install_tokens: Set[Tuple[str, FlowKey]] = set()

    # -- hooks implemented by subclasses -------------------------------------------

    def start(self) -> None:
        """Issue the operation's first southbound requests."""
        raise NotImplementedError

    def on_event(self, event: Event) -> None:
        """Handle a re-process event routed to this operation."""
        raise NotImplementedError

    def _finalize(self) -> None:
        """Run the post-quiescence step (source delete / transfer end)."""
        raise NotImplementedError

    # -- common helpers -------------------------------------------------------------

    def _complete(self) -> None:
        """Resolve the completed (and, if pending, state_installed) futures."""
        if self.handle.completed.done:
            return
        if not self.handle.state_installed.done:
            self.handle.state_installed.succeed(self.record)
        self.record.completed_at = self.sim.now
        self.handle.completed.succeed(self.record)
        self._arm_quiescence()

    def _fail(self, exc: Exception) -> None:
        """Fail every unresolved future with *exc* and archive the operation."""
        # Cancel any scheduled quiescence finalisation so the operation cannot
        # be archived a second time after failing.
        self._finalized = True
        if not self.handle.state_installed.done:
            self.handle.state_installed.fail(exc)
        if not self.handle.completed.done:
            self.handle.completed.fail(exc)
        if not self.handle.finalized.done:
            self.handle.finalized.fail(exc)
        self._finish()

    def abort(self, exc: Exception) -> bool:
        """Abort on behalf of a failing transaction; returns True when acted.

        An operation still in flight is failed outright (for order-preserving
        moves this releases the destination's per-flow packet holds via the
        normal failure cleanup).  An operation that already completed but has
        not yet finalised has its destructive post-quiescence step (the source
        delete / transfer-end) cancelled so the source keeps its state.
        """
        if self._archived or self._finalized:
            return False
        if not self.handle.completed.done:
            self._fail(exc)
            return True
        self._finalized = True
        if not self.handle.finalized.done:
            self.handle.finalized.fail(exc)
        self._finish()
        return True

    def _finish(self) -> None:
        """Hand the operation back to the controller exactly once."""
        if self._archived:
            return
        self._archived = True
        self.controller._operation_finished(self)

    def _forward(self, event: Event, on_reply=None) -> bool:
        """Ensure *event* is replayed at the destination; True when a message went out.

        ``events_forwarded`` counts events whose replay at the destination
        this operation ensured — including ones a concurrent operation's
        replay already covers (``"covered"``), where no duplicate message is
        sent and *on_reply* will never fire.
        """
        disposition = self.controller.forward_event(
            self.dst, event, on_reply=on_reply, shard=self.home_shard
        )
        if disposition in ("sent", "covered"):
            self.record.events_forwarded += 1
            self._forward_tokens.add((event.event_id, self.dst))
        return disposition == "sent"

    def _touch_event_clock(self) -> None:
        """Note event activity; postpones the quiescence-triggered finalize."""
        self._last_event_at = self.sim.now

    def _arm_quiescence(self) -> None:
        """Schedule the quiescence check that triggers finalisation."""
        if self._finalize_scheduled or self._finalized:
            return
        self._finalize_scheduled = True
        self.sim.schedule(self.controller.config.quiescence_timeout, self._quiescence_check)

    def _quiescence_check(self) -> None:
        """Finalize if the operation has been idle for the quiescence timeout."""
        self._finalize_scheduled = False
        if self._finalized:
            return
        idle_for = self.sim.now - self._last_event_at
        if idle_for + 1e-12 >= self.controller.config.quiescence_timeout:
            self._finalized = True
            self._finalize()
        else:
            # Events arrived recently; check again once the remaining idle time elapses.
            self._finalize_scheduled = True
            self.sim.schedule(
                self.controller.config.quiescence_timeout - idle_for, self._quiescence_check
            )

    def _mark_finalized(self) -> None:
        """Resolve the finalized future and hand the record to the archive."""
        self.record.finalized_at = self.sim.now
        if not self.handle.finalized.done:
            self.handle.finalized.succeed(self.record)
        self._finish()


# =========================================================================================
# Chunk pipeline: how state chunks travel from the get stream to the destination
# =========================================================================================


class ChunkPipeline:
    """Ships streamed per-flow chunks to a move's destination.

    The pipeline enforces the :class:`TransferSpec` optimizations:

    * ``parallelism`` bounds how many put/batch messages may be awaiting an
      ACK (0 = unbounded, the seed's put-on-arrival behaviour; 1 = fully
      sequential);
    * ``batch_size`` packs several chunks into one ``PUT_PERFLOW_BATCH``
      message, amortising the controller's per-message handling cost (one ACK
      per batch instead of one per chunk).

    When the last chunk of a flow is ACKed the pipeline notifies the
    operation (``_flow_acked``), which lets the guarantee policy flush that
    flow's buffered events.

    Pre-copy moves run the same pipeline once per copy round:
    :meth:`begin_round` re-opens the stream for the next round's chunks and
    :meth:`enter_final_phase` forgets the per-flow ACK history so the final
    stop-and-copy round buffers events per flow again (see
    :meth:`MoveOperation._enter_final_phase`).
    """

    def __init__(self, operation: "MoveOperation") -> None:
        self.op = operation
        self.spec = operation.spec
        #: Chunks accepted but not yet put on the wire (window closed / batch filling).
        self._queue: Deque[StateChunk] = deque()
        #: Put/batch messages sent and not yet ACKed.
        self._in_flight = 0
        #: Canonical flow key -> chunks sent or queued but not yet ACKed.
        self._pending_chunks: Dict[FlowKey, int] = {}
        #: Flows whose chunks seen so far are all ACKed.
        self._acked_flows: Set[FlowKey] = set()
        #: Every flow that ever entered the pipeline (failure cleanup).
        self._all_flows: Set[FlowKey] = set()
        self._source_done = False

    # -- pre-copy rounds ---------------------------------------------------------------

    def begin_round(self) -> None:
        """Re-open the chunk stream for the next pre-copy round."""
        self._source_done = False

    def enter_final_phase(self) -> None:
        """Forget per-flow ACK history at the stop-and-copy freeze.

        From this instant the guarantee policy must buffer events per flow
        again: a flow ACKed in an earlier round may receive a final delta
        chunk, and replaying its events before that chunk installs would let
        the chunk overwrite the replayed updates.  Flows that get no final
        chunk have their buffered events flushed when the round drains — by
        then every final install has been ACKed, so replays order after them.
        """
        self._acked_flows.clear()

    # -- feeding ---------------------------------------------------------------------

    def add_chunk(self, chunk: StateChunk) -> None:
        """Accept one streamed chunk and dispatch it when the window allows."""
        canonical = chunk.key.bidirectional()
        if canonical in self._acked_flows:
            # A flow's supporting and reporting chunks stream from two
            # independent gets, so a second chunk can arrive after the first
            # was already ACKed (and the flow's events flushed/released).
            # Reopen the flow: the policy re-buffers its events until this
            # chunk is ACKed too.
            self._acked_flows.discard(canonical)
            self.op._flow_reopened(canonical)
        self._all_flows.add(canonical)
        self._pending_chunks[canonical] = self._pending_chunks.get(canonical, 0) + 1
        self._queue.append(chunk)
        self._dispatch()

    def source_done(self) -> None:
        """The source's gets have completed; flush any partially filled batch."""
        self._source_done = True
        self._dispatch()

    @property
    def drained(self) -> bool:
        """True once every accepted chunk has been put and ACKed."""
        return (
            self._source_done
            and not self._queue
            and self._in_flight == 0
            and not self._pending_chunks
        )

    # -- dispatching ------------------------------------------------------------------

    def _window_open(self) -> bool:
        """True while another put may be issued under the parallelism bound."""
        return self.spec.parallelism == 0 or self._in_flight < self.spec.parallelism

    def _dispatch(self) -> None:
        """Put queued chunks on the wire while the parallelism window allows."""
        if self.op._archived:
            return  # the operation failed; do not keep feeding the destination
        # Order-preserving holds apply only once the destination may actually
        # see live traffic for the flow — i.e. not during pre-copy warm rounds.
        hold = self.spec.holds_destination_flows and self.op._holds_apply
        round_tag = self.op._put_round_tag
        while self._queue and self._window_open():
            if self.spec.batch_size > 1:
                if len(self._queue) < self.spec.batch_size and not self._source_done:
                    return  # wait for a full batch (or the end of the stream)
                batch = [
                    self._queue.popleft()
                    for _ in range(min(self.spec.batch_size, len(self._queue)))
                ]
                seq = self.op.controller.next_transfer_seq()
                message = messages.put_perflow_batch(
                    self.op.dst,
                    batch,
                    hold=hold,
                    seq=seq,
                    round=round_tag,
                    compressed=self.spec.compress,
                )
                keys = tuple(chunk.key.bidirectional() for chunk in batch)
                self.op.record.batches_sent += 1
            else:
                chunk = self._queue.popleft()
                seq = self.op.controller.next_transfer_seq()
                message = messages.put_perflow(self.op.dst, chunk, hold=hold, seq=seq, round=round_tag)
                keys = (chunk.key.bidirectional(),)
            self._in_flight += 1
            self.op.controller.send(
                self.op.dst,
                message,
                on_reply=lambda reply, keys=keys: self._on_put_reply(reply, keys),
                shard=self.op.home_shard,
            )

    def _on_put_reply(self, message: Message, keys: Tuple[FlowKey, ...]) -> None:
        """Book an ACK (or fail on ERROR) for the put covering *keys*."""
        if self.op._archived:
            return  # late reply for a failed operation
        if message.type == MessageType.ERROR:
            from .errors import OperationError

            self.op._fail(
                OperationError(
                    f"move failed at destination {self.op.dst}: {message.body.get('reason')}"
                )
            )
            return
        if message.type != MessageType.ACK:
            return
        self._in_flight -= 1
        self.op.record.puts_acked += len(keys)
        # Stamp the install sequence *before* the per-flow flush callbacks run:
        # replays issued by the guarantee policy below must compare as ordered
        # after this install (they are applied at the destination after it).
        self.op.controller.note_perflow_installed(self.op.dst, keys, operation=self.op)
        for canonical in keys:
            remaining = self._pending_chunks.get(canonical, 0) - 1
            if remaining <= 0:
                self._pending_chunks.pop(canonical, None)
                self._acked_flows.add(canonical)
                self.op._flow_acked(canonical)
            else:
                self._pending_chunks[canonical] = remaining
        self._dispatch()
        self.op._check_complete()


# =========================================================================================
# Guarantee policies: what happens to in-transfer re-process events
# =========================================================================================


class GuaranteePolicy:
    """Event-dissemination policy for one move operation."""

    def __init__(self, operation: "MoveOperation") -> None:
        self.op = operation

    def on_event(self, event: Event) -> None:
        """Decide the fate of one in-transfer re-process event."""
        raise NotImplementedError

    def on_flow_acked(self, canonical: FlowKey) -> None:
        """The destination ACKed the last chunk of this flow's state."""

    def on_flow_reopened(self, canonical: FlowKey) -> None:
        """A new chunk arrived for a flow that was already ACKed."""

    def on_final_stream_drained(self) -> None:
        """The final round's stream is fully ACKed; start any per-flow closure.

        Called (possibly repeatedly — implementations must be idempotent)
        before :attr:`drained` is consulted, so work started here still gates
        completion.  Order-preserving transfers use it to release the moved
        flows the final round did not resend.
        """

    def on_transfer_drained(self) -> None:
        """Gets complete and every put ACKed; flush whatever is still held."""

    @property
    def drained(self) -> bool:
        """Completion gate beyond the chunk pipeline (e.g. releases ACKed)."""
        return True


class NoGuaranteePolicy(GuaranteePolicy):
    """NO_GUARANTEE: in-transfer events are dropped; their updates may be lost."""

    def on_event(self, event: Event) -> None:
        """Drop the event (its update may be lost — the documented trade)."""
        self.op.record.events_dropped += 1


class LossFreePolicy(GuaranteePolicy):
    """LOSS_FREE (paper Figure 5): buffer per flow until the put is ACKed.

    Forwarding earlier would let the replayed packet's updates be overwritten
    when the chunk arrives, violating atomicity requirement (iii).  Honors the
    ``buffer_events`` ablation switch: with buffering disabled events are
    forwarded immediately (and may race the chunks).
    """

    def __init__(self, operation: "MoveOperation") -> None:
        super().__init__(operation)
        self._buffered: Dict[FlowKey, List[Event]] = {}

    def _flow_is_acked(self, canonical: FlowKey) -> bool:
        """True once every chunk seen for this flow is installed at the destination."""
        # The pipeline's acked set is the single source of truth: a flow drops
        # out of it again when a late chunk (its other state role) reopens it,
        # which automatically resumes buffering here.
        return canonical in self.op.pipeline._acked_flows

    def on_event(self, event: Event) -> None:
        """Buffer the event per flow until its state is ACKed, then forward."""
        key = event.key.bidirectional() if event.key is not None else None
        should_buffer = (
            self.op.controller.config.buffer_events
            and key is not None
            and not self._flow_is_acked(key)
            and not self.op.handle.completed.done
        )
        if should_buffer:
            self.op.record.events_buffered += 1
            self._buffered.setdefault(key, []).append(event)
        else:
            self.op._forward(event)

    def on_flow_acked(self, canonical: FlowKey) -> None:
        """Flush the flow's buffered events now that its state is installed."""
        for event in self._buffered.pop(canonical, []):
            self.op._forward(event)

    def on_transfer_drained(self) -> None:
        """Flush everything still buffered once the whole transfer is installed."""
        # Any events still buffered (their flow's chunk was ACKed in the
        # meantime, or the flow produced no chunk at all) can now be replayed.
        for canonical in list(self._buffered):
            for event in self._buffered.pop(canonical, []):
                self.op._forward(event)


class OrderPreservingPolicy(LossFreePolicy):
    """ORDER_PRESERVING: replay buffered events in order behind a packet hold.

    Puts are sent with the *hold* flag, so the destination queues fresh
    packets for a moved flow.  When the flow's state is ACKed the policy
    replays its buffered events (each replay is ACKed by the destination),
    then sends a per-flow ``TRANSFER_RELEASE``; only then does the destination
    process the queued packets, in arrival order.  The operation completes
    once every moved flow has been released.
    """

    def __init__(self, operation: "MoveOperation") -> None:
        super().__init__(operation)
        self._replays_pending: Dict[FlowKey, int] = {}
        self._releasing: Set[FlowKey] = set()
        self._released: Set[FlowKey] = set()
        #: Flows re-held by a chunk that arrived after their release started.
        self._reopened: Set[FlowKey] = set()

    def on_event(self, event: Event) -> None:
        """Buffer per flow until the flow is *released*, not merely ACKed."""
        key = event.key.bidirectional() if event.key is not None else None
        if (
            key is None
            or not self.op.controller.config.buffer_events
            or key in self._released
            or self.op.handle.completed.done
        ):
            self.op._forward(event)
            return
        # Buffer until the flow is *released* (not merely ACKed): events that
        # arrive while earlier replays are in flight must queue behind them.
        self.op.record.events_buffered += 1
        self._buffered.setdefault(key, []).append(event)

    def on_flow_acked(self, canonical: FlowKey) -> None:
        """Start the flow's ordered replay-then-release cycle."""
        self._reopened.discard(canonical)
        self._replay_then_release(canonical)

    def on_flow_reopened(self, canonical: FlowKey) -> None:
        """A later chunk re-held the flow; it will need a fresh release."""
        # A later chunk re-installs the destination hold, so the flow needs a
        # fresh release once that chunk is ACKed.
        self._released.discard(canonical)
        self._reopened.add(canonical)

    def _replay_then_release(self, canonical: FlowKey) -> None:
        """Replay the flow's buffered events in order, then lift its hold."""
        if self.op._archived:
            return  # the operation failed; the blanket cleanup release covers dst
        buffered = self._buffered.pop(canonical, [])
        sent = 0
        for event in buffered:
            if self.op._forward(
                event, on_reply=lambda reply, c=canonical: self._on_replay_reply(c, reply)
            ):
                sent += 1
        if sent:
            self._replays_pending[canonical] = self._replays_pending.get(canonical, 0) + sent
        elif canonical not in self._replays_pending:
            self._send_release(canonical)

    def _on_replay_reply(self, canonical: FlowKey, message: Message) -> None:
        """Count down the flow's in-flight replays; release when they drain."""
        if self.op._archived or message.type not in (MessageType.ACK, MessageType.ERROR):
            return
        remaining = self._replays_pending.get(canonical, 0) - 1
        if remaining > 0:
            self._replays_pending[canonical] = remaining
            return
        self._replays_pending.pop(canonical, None)
        if self._buffered.get(canonical):
            # More events arrived while the replays were in flight; they must
            # be applied before the hold is lifted.
            self._replay_then_release(canonical)
        else:
            self._send_release(canonical)

    def _send_release(self, canonical: FlowKey) -> None:
        """Send the flow's TRANSFER_RELEASE (once) and track its ACK."""
        if self.op._archived or canonical in self._releasing or canonical in self._released:
            return
        self._releasing.add(canonical)
        self.op.record.releases_sent += 1

        def on_reply(message: Message) -> None:
            if self.op._archived or message.type not in (MessageType.ACK, MessageType.ERROR):
                return
            self._releasing.discard(canonical)
            if canonical in self._reopened:
                # A later chunk re-held the flow while this release was in
                # flight; keep it un-released so its re-ACK triggers a fresh
                # replay + release cycle.
                self.op._check_complete()
                return
            self._released.add(canonical)
            # Events that arrived while the release was in flight race the
            # released packets anyway; forward them immediately (loss-free).
            for event in self._buffered.pop(canonical, []):
                self.op._forward(event)
            self.op._check_complete()

        self.op.controller.send(
            self.op.dst,
            messages.transfer_release(self.op.dst, [canonical]),
            on_reply=on_reply,
            shard=self.op.home_shard,
        )

    def on_final_stream_drained(self) -> None:
        """Release every moved flow the final round did not resend.

        Flows resent by the final round run the replay-then-release cycle
        from their put ACKs; flows that were clean at the freeze were held by
        the blanket TRANSFER_HOLD and would otherwise stay held (and their
        post-freeze events stay buffered) forever.  Idempotent: flows already
        released, releasing, or mid-replay are skipped, so snapshot
        operations — where every flow is released from its ACK — see a no-op.
        """
        for canonical in sorted(self.op.pipeline._all_flows):
            if (
                canonical in self._released
                or canonical in self._releasing
                or canonical in self._replays_pending
            ):
                continue
            self._replay_then_release(canonical)

    @property
    def drained(self) -> bool:
        """True once no replay or release is awaiting a destination ACK."""
        return not self._replays_pending and not self._releasing


_POLICIES = {
    TransferGuarantee.NO_GUARANTEE: NoGuaranteePolicy,
    TransferGuarantee.LOSS_FREE: LossFreePolicy,
    TransferGuarantee.ORDER_PRESERVING: OrderPreservingPolicy,
}


# =========================================================================================
# The operations
# =========================================================================================


class MoveOperation(_StatefulOperation):
    """moveInternal: relocate per-flow supporting and reporting state.

    Runs in one of two copy disciplines selected by ``spec.mode``:

    * **snapshot** (the seed, paper Figure 5): one get per role marks every
      matching flow in-transfer up front, so events buffer for the whole
      transfer.
    * **pre-copy** (``spec.is_precopy``): a bulk round streams the state with
      dirty tracking armed and the source un-frozen; bounded delta rounds
      resend only the dirtied chunks (round-tagged so stale rounds are
      superseded at the destination); once the dirty set reported at the end
      of a round is at most ``spec.dirty_threshold`` — or ``spec.max_rounds``
      delta rounds have run — a final stop-and-copy round freezes (marks) the
      flows and moves only the residual delta, shrinking the event-buffering
      window from O(total state) to O(final dirty set).
    """

    op_type = OperationType.MOVE

    def __init__(
        self,
        controller: "MBController",
        src: str,
        dst: str,
        pattern: FlowPattern,
        spec: Optional[TransferSpec] = None,
    ) -> None:
        super().__init__(controller, src, dst, pattern, spec)
        self._gets_outstanding = 0
        self._gets_complete = False
        self.pipeline = ChunkPipeline(self)
        self.policy: GuaranteePolicy = _POLICIES[self.spec.guarantee](self)
        #: Pre-copy round state: current round index (0 = bulk), whether the
        #: stop-and-copy freeze has begun, and per-round measurement scratch.
        self._precopy = self.spec.is_precopy
        if self._precopy and any(
            getattr(operation, "_precopy", False) and not operation._archived
            for operation in controller._active_by_src.get(src, [])
        ):
            # A store has exactly one dirty-tracking context: a second
            # concurrent pre-copy from the same source would clear — and at
            # its own freeze, stop — the first move's tracking and silently
            # lose updates.  Fall back to the snapshot discipline, which
            # composes with anything.
            self._precopy = False
            self.record.mode = TransferMode.SNAPSHOT.value
        self._round = 0
        self._in_final_phase = not self._precopy
        self._round_started_at = self.sim.now
        self._round_chunks = 0
        self._round_bytes = 0
        self._round_dirty: Dict[str, int] = {}

    # -- pre-copy helpers --------------------------------------------------------------

    @property
    def _holds_apply(self) -> bool:
        """Order-preserving holds only make sense once the freeze has begun."""
        return self._in_final_phase

    @property
    def _put_round_tag(self) -> Optional[Tuple[int, int]]:
        """Round tag stamped on this round's puts; None keeps snapshot wire identical.

        The tag pairs the operation id with the round index, so it is
        monotonic across rounds *and* across successive operations touching
        the same destination flows (a later move's round 0 always supersedes
        an earlier move's final round).
        """
        if not self._precopy:
            return None
        return (self.record.op_id, self._round)

    # -- starting ---------------------------------------------------------------------

    def start(self) -> None:
        """Issue the first per-role gets (bulk round for pre-copy transfers)."""
        if self._precopy:
            self._begin_copy_round()
            return
        self.record.freeze_started_at = self.record.started_at
        for role in (StateRole.SUPPORTING, StateRole.REPORTING):
            self._gets_outstanding += 1
            self.controller.send(
                self.src,
                messages.get_perflow(
                    self.src, role, self.pattern, transfer=True, compress=self.spec.compress
                ),
                on_reply=self._on_src_reply,
                shard=self.home_shard,
            )

    def _begin_copy_round(self) -> None:
        """Start one pre-copy round: bulk (round 0), delta, or final stop-and-copy."""
        self._round_started_at = self.sim.now
        self._round_chunks = 0
        self._round_bytes = 0
        self._round_dirty = {}
        self._gets_complete = False
        self.pipeline.begin_round()
        for role in (StateRole.SUPPORTING, StateRole.REPORTING):
            self._gets_outstanding += 1
            if self._round == 0:
                message = messages.get_perflow(
                    self.src,
                    role,
                    self.pattern,
                    transfer=False,
                    track_dirty=True,
                    compress=self.spec.compress,
                )
            else:
                message = messages.get_perflow_delta(
                    self.src,
                    role,
                    self.pattern,
                    round=(self.record.op_id, self._round),
                    final=self._in_final_phase,
                    compress=self.spec.compress,
                )
            self.controller.send(self.src, message, on_reply=self._on_src_reply, shard=self.home_shard)

    def _record_round(self, dirty_after: int) -> None:
        """Archive the finished round's chunk/byte/dirty measurements."""
        self.record.rounds.append(
            {
                "round": self._round,
                "chunks": self._round_chunks,
                "bytes": self._round_bytes,
                "dirty_after": dirty_after,
                "duration": self.sim.now - self._round_started_at,
                "final": self._in_final_phase,
            }
        )

    def _finish_round_and_advance(self) -> None:
        """A warm round drained: decide between another delta round and the freeze."""
        dirty_total = sum(self._round_dirty.values())
        self._record_round(dirty_total)
        if dirty_total <= self.spec.dirty_threshold or self._round >= self.spec.max_rounds:
            self._enter_final_phase()
        else:
            self._round += 1
            # WAN-adaptive pacing: stretch the gap before the next delta round
            # by the measured duration of the round that just drained, scaled
            # by the spec's pacing gain.  Over a slow or jittery inter-domain
            # channel the observed round duration already folds in bandwidth,
            # latency, and jitter, so the pacing self-tunes without probing.
            # A zero gain (the default) keeps today's back-to-back scheduling
            # with no extra simulator events.
            pacing_delay = self.spec.wan_pacing * self.record.rounds[-1]["duration"]
            if pacing_delay > 0:
                self.sim.schedule(pacing_delay, self._start_paced_round)
            else:
                self._begin_copy_round()

    def _start_paced_round(self) -> None:
        """Timer continuation for a WAN-paced delta round (no-op if aborted)."""
        if self._archived:
            return
        self._begin_copy_round()

    def _enter_final_phase(self) -> None:
        """Begin the stop-and-copy round: freeze the flows, move the residual delta."""
        self._round += 1
        self._in_final_phase = True
        self.record.precopy_rounds = self._round
        self.record.freeze_started_at = self.sim.now
        self.pipeline.enter_final_phase()
        if self.spec.holds_destination_flows and self.pipeline._all_flows:
            # Order preservation covers every moved flow, but only final-round
            # puts carry the hold flag and clean flows get no final put.  Hold
            # them all up front — the channel's FIFO applies this before any
            # final-round install, replay, or release — and the final-phase
            # release sweep lifts each one after its ordered replay.
            self.controller.send(
                self.dst,
                messages.transfer_hold(self.dst, sorted(self.pipeline._all_flows)),
                shard=self.home_shard,
            )
        self._begin_copy_round()

    # -- source-side replies ------------------------------------------------------------

    def _on_src_reply(self, message: Message) -> None:
        """Absorb the source's chunk stream, round completions, and errors."""
        if self._archived:
            return  # late reply for a failed operation
        if message.type == MessageType.STATE_CHUNK:
            chunk = messages.decode_chunk(message.body["chunk"])
            self.record.chunks_transferred += 1
            self.record.bytes_transferred += chunk.size
            self._round_chunks += 1
            self._round_bytes += chunk.size
            self.pipeline.add_chunk(chunk)
        elif message.type == MessageType.GET_COMPLETE:
            if "dirty" in message.body:
                self._round_dirty[str(message.body.get("role"))] = int(message.body["dirty"])
            self._gets_outstanding -= 1
            if self._gets_outstanding == 0:
                self._gets_complete = True
                self.pipeline.source_done()
                self._check_complete()
        elif message.type == MessageType.ERROR:
            from .errors import OperationError

            self._fail(OperationError(f"move failed at source {self.src}: {message.body.get('reason')}"))

    # -- failure cleanup -----------------------------------------------------------------

    def _fail(self, exc: Exception) -> None:
        """Release destination holds and stop source-side tracking, then fail."""
        if not self._archived and self.spec.holds_destination_flows:
            # Order-preserving puts installed per-flow packet holds at the
            # destination; release every flow the pipeline touched so a failed
            # move does not blackhole their traffic.  Releasing a flow that
            # was never held (or already released) is a harmless no-op.
            held = list(self.pipeline._all_flows)
            if held and self.controller.try_send(
                self.dst, messages.transfer_release(self.dst, held), shard=self.home_shard
            ):
                self.record.releases_sent += 1
        if not self._archived and self._precopy:
            # A pre-copy move aborted mid-round leaves the source's dirty
            # tracking armed; the dirty_only TRANSFER_END stops it without
            # clearing transfer markers a concurrent operation from the same
            # source may still rely on.
            self.controller.try_send(
                self.src, messages.transfer_end(self.src, dirty_only=True), shard=self.home_shard
            )
        if not self._archived and self.pipeline._all_flows:
            # Clear this move's per-flow transfer markers at the source.  A
            # dead transfer must not keep the flows frozen: their re-process
            # events would stream to a destination that will never install
            # the state, and a standby retry would double-apply updates its
            # own snapshot already contains.  Scoped to the flows this move
            # exported, so markers owned by concurrent operations survive.
            self.controller.try_send(
                self.src,
                messages.transfer_release(self.src, sorted(self.pipeline._all_flows)),
                shard=self.home_shard,
            )
        super()._fail(exc)

    # -- pipeline callbacks --------------------------------------------------------------

    def _flow_reopened(self, canonical: FlowKey) -> None:
        """A new chunk arrived for a flow whose earlier chunks were ACKed."""
        if not self._in_final_phase:
            return  # warm pre-copy rounds carry no event/release obligations
        self.policy.on_flow_reopened(canonical)

    def _flow_acked(self, canonical: FlowKey) -> None:
        """All chunks of this flow are installed at the destination."""
        if not self._in_final_phase:
            # Warm pre-copy rounds: the flow is not frozen (no buffered events
            # to flush, no hold to release, no source marker to clear), and a
            # later round may resend it anyway.
            return
        self.policy.on_flow_acked(canonical)
        if self.spec.early_release:
            # Clear the flow's transfer marker at the source right away so it
            # stops raising re-process events (weaker than pure loss-free:
            # updates hitting the source after this point are not replayed).
            if self.controller.try_send(
                self.src, messages.transfer_release(self.src, [canonical]), shard=self.home_shard
            ):
                self.record.releases_sent += 1

    def _check_complete(self) -> None:
        """Advance the state machine when the current round's stream has drained."""
        if self.handle.completed.done:
            return
        if not self._gets_complete or not self.pipeline.drained:
            return
        if not self._in_final_phase:
            self._finish_round_and_advance()
            return
        if not self.handle.state_installed.done:
            # Every exported chunk is ACKed at the destination.  Re-routing is
            # safe from this point on, which is (deliberately) earlier than
            # ``completed`` for order-preserving transfers: replays and
            # releases still drain while new routes install.
            self.handle.state_installed.succeed(self.record)
        self.policy.on_final_stream_drained()
        if not self.policy.drained:
            return
        self.policy.on_transfer_drained()
        if self._precopy:
            self._record_round(sum(self._round_dirty.values()))
        self._complete()

    # -- events ------------------------------------------------------------------------------

    def on_event(self, event: Event) -> None:
        """Handle a re-process event raised by the source middlebox.

        Events raised at or before the operation's start are discarded: the
        flows must have been marked by an *earlier* transfer (this one arms
        its own markers only after it starts), so the event's update was
        applied at the source before this operation's snapshot was taken and
        is already inside it.  Replaying such an event — the standby-retry
        race, where a retry inherits in-flight events of the attempt it
        replaces — would double-apply the update at the destination.
        """
        if event.raised_at <= self.record.started_at:
            self.record.events_stale += 1
            return
        self.record.events_received += 1
        self._touch_event_clock()
        self.policy.on_event(event)

    # -- finalisation ---------------------------------------------------------------------------

    def _finalize(self) -> None:
        """After quiescence: delete the moved state at the source."""
        pending = {"count": 2}

        def on_delete_reply(message: Message) -> None:
            if message.type not in (MessageType.ACK, MessageType.ERROR):
                return
            if message.type == MessageType.ACK:
                self.record.deleted_chunks += int(message.body.get("removed", 0))
            pending["count"] -= 1
            if pending["count"] == 0:
                self._mark_finalized()

        for role in (StateRole.SUPPORTING, StateRole.REPORTING):
            # The source may have been terminated (e.g. scale-down) before
            # quiescence; there is nothing left to delete then.
            if not self.controller.try_send(
                self.src,
                messages.del_perflow(self.src, role, self.pattern),
                on_reply=on_delete_reply,
                shard=self.home_shard,
            ):
                pending["count"] -= 1
        if pending["count"] == 0:
            self._mark_finalized()


class CloneOperation(_StatefulOperation):
    """cloneSupport: copy shared supporting state from source to destination.

    Shared-state transfers move a single chunk, so the pipeline optimizations
    do not apply; the :class:`TransferSpec` guarantee still selects the event
    policy (NO_GUARANTEE drops events; LOSS_FREE buffers until the put is
    ACKed; ORDER_PRESERVING degrades to loss-free because there is no per-flow
    hold for shared state).
    """

    op_type = OperationType.CLONE

    def __init__(
        self, controller: "MBController", src: str, dst: str, spec: Optional[TransferSpec] = None
    ) -> None:
        spec = spec or TransferSpec.default()
        if spec.guarantee is TransferGuarantee.ORDER_PRESERVING:
            # No per-flow hold exists for shared state, so the operation really
            # runs loss-free; record it as such to keep per-guarantee stats honest.
            spec = replace(spec, guarantee=TransferGuarantee.LOSS_FREE)
        if spec.mode is TransferMode.PRECOPY:
            # Shared state is one chunk; there is nothing to iterate over, so
            # the transfer runs (and is recorded) as a snapshot.
            spec = replace(spec, mode=TransferMode.SNAPSHOT)
        super().__init__(controller, src, dst, pattern=None, spec=spec)
        self._shared_put_pending = False
        self._buffered_events: List[Event] = []

    @property
    def _roles(self) -> List[StateRole]:
        """Shared-state roles this operation transfers (supporting only)."""
        return [StateRole.SUPPORTING]

    def start(self) -> None:
        """Request the source's shared state for every transferred role."""
        self._gets_outstanding = len(self._roles)
        for role in self._roles:
            self.controller.send(
                self.src,
                messages.get_shared(self.src, role, transfer=True),
                on_reply=self._on_src_reply,
                shard=self.home_shard,
            )

    def _on_src_reply(self, message: Message) -> None:
        """Forward the source's shared chunk to the destination (or fail)."""
        if self._archived:
            return  # late reply for a failed operation
        if message.type == MessageType.SHARED_STATE:
            chunk = messages.decode_shared_chunk(message.body["chunk"])
            self.record.chunks_transferred += 1
            self.record.bytes_transferred += chunk.size
            self._shared_put_pending = True
            self.controller.send(
                self.dst, messages.put_shared(self.dst, chunk), on_reply=self._on_put_reply, shard=self.home_shard
            )
            self._gets_outstanding -= 1
        elif message.type == MessageType.GET_COMPLETE:
            # The source had no shared state of this role; nothing to transfer.
            self._gets_outstanding -= 1
            self._maybe_complete()
        elif message.type == MessageType.ERROR:
            from .errors import OperationError

            self._fail(OperationError(f"{self.op_type.value} failed at {self.src}: {message.body.get('reason')}"))

    def _on_put_reply(self, message: Message) -> None:
        """Absorb the destination's put ACK and try to complete."""
        if self._archived:
            return  # late reply for a failed operation
        if message.type == MessageType.ERROR:
            from .errors import OperationError

            self._fail(OperationError(f"{self.op_type.value} failed at {self.dst}: {message.body.get('reason')}"))
            return
        if message.type != MessageType.ACK:
            return
        self.record.puts_acked += 1
        self._shared_put_pending = False
        self._maybe_complete()

    def _maybe_complete(self) -> None:
        """Complete once every get answered and every shared put is ACKed."""
        if self._gets_outstanding == 0 and not self._shared_put_pending:
            for event in self._buffered_events:
                self._forward(event)
            self._buffered_events.clear()
            self._complete()

    def on_event(self, event: Event) -> None:
        """Apply the spec's guarantee to shared-state events raised mid-transfer.

        Only events whose packet updated *shared* state in transfer belong to
        a clone/merge.  A pure per-flow re-process event (raised because a
        concurrent move marked the flow) is ignored here: replaying it is the
        move's responsibility, and doing it from this operation used to poison
        the replay dedup before the move's put was ACKed (the cross-operation
        coordination bug).
        """
        if not event.shared:
            return
        self.record.events_received += 1
        self._touch_event_clock()
        if self.spec.guarantee is TransferGuarantee.NO_GUARANTEE:
            self.record.events_dropped += 1
            return
        if self.controller.config.buffer_events and not self.handle.completed.done:
            self.record.events_buffered += 1
            self._buffered_events.append(event)
        else:
            self._forward(event)

    def _finalize(self) -> None:
        """After quiescence: end the shared transfer at the source (no delete for clones).

        Scoped to the shared flag: a clone/merge never armed per-flow
        transfer markers, and clearing them here would silently unfreeze a
        concurrent move's flows at the same source.
        """

        def on_reply(message: Message) -> None:
            if message.type in (MessageType.ACK, MessageType.ERROR):
                self._mark_finalized()

        if not self.controller.try_send(
            self.src,
            messages.transfer_end(self.src, shared_only=True),
            on_reply=on_reply,
            shard=self.home_shard,
        ):
            # The source was terminated before quiescence; nothing to notify.
            self._mark_finalized()


class MergeOperation(CloneOperation):
    """mergeInternal: merge shared supporting and reporting state into the destination."""

    op_type = OperationType.MERGE

    def __init__(
        self, controller: "MBController", src: str, dst: str, spec: Optional[TransferSpec] = None
    ) -> None:
        super().__init__(controller, src, dst, spec=spec)
        self._pending_put_count = 0

    @property
    def _roles(self) -> List[StateRole]:
        """Merges transfer both shared supporting and shared reporting state."""
        return [StateRole.SUPPORTING, StateRole.REPORTING]

    def _on_src_reply(self, message: Message) -> None:
        """Put each streamed shared chunk, tracking the outstanding count."""
        if message.type == MessageType.SHARED_STATE:
            chunk = messages.decode_shared_chunk(message.body["chunk"])
            self.record.chunks_transferred += 1
            self.record.bytes_transferred += chunk.size
            self._pending_put_count += 1
            self._shared_put_pending = True
            self.controller.send(
                self.dst, messages.put_shared(self.dst, chunk), on_reply=self._on_put_reply, shard=self.home_shard
            )
            self._gets_outstanding -= 1
        else:
            super()._on_src_reply(message)

    def _on_put_reply(self, message: Message) -> None:
        """Count down the outstanding shared puts before completing."""
        if message.type == MessageType.ACK:
            self._pending_put_count -= 1
            if self._pending_put_count > 0:
                self.record.puts_acked += 1
                return
        super()._on_put_reply(message)
