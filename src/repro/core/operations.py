"""Northbound operation state machines.

The controller (paper section 5) turns each northbound call into a sequence of
southbound requests.  The sequencing logic for the three stateful operations —
``moveInternal``, ``cloneSupport``, and ``mergeInternal`` — lives here as
explicit state machines driven by the messages the middleboxes send back:

* **move** (Figure 5): issue per-flow supporting and reporting gets at the
  source; for every chunk streamed back issue a put at the destination; buffer
  re-process events for a flow until that flow's put is ACKed, then forward
  them; the operation *returns* when both gets have completed and every put is
  ACKed; after a quiescence period with no further events, delete the moved
  state at the source.
* **clone**: get shared supporting state at the source, put it at the
  destination; forward shared re-process events after the put is ACKed; after
  quiescence, tell the source the transfer ended (no delete).
* **merge**: like clone but for shared supporting *and* shared reporting
  state; the destination's own merge logic combines the states.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, TYPE_CHECKING

from ..net.simulator import Future
from . import messages
from .events import Event
from .flowspace import FlowKey, FlowPattern
from .messages import Message, MessageType
from .state import StateRole

if TYPE_CHECKING:  # pragma: no cover
    from .controller import MBController

_operation_ids = itertools.count(1)


class OperationType(enum.Enum):
    """Kinds of northbound operations the controller brokers."""

    READ_CONFIG = "readConfig"
    WRITE_CONFIG = "writeConfig"
    STATS = "stats"
    MOVE = "moveInternal"
    CLONE = "cloneSupport"
    MERGE = "mergeInternal"


@dataclass
class OperationRecord:
    """Measurements collected for one northbound operation."""

    op_id: int
    type: OperationType
    src: str
    dst: str
    pattern: Optional[FlowPattern] = None
    started_at: float = 0.0
    completed_at: Optional[float] = None
    finalized_at: Optional[float] = None
    chunks_transferred: int = 0
    bytes_transferred: int = 0
    events_received: int = 0
    events_buffered: int = 0
    events_forwarded: int = 0
    puts_acked: int = 0
    deleted_chunks: int = 0

    @property
    def duration(self) -> Optional[float]:
        """Time from start until the operation returned (None while running)."""
        if self.completed_at is None:
            return None
        return self.completed_at - self.started_at


class OperationHandle:
    """What a control application gets back from a stateful northbound call.

    ``completed`` resolves when the operation returns in the paper's sense
    (all puts ACKed); ``finalized`` resolves after the post-quiescence step
    (delete at the source for moves, transfer-end for clone/merge).
    """

    def __init__(self, sim, record: OperationRecord) -> None:
        self.record = record
        self.completed: Future = sim.event(name=f"{record.type.value}#{record.op_id}")
        self.finalized: Future = sim.event(name=f"{record.type.value}#{record.op_id}.finalized")

    @property
    def op_id(self) -> int:
        return self.record.op_id


class _StatefulOperation:
    """Shared machinery for move/clone/merge."""

    op_type: OperationType = OperationType.MOVE

    def __init__(
        self,
        controller: "MBController",
        src: str,
        dst: str,
        pattern: Optional[FlowPattern] = None,
    ) -> None:
        self.controller = controller
        self.sim = controller.sim
        self.src = src
        self.dst = dst
        self.pattern = pattern
        self.record = OperationRecord(
            op_id=next(_operation_ids),
            type=self.op_type,
            src=src,
            dst=dst,
            pattern=pattern,
            started_at=self.sim.now,
        )
        self.handle = OperationHandle(self.sim, self.record)
        self._last_event_at = self.sim.now
        self._finalize_scheduled = False
        self._finalized = False

    # -- hooks implemented by subclasses -------------------------------------------

    def start(self) -> None:
        raise NotImplementedError

    def on_event(self, event: Event) -> None:
        raise NotImplementedError

    def _finalize(self) -> None:
        raise NotImplementedError

    # -- common helpers -------------------------------------------------------------

    def _complete(self) -> None:
        if self.handle.completed.done:
            return
        self.record.completed_at = self.sim.now
        self.handle.completed.succeed(self.record)
        self._arm_quiescence()

    def _fail(self, exc: Exception) -> None:
        if not self.handle.completed.done:
            self.handle.completed.fail(exc)
        if not self.handle.finalized.done:
            self.handle.finalized.fail(exc)
        self.controller._operation_finished(self)

    def _touch_event_clock(self) -> None:
        self._last_event_at = self.sim.now

    def _arm_quiescence(self) -> None:
        """Schedule the quiescence check that triggers finalisation."""
        if self._finalize_scheduled or self._finalized:
            return
        self._finalize_scheduled = True
        self.sim.schedule(self.controller.config.quiescence_timeout, self._quiescence_check)

    def _quiescence_check(self) -> None:
        self._finalize_scheduled = False
        if self._finalized:
            return
        idle_for = self.sim.now - self._last_event_at
        if idle_for + 1e-12 >= self.controller.config.quiescence_timeout:
            self._finalized = True
            self._finalize()
        else:
            # Events arrived recently; check again once the remaining idle time elapses.
            self._finalize_scheduled = True
            self.sim.schedule(
                self.controller.config.quiescence_timeout - idle_for, self._quiescence_check
            )

    def _mark_finalized(self) -> None:
        self.record.finalized_at = self.sim.now
        if not self.handle.finalized.done:
            self.handle.finalized.succeed(self.record)
        self.controller._operation_finished(self)


class MoveOperation(_StatefulOperation):
    """moveInternal: relocate per-flow supporting and reporting state."""

    op_type = OperationType.MOVE

    def __init__(self, controller: "MBController", src: str, dst: str, pattern: FlowPattern) -> None:
        super().__init__(controller, src, dst, pattern)
        self._gets_outstanding = 0
        self._pending_put_keys: Dict[FlowKey, int] = {}
        #: Flows whose put the destination has already ACKed; events for these
        #: (and only these) may be forwarded immediately.
        self._acked_keys: set = set()
        self._buffered_events: Dict[FlowKey, List[Event]] = {}
        self._gets_complete = False

    # -- starting ---------------------------------------------------------------------

    def start(self) -> None:
        for role in (StateRole.SUPPORTING, StateRole.REPORTING):
            self._gets_outstanding += 1
            self.controller.send(
                self.src,
                messages.get_perflow(self.src, role, self.pattern, transfer=True),
                on_reply=self._on_src_reply,
            )

    # -- source-side replies ------------------------------------------------------------

    def _on_src_reply(self, message: Message) -> None:
        if message.type == MessageType.STATE_CHUNK:
            chunk = messages.decode_chunk(message.body["chunk"])
            self.record.chunks_transferred += 1
            self.record.bytes_transferred += chunk.size
            key = chunk.key
            self._pending_put_keys[key] = self._pending_put_keys.get(key, 0) + 1
            self.controller.send(
                self.dst,
                messages.put_perflow(self.dst, chunk),
                on_reply=lambda reply, key=key: self._on_put_reply(reply, key),
            )
        elif message.type == MessageType.GET_COMPLETE:
            self._gets_outstanding -= 1
            if self._gets_outstanding == 0:
                self._gets_complete = True
                self._check_complete()
        elif message.type == MessageType.ERROR:
            from .errors import OperationError

            self._fail(OperationError(f"move failed at source {self.src}: {message.body.get('reason')}"))

    def _on_put_reply(self, message: Message, key: FlowKey) -> None:
        if message.type == MessageType.ERROR:
            from .errors import OperationError

            self._fail(OperationError(f"move failed at destination {self.dst}: {message.body.get('reason')}"))
            return
        if message.type != MessageType.ACK:
            return
        self.record.puts_acked += 1
        remaining = self._pending_put_keys.get(key, 0) - 1
        if remaining <= 0:
            self._pending_put_keys.pop(key, None)
            self._acked_keys.add(key.bidirectional())
            self._flush_buffered(key)
        else:
            self._pending_put_keys[key] = remaining
        self._check_complete()

    def _check_complete(self) -> None:
        if self._gets_complete and not self._pending_put_keys:
            # Any events still buffered (their chunk was streamed and ACKed in the
            # meantime, or the flow produced no chunk at all) can now be replayed.
            for key in list(self._buffered_events):
                self._flush_buffered(key)
            self._complete()

    # -- events ------------------------------------------------------------------------------

    def on_event(self, event: Event) -> None:
        """Handle a re-process event raised by the source middlebox.

        Events are buffered until the destination has ACKed the put for the
        affected flow's state (paper Figure 5) — forwarding earlier would let
        the replayed packet's updates be overwritten when the chunk arrives,
        violating atomicity requirement (iii).
        """
        self.record.events_received += 1
        self._touch_event_clock()
        key = event.key.bidirectional() if event.key is not None else None
        should_buffer = (
            self.controller.config.buffer_events
            and key is not None
            and key not in self._acked_keys
            and not self.handle.completed.done
        )
        if should_buffer:
            self.record.events_buffered += 1
            self._buffered_events.setdefault(key, []).append(event)
        else:
            self._forward(event)

    def _flush_buffered(self, key: FlowKey) -> None:
        buffered = self._buffered_events.pop(key.bidirectional(), [])
        for event in buffered:
            self._forward(event)

    def _forward(self, event: Event) -> None:
        if self.controller.forward_event(self.dst, event):
            self.record.events_forwarded += 1

    # -- finalisation ---------------------------------------------------------------------------

    def _finalize(self) -> None:
        """After quiescence: delete the moved state at the source."""
        from .errors import UnknownMiddleboxError

        pending = {"count": 2}

        def on_delete_reply(message: Message) -> None:
            if message.type not in (MessageType.ACK, MessageType.ERROR):
                return
            if message.type == MessageType.ACK:
                self.record.deleted_chunks += int(message.body.get("removed", 0))
            pending["count"] -= 1
            if pending["count"] == 0:
                self._mark_finalized()

        for role in (StateRole.SUPPORTING, StateRole.REPORTING):
            try:
                self.controller.send(
                    self.src,
                    messages.del_perflow(self.src, role, self.pattern),
                    on_reply=on_delete_reply,
                )
            except UnknownMiddleboxError:
                # The source was terminated (e.g. scale-down) before quiescence;
                # there is nothing left to delete.
                pending["count"] -= 1
        if pending["count"] == 0:
            self._mark_finalized()


class CloneOperation(_StatefulOperation):
    """cloneSupport: copy shared supporting state from source to destination."""

    op_type = OperationType.CLONE

    def __init__(self, controller: "MBController", src: str, dst: str) -> None:
        super().__init__(controller, src, dst, pattern=None)
        self._shared_put_pending = False
        self._buffered_events: List[Event] = []

    @property
    def _roles(self) -> List[StateRole]:
        return [StateRole.SUPPORTING]

    def start(self) -> None:
        self._gets_outstanding = len(self._roles)
        for role in self._roles:
            self.controller.send(
                self.src,
                messages.get_shared(self.src, role, transfer=True),
                on_reply=self._on_src_reply,
            )

    def _on_src_reply(self, message: Message) -> None:
        if message.type == MessageType.SHARED_STATE:
            chunk = messages.decode_shared_chunk(message.body["chunk"])
            self.record.chunks_transferred += 1
            self.record.bytes_transferred += chunk.size
            self._shared_put_pending = True
            self.controller.send(self.dst, messages.put_shared(self.dst, chunk), on_reply=self._on_put_reply)
            self._gets_outstanding -= 1
        elif message.type == MessageType.GET_COMPLETE:
            # The source had no shared state of this role; nothing to transfer.
            self._gets_outstanding -= 1
            self._maybe_complete()
        elif message.type == MessageType.ERROR:
            from .errors import OperationError

            self._fail(OperationError(f"{self.op_type.value} failed at {self.src}: {message.body.get('reason')}"))

    def _on_put_reply(self, message: Message) -> None:
        if message.type == MessageType.ERROR:
            from .errors import OperationError

            self._fail(OperationError(f"{self.op_type.value} failed at {self.dst}: {message.body.get('reason')}"))
            return
        if message.type != MessageType.ACK:
            return
        self.record.puts_acked += 1
        self._shared_put_pending = False
        self._maybe_complete()

    def _maybe_complete(self) -> None:
        if self._gets_outstanding == 0 and not self._shared_put_pending:
            for event in self._buffered_events:
                self._forward(event)
            self._buffered_events.clear()
            self._complete()

    def on_event(self, event: Event) -> None:
        """Buffer shared-state events until the destination has the cloned state installed."""
        self.record.events_received += 1
        self._touch_event_clock()
        if self.controller.config.buffer_events and not self.handle.completed.done:
            self.record.events_buffered += 1
            self._buffered_events.append(event)
        else:
            self._forward(event)

    def _forward(self, event: Event) -> None:
        if self.controller.forward_event(self.dst, event):
            self.record.events_forwarded += 1

    def _finalize(self) -> None:
        """After quiescence: end the transfer at the source (no delete for clones)."""
        from .errors import UnknownMiddleboxError

        def on_reply(message: Message) -> None:
            if message.type in (MessageType.ACK, MessageType.ERROR):
                self._mark_finalized()

        try:
            self.controller.send(self.src, messages.transfer_end(self.src), on_reply=on_reply)
        except UnknownMiddleboxError:
            # The source was terminated before quiescence; nothing to notify.
            self._mark_finalized()


class MergeOperation(CloneOperation):
    """mergeInternal: merge shared supporting and reporting state into the destination."""

    op_type = OperationType.MERGE

    def __init__(self, controller: "MBController", src: str, dst: str) -> None:
        super().__init__(controller, src, dst)
        self._pending_put_count = 0

    @property
    def _roles(self) -> List[StateRole]:
        return [StateRole.SUPPORTING, StateRole.REPORTING]

    def _on_src_reply(self, message: Message) -> None:
        if message.type == MessageType.SHARED_STATE:
            chunk = messages.decode_shared_chunk(message.body["chunk"])
            self.record.chunks_transferred += 1
            self.record.bytes_transferred += chunk.size
            self._pending_put_count += 1
            self._shared_put_pending = True
            self.controller.send(self.dst, messages.put_shared(self.dst, chunk), on_reply=self._on_put_reply)
            self._gets_outstanding -= 1
        else:
            super()._on_src_reply(message)

    def _on_put_reply(self, message: Message) -> None:
        if message.type == MessageType.ACK:
            self._pending_put_count -= 1
            if self._pending_put_count > 0:
                self.record.puts_acked += 1
                return
        super()._on_put_reply(message)
