"""The application-facing ("northbound") control API.

Control applications never talk to middleboxes directly; they use this facade
over the :class:`~repro.core.controller.MBController`.  The six operations of
the paper's section 5 are exposed under both their paper names (``readConfig``,
``writeConfig``, ``stats``, ``moveInternal``, ``cloneSupport``,
``mergeInternal``) and snake_case aliases.  All operations are asynchronous on
the simulated clock: they return :class:`~repro.net.simulator.Future` objects
(or :class:`~repro.core.operations.OperationHandle` for the stateful
operations) that control-application processes ``yield`` on.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from ..net.simulator import Future
from .controller import MBController
from .flowspace import FlowPattern
from .operations import OperationHandle
from .transfer import TransferGuarantee, TransferSpec

PatternLike = Union[FlowPattern, Dict[str, object], List[str], str, None]

#: Values accepted for the ``spec`` argument of the stateful operations: a
#: :class:`TransferSpec`, a :class:`TransferGuarantee` (or its string value,
#: e.g. ``"order_preserving"``), a mapping of TransferSpec fields, or None for
#: the seed-equivalent default (loss-free, pipelined per-chunk puts).
SpecLike = Union[TransferSpec, TransferGuarantee, str, Dict[str, object], None]


def _as_pattern(pattern: PatternLike) -> FlowPattern:
    """Coerce any PatternLike value into a FlowPattern (None = wildcard)."""
    if isinstance(pattern, FlowPattern):
        return pattern
    return FlowPattern.parse(pattern)


class NorthboundAPI:
    """The control API handed to control applications."""

    def __init__(self, controller: MBController) -> None:
        self.controller = controller

    # -- transactions ----------------------------------------------------------------

    def transaction(self) -> "Transaction":
        """Begin a composite northbound transaction.

        Returns a :class:`~repro.core.transaction.Transaction` builder on
        which the application declares steps — ``clone_config``, ``move``,
        ``clone``, ``merge``, ``reroute``, ``barrier`` and the composite verbs
        ``migrate`` / ``rebalance`` / ``drain`` — and then calls ``commit()``
        to run them with coordinated re-routing (routes install once the
        relevant per-flow put-ACKs arrive) and all-or-nothing failure
        semantics.  The six paper primitives below are each equivalent to a
        single-step transaction.
        """
        from .transaction import Transaction

        return Transaction(self)

    # -- configuration ---------------------------------------------------------------

    def read_config(self, src_mb: str, key: str = "*") -> Future:
        """``readConfig(SrcMB, HierarchicalKey)`` — returns a future of the flat config mapping."""
        return self.controller.read_config(src_mb, key)

    def write_config(self, dst_mb: str, key: str, values: Union[list, Dict[str, list]]) -> Future:
        """``writeConfig(DstMB, HierarchicalKey, [values...])``.

        When ``key`` is ``"*"`` the values argument must be a flat mapping (as
        returned by :meth:`read_config`) and the whole tree is written —
        the paper's "duplicate the configuration" idiom.
        """
        if key in ("*", ""):
            if not isinstance(values, dict):
                raise TypeError("writeConfig with key '*' requires a mapping of key -> values")
            return self.controller.write_config_tree(dst_mb, values)
        if isinstance(values, dict):
            raise TypeError("writeConfig with a specific key requires a list of values")
        return self.controller.write_config(dst_mb, key, list(values))

    def clone_config(self, src_mb: str, dst_mb: str, key: str = "*") -> Future:
        """Composition of readConfig and writeConfig (the paper's cloneConfig).

        Every failure path resolves the returned future: a failed (or
        cancelled) read propagates its error, and an error raised while
        issuing the write — e.g. the destination was unregistered between the
        read and the write — fails the future instead of leaking an unresolved
        simulator event (and corrupting the read future's callback chain).
        """
        result = self.controller.sim.event(name=f"cloneConfig({src_mb}->{dst_mb})")

        def on_read(read_future: Future) -> None:
            if result.done:
                return  # already cancelled/failed by the caller
            if read_future.exception is not None:
                result.fail(read_future.exception)
                return
            values = read_future.result
            try:
                if key in ("*", ""):
                    write_future = self.controller.write_config_tree(dst_mb, values)
                else:
                    write_future = self.controller.write_config(dst_mb, key, list(values))
            except Exception as exc:
                result.fail(exc)
                return
            write_future.add_done_callback(
                lambda wf: result.fail(wf.exception) if wf.exception is not None else result.succeed(values)
            )

        try:
            self.controller.read_config(src_mb, key).add_done_callback(on_read)
        except Exception as exc:
            result.fail(exc)
        return result

    # -- informational ----------------------------------------------------------------

    def stats(self, src_mb: str, header_fields: PatternLike = None) -> Future:
        """``stats(SrcMB, HeaderFieldList)`` — how much state exists for a key."""
        return self.controller.query_stats(src_mb, _as_pattern(header_fields))

    # -- stateful operations ------------------------------------------------------------

    def move_internal(
        self, src_mb: str, dst_mb: str, header_fields: PatternLike = None, spec: SpecLike = None
    ) -> OperationHandle:
        """``moveInternal(SrcMB, DstMB, HeaderFieldList[, TransferSpec])``.

        ``spec`` tunes the transfer: guarantee ``no_guarantee`` /
        ``loss_free`` / ``order_preserving`` plus the pipeline optimizations
        ``parallelism`` (put window; 0 = unbounded, 1 = sequential),
        ``batch_size`` (chunks per PUT_PERFLOW_BATCH), and ``early_release``
        (per-flow TRANSFER_RELEASE at the source once a flow is moved).
        Omitting it keeps the seed's behaviour (loss-free, pipelined puts).
        """
        return self.controller.move_internal(
            src_mb, dst_mb, _as_pattern(header_fields), TransferSpec.parse(spec)
        )

    def clone_support(self, src_mb: str, dst_mb: str, spec: SpecLike = None) -> OperationHandle:
        """``cloneSupport(SrcMB, DstMB[, TransferSpec])``."""
        return self.controller.clone_support(src_mb, dst_mb, TransferSpec.parse(spec))

    def merge_internal(self, src_mb: str, dst_mb: str, spec: SpecLike = None) -> OperationHandle:
        """``mergeInternal(SrcMB, DstMB[, TransferSpec])``."""
        return self.controller.merge_internal(src_mb, dst_mb, TransferSpec.parse(spec))

    def end_transfer(self, src_mb: str) -> Future:
        """Tell *src_mb* that a clone/merge transfer has completed.

        After a clone, the source keeps raising re-process events so the clone
        stays up to date while the transaction is in progress; once the control
        application has switched routing (and any related configuration) it
        calls this so the source stops replaying its own traffic to the clone.
        """
        return self.controller.end_transfer(src_mb)

    # -- events -----------------------------------------------------------------------------

    def subscribe_events(self, callback) -> None:
        """Receive introspection events forwarded by the controller."""
        self.controller.subscribe_events(callback)

    def enable_events(
        self,
        mb_name: str,
        code: str,
        header_fields: PatternLike = None,
        *,
        until: Optional[float] = None,
    ) -> Future:
        """Enable generation of introspection events at a middlebox."""
        pattern = _as_pattern(header_fields) if header_fields is not None else None
        return self.controller.enable_events(mb_name, code, pattern, until)

    def disable_events(self, mb_name: str, code: str, header_fields: PatternLike = None) -> Future:
        """Disable generation of introspection events at a middlebox."""
        pattern = _as_pattern(header_fields) if header_fields is not None else None
        return self.controller.disable_events(mb_name, code, pattern)

    # -- paper-style camelCase aliases -------------------------------------------------------

    readConfig = read_config
    writeConfig = write_config
    cloneConfig = clone_config
    moveInternal = move_internal
    cloneSupport = clone_support
    mergeInternal = merge_internal
    endTransfer = end_transfer
