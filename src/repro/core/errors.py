"""Exception hierarchy for the OpenMB framework.

All framework-specific failures derive from :class:`OpenMBError` so callers can
catch framework errors without also swallowing programming errors.
"""

from __future__ import annotations


class OpenMBError(Exception):
    """Base class for every error raised by the OpenMB framework."""


class StateError(OpenMBError):
    """A state operation failed (missing key, malformed chunk, bad scope)."""


class GranularityError(StateError):
    """A per-flow state request used a granularity finer than the MB maintains.

    The paper (section 4.1.2) requires such requests to return an error rather
    than silently returning partial matches.
    """


class ConfigError(OpenMBError):
    """A configuration-state operation referenced an unknown hierarchical key
    or supplied values the middlebox rejects."""


class SealError(OpenMBError):
    """A sealed (encrypted) state chunk failed authentication or decoding."""


class ProtocolError(OpenMBError):
    """A southbound message could not be encoded, decoded, or dispatched."""


class ValidationError(OpenMBError, ValueError):
    """A northbound argument could not be parsed or validated.

    Derives from :class:`ValueError` as well so callers that predate the typed
    hierarchy (``except ValueError``) keep working.
    """


class PatternError(ValidationError):
    """A HeaderFieldList / :class:`~repro.core.flowspace.FlowPattern` argument
    was malformed (unknown field name, bad IP or port value)."""


class SpecError(ValidationError):
    """A :class:`~repro.core.transfer.TransferSpec` argument was malformed
    (unknown guarantee string, unknown mapping key, out-of-range field)."""


class OperationError(OpenMBError):
    """A northbound operation (move/clone/merge) failed or was aborted."""


class OperationAbortedError(OperationError):
    """An in-flight operation was aborted (e.g. by a failing transaction)."""


class TransactionError(OperationError):
    """A northbound transaction was misused (re-commit, unknown step reference)."""


class TransactionAbortedError(OperationError):
    """A transaction step failed; the whole transaction was rolled back.

    ``step`` names the failing step and ``cause`` carries its original error.
    """

    def __init__(self, message: str, *, step: str = "", cause: BaseException | None = None) -> None:
        super().__init__(message)
        self.step = step
        self.cause = cause


class MiddleboxError(OpenMBError):
    """A middlebox rejected an operation or encountered an internal failure."""


class UnknownMiddleboxError(OperationError):
    """A northbound call referenced a middlebox not registered with the controller."""


class InstanceDeadError(UnknownMiddleboxError):
    """A middlebox instance crashed (or missed its liveness deadline) mid-operation.

    Derives from :class:`UnknownMiddleboxError` so every existing
    unregistered-mid-operation handler — including the standby-retry path —
    treats a crash exactly like a disappearance."""


class NetworkError(OpenMBError):
    """The SDN substrate could not satisfy a routing request."""


class SimulationError(OpenMBError):
    """The discrete-event simulator was used incorrectly."""


class StuckFutureError(SimulationError):
    """``run_until`` could not drive its future to completion.

    Raised with a diagnosis of *why* the run wedged instead of a bare
    message: which future is stuck, how many done-callbacks are waiting on
    it, how deep the event queue was, and whether the runtime stopped because
    the queue drained (nothing left that could ever complete the future) or
    because the time ``limit`` was exceeded.  The structured fields mirror
    the rendered message so harnesses can assert on them.
    """

    def __init__(
        self,
        message: str,
        *,
        future_name: str = "",
        reason: str = "queue-drained",
        waiters: int = 0,
        queue_depth: int = 0,
        at: float = 0.0,
        limit: float | None = None,
    ) -> None:
        super().__init__(message)
        #: Name of the future that never completed (``Future.name``).
        self.future_name = future_name
        #: ``"queue-drained"`` or ``"limit-exceeded"``.
        self.reason = reason
        #: Done-callbacks still registered on the stuck future.
        self.waiters = waiters
        #: Events still queued when the run gave up.
        self.queue_depth = queue_depth
        #: Runtime time at which the run gave up.
        self.at = at
        #: The time limit that was exceeded (``None`` for queue drains).
        self.limit = limit
