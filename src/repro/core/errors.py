"""Exception hierarchy for the OpenMB framework.

All framework-specific failures derive from :class:`OpenMBError` so callers can
catch framework errors without also swallowing programming errors.
"""

from __future__ import annotations


class OpenMBError(Exception):
    """Base class for every error raised by the OpenMB framework."""


class StateError(OpenMBError):
    """A state operation failed (missing key, malformed chunk, bad scope)."""


class GranularityError(StateError):
    """A per-flow state request used a granularity finer than the MB maintains.

    The paper (section 4.1.2) requires such requests to return an error rather
    than silently returning partial matches.
    """


class ConfigError(OpenMBError):
    """A configuration-state operation referenced an unknown hierarchical key
    or supplied values the middlebox rejects."""


class SealError(OpenMBError):
    """A sealed (encrypted) state chunk failed authentication or decoding."""


class ProtocolError(OpenMBError):
    """A southbound message could not be encoded, decoded, or dispatched."""


class OperationError(OpenMBError):
    """A northbound operation (move/clone/merge) failed or was aborted."""


class MiddleboxError(OpenMBError):
    """A middlebox rejected an operation or encountered an internal failure."""


class UnknownMiddleboxError(OperationError):
    """A northbound call referenced a middlebox not registered with the controller."""


class NetworkError(OpenMBError):
    """The SDN substrate could not satisfy a routing request."""


class SimulationError(OpenMBError):
    """The discrete-event simulator was used incorrectly."""
