"""Hierarchical configuration state.

The paper (section 4.1.1) organises configuration state as a hierarchy of keys
and values: each value is a single unit of configuration (one parameter, one
rule) and each key maps to either a set of sub-keys or an ordered list of
values.  :class:`HierarchicalConfig` implements that model together with the
``getConfig`` / ``setConfig`` / ``delConfig`` semantics, wildcard reads used by
control applications (``readConfig(mb, "*")``), and cloning.
"""

from __future__ import annotations

import copy
import json
from typing import Dict, Iterator, List, Sequence, Tuple

from .errors import ConfigError

#: Separator between key components in a hierarchical key string.
KEY_SEPARATOR = "."

#: The wildcard hierarchical key: the whole configuration tree.
WILDCARD_KEY = "*"

ConfigValue = object


def split_key(key: str) -> Tuple[str, ...]:
    """Split a hierarchical key string into its components.

    The empty string and ``"*"`` both denote the root of the hierarchy.
    """
    if key in ("", WILDCARD_KEY):
        return ()
    return tuple(part for part in key.split(KEY_SEPARATOR) if part)


def join_key(parts: Sequence[str]) -> str:
    """Join key components back into a hierarchical key string."""
    return KEY_SEPARATOR.join(parts)


class _Node:
    """One node of the configuration hierarchy.

    A node holds either child nodes (an "interior" key) or an ordered list of
    values (a "leaf" key), mirroring the paper's definition that a key maps to
    an unordered set of sub-keys or an ordered set of values.  ``has_values``
    distinguishes a leaf that was explicitly written (possibly with an empty
    value list) from a node that only exists as part of another key's path.
    """

    __slots__ = ("children", "values", "has_values")

    def __init__(self) -> None:
        self.children: Dict[str, "_Node"] = {}
        self.values: List[ConfigValue] = []
        self.has_values = False

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def to_dict(self) -> object:
        if self.is_leaf:
            return list(self.values)
        return {name: child.to_dict() for name, child in sorted(self.children.items())}


class HierarchicalConfig:
    """A middlebox's configuration state: a tree of keys with ordered values."""

    def __init__(self) -> None:
        self._root = _Node()
        self._version = 0

    # -- basic operations (southbound getConfig/setConfig/delConfig) ---------

    @property
    def version(self) -> int:
        """Monotonic counter incremented by every successful write or delete."""
        return self._version

    def set(self, key: str, values: Sequence[ConfigValue] | ConfigValue) -> None:
        """Set the ordered values stored under *key*, creating the path.

        A scalar value is treated as a single-element list, matching the
        paper's ``writeConfig(Enc, "NumCaches", [2])`` usage.
        """
        parts = split_key(key)
        if not parts:
            raise ConfigError("cannot set values directly on the configuration root")
        if isinstance(values, (str, bytes)) or not isinstance(values, Sequence):
            values = [values]
        node = self._root
        for index, part in enumerate(parts):
            if node is not self._root and node.has_values:
                raise ConfigError(
                    f"key {join_key(parts[:index])!r} holds values and cannot also have sub-keys"
                )
            node = node.children.setdefault(part, _Node())
        if node.children:
            raise ConfigError(f"key {key!r} has sub-keys and cannot hold values")
        node.values = list(values)
        node.has_values = True
        self._version += 1

    def get(self, key: str = WILDCARD_KEY) -> object:
        """Return the values (leaf key) or the nested dict (interior key) at *key*."""
        node = self._find(key)
        return node.to_dict()

    def get_values(self, key: str) -> List[ConfigValue]:
        """Return the ordered value list stored at a leaf key."""
        node = self._find(key)
        if node.children:
            raise ConfigError(f"key {key!r} is not a leaf key")
        return list(node.values)

    def get_scalar(self, key: str, default: ConfigValue | None = None) -> ConfigValue | None:
        """Return the single value at a leaf key, or *default* when absent."""
        try:
            values = self.get_values(key)
        except ConfigError:
            return default
        if not values:
            return default
        return values[0]

    def delete(self, key: str) -> None:
        """Delete *key* and its whole subtree; deleting the root clears everything."""
        parts = split_key(key)
        if not parts:
            self._root = _Node()
            self._version += 1
            return
        node = self._root
        for part in parts[:-1]:
            if part not in node.children:
                raise ConfigError(f"unknown configuration key {key!r}")
            node = node.children[part]
        if parts[-1] not in node.children:
            raise ConfigError(f"unknown configuration key {key!r}")
        del node.children[parts[-1]]
        self._version += 1

    def has(self, key: str) -> bool:
        """Return True when *key* exists in the hierarchy."""
        try:
            self._find(key)
        except ConfigError:
            return False
        return True

    # -- bulk operations used by control applications -------------------------

    def export(self, key: str = WILDCARD_KEY) -> dict:
        """Export the subtree under *key* as a flat ``{key: [values]}`` mapping.

        The flat form is what crosses the northbound API for
        ``values = readConfig(mb, "*")`` followed by ``writeConfig(other, "*", values)``.
        """
        node = self._find(key)
        prefix = split_key(key)
        flat: dict = {}
        for parts, values in self._walk(node, prefix):
            flat[join_key(parts)] = list(values)
        return flat

    def import_flat(self, flat: Dict[str, Sequence[ConfigValue]]) -> None:
        """Import a flat mapping produced by :meth:`export`, overwriting keys."""
        for key, values in flat.items():
            self.set(key, values)

    def clone(self) -> "HierarchicalConfig":
        """Return a deep copy of the whole configuration."""
        other = HierarchicalConfig()
        other.import_flat(copy.deepcopy(self.export()))
        return other

    def keys(self) -> List[str]:
        """Return all leaf keys in sorted order."""
        return sorted(join_key(parts) for parts, _ in self._walk(self._root, ()))

    def to_json(self) -> str:
        """Serialise the configuration as a JSON document."""
        return json.dumps(self.export(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "HierarchicalConfig":
        config = cls()
        config.import_flat(json.loads(text))
        return config

    @classmethod
    def from_flat(cls, flat: Dict[str, Sequence[ConfigValue]]) -> "HierarchicalConfig":
        config = cls()
        config.import_flat(flat)
        return config

    # -- internals -------------------------------------------------------------

    def _find(self, key: str) -> _Node:
        node = self._root
        for part in split_key(key):
            if part not in node.children:
                raise ConfigError(f"unknown configuration key {key!r}")
            node = node.children[part]
        return node

    def _walk(self, node: _Node, prefix: Tuple[str, ...]) -> Iterator[Tuple[Tuple[str, ...], List[ConfigValue]]]:
        if prefix and (node.has_values or node.is_leaf):
            yield prefix, node.values
        for name, child in node.children.items():
            yield from self._walk(child, prefix + (name,))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, HierarchicalConfig):
            return NotImplemented
        return self.export() == other.export()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HierarchicalConfig({self.export()!r})"
