"""The MB controller.

The controller is the broker between control applications (which speak the
northbound API) and middleboxes (which speak the southbound message protocol):

* it owns one control channel per registered middlebox;
* it translates each northbound call into the corresponding sequence of
  southbound requests (the state machines in :mod:`repro.core.operations`);
* it buffers re-process events until the destination has ACKed the put for the
  affected state, then forwards them (paper Figure 5);
* it runs message handling on one or more **controller shards**
  (:mod:`repro.core.sharding`): each shard is a simulated CPU with a
  per-message processing cost.  With the default single shard, concurrent
  operations contend with each other exactly as the paper's profiling shows
  (section 8.3: thread contention and socket reads dominate); with
  ``num_shards > 1`` the flow space is consistent-hash partitioned and each
  shard runs its own event/ACK loop, so simultaneous operations scale with
  the shard count instead of serialising;
* with ``dispatch_tick`` set it coalesces hot-path southbound requests
  (puts, replays, releases, deletes) per destination channel into one framed
  BATCH message per tick, so the wire does O(batches) instead of O(messages)
  channel round-trips.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

from ..net.simulator import Future, Simulator
from . import messages
from .channel import DEFAULT_CONTROL_BANDWIDTH, DEFAULT_CONTROL_LATENCY, ControlChannel
from .errors import (
    InstanceDeadError,
    OperationAbortedError,
    OperationError,
    UnknownMiddleboxError,
)
from .events import Event
from .flowspace import FlowKey, FlowPattern
from .messages import BATCHABLE_REQUESTS, Message, MessageType
from .operations import (
    CloneOperation,
    MergeOperation,
    MoveOperation,
    OperationHandle,
    OperationRecord,
    _StatefulOperation,
)
from .sharding import ControllerShard, ShardCoordinator
from .southbound import MiddleboxInterface, SouthboundAgent
from .stats import ControllerStats
from .transfer import TransferSpec


@dataclass
class ControllerConfig:
    """Tunable controller behaviour."""

    #: Idle time with no events after which a move's source state is deleted
    #: (the paper uses "a fixed amount of time (e.g., 5 seconds)").
    quiescence_timeout: float = 5.0
    #: Buffer re-process events until the destination has ACKed the put for the
    #: affected state (paper Figure 5).  Disabling this is an ablation: replayed
    #: updates can then be overwritten by the chunk that arrives later.
    buffer_events: bool = True
    #: CPU time the controller spends handling one received message.
    per_message_cost: float = 40e-6
    #: CPU time spent forwarding one event (buffer lookup plus send).
    per_event_cost: float = 25e-6
    #: Control-channel latency and bandwidth used for newly registered middleboxes.
    channel_latency: float = DEFAULT_CONTROL_LATENCY
    channel_bandwidth: float = DEFAULT_CONTROL_BANDWIDTH
    #: Number of controller shards (event/ACK loops).  1 reproduces the seed's
    #: single-CPU serialisation bit-for-bit; N > 1 partitions the flow space
    #: by consistent hash and runs N independent loops.
    num_shards: int = 1
    #: Southbound batching window in seconds: hot-path requests (put /
    #: re-process / release / delete) to the same middlebox enqueued within
    #: one tick are framed into a single BATCH channel message.  ``0.0``
    #: coalesces requests issued at the same simulated instant; ``None``
    #: (default) disables coalescing entirely (every request is its own
    #: channel message, the seed behaviour).
    dispatch_tick: Optional[float] = None
    #: Liveness: period of the HEARTBEAT beacons every registered agent sends
    #: (and of the controller's liveness sweep).  ``None`` (default) disables
    #: heartbeats entirely — no extra scheduled events, the seed behaviour.
    #: Note that enabled heartbeats keep the simulator's event queue non-empty
    #: while instances are registered; drive the clock with ``run(until=...)``
    #: or ``run_until(future)`` rather than an open-ended ``run()``.
    heartbeat_interval: Optional[float] = None
    #: Liveness: silence threshold after which an instance is declared dead
    #: (its operations abort crash-safe, applications are notified).  Only
    #: meaningful with ``heartbeat_interval`` set; expressed in seconds of
    #: simulated time since the last message received from the instance.
    liveness_timeout: float = 0.01


@dataclass
class _Registration:
    """Book-keeping for one registered middlebox."""

    middlebox: MiddleboxInterface
    channel: ControlChannel
    agent: SouthboundAgent


class MBController:
    """Brokers all middlebox state operations (paper sections 3 and 5)."""

    def __init__(self, sim: Simulator, config: Optional[ControllerConfig] = None) -> None:
        self.sim = sim
        self.config = config or ControllerConfig()
        self.stats = ControllerStats()
        #: Sharded runtime: the coordinator owns the consistent-hash ring, the
        #: per-shard event loops, operation placement, and cross-shard barriers.
        self.coordinator = ShardCoordinator(sim, self.config.num_shards)
        self._registrations: Dict[str, _Registration] = {}
        #: Reply routing: (mb name, request xid) -> (shard id whose loop the
        #: reply is charged to, callback) for each reply message.
        self._reply_handlers: Dict[Tuple[str, int], Tuple[int, Callable[[Message], None]]] = {}
        #: Batched southbound dispatch: per-middlebox queues of coalescible
        #: requests and the set of middleboxes with a flush already scheduled.
        self._outbox: Dict[str, List[Message]] = {}
        self._flush_scheduled: Set[str] = set()
        #: Operations currently in flight, keyed by source MB name.
        self._active_by_src: Dict[str, List[_StatefulOperation]] = {}
        #: Application subscribers for introspection events.
        self._event_subscribers: List[Callable[[Event], None]] = []
        #: Monotonic sequence tokens stamped on PUT and REPROCESS messages; the
        #: relative order of a flow's last install and an event's last replay
        #: decides whether the event must be replayed (again).
        self._transfer_seq = itertools.count(1)
        #: (event id, destination) -> sequence token of the most recent replay.
        #: An event routed to several concurrent operations (e.g. a move and a
        #: merge sharing the same source) is replayed once per state install —
        #: usually exactly once, but a replay is *re-issued* when a later state
        #: chunk overwrote the flow's state at the destination.
        self._forwarded_events: Dict[Tuple[int, str], int] = {}
        #: Replays sent but not yet ACKed, keyed like ``_forwarded_events``.
        #: While a replay is in flight, re-issue decisions are deferred: an
        #: install whose ACK we have already processed was applied *before*
        #: the in-flight replay (the destination ACKs on one FIFO channel),
        #: so the replay's update supersedes it and must not be doubled.
        self._replays_in_flight: Set[Tuple[int, str]] = set()
        #: (destination, canonical flow key) -> sequence token of the last
        #: ACKed per-flow state install at that destination.
        self._installed_state: Dict[Tuple[str, FlowKey], int] = {}
        #: Liveness: last simulated time any message arrived from each
        #: registered middlebox, and whether the periodic sweep is scheduled.
        self._last_seen: Dict[str, float] = {}
        self._liveness_sweep_armed = False

    # -- registration -----------------------------------------------------------------------

    def register(self, middlebox: MiddleboxInterface, *, channel: Optional[ControlChannel] = None) -> ControlChannel:
        """Connect a middlebox to the controller.

        Creates (or adopts) a control channel, binds the controller side, and
        instantiates the middlebox's southbound agent on the other side.
        """
        if middlebox.name in self._registrations:
            raise OperationError(f"middlebox {middlebox.name!r} is already registered")
        if channel is None:
            channel = ControlChannel(
                self.sim,
                name=f"chan-{middlebox.name}",
                latency=self.config.channel_latency,
                bandwidth=self.config.channel_bandwidth,
            )
        channel.bind_controller(lambda message, mb=middlebox.name: self._receive(mb, message))
        agent = SouthboundAgent(self.sim, middlebox, channel)
        self._registrations[middlebox.name] = _Registration(middlebox, channel, agent)
        if self.config.heartbeat_interval is not None:
            self._last_seen[middlebox.name] = self.sim.now
            agent.start_heartbeats(self.config.heartbeat_interval)
            self._arm_liveness_sweep()
        return channel

    def unregister(self, name: str, *, dead: bool = False) -> None:
        """Remove a middlebox (e.g. after scale-down terminates the instance).

        Drops the registration, any in-flight reply routing for the removed
        middlebox, and the channel's controller binding, so late replies and
        events from the terminated instance are discarded instead of being
        dispatched through stale handlers.  ``dead`` marks a crash (the
        instance vanished rather than being terminated on purpose): in-flight
        operations then fail with :class:`InstanceDeadError` instead of
        :class:`UnknownMiddleboxError`.

        Either way the orphaned instance object is purged of transfer
        involvement afterwards: the failing operations' cleanup messages can
        no longer be delivered to it, so packet holds, queued packets, and
        pre-copy install-round tags are dropped locally instead of leaking.
        """
        registration = self._registrations.pop(name, None)
        exc_type = InstanceDeadError if dead else UnknownMiddleboxError
        verb = "died" if dead else "was unregistered"
        # Operations still transferring state through the removed middlebox can
        # never finish (their replies are about to be discarded): fail them now
        # rather than leaving their futures pending forever.  Operations that
        # already completed are left to finalise; they tolerate a missing
        # middlebox (the post-quiescence delete/transfer-end catches it).
        for operations in list(self._active_by_src.values()):
            for operation in list(operations):
                if name in (operation.src, operation.dst) and not operation.handle.completed.done:
                    operation._fail(
                        exc_type(f"middlebox {name!r} {verb} during {operation.record.type.value}")
                    )
        self._active_by_src.pop(name, None)
        for key in [key for key in self._reply_handlers if key[0] == name]:
            del self._reply_handlers[key]
        self._outbox.pop(name, None)
        self._flush_scheduled.discard(name)
        self._last_seen.pop(name, None)
        if registration is not None:
            registration.agent.stop_heartbeats()
            registration.channel.unbind_controller()
            # Tear down the delivery direction too: control requests still in
            # flight towards the instance are discarded, not processed — an
            # unregistered instance must not install late chunks (re-creating
            # the round tags and holds the purge below removes).
            registration.channel.set_middlebox_down()
            registration.middlebox.purge_transfer_state()

    # -- liveness ---------------------------------------------------------------------

    def kill(self, name: str, *, declare: bool = True) -> bool:
        """Crash a middlebox instance: sever its channel as if the process died.

        In-flight deliveries to the instance are discarded, its heartbeats
        stop, and retransmissions towards it are abandoned.  With ``declare``
        (the default) the controller also declares the instance dead
        immediately; with ``declare=False`` the crash is only discovered by
        the liveness sweep once the instance misses its heartbeat deadline —
        the realistic failure-detection path.  When no liveness sweep exists
        (``heartbeat_interval`` unset), ``declare=False`` is overridden: a
        silent crash would otherwise never be discovered and every operation
        touching the instance would hang forever.  Returns False when *name*
        is not registered.
        """
        registration = self._registrations.get(name)
        if registration is None:
            return False
        registration.agent.stop_heartbeats()
        registration.channel.set_middlebox_down()
        self.stats.instances_killed += 1
        if declare or self.config.heartbeat_interval is None:
            self.declare_dead(name, reason="killed")
        return True

    def declare_dead(self, name: str, reason: str = "liveness timeout") -> bool:
        """Declare a registered instance dead: crash-safe abort + notification.

        Every in-flight operation touching the instance fails with
        :class:`InstanceDeadError` (standby retries catch exactly this), the
        orphaned instance object is purged of transfer involvement (no leaked
        holds or round tags), and applications subscribed to introspection
        events receive an ``openmb.instance_down`` event so failover logic
        can react.  Returns False when *name* is not registered.
        """
        if name not in self._registrations:
            return False
        self.stats.instances_declared_dead += 1
        self.unregister(name, dead=True)
        from .events import EventCode

        event = Event(
            mb_name=name,
            code=EventCode.INSTANCE_DOWN,
            values={"reason": reason},
            raised_at=self.sim.now,
        )
        for subscriber in self._event_subscribers:
            subscriber(event)
        return True

    def _arm_liveness_sweep(self) -> None:
        """Schedule the periodic liveness check (one timer at a time)."""
        if self._liveness_sweep_armed or self.config.heartbeat_interval is None:
            return
        self._liveness_sweep_armed = True
        self.sim.schedule(self.config.heartbeat_interval, self._liveness_sweep)

    def _liveness_sweep(self) -> None:
        """Declare dead every instance silent for longer than the timeout."""
        self._liveness_sweep_armed = False
        if self.config.heartbeat_interval is None:
            return
        deadline = self.sim.now - self.config.liveness_timeout
        for name in [name for name, seen in self._last_seen.items() if seen < deadline]:
            self.declare_dead(name)
        # The sweep stays armed only while instances remain registered, so an
        # emptied controller lets the simulator's event queue drain.
        if self._registrations:
            self._arm_liveness_sweep()

    def middlebox_names(self) -> List[str]:
        return sorted(self._registrations)

    def is_registered(self, name: str) -> bool:
        """Whether a middlebox of that name is currently registered (and alive)."""
        return name in self._registrations

    def channel_for(self, name: str) -> ControlChannel:
        return self._registration(name).channel

    def _registration(self, name: str) -> _Registration:
        try:
            return self._registrations[name]
        except KeyError:
            raise UnknownMiddleboxError(f"middlebox {name!r} is not registered with the controller") from None

    # -- message plumbing --------------------------------------------------------------------------

    def send(
        self,
        mb_name: str,
        message: Message,
        on_reply: Optional[Callable[[Message], None]] = None,
        *,
        shard: Optional[ControllerShard] = None,
    ) -> int:
        """Send a southbound request to a middlebox; optionally route its replies.

        Returns the request xid.  The reply handler is invoked for *every*
        message the middlebox sends with ``reply_to`` equal to that xid
        (chunk streams produce many).  *shard* names the controller shard
        whose loop the replies are charged to — stateful operations pass
        their home shard; by default the middlebox's hash-assigned shard is
        used.  With ``dispatch_tick`` configured, hot-path request types are
        coalesced into one framed BATCH per destination per tick instead of
        being sent immediately.

        Raises:
            UnknownMiddleboxError: when *mb_name* is not registered.
        """
        registration = self._registration(mb_name)
        if shard is None:
            shard = self.coordinator.shard_for_name(mb_name)
        if on_reply is not None:
            self._reply_handlers[(mb_name, message.xid)] = (shard.shard_id, on_reply)
        self.stats.messages_sent += 1
        if self.config.dispatch_tick is not None and message.type in BATCHABLE_REQUESTS:
            self._outbox.setdefault(mb_name, []).append(message)
            if mb_name not in self._flush_scheduled:
                self._flush_scheduled.add(mb_name)
                self.sim.schedule(self.config.dispatch_tick, self._flush_outbox, mb_name)
            return message.xid
        # A non-batchable request flushes the destination's queue first so the
        # channel still delivers in send order (per-channel FIFO).
        if self.config.dispatch_tick is not None:
            self._flush_outbox(mb_name)
        registration.channel.send_to_middlebox(message)
        return message.xid

    def _flush_outbox(self, mb_name: str) -> None:
        """Frame and send every request queued for *mb_name* (if still registered)."""
        self._flush_scheduled.discard(mb_name)
        queued = self._outbox.pop(mb_name, None)
        if not queued:
            return
        registration = self._registrations.get(mb_name)
        if registration is None:
            return  # unregistered while queued: drop, like any late message
        if len(queued) > 1:
            self.stats.batches_dispatched += 1
            self.stats.messages_coalesced += len(queued)
        registration.channel.send_many_to_middlebox(queued)

    def try_send(
        self,
        mb_name: str,
        message: Message,
        on_reply: Optional[Callable[[Message], None]] = None,
        *,
        shard: Optional[ControllerShard] = None,
    ) -> bool:
        """Like :meth:`send`, but tolerate an unregistered middlebox.

        Returns False (instead of raising) when *mb_name* is no longer
        registered — the idiom for post-quiescence and cleanup messages whose
        target may have been terminated (e.g. scale-down) in the meantime.
        """
        try:
            self.send(mb_name, message, on_reply=on_reply, shard=shard)
        except UnknownMiddleboxError:
            return False
        return True

    def _shard_for_message(self, mb_name: str, message: Message) -> ControllerShard:
        """Route an incoming message to the shard whose loop must handle it.

        Events carrying a flow key go to the shard owning that flow (the
        flow-space partition); replies go to the shard recorded when the
        request was sent (the operation's home loop); everything else goes to
        the middlebox's hash-assigned shard.
        """
        if message.type == MessageType.EVENT:
            key = message.body.get("key")
            if key is not None:
                return self.coordinator.shard_for_key(FlowKey.from_dict(key))
            return self.coordinator.shard_for_name(mb_name)
        if message.reply_to is not None:
            entry = self._reply_handlers.get((mb_name, message.reply_to))
            if entry is not None:
                return self.coordinator.shards[entry[0]]
        return self.coordinator.shard_for_name(mb_name)

    def _receive(self, mb_name: str, message: Message) -> None:
        """Entry point for every message arriving from a middlebox."""
        self.stats.messages_received += 1
        if mb_name in self._last_seen:
            # Any received message proves liveness, not just heartbeats.
            self._last_seen[mb_name] = self.sim.now
        if message.type == MessageType.HEARTBEAT:
            self.stats.heartbeats_received += 1
            return  # liveness beacon only; nothing to dispatch
        shard = self._shard_for_message(mb_name, message)
        cost = self.config.per_event_cost if message.type == MessageType.EVENT else self.config.per_message_cost
        shard.on_cpu(cost, lambda: self._dispatch(mb_name, message, shard))

    def _dispatch(self, mb_name: str, message: Message, shard: ControllerShard) -> None:
        if message.type == MessageType.EVENT:
            self._handle_event(mb_name, message, shard)
            return
        if message.reply_to is not None:
            entry = self._reply_handlers.get((mb_name, message.reply_to))
            if entry is not None:
                entry[1](message)
                return
        # Unsolicited non-event messages are ignored but counted as received.

    def _handle_event(self, mb_name: str, message: Message, shard: ControllerShard) -> None:
        event = messages.decode_event(message)
        self.stats.events_received += 1
        shard.stats.events += 1
        if event.is_reprocess:
            # Deliver to the operations that broadcast interest in this
            # source onto the shard owning the event's flow.  With one shard
            # this is exactly the seed's every-operation-with-this-source
            # delivery; with several, an exact-pattern operation only sees
            # events its own shard owns.
            for operation in shard.operations_for(mb_name):
                operation.on_event(event)
        else:
            self.stats.introspection_events += 1
            for subscriber in self._event_subscribers:
                subscriber(event)

    def subscribe_events(self, callback: Callable[[Event], None]) -> None:
        """Register an application callback for introspection events."""
        self._event_subscribers.append(callback)

    def next_transfer_seq(self) -> int:
        """Reserve the next transfer sequence token (stamped on PUT/REPROCESS)."""
        return next(self._transfer_seq)

    def note_perflow_installed(
        self, dst_mb: str, keys: Iterable[FlowKey], *, operation=None
    ) -> None:
        """Record that per-flow state for *keys* was installed (put ACKed) at *dst_mb*.

        Replays of an event are suppressed only while no install for the
        event's flow happened after the last replay; stamping installs here is
        what lets :meth:`forward_event` re-issue a replay whose effect a later
        chunk overwrote.
        """
        for key in keys:
            token = (dst_mb, key)
            self._installed_state[token] = next(self._transfer_seq)
            if operation is not None:
                operation._install_tokens.add(token)

    def forward_event(
        self,
        dst_mb: str,
        event: Event,
        on_reply: Optional[Callable[[Message], None]] = None,
        *,
        shard: Optional[ControllerShard] = None,
    ) -> str:
        """Replay *event*'s packet at *dst_mb*, exactly once per state install.

        Returns ``"sent"`` when the re-process message was actually sent and
        ``"covered"`` when the event's update is already ensured at the
        destination by a previous replay (no message goes out and *on_reply*
        never fires).  The common case is one replay per (event, destination):
        concurrent operations sharing a destination (e.g. a move and a merge
        with the same source) do not double-replay.  The exception closes the
        cross-operation coordination bug: when a per-flow state chunk was
        installed *after* the event's last replay, that chunk overwrote the
        replayed update at the destination, so the replay is issued again —
        with the shared-state component stripped, because shared puts merge
        (instead of overwriting) and the earlier replay's shared update
        therefore survived.

        ``on_reply`` routes the destination's ACK back to the caller
        (order-preserving transfers wait for replay ACKs before releasing a
        flow's packet hold).
        """
        token = (event.event_id, dst_mb)
        last_replay = self._forwarded_events.get(token)
        shared_override: Optional[bool] = None
        if last_replay is not None:
            key = event.key.bidirectional() if event.key is not None else None
            installed = self._installed_state.get((dst_mb, key), 0) if key is not None else 0
            if last_replay >= installed:
                return "covered"  # nothing installed since the last replay: still applied
            if token in self._replays_in_flight:
                # The previous replay is still on the wire.  Any install whose
                # ACK we have seen was applied before it (ACKs share one FIFO
                # channel), so that chunk did NOT overwrite the replay — the
                # replay lands after it.  Re-issuing here would double-apply.
                return "covered"
            shared_override = False  # re-replay only the overwritten per-flow component
        seq = next(self._transfer_seq)
        self._forwarded_events[token] = seq
        self._replays_in_flight.add(token)

        def on_replay_reply(message: Message) -> None:
            # Re-stamp the token when the destination ACKs the replay: ACKs
            # travel back on the same FIFO channel the puts' ACKs use, so
            # token order now mirrors the order the destination actually
            # *applied* replay vs. chunk.  Without this, a replay sent in a
            # put's send→ACK window (but applied after the chunk) would look
            # older than the install and be re-issued — a double apply.
            if self._forwarded_events.get(token) == seq:
                self._replays_in_flight.discard(token)
            if message.type == MessageType.ACK and self._forwarded_events.get(token) == seq:
                self._forwarded_events[token] = next(self._transfer_seq)
            if on_reply is not None:
                on_reply(message)

        self.send(
            dst_mb,
            messages.reprocess_message(dst_mb, event, shared=shared_override, seq=seq),
            on_reply=on_replay_reply,
            shard=shard,
        )
        return "sent"

    # -- simple northbound operations --------------------------------------------------------------------

    def read_config(self, mb_name: str, key: str = "*") -> Future:
        """readConfig: fetch a middlebox's configuration subtree."""
        future = self.sim.event(name=f"readConfig({mb_name},{key})")

        def on_reply(message: Message) -> None:
            if message.type == MessageType.CONFIG_VALUE:
                future.succeed(message.body.get("values", {}))
            elif message.type == MessageType.ERROR:
                future.fail(OperationError(message.body.get("reason", "readConfig failed")))

        self.send(mb_name, messages.get_config(mb_name, key), on_reply=on_reply)
        return future

    def write_config(self, mb_name: str, key: str, values: list) -> Future:
        """writeConfig: set configuration values on a middlebox."""
        future = self.sim.event(name=f"writeConfig({mb_name},{key})")

        def on_reply(message: Message) -> None:
            if message.type == MessageType.ACK:
                future.succeed(True)
            elif message.type == MessageType.ERROR:
                future.fail(OperationError(message.body.get("reason", "writeConfig failed")))

        self.send(mb_name, messages.set_config(mb_name, key, values), on_reply=on_reply)
        return future

    def write_config_tree(self, mb_name: str, values: Dict[str, list]) -> Future:
        """writeConfig with a whole exported configuration tree (key ``"*"`` usage)."""
        futures = [self.write_config(mb_name, key, list(entry)) for key, entry in values.items()]
        from ..net.simulator import all_of

        return all_of(self.sim, futures)

    def query_stats(self, mb_name: str, pattern: Optional[FlowPattern] = None) -> Future:
        """stats: how much state matching *pattern* exists at a middlebox."""
        future = self.sim.event(name=f"stats({mb_name})")

        def on_reply(message: Message) -> None:
            if message.type == MessageType.STATS_REPLY:
                future.succeed(message.body.get("stats", {}))
            elif message.type == MessageType.ERROR:
                future.fail(OperationError(message.body.get("reason", "stats failed")))

        self.send(mb_name, messages.get_stats(mb_name, pattern or FlowPattern.wildcard()), on_reply=on_reply)
        return future

    def enable_events(
        self,
        mb_name: str,
        code: str,
        pattern: Optional[FlowPattern] = None,
        until: Optional[float] = None,
    ) -> Future:
        """Enable introspection events with *code* at a middlebox."""
        future = self.sim.event(name=f"enableEvents({mb_name},{code})")

        def on_reply(message: Message) -> None:
            if message.type == MessageType.ACK:
                future.succeed(True)
            elif message.type == MessageType.ERROR:
                future.fail(OperationError(message.body.get("reason", "enable_events failed")))

        self.send(mb_name, messages.enable_events(mb_name, code, pattern, until), on_reply=on_reply)
        return future

    def end_transfer(self, mb_name: str) -> Future:
        """Tell a middlebox that an in-progress clone/merge transfer is over.

        Clears the middlebox's transfer markers so it stops raising re-process
        events.  Control applications call this once the routing change (and
        any related configuration switch) has taken effect; the controller also
        sends it automatically after the quiescence timeout as a fallback.
        """
        future = self.sim.event(name=f"endTransfer({mb_name})")

        def on_reply(message: Message) -> None:
            if message.type == MessageType.ACK:
                future.succeed(True)
            elif message.type == MessageType.ERROR:
                future.fail(OperationError(message.body.get("reason", "end_transfer failed")))

        self.send(mb_name, messages.transfer_end(mb_name), on_reply=on_reply)
        return future

    def disable_events(self, mb_name: str, code: str, pattern: Optional[FlowPattern] = None) -> Future:
        """Disable introspection events with *code* at a middlebox."""
        future = self.sim.event(name=f"disableEvents({mb_name},{code})")

        def on_reply(message: Message) -> None:
            if message.type == MessageType.ACK:
                future.succeed(True)
            elif message.type == MessageType.ERROR:
                future.fail(OperationError(message.body.get("reason", "disable_events failed")))

        self.send(mb_name, messages.disable_events(mb_name, code, pattern), on_reply=on_reply)
        return future

    # -- stateful northbound operations --------------------------------------------------------------------

    def move_internal(
        self,
        src: str,
        dst: str,
        pattern: FlowPattern,
        spec: Optional[TransferSpec] = None,
        *,
        standby: Optional[str] = None,
    ) -> OperationHandle:
        """moveInternal: move per-flow supporting and reporting state from src to dst.

        *spec* selects the transfer guarantee (no-guarantee / loss-free /
        order-preserving), the copy mode (single-pass snapshot or iterative
        pre-copy with bounded dirty-delta rounds), and pipeline optimizations
        (parallelism, batching, early release); None keeps the seed's
        loss-free snapshot pipelined default.

        *standby* names a registered fallback destination: when the primary
        destination dies (crash or unregister) mid-move, the move is retried
        from scratch against the standby instead of failing outright — the
        source's state is untouched by the failed attempt, so the retry is
        loss-free.  The returned handle then aggregates both attempts.
        """
        self._registration(src)
        self._registration(dst)
        if standby is not None:
            self._registration(standby)
            from .operations import StandbyRetryHandle

            return StandbyRetryHandle(self, src, dst, pattern, spec, standby)
        operation = MoveOperation(self, src, dst, pattern, spec)
        return self._start(operation)

    def clone_support(self, src: str, dst: str, spec: Optional[TransferSpec] = None) -> OperationHandle:
        """cloneSupport: clone shared supporting state from src to dst."""
        self._registration(src)
        self._registration(dst)
        operation = CloneOperation(self, src, dst, spec=spec)
        return self._start(operation)

    def merge_internal(self, src: str, dst: str, spec: Optional[TransferSpec] = None) -> OperationHandle:
        """mergeInternal: merge shared supporting and reporting state of src into dst."""
        self._registration(src)
        self._registration(dst)
        operation = MergeOperation(self, src, dst, spec=spec)
        return self._start(operation)

    def _start(self, operation: _StatefulOperation) -> OperationHandle:
        self.stats.operations_started += 1
        self._active_by_src.setdefault(operation.src, []).append(operation)
        # Broadcast the operation's event interest to every shard its pattern
        # could own flows on (one shard for an exact five-tuple, all shards
        # for wildcard/prefix patterns).
        self.coordinator.register_operation(operation)
        operation.handle.completed.add_done_callback(lambda future: self._on_completed(operation, future))
        operation.start()
        return operation.handle

    def _on_completed(self, operation: _StatefulOperation, future: Future) -> None:
        if future.exception is not None:
            self.stats.operations_failed += 1

    def abort_operation(self, handle: OperationHandle, reason: str = "operation aborted") -> bool:
        """Abort the operation behind *handle* (transaction rollback support).

        In-flight operations are failed (releasing any destination packet
        holds); completed-but-unfinalised operations have their destructive
        post-quiescence step cancelled so the source keeps its state.  Returns
        True when the abort changed anything.
        """
        operation = handle._operation
        if operation is None:
            return False
        return operation.abort(OperationAbortedError(reason))

    def _operation_finished(self, operation: _StatefulOperation) -> None:
        """Called by an operation when it has fully finalised (or failed)."""
        active = self._active_by_src.get(operation.src, [])
        if operation in active:
            active.remove(operation)
        self.coordinator.release_operation(operation)
        # Prune the operation's replay-dedup and install-sequence tokens so
        # _forwarded_events / _installed_state stay bounded.  A concurrent
        # operation with the same destination may still be holding the same
        # event in its buffer (it forwards only when its flow is ACKed), so
        # tokens for a destination another active operation targets are
        # inherited by that operation instead of being dropped — they are
        # pruned when it finishes.
        still_active = [op for ops in self._active_by_src.values() for op in ops]

        def heir_for(dst: str) -> Optional[_StatefulOperation]:
            return next((op for op in still_active if op.dst == dst), None)

        for token in operation._forward_tokens:
            heir = heir_for(token[1])
            if heir is not None:
                heir._forward_tokens.add(token)
            else:
                self._forwarded_events.pop(token, None)
        operation._forward_tokens.clear()
        for token in operation._install_tokens:
            heir = heir_for(token[0])
            if heir is not None:
                heir._install_tokens.add(token)
            else:
                self._installed_state.pop(token, None)
        operation._install_tokens.clear()
        self.stats.archive(operation.record)

    # -- convenience ---------------------------------------------------------------------------------------

    def active_operations(self) -> List[OperationRecord]:
        """Records of operations that have started but not yet finalised."""
        return [op.record for ops in self._active_by_src.values() for op in ops]

    def shard_summary(self) -> Dict[str, object]:
        """Per-shard load counters (messages, events, busy time, homed ops)."""
        return self.coordinator.summary()
