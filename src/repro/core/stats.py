"""Controller-side instrumentation.

The evaluation section measures the controller itself: how long operations
take, how many are in flight, how many events were buffered versus forwarded,
and how much state crossed the control channels.  :class:`ControllerStats`
aggregates those measurements; every completed
:class:`~repro.core.operations.OperationRecord` is archived here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .operations import OperationRecord, OperationType


@dataclass
class ControllerStats:
    """Aggregate counters and the archive of completed operations."""

    messages_received: int = 0
    messages_sent: int = 0
    #: BATCH frames produced by the southbound dispatcher (each replaces
    #: several channel messages) and the requests coalesced into them.
    batches_dispatched: int = 0
    messages_coalesced: int = 0
    events_received: int = 0
    events_forwarded: int = 0
    events_buffered: int = 0
    events_dropped: int = 0
    introspection_events: int = 0
    #: Liveness: heartbeat beacons received, instances crashed via ``kill``,
    #: and instances declared dead (by the sweep or an explicit declaration).
    heartbeats_received: int = 0
    instances_killed: int = 0
    instances_declared_dead: int = 0
    #: Moves re-driven onto a standby destination after the primary died.
    standby_retries: int = 0
    operations_started: int = 0
    operations_completed: int = 0
    operations_failed: int = 0
    #: Pre-copy aggregates: copy rounds run before freezes, chunks/bytes
    #: resent by delta + stop-and-copy rounds (the pre-copy wire overhead).
    precopy_operations: int = 0
    precopy_rounds_total: int = 0
    precopy_delta_chunks: int = 0
    precopy_delta_bytes: int = 0
    records: List[OperationRecord] = field(default_factory=list)

    def archive(self, record: OperationRecord) -> None:
        """Store a finished operation's record."""
        self.records.append(record)
        self.operations_completed += 1
        self.events_buffered += record.events_buffered
        self.events_forwarded += record.events_forwarded
        self.events_dropped += record.events_dropped
        if record.mode == "precopy":
            self.precopy_operations += 1
            self.precopy_rounds_total += record.precopy_rounds
            for round_stats in record.rounds:
                if round_stats.get("round", 0) > 0:
                    self.precopy_delta_chunks += round_stats.get("chunks", 0)
                    self.precopy_delta_bytes += round_stats.get("bytes", 0)

    def merge(self, *others: "ControllerStats") -> "ControllerStats":
        """Fold one or more controllers' stats into a fleet-wide aggregate.

        Returns a **new** :class:`ControllerStats`; neither ``self`` nor any
        of *others* is mutated.  Every integer counter is summed and the
        operation archives are concatenated (in argument order), so the
        derived queries — :meth:`by_guarantee`, :meth:`by_mode`,
        :meth:`mean_duration`, :meth:`summary` — report across the whole
        federation exactly as they would for a single controller.  Merging is
        associative and merging with a fresh instance is the identity, so
        multi-domain benchmarks can fold domains in any grouping.
        """
        merged = ControllerStats()
        for stats in (self, *others):
            for field_name in (
                "messages_received",
                "messages_sent",
                "batches_dispatched",
                "messages_coalesced",
                "events_received",
                "events_forwarded",
                "events_buffered",
                "events_dropped",
                "introspection_events",
                "heartbeats_received",
                "instances_killed",
                "instances_declared_dead",
                "standby_retries",
                "operations_started",
                "operations_completed",
                "operations_failed",
                "precopy_operations",
                "precopy_rounds_total",
                "precopy_delta_chunks",
                "precopy_delta_bytes",
            ):
                setattr(merged, field_name, getattr(merged, field_name) + getattr(stats, field_name))
            merged.records.extend(stats.records)
        return merged

    # -- queries used by benchmarks and reports --------------------------------------

    def records_of_type(self, op_type: OperationType) -> List[OperationRecord]:
        return [record for record in self.records if record.type is op_type]

    def records_of_guarantee(self, guarantee: str) -> List[OperationRecord]:
        """Archived operations that ran under the given transfer guarantee."""
        return [record for record in self.records if record.guarantee == guarantee]

    def by_guarantee(self) -> Dict[str, Dict[str, float]]:
        """Per-guarantee aggregates: operation count, mean duration, event fate."""
        summary: Dict[str, Dict[str, float]] = {}
        completed: Dict[str, int] = {}
        for record in self.records:
            bucket = summary.setdefault(
                record.guarantee,
                {
                    "operations": 0,
                    "mean_duration": 0.0,
                    "events_buffered": 0,
                    "events_forwarded": 0,
                    "events_dropped": 0,
                },
            )
            bucket["operations"] += 1
            bucket["events_buffered"] += record.events_buffered
            bucket["events_forwarded"] += record.events_forwarded
            bucket["events_dropped"] += record.events_dropped
            if record.duration is not None:
                bucket["mean_duration"] += record.duration
                completed[record.guarantee] = completed.get(record.guarantee, 0) + 1
        for guarantee, count in completed.items():
            summary[guarantee]["mean_duration"] /= count
        return summary

    def records_of_mode(self, mode: str) -> List[OperationRecord]:
        """Archived operations that ran under the given copy mode."""
        return [record for record in self.records if record.mode == mode]

    def by_mode(self) -> Dict[str, Dict[str, float]]:
        """Per-mode aggregates: count, mean duration, mean freeze window, rounds.

        The freeze window is the event-buffering span — the whole operation
        for snapshot transfers, only the stop-and-copy round for pre-copy
        transfers — so comparing ``mean_freeze_window`` across the two modes
        quantifies what the iterative discipline buys.
        """
        summary: Dict[str, Dict[str, float]] = {}
        durations: Dict[str, int] = {}
        freezes: Dict[str, int] = {}
        for record in self.records:
            bucket = summary.setdefault(
                record.mode,
                {
                    "operations": 0,
                    "mean_duration": 0.0,
                    "mean_freeze_window": 0.0,
                    "rounds": 0,
                    "events_buffered": 0,
                },
            )
            bucket["operations"] += 1
            bucket["rounds"] += record.precopy_rounds
            bucket["events_buffered"] += record.events_buffered
            if record.duration is not None:
                bucket["mean_duration"] += record.duration
                durations[record.mode] = durations.get(record.mode, 0) + 1
            if record.freeze_window is not None:
                bucket["mean_freeze_window"] += record.freeze_window
                freezes[record.mode] = freezes.get(record.mode, 0) + 1
        for mode, count in durations.items():
            summary[mode]["mean_duration"] /= count
        for mode, count in freezes.items():
            summary[mode]["mean_freeze_window"] /= count
        return summary

    def mean_duration(self, op_type: Optional[OperationType] = None) -> float:
        """Mean completion time of archived operations (seconds), 0.0 when none."""
        durations = [
            record.duration
            for record in self.records
            if record.duration is not None and (op_type is None or record.type is op_type)
        ]
        if not durations:
            return 0.0
        return sum(durations) / len(durations)

    def total_chunks(self) -> int:
        return sum(record.chunks_transferred for record in self.records)

    def total_bytes(self) -> int:
        return sum(record.bytes_transferred for record in self.records)

    def summary(self) -> Dict[str, float]:
        """A flat summary dictionary convenient for reports."""
        return {
            "operations_started": self.operations_started,
            "operations_completed": self.operations_completed,
            "operations_failed": self.operations_failed,
            "messages_sent": self.messages_sent,
            "messages_received": self.messages_received,
            "events_received": self.events_received,
            "events_forwarded": self.events_forwarded,
            "events_buffered": self.events_buffered,
            "events_dropped": self.events_dropped,
            "chunks_transferred": self.total_chunks(),
            "bytes_transferred": self.total_bytes(),
            "mean_move_duration": self.mean_duration(OperationType.MOVE),
            "precopy_operations": self.precopy_operations,
            "precopy_rounds_total": self.precopy_rounds_total,
            "precopy_delta_chunks": self.precopy_delta_chunks,
            "precopy_delta_bytes": self.precopy_delta_bytes,
        }
