"""Middlebox state taxonomy and state stores.

Section 3.1 of the paper classifies middlebox state along two dimensions:

* its *role* — configuring, supporting, or reporting; and
* its *partitioning* — per-flow or shared.

and notes which roles the middlebox itself reads and/or writes (Table 1).

This module encodes that taxonomy and provides the two state containers that
every OpenMB-enabled middlebox uses internally:

* :class:`PerFlowStateStore` — native per-flow state objects indexed by
  :class:`~repro.core.flowspace.FlowKey`, queried by
  :class:`~repro.core.flowspace.FlowPattern`.  The store is **sharded**: the
  entries live in an array of hash shards keyed by the canonical flow token
  (the same token :class:`~repro.core.sharding.ShardRing` hashes), so a fully
  specified query touches one shard instead of the whole store, and iteration
  for streaming export proceeds shard by shard with bounded transient memory.
  Optional per-field secondary indexes (``indexed=True``) generalise the
  original source-address index to destination addresses and ports — the
  "wildcard match techniques" the paper suggests as an improvement.  The store
  also keeps byte-level memory accounting (:class:`StoreMemoryStats`) so a
  million-flow transfer can assert its resident and peak footprint.
* :class:`DictPerFlowStateStore` — the original single-dict, linear-scan
  implementation, kept verbatim as the differential-testing oracle for the
  sharded store (see ``tests/test_state_properties.py``).
* :class:`SharedStateSlot` — a single shared state object with clone and merge
  hooks supplied by the middlebox.
"""

from __future__ import annotations

import enum
import sys
from dataclasses import dataclass, field
from typing import Callable, Dict, Generic, Iterator, List, Optional, Tuple, TypeVar

from .errors import GranularityError, StateError
from .flowspace import FlowKey, FlowPattern
from .sharding import stable_hash as _stable_hash

T = TypeVar("T")


class StateRole(enum.Enum):
    """The purpose a piece of middlebox state serves (paper Table 1)."""

    CONFIGURING = "configuring"
    SUPPORTING = "supporting"
    REPORTING = "reporting"


class StateScope(enum.Enum):
    """Whether a piece of state applies to one flow or to all traffic."""

    PER_FLOW = "per-flow"
    SHARED = "shared"


class AccessMode(enum.Flag):
    """Which operations the middlebox's own logic performs on the state."""

    NONE = 0
    READ = enum.auto()
    WRITE = enum.auto()
    READ_WRITE = READ | WRITE


@dataclass(frozen=True)
class StateClass:
    """One cell of the taxonomy: a role, a scope, and the MB's access mode."""

    role: StateRole
    scope: StateScope
    mb_access: AccessMode

    @property
    def movable(self) -> bool:
        """Whether the controller may relocate this state between instances.

        Configuration state is owned by the controller (it is written, not
        moved); supporting and reporting state are what move/clone/merge act on.
        """
        return self.role is not StateRole.CONFIGURING

    @property
    def cloneable(self) -> bool:
        """Whether cloning is safe.

        Shared *reporting* state must not be cloned (double reporting, paper
        section 4.1.3); every other movable class may be cloned.
        """
        if not self.movable:
            return False
        return not (self.role is StateRole.REPORTING and self.scope is StateScope.SHARED)


#: The taxonomy of paper Table 1, keyed by (role, scope).
TAXONOMY: Dict[Tuple[StateRole, StateScope], StateClass] = {
    (StateRole.CONFIGURING, StateScope.SHARED): StateClass(
        StateRole.CONFIGURING, StateScope.SHARED, AccessMode.READ
    ),
    (StateRole.SUPPORTING, StateScope.PER_FLOW): StateClass(
        StateRole.SUPPORTING, StateScope.PER_FLOW, AccessMode.READ_WRITE
    ),
    (StateRole.SUPPORTING, StateScope.SHARED): StateClass(
        StateRole.SUPPORTING, StateScope.SHARED, AccessMode.READ_WRITE
    ),
    (StateRole.REPORTING, StateScope.PER_FLOW): StateClass(
        StateRole.REPORTING, StateScope.PER_FLOW, AccessMode.WRITE
    ),
    (StateRole.REPORTING, StateScope.SHARED): StateClass(
        StateRole.REPORTING, StateScope.SHARED, AccessMode.WRITE
    ),
}


def state_class(role: StateRole, scope: StateScope) -> StateClass:
    """Look up the taxonomy entry for a role/scope combination."""
    try:
        return TAXONOMY[(role, scope)]
    except KeyError:
        raise StateError(f"no taxonomy entry for {role.value} / {scope.value}") from None


@dataclass
class StateChunk:
    """A unit of exported per-flow state: a flow key and a sealed value blob.

    This is the ``[HeaderFieldList : EncryptedChunk]`` pair of the paper's
    southbound API.  The blob is opaque to the controller; the only visible
    metadata are the flow key, the role, and the blob size.
    """

    key: FlowKey
    role: StateRole
    blob: bytes
    metadata: dict = field(default_factory=dict)

    @property
    def size(self) -> int:
        """Size of the sealed blob in bytes."""
        return len(self.blob)


@dataclass
class SharedChunk:
    """A unit of exported shared state: a single sealed blob for the whole MB."""

    role: StateRole
    blob: bytes
    metadata: dict = field(default_factory=dict)

    @property
    def size(self) -> int:
        """Size of the sealed blob in bytes."""
        return len(self.blob)


#: Default number of hash shards in a :class:`PerFlowStateStore`.  Enough to
#: keep any single shard's scan bounded without making tiny stores pay for an
#: array of empty dicts.
DEFAULT_SHARD_COUNT = 16

#: Accounted overhead per resident entry beyond the value object itself: the
#: canonical ``FlowKey`` (slotted, five fields) plus its shard-dict slot.
ENTRY_SLOT_BYTES = 176
#: Accounted overhead per dirty-set entry (key reference, version int, slot).
DIRTY_SLOT_BYTES = 120
#: Accounted overhead per pre-copy install tag (key reference, tuple, slot).
TAG_SLOT_BYTES = 168
#: Accounted overhead per secondary-index posting (set member plus its share
#: of the field-value bucket).
INDEX_POSTING_BYTES = 96

#: Sentinel distinguishing "absent" from a stored ``None`` value inside shard
#: lookups, so accounting and dirty marks stay exact even for falsy objects.
_MISSING = object()


def _estimate_value_bytes(value: object) -> int:
    """Shallow-plus-one-level byte estimate of a native state object.

    ``sys.getsizeof`` alone under-reports containers (a dict's items live
    outside its header), so one level of contained objects is added.  The
    estimate is taken at :meth:`PerFlowStateStore.put` /
    :meth:`~PerFlowStateStore.get_or_create` boundaries; in-place growth of a
    handed-out object between those points is not observed, which keeps the
    accounting O(1) per operation and is documented in docs/state-engine.md.
    """
    size = sys.getsizeof(value)
    if isinstance(value, dict):
        for item_key, item in value.items():
            size += sys.getsizeof(item_key) + sys.getsizeof(item)
    elif isinstance(value, (list, tuple, set, frozenset)):
        for item in value:
            size += sys.getsizeof(item)
    return size


@dataclass(frozen=True)
class StoreMemoryStats:
    """Byte-level accounting snapshot of one :class:`PerFlowStateStore`.

    All byte figures are *accounted* estimates (entry slots plus a
    shallow-plus-one-level measure of each value object), maintained
    incrementally so reading them is O(1).  ``peak_total_bytes`` is the
    high-water mark of ``total_bytes`` over the store's lifetime — the number
    the million-flow tier bounds against resident state size.
    """

    #: Resident per-flow entries.
    entries: int
    #: Accounted bytes of resident entries (keys, slots, value estimates).
    entry_bytes: int
    #: Flows currently in the dirty set (pre-copy tracking).
    dirty_entries: int
    #: Accounted bytes of the dirty set.
    dirty_bytes: int
    #: Flows carrying a pre-copy install-round tag.
    install_tags: int
    #: Accounted bytes of the install-tag map.
    install_tag_bytes: int
    #: Secondary-index postings (0 unless the store was built ``indexed=True``).
    index_postings: int
    #: Accounted bytes of the secondary indexes.
    index_bytes: int
    #: Number of hash shards the entries are spread over.
    shard_count: int
    #: Lifetime high-water mark of :attr:`total_bytes`.
    peak_total_bytes: int

    @property
    def total_bytes(self) -> int:
        """Current accounted footprint: entries + dirty set + tags + indexes."""
        return self.entry_bytes + self.dirty_bytes + self.install_tag_bytes + self.index_bytes


class PerFlowStateStore(Generic[T]):
    """Sharded per-flow state objects indexed by flow key.

    The store records which header fields the owning middlebox uses to
    identify per-flow state (its *granularity*); queries at a finer
    granularity raise :class:`GranularityError`, as required by the paper.

    Entries live in ``shard_count`` hash shards keyed by the canonical flow
    token (the format :meth:`~repro.core.sharding.ShardRing.canonical_token`
    hashes with :func:`~repro.core.sharding.stable_hash`, so placement is
    stable across processes).  Pattern lookups scan shard by shard — the same
    linear cost as the paper's prototype for partial patterns on a default
    store — but a fully specified concrete pattern is routed to its single
    owning shard, and ``indexed=True`` additionally maintains per-field
    secondary indexes (source/destination address and source/destination
    port), generalising the original source-address-only index.

    The store also supports **versioned dirty-key tracking** for iterative
    pre-copy transfers: between :meth:`begin_dirty_tracking` and
    :meth:`end_dirty_tracking`, every mutation (:meth:`put`,
    :meth:`get_or_create` — whose returned object the caller typically mutates
    in place — and :meth:`remove`) stamps the flow's canonical key with a
    monotonically increasing version.  :meth:`drain_dirty` hands the dirtied
    keys to a delta round in dirtying order and clears them, so the next round
    starts from a clean slate.  Dirty tracking is O(affected): nothing in the
    drain path touches the resident entry population.

    Byte-level memory accounting is maintained incrementally on every
    mutation; :meth:`memory_stats` returns an O(1) snapshot including the
    lifetime peak.
    """

    def __init__(
        self,
        granularity: Tuple[str, ...] = ("nw_proto", "nw_src", "nw_dst", "tp_src", "tp_dst"),
        *,
        indexed: bool = False,
        bidirectional: bool = True,
        shard_count: int = DEFAULT_SHARD_COUNT,
    ) -> None:
        if shard_count < 1:
            raise ValueError(f"shard_count must be >= 1, got {shard_count}")
        self.granularity = tuple(granularity)
        self.bidirectional = bidirectional
        self.shard_count = shard_count
        self._shards: List[Dict[FlowKey, T]] = [{} for _ in range(shard_count)]
        self._count = 0
        self._indexed = indexed
        #: Address index: nw_src *and* nw_dst of every canonical key map to it.
        self._by_src: Dict[str, set] = {}
        #: Port index: tp_src and tp_dst of every canonical key map to it.
        self._by_port: Dict[int, set] = {}
        self._index_postings = 0
        #: Linear-scan step counter; exposed so benchmarks can verify the
        #: access pattern without timing noise.
        self.scan_steps = 0
        #: Dirty-key tracking (pre-copy transfers): canonical key -> version.
        self._dirty: Dict[FlowKey, int] = {}
        self._dirty_version = 0
        self._tracking_dirty = False
        #: Pre-copy install ordering at a destination: canonical key -> the
        #: round tag of the last tagged install; pruned with the entry itself.
        self._install_rounds: Dict[FlowKey, Tuple[int, ...]] = {}
        #: Incrementally maintained accounted bytes of resident entries.
        self._entry_bytes = 0
        self._peak_total_bytes = 0

    # -- sharding --------------------------------------------------------------

    def _shard_index(self, canonical: FlowKey) -> int:
        """Owning shard of a canonical key (stable token hash, as the ring's)."""
        if self.shard_count == 1:
            return 0
        token = (
            f"{canonical.nw_proto}|{canonical.nw_src}|{canonical.nw_dst}"
            f"|{canonical.tp_src}|{canonical.tp_dst}"
        )
        return _stable_hash(token) % self.shard_count

    def _shard_of(self, canonical: FlowKey) -> Dict[FlowKey, T]:
        """The shard dict holding (or destined to hold) *canonical*."""
        return self._shards[self._shard_index(canonical)]

    # -- memory accounting -----------------------------------------------------

    def _current_total_bytes(self) -> int:
        """Current accounted footprint across entries, dirt, tags, indexes."""
        return (
            self._entry_bytes
            + len(self._dirty) * DIRTY_SLOT_BYTES
            + len(self._install_rounds) * TAG_SLOT_BYTES
            + self._index_postings * INDEX_POSTING_BYTES
        )

    def _note_memory(self) -> None:
        """Update the lifetime peak after a mutation."""
        total = self._current_total_bytes()
        if total > self._peak_total_bytes:
            self._peak_total_bytes = total

    def memory_stats(self) -> StoreMemoryStats:
        """O(1) snapshot of the store's accounted memory footprint."""
        return StoreMemoryStats(
            entries=self._count,
            entry_bytes=self._entry_bytes,
            dirty_entries=len(self._dirty),
            dirty_bytes=len(self._dirty) * DIRTY_SLOT_BYTES,
            install_tags=len(self._install_rounds),
            install_tag_bytes=len(self._install_rounds) * TAG_SLOT_BYTES,
            index_postings=self._index_postings,
            index_bytes=self._index_postings * INDEX_POSTING_BYTES,
            shard_count=self.shard_count,
            peak_total_bytes=max(self._peak_total_bytes, self._current_total_bytes()),
        )

    # -- dirty tracking --------------------------------------------------------

    @property
    def tracking_dirty(self) -> bool:
        """True while mutations are being recorded for a pre-copy transfer."""
        return self._tracking_dirty

    @property
    def dirty_count(self) -> int:
        """Number of flows dirtied since the last drain (0 when not tracking)."""
        return len(self._dirty)

    def begin_dirty_tracking(self) -> None:
        """Start recording mutated flow keys; clears any previous dirty set.

        Called at the instant a pre-copy bulk get snapshots the store, so every
        later mutation is guaranteed to be either in the snapshot or dirty.
        """
        self._tracking_dirty = True
        self._dirty.clear()

    def end_dirty_tracking(self) -> None:
        """Stop recording mutations and drop the dirty set (transfer froze)."""
        self._tracking_dirty = False
        self._dirty.clear()

    def mark_dirty(self, key: FlowKey) -> None:
        """Stamp *key* with the next dirty version; no-op unless tracking.

        Middleboxes call this for flows a packet updated in place (mutating an
        object previously handed out by :meth:`get` / :meth:`get_or_create`
        leaves no store-level trace, so the data plane reports those updates
        explicitly via ``ProcessResult.updated_flows``).
        """
        if not self._tracking_dirty:
            return
        self._dirty_version += 1
        self._dirty[self.canonical_key(key)] = self._dirty_version
        self._note_memory()

    def dirty_keys(self) -> List[FlowKey]:
        """Currently dirty canonical keys in dirtying order (oldest first)."""
        return sorted(self._dirty, key=self._dirty.__getitem__)

    def drain_dirty(self) -> List[FlowKey]:
        """Return the dirty keys in dirtying order and clear the dirty set.

        A delta round exports exactly these flows; anything dirtied after the
        drain lands in the next round's set.
        """
        keys = self.dirty_keys()
        self._dirty.clear()
        return keys

    # -- pre-copy install ordering (destination side) --------------------------

    def install_round(self, key: FlowKey, tag: Tuple[int, ...]) -> bool:
        """Record a round-tagged install for *key*; False when the tag is stale.

        Tags are (operation id, round index) pairs compared lexicographically,
        so a later round — or any later operation — supersedes an earlier one.
        A stale tag leaves the recorded state untouched and the caller must
        discard the corresponding chunk.  Entries live and die with the flow's
        state: :meth:`remove` and :meth:`clear` prune them, which keeps the
        map bounded by the store's resident flows.
        """
        canonical = self.canonical_key(key)
        existing = self._install_rounds.get(canonical)
        if existing is not None and existing > tag:
            return False
        self._install_rounds[canonical] = tag
        self._note_memory()
        return True

    def clear_install_round(self, key: FlowKey) -> None:
        """Forget the install tag for one flow (its transfer involvement ended)."""
        self._install_rounds.pop(self.canonical_key(key), None)

    def clear_install_rounds(self) -> int:
        """Drop every pre-copy install tag (crash/teardown cleanup); returns count.

        Used when the instance's transfer involvement ends wholesale — the
        middlebox crashed or was unregistered mid-transfer — so no orphaned
        ``(op_id, round)`` tags survive an operation that will never release
        them."""
        count = len(self._install_rounds)
        self._install_rounds.clear()
        return count

    @property
    def install_round_count(self) -> int:
        """Number of flows currently carrying a pre-copy install tag."""
        return len(self._install_rounds)

    # -- mutation --------------------------------------------------------------

    def canonical_key(self, key: FlowKey) -> FlowKey:
        """Key under which state for *key* is stored (bidirectional canonical form)."""
        return key.bidirectional() if self.bidirectional else key

    def _index_add(self, canonical: FlowKey) -> None:
        """Add a freshly inserted canonical key to every secondary index."""
        for bucket_map, bucket_key in (
            (self._by_src, canonical.nw_src),
            (self._by_src, canonical.nw_dst),
            (self._by_port, canonical.tp_src),
            (self._by_port, canonical.tp_dst),
        ):
            postings = bucket_map.setdefault(bucket_key, set())
            if canonical not in postings:
                postings.add(canonical)
                self._index_postings += 1

    def _index_discard(self, canonical: FlowKey) -> None:
        """Remove a deleted canonical key from every secondary index."""
        for bucket_map, bucket_key in (
            (self._by_src, canonical.nw_src),
            (self._by_src, canonical.nw_dst),
            (self._by_port, canonical.tp_src),
            (self._by_port, canonical.tp_dst),
        ):
            postings = bucket_map.get(bucket_key)
            if postings is not None and canonical in postings:
                postings.discard(canonical)
                self._index_postings -= 1
                if not postings:
                    del bucket_map[bucket_key]

    def put(self, key: FlowKey, value: T) -> None:
        """Insert or replace the state object for a flow."""
        key = self.canonical_key(key)
        shard = self._shard_of(key)
        old = shard.get(key, _MISSING)
        if old is _MISSING:
            self._count += 1
            if self._indexed:
                self._index_add(key)
        else:
            self._entry_bytes -= ENTRY_SLOT_BYTES + _estimate_value_bytes(old)
        shard[key] = value
        self._entry_bytes += ENTRY_SLOT_BYTES + _estimate_value_bytes(value)
        self.mark_dirty(key)
        self._note_memory()

    def get(self, key: FlowKey) -> Optional[T]:
        """Return the state object for a flow, or None when absent."""
        canonical = self.canonical_key(key)
        return self._shard_of(canonical).get(canonical)

    def get_or_create(self, key: FlowKey, factory: Callable[[], T]) -> T:
        """Return the state object for a flow, creating it via *factory* if missing.

        Counts as a mutation for dirty tracking even when the object already
        exists: callers use this accessor precisely to update the returned
        object in place.
        """
        canonical = self.canonical_key(key)
        shard = self._shard_of(canonical)
        existing = shard.get(canonical, _MISSING)
        if existing is _MISSING:
            self.put(canonical, factory())
            return shard[canonical]
        self.mark_dirty(canonical)
        return existing

    def remove(self, key: FlowKey) -> Optional[T]:
        """Remove and return the state object for a flow (None when absent)."""
        canonical = self.canonical_key(key)
        shard = self._shard_of(canonical)
        value = shard.pop(canonical, _MISSING)
        self._install_rounds.pop(canonical, None)
        if value is _MISSING:
            return None
        self._count -= 1
        self._entry_bytes -= ENTRY_SLOT_BYTES + _estimate_value_bytes(value)
        self.mark_dirty(canonical)
        if self._indexed:
            self._index_discard(canonical)
        self._note_memory()
        return value

    def clear(self) -> None:
        """Drop every entry (with its index and install tag); dirty tracking is unaffected."""
        for shard in self._shards:
            shard.clear()
        self._count = 0
        self._entry_bytes = 0
        self._by_src.clear()
        self._by_port.clear()
        self._index_postings = 0
        self._install_rounds.clear()

    # -- queries ---------------------------------------------------------------

    def __len__(self) -> int:
        """Number of per-flow entries in the store."""
        return self._count

    def __contains__(self, key: FlowKey) -> bool:
        """Whether the store holds state for the flow (canonical form)."""
        canonical = self.canonical_key(key)
        return canonical in self._shard_of(canonical)

    def keys(self) -> List[FlowKey]:
        """The stored canonical flow keys (a copy, safe to mutate around)."""
        collected: List[FlowKey] = []
        for shard in self._shards:
            collected.extend(shard.keys())
        return collected

    def items(self) -> Iterator[Tuple[FlowKey, T]]:
        """Iterate over a snapshot of (canonical key, state object) pairs."""
        collected: List[Tuple[FlowKey, T]] = []
        for shard in self._shards:
            collected.extend(shard.items())
        return iter(collected)

    def _check_granularity(self, pattern: FlowPattern) -> None:
        """Reject patterns finer than the middlebox's per-flow granularity."""
        requested = set(pattern.specified_fields())
        available = set(self.granularity)
        finer = requested - available
        if finer:
            raise GranularityError(
                "request is finer than the middlebox's per-flow granularity: "
                f"extra fields {sorted(finer)}; available {sorted(available)}"
            )

    def _exact_key(self, pattern: FlowPattern) -> Optional[FlowKey]:
        """The single concrete FlowKey named by *pattern*, or None.

        A pattern that pins all five tuple fields with no address prefixes
        names at most two resident keys (itself and its reverse); both share
        one canonical form, so the scan can be restricted to the owning shard
        regardless of whether the store maintains secondary indexes.
        """
        if (
            pattern.nw_proto is None
            or pattern.tp_src is None
            or pattern.tp_dst is None
            or pattern.nw_src is None
            or pattern.nw_dst is None
            or "/" in pattern.nw_src
            or "/" in pattern.nw_dst
        ):
            return None
        return FlowKey(
            nw_proto=pattern.nw_proto,
            nw_src=pattern.nw_src,
            nw_dst=pattern.nw_dst,
            tp_src=pattern.tp_src,
            tp_dst=pattern.tp_dst,
        )

    def query(self, pattern: FlowPattern) -> List[Tuple[FlowKey, T]]:
        """Return all (key, value) pairs whose flow matches *pattern*.

        Raises :class:`GranularityError` when the pattern constrains fields the
        middlebox does not use to identify per-flow state.
        """
        return list(self.iter_matching(pattern))

    def iter_matching(self, pattern: FlowPattern) -> Iterator[Tuple[FlowKey, T]]:
        """Lazily yield (key, value) pairs matching *pattern*.

        Same matching semantics and ``scan_steps`` totals as :meth:`query`,
        but entries stream out as they are found: callers that seal chunks
        batch-by-batch never hold the full match list.  Each shard is
        snapshotted just before it is walked, so mutations to *other* flows
        during iteration are safe; removing a yielded flow mid-stream is also
        safe (the value was captured at snapshot time).
        """
        self._check_granularity(pattern)
        if pattern.is_wildcard:
            for shard in self._shards:
                self.scan_steps += len(shard)
                yield from list(shard.items())
            return
        if self._indexed:
            candidates = self._index_candidates(pattern)
            if candidates is not None:
                self.scan_steps += len(candidates)
                for key in candidates:
                    shard = self._shard_of(key)
                    if key in shard and pattern.matches_either_direction(key):
                        yield key, shard[key]
                return
        exact = self._exact_key(pattern)
        if exact is not None:
            canonical = self.canonical_key(exact)
            shard = self._shard_of(canonical)
            for key, value in list(shard.items()):
                self.scan_steps += 1
                if pattern.matches_either_direction(key):
                    yield key, value
            return
        for shard in self._shards:
            for key, value in list(shard.items()):
                self.scan_steps += 1
                if pattern.matches_either_direction(key):
                    yield key, value

    def remove_matching(self, pattern: FlowPattern) -> List[Tuple[FlowKey, T]]:
        """Remove and return all entries matching *pattern*."""
        matches = self.query(pattern)
        for key, _ in matches:
            self.remove(key)
        return matches

    def count_matching(self, pattern: FlowPattern) -> int:
        """Number of entries matching *pattern* (used by the stats call)."""
        return len(self.query(pattern))

    def _index_candidates(self, pattern: FlowPattern) -> Optional[set]:
        """Smallest usable secondary-index posting set, or None when no index applies.

        Exact (non-prefix) source/destination addresses consult the address
        index; pinned transport ports consult the port index.  When several
        indexed fields are pinned the smallest posting set wins, keeping the
        candidate filter pass minimal.
        """
        best: Optional[set] = None
        for text in (pattern.nw_src, pattern.nw_dst):
            if text is not None and "/" not in text:
                postings = self._by_src.get(text, set())
                if best is None or len(postings) < len(best):
                    best = postings
        for port in (pattern.tp_src, pattern.tp_dst):
            if port is not None:
                postings = self._by_port.get(port, set())
                if best is None or len(postings) < len(best):
                    best = postings
        if best is None:
            return None
        return set(best)


class DictPerFlowStateStore(Generic[T]):
    """The pre-shard single-dict store, kept verbatim as a differential oracle.

    This is the seed implementation of :class:`PerFlowStateStore` — one flat
    dict, a source-address-only index when ``indexed=True``, and a full linear
    scan for every partial pattern.  It is *not* used by any runtime code
    path; ``tests/test_state_properties.py`` replays seeded random operation
    sequences against both stores and asserts identical results and identical
    dirty-key drain order, so any behavioural drift in the sharded store is
    caught mechanically rather than by inspection.
    """

    def __init__(
        self,
        granularity: Tuple[str, ...] = ("nw_proto", "nw_src", "nw_dst", "tp_src", "tp_dst"),
        *,
        indexed: bool = False,
        bidirectional: bool = True,
    ) -> None:
        self.granularity = tuple(granularity)
        self.bidirectional = bidirectional
        self._entries: Dict[FlowKey, T] = {}
        self._indexed = indexed
        self._by_src: Dict[str, set] = {}
        self.scan_steps = 0
        self._dirty: Dict[FlowKey, int] = {}
        self._dirty_version = 0
        self._tracking_dirty = False
        self._install_rounds: Dict[FlowKey, Tuple[int, ...]] = {}

    @property
    def tracking_dirty(self) -> bool:
        """True while mutations are being recorded for a pre-copy transfer."""
        return self._tracking_dirty

    @property
    def dirty_count(self) -> int:
        """Number of flows dirtied since the last drain (0 when not tracking)."""
        return len(self._dirty)

    def begin_dirty_tracking(self) -> None:
        """Start recording mutated flow keys; clears any previous dirty set."""
        self._tracking_dirty = True
        self._dirty.clear()

    def end_dirty_tracking(self) -> None:
        """Stop recording mutations and drop the dirty set."""
        self._tracking_dirty = False
        self._dirty.clear()

    def mark_dirty(self, key: FlowKey) -> None:
        """Stamp *key* with the next dirty version; no-op unless tracking."""
        if not self._tracking_dirty:
            return
        self._dirty_version += 1
        self._dirty[self.canonical_key(key)] = self._dirty_version

    def dirty_keys(self) -> List[FlowKey]:
        """Currently dirty canonical keys in dirtying order (oldest first)."""
        return sorted(self._dirty, key=self._dirty.__getitem__)

    def drain_dirty(self) -> List[FlowKey]:
        """Return the dirty keys in dirtying order and clear the dirty set."""
        keys = self.dirty_keys()
        self._dirty.clear()
        return keys

    def install_round(self, key: FlowKey, tag: Tuple[int, ...]) -> bool:
        """Record a round-tagged install for *key*; False when the tag is stale."""
        canonical = self.canonical_key(key)
        existing = self._install_rounds.get(canonical)
        if existing is not None and existing > tag:
            return False
        self._install_rounds[canonical] = tag
        return True

    def clear_install_round(self, key: FlowKey) -> None:
        """Forget the install tag for one flow."""
        self._install_rounds.pop(self.canonical_key(key), None)

    def clear_install_rounds(self) -> int:
        """Drop every pre-copy install tag; returns how many were held."""
        count = len(self._install_rounds)
        self._install_rounds.clear()
        return count

    @property
    def install_round_count(self) -> int:
        """Number of flows currently carrying a pre-copy install tag."""
        return len(self._install_rounds)

    def canonical_key(self, key: FlowKey) -> FlowKey:
        """Key under which state for *key* is stored (bidirectional canonical form)."""
        return key.bidirectional() if self.bidirectional else key

    def put(self, key: FlowKey, value: T) -> None:
        """Insert or replace the state object for a flow."""
        key = self.canonical_key(key)
        self._entries[key] = value
        self.mark_dirty(key)
        if self._indexed:
            self._by_src.setdefault(key.nw_src, set()).add(key)
            self._by_src.setdefault(key.nw_dst, set()).add(key)

    def get(self, key: FlowKey) -> Optional[T]:
        """Return the state object for a flow, or None when absent."""
        return self._entries.get(self.canonical_key(key))

    def get_or_create(self, key: FlowKey, factory: Callable[[], T]) -> T:
        """Return the state object for a flow, creating it via *factory* if missing."""
        canonical = self.canonical_key(key)
        if canonical not in self._entries:
            self.put(canonical, factory())
        else:
            self.mark_dirty(canonical)
        return self._entries[canonical]

    def remove(self, key: FlowKey) -> Optional[T]:
        """Remove and return the state object for a flow (None when absent)."""
        canonical = self.canonical_key(key)
        value = self._entries.pop(canonical, None)
        self._install_rounds.pop(canonical, None)
        if value is not None:
            self.mark_dirty(canonical)
        if value is not None and self._indexed:
            for address in (canonical.nw_src, canonical.nw_dst):
                keys = self._by_src.get(address)
                if keys is not None:
                    keys.discard(canonical)
                    if not keys:
                        del self._by_src[address]
        return value

    def clear(self) -> None:
        """Drop every entry (with its index and install tag)."""
        self._entries.clear()
        self._by_src.clear()
        self._install_rounds.clear()

    def __len__(self) -> int:
        """Number of per-flow entries in the store."""
        return len(self._entries)

    def __contains__(self, key: FlowKey) -> bool:
        """Whether the store holds state for the flow (canonical form)."""
        return self.canonical_key(key) in self._entries

    def keys(self) -> List[FlowKey]:
        """The stored canonical flow keys (a copy, safe to mutate around)."""
        return list(self._entries.keys())

    def items(self) -> Iterator[Tuple[FlowKey, T]]:
        """Iterate over a snapshot of (canonical key, state object) pairs."""
        return iter(list(self._entries.items()))

    def _check_granularity(self, pattern: FlowPattern) -> None:
        """Reject patterns finer than the middlebox's per-flow granularity."""
        requested = set(pattern.specified_fields())
        available = set(self.granularity)
        finer = requested - available
        if finer:
            raise GranularityError(
                "request is finer than the middlebox's per-flow granularity: "
                f"extra fields {sorted(finer)}; available {sorted(available)}"
            )

    def query(self, pattern: FlowPattern) -> List[Tuple[FlowKey, T]]:
        """Return all (key, value) pairs whose flow matches *pattern*."""
        self._check_granularity(pattern)
        if pattern.is_wildcard:
            self.scan_steps += len(self._entries)
            return list(self._entries.items())
        if self._indexed:
            candidates = self._index_candidates(pattern)
            if candidates is not None:
                self.scan_steps += len(candidates)
                return [
                    (key, self._entries[key])
                    for key in candidates
                    if key in self._entries and pattern.matches_either_direction(key)
                ]
        matches: List[Tuple[FlowKey, T]] = []
        for key, value in self._entries.items():
            self.scan_steps += 1
            if pattern.matches_either_direction(key):
                matches.append((key, value))
        return matches

    def remove_matching(self, pattern: FlowPattern) -> List[Tuple[FlowKey, T]]:
        """Remove and return all entries matching *pattern*."""
        matches = self.query(pattern)
        for key, _ in matches:
            self.remove(key)
        return matches

    def count_matching(self, pattern: FlowPattern) -> int:
        """Number of entries matching *pattern*."""
        return len(self.query(pattern))

    def _index_candidates(self, pattern: FlowPattern) -> Optional[set]:
        """Candidate keys from the source/destination index, or None when unusable."""
        for text in (pattern.nw_src, pattern.nw_dst):
            if text is not None and "/" not in text:
                return set(self._by_src.get(text, set()))
        return None


class SharedStateSlot(Generic[T]):
    """Holder for one piece of shared state with clone/merge hooks.

    The middlebox supplies the merge function (the paper keeps merge logic
    inside the middlebox because it depends on state semantics) and optionally
    a clone function (defaulting to a deep copy performed by the serializer at
    export time, so the default here is identity pass-through of whatever the
    caller provides).
    """

    def __init__(
        self,
        initial: T,
        *,
        merge: Optional[Callable[[T, T], T]] = None,
        clone: Optional[Callable[[T], T]] = None,
    ) -> None:
        self.value: T = initial
        self._merge = merge
        self._clone = clone
        #: Number of times external state has been merged into this slot.
        self.merge_count = 0

    def replace(self, value: T) -> None:
        """Overwrite the shared state (used when importing into an empty MB)."""
        self.value = value

    def merge_in(self, incoming: T) -> None:
        """Merge externally supplied state into the local state.

        Falls back to replacement when the middlebox supplied no merge hook,
        mirroring the paper's note that an MB may "start afresh when the state
        does not permit merge".
        """
        if self._merge is None:
            self.value = incoming
        else:
            self.value = self._merge(self.value, incoming)
        self.merge_count += 1

    def clone_value(self) -> T:
        """Return a copy of the shared state suitable for export."""
        if self._clone is not None:
            return self._clone(self.value)
        return self.value
