"""Middlebox state taxonomy and state stores.

Section 3.1 of the paper classifies middlebox state along two dimensions:

* its *role* — configuring, supporting, or reporting; and
* its *partitioning* — per-flow or shared.

and notes which roles the middlebox itself reads and/or writes (Table 1).

This module encodes that taxonomy and provides the two state containers that
every OpenMB-enabled middlebox uses internally:

* :class:`PerFlowStateStore` — native per-flow state objects indexed by
  :class:`~repro.core.flowspace.FlowKey`, queried by
  :class:`~repro.core.flowspace.FlowPattern` (by default with the linear scan
  the paper's prototype uses; an optional index reproduces the "wildcard match
  techniques" the paper suggests as an improvement).
* :class:`SharedStateSlot` — a single shared state object with clone and merge
  hooks supplied by the middlebox.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, Generic, Iterator, List, Optional, Tuple, TypeVar

from .errors import GranularityError, StateError
from .flowspace import FlowKey, FlowPattern

T = TypeVar("T")


class StateRole(enum.Enum):
    """The purpose a piece of middlebox state serves (paper Table 1)."""

    CONFIGURING = "configuring"
    SUPPORTING = "supporting"
    REPORTING = "reporting"


class StateScope(enum.Enum):
    """Whether a piece of state applies to one flow or to all traffic."""

    PER_FLOW = "per-flow"
    SHARED = "shared"


class AccessMode(enum.Flag):
    """Which operations the middlebox's own logic performs on the state."""

    NONE = 0
    READ = enum.auto()
    WRITE = enum.auto()
    READ_WRITE = READ | WRITE


@dataclass(frozen=True)
class StateClass:
    """One cell of the taxonomy: a role, a scope, and the MB's access mode."""

    role: StateRole
    scope: StateScope
    mb_access: AccessMode

    @property
    def movable(self) -> bool:
        """Whether the controller may relocate this state between instances.

        Configuration state is owned by the controller (it is written, not
        moved); supporting and reporting state are what move/clone/merge act on.
        """
        return self.role is not StateRole.CONFIGURING

    @property
    def cloneable(self) -> bool:
        """Whether cloning is safe.

        Shared *reporting* state must not be cloned (double reporting, paper
        section 4.1.3); every other movable class may be cloned.
        """
        if not self.movable:
            return False
        return not (self.role is StateRole.REPORTING and self.scope is StateScope.SHARED)


#: The taxonomy of paper Table 1, keyed by (role, scope).
TAXONOMY: Dict[Tuple[StateRole, StateScope], StateClass] = {
    (StateRole.CONFIGURING, StateScope.SHARED): StateClass(
        StateRole.CONFIGURING, StateScope.SHARED, AccessMode.READ
    ),
    (StateRole.SUPPORTING, StateScope.PER_FLOW): StateClass(
        StateRole.SUPPORTING, StateScope.PER_FLOW, AccessMode.READ_WRITE
    ),
    (StateRole.SUPPORTING, StateScope.SHARED): StateClass(
        StateRole.SUPPORTING, StateScope.SHARED, AccessMode.READ_WRITE
    ),
    (StateRole.REPORTING, StateScope.PER_FLOW): StateClass(
        StateRole.REPORTING, StateScope.PER_FLOW, AccessMode.WRITE
    ),
    (StateRole.REPORTING, StateScope.SHARED): StateClass(
        StateRole.REPORTING, StateScope.SHARED, AccessMode.WRITE
    ),
}


def state_class(role: StateRole, scope: StateScope) -> StateClass:
    """Look up the taxonomy entry for a role/scope combination."""
    try:
        return TAXONOMY[(role, scope)]
    except KeyError:
        raise StateError(f"no taxonomy entry for {role.value} / {scope.value}") from None


@dataclass
class StateChunk:
    """A unit of exported per-flow state: a flow key and a sealed value blob.

    This is the ``[HeaderFieldList : EncryptedChunk]`` pair of the paper's
    southbound API.  The blob is opaque to the controller; the only visible
    metadata are the flow key, the role, and the blob size.
    """

    key: FlowKey
    role: StateRole
    blob: bytes
    metadata: dict = field(default_factory=dict)

    @property
    def size(self) -> int:
        """Size of the sealed blob in bytes."""
        return len(self.blob)


@dataclass
class SharedChunk:
    """A unit of exported shared state: a single sealed blob for the whole MB."""

    role: StateRole
    blob: bytes
    metadata: dict = field(default_factory=dict)

    @property
    def size(self) -> int:
        """Size of the sealed blob in bytes."""
        return len(self.blob)


class PerFlowStateStore(Generic[T]):
    """Per-flow state objects indexed by flow key.

    The store records which header fields the owning middlebox uses to
    identify per-flow state (its *granularity*); queries at a finer
    granularity raise :class:`GranularityError`, as required by the paper.

    Lookups by pattern use a linear scan by default (matching the paper's
    prototype, whose get cost grows linearly and dominates put cost).  Passing
    ``indexed=True`` maintains a per-source-address index, used by the
    "indexed get" ablation benchmark.

    The store also supports **versioned dirty-key tracking** for iterative
    pre-copy transfers: between :meth:`begin_dirty_tracking` and
    :meth:`end_dirty_tracking`, every mutation (:meth:`put`,
    :meth:`get_or_create` — whose returned object the caller typically mutates
    in place — and :meth:`remove`) stamps the flow's canonical key with a
    monotonically increasing version.  :meth:`drain_dirty` hands the dirtied
    keys to a delta round in dirtying order and clears them, so the next round
    starts from a clean slate.
    """

    def __init__(
        self,
        granularity: Tuple[str, ...] = ("nw_proto", "nw_src", "nw_dst", "tp_src", "tp_dst"),
        *,
        indexed: bool = False,
        bidirectional: bool = True,
    ) -> None:
        self.granularity = tuple(granularity)
        self.bidirectional = bidirectional
        self._entries: Dict[FlowKey, T] = {}
        self._indexed = indexed
        self._by_src: Dict[str, set] = {}
        #: Linear-scan step counter; exposed so benchmarks can verify the
        #: access pattern without timing noise.
        self.scan_steps = 0
        #: Dirty-key tracking (pre-copy transfers): canonical key -> version.
        self._dirty: Dict[FlowKey, int] = {}
        self._dirty_version = 0
        self._tracking_dirty = False
        #: Pre-copy install ordering at a destination: canonical key -> the
        #: round tag of the last tagged install; pruned with the entry itself.
        self._install_rounds: Dict[FlowKey, Tuple[int, ...]] = {}

    # -- dirty tracking --------------------------------------------------------

    @property
    def tracking_dirty(self) -> bool:
        """True while mutations are being recorded for a pre-copy transfer."""
        return self._tracking_dirty

    @property
    def dirty_count(self) -> int:
        """Number of flows dirtied since the last drain (0 when not tracking)."""
        return len(self._dirty)

    def begin_dirty_tracking(self) -> None:
        """Start recording mutated flow keys; clears any previous dirty set.

        Called at the instant a pre-copy bulk get snapshots the store, so every
        later mutation is guaranteed to be either in the snapshot or dirty.
        """
        self._tracking_dirty = True
        self._dirty.clear()

    def end_dirty_tracking(self) -> None:
        """Stop recording mutations and drop the dirty set (transfer froze)."""
        self._tracking_dirty = False
        self._dirty.clear()

    def mark_dirty(self, key: FlowKey) -> None:
        """Stamp *key* with the next dirty version; no-op unless tracking.

        Middleboxes call this for flows a packet updated in place (mutating an
        object previously handed out by :meth:`get` / :meth:`get_or_create`
        leaves no store-level trace, so the data plane reports those updates
        explicitly via ``ProcessResult.updated_flows``).
        """
        if not self._tracking_dirty:
            return
        self._dirty_version += 1
        self._dirty[self.canonical_key(key)] = self._dirty_version

    def dirty_keys(self) -> List[FlowKey]:
        """Currently dirty canonical keys in dirtying order (oldest first)."""
        return sorted(self._dirty, key=self._dirty.__getitem__)

    def drain_dirty(self) -> List[FlowKey]:
        """Return the dirty keys in dirtying order and clear the dirty set.

        A delta round exports exactly these flows; anything dirtied after the
        drain lands in the next round's set.
        """
        keys = self.dirty_keys()
        self._dirty.clear()
        return keys

    # -- pre-copy install ordering (destination side) --------------------------

    def install_round(self, key: FlowKey, tag: Tuple[int, ...]) -> bool:
        """Record a round-tagged install for *key*; False when the tag is stale.

        Tags are (operation id, round index) pairs compared lexicographically,
        so a later round — or any later operation — supersedes an earlier one.
        A stale tag leaves the recorded state untouched and the caller must
        discard the corresponding chunk.  Entries live and die with the flow's
        state: :meth:`remove` and :meth:`clear` prune them, which keeps the
        map bounded by the store's resident flows.
        """
        canonical = self.canonical_key(key)
        existing = self._install_rounds.get(canonical)
        if existing is not None and existing > tag:
            return False
        self._install_rounds[canonical] = tag
        return True

    def clear_install_round(self, key: FlowKey) -> None:
        """Forget the install tag for one flow (its transfer involvement ended)."""
        self._install_rounds.pop(self.canonical_key(key), None)

    def clear_install_rounds(self) -> int:
        """Drop every pre-copy install tag (crash/teardown cleanup); returns count.

        Used when the instance's transfer involvement ends wholesale — the
        middlebox crashed or was unregistered mid-transfer — so no orphaned
        ``(op_id, round)`` tags survive an operation that will never release
        them."""
        count = len(self._install_rounds)
        self._install_rounds.clear()
        return count

    @property
    def install_round_count(self) -> int:
        """Number of flows currently carrying a pre-copy install tag."""
        return len(self._install_rounds)

    # -- mutation --------------------------------------------------------------

    def canonical_key(self, key: FlowKey) -> FlowKey:
        """Key under which state for *key* is stored (bidirectional canonical form)."""
        return key.bidirectional() if self.bidirectional else key

    def put(self, key: FlowKey, value: T) -> None:
        """Insert or replace the state object for a flow."""
        key = self.canonical_key(key)
        self._entries[key] = value
        self.mark_dirty(key)
        if self._indexed:
            self._by_src.setdefault(key.nw_src, set()).add(key)
            self._by_src.setdefault(key.nw_dst, set()).add(key)

    def get(self, key: FlowKey) -> Optional[T]:
        """Return the state object for a flow, or None when absent."""
        return self._entries.get(self.canonical_key(key))

    def get_or_create(self, key: FlowKey, factory: Callable[[], T]) -> T:
        """Return the state object for a flow, creating it via *factory* if missing.

        Counts as a mutation for dirty tracking even when the object already
        exists: callers use this accessor precisely to update the returned
        object in place.
        """
        canonical = self.canonical_key(key)
        if canonical not in self._entries:
            self.put(canonical, factory())
        else:
            self.mark_dirty(canonical)
        return self._entries[canonical]

    def remove(self, key: FlowKey) -> Optional[T]:
        """Remove and return the state object for a flow (None when absent)."""
        canonical = self.canonical_key(key)
        value = self._entries.pop(canonical, None)
        self._install_rounds.pop(canonical, None)
        if value is not None:
            self.mark_dirty(canonical)
        if value is not None and self._indexed:
            for address in (canonical.nw_src, canonical.nw_dst):
                keys = self._by_src.get(address)
                if keys is not None:
                    keys.discard(canonical)
                    if not keys:
                        del self._by_src[address]
        return value

    def clear(self) -> None:
        """Drop every entry (with its index and install tag); dirty tracking is unaffected."""
        self._entries.clear()
        self._by_src.clear()
        self._install_rounds.clear()

    # -- queries ---------------------------------------------------------------

    def __len__(self) -> int:
        """Number of per-flow entries in the store."""
        return len(self._entries)

    def __contains__(self, key: FlowKey) -> bool:
        """Whether the store holds state for the flow (canonical form)."""
        return self.canonical_key(key) in self._entries

    def keys(self) -> List[FlowKey]:
        """The stored canonical flow keys (a copy, safe to mutate around)."""
        return list(self._entries.keys())

    def items(self) -> Iterator[Tuple[FlowKey, T]]:
        """Iterate over a snapshot of (canonical key, state object) pairs."""
        return iter(list(self._entries.items()))

    def _check_granularity(self, pattern: FlowPattern) -> None:
        """Reject patterns finer than the middlebox's per-flow granularity."""
        requested = set(pattern.specified_fields())
        available = set(self.granularity)
        finer = requested - available
        if finer:
            raise GranularityError(
                "request is finer than the middlebox's per-flow granularity: "
                f"extra fields {sorted(finer)}; available {sorted(available)}"
            )

    def query(self, pattern: FlowPattern) -> List[Tuple[FlowKey, T]]:
        """Return all (key, value) pairs whose flow matches *pattern*.

        Raises :class:`GranularityError` when the pattern constrains fields the
        middlebox does not use to identify per-flow state.
        """
        self._check_granularity(pattern)
        if pattern.is_wildcard:
            self.scan_steps += len(self._entries)
            return list(self._entries.items())
        if self._indexed:
            candidates = self._index_candidates(pattern)
            if candidates is not None:
                self.scan_steps += len(candidates)
                return [
                    (key, self._entries[key])
                    for key in candidates
                    if key in self._entries and pattern.matches_either_direction(key)
                ]
        matches: List[Tuple[FlowKey, T]] = []
        for key, value in self._entries.items():
            self.scan_steps += 1
            if pattern.matches_either_direction(key):
                matches.append((key, value))
        return matches

    def remove_matching(self, pattern: FlowPattern) -> List[Tuple[FlowKey, T]]:
        """Remove and return all entries matching *pattern*."""
        matches = self.query(pattern)
        for key, _ in matches:
            self.remove(key)
        return matches

    def count_matching(self, pattern: FlowPattern) -> int:
        """Number of entries matching *pattern* (used by the stats call)."""
        return len(self.query(pattern))

    def _index_candidates(self, pattern: FlowPattern) -> Optional[set]:
        """Candidate keys from the source/destination index, or None when unusable."""
        for text in (pattern.nw_src, pattern.nw_dst):
            if text is not None and "/" not in text:
                return set(self._by_src.get(text, set()))
        return None


class SharedStateSlot(Generic[T]):
    """Holder for one piece of shared state with clone/merge hooks.

    The middlebox supplies the merge function (the paper keeps merge logic
    inside the middlebox because it depends on state semantics) and optionally
    a clone function (defaulting to a deep copy performed by the serializer at
    export time, so the default here is identity pass-through of whatever the
    caller provides).
    """

    def __init__(
        self,
        initial: T,
        *,
        merge: Optional[Callable[[T, T], T]] = None,
        clone: Optional[Callable[[T], T]] = None,
    ) -> None:
        self.value: T = initial
        self._merge = merge
        self._clone = clone
        #: Number of times external state has been merged into this slot.
        self.merge_count = 0

    def replace(self, value: T) -> None:
        """Overwrite the shared state (used when importing into an empty MB)."""
        self.value = value

    def merge_in(self, incoming: T) -> None:
        """Merge externally supplied state into the local state.

        Falls back to replacement when the middlebox supplied no merge hook,
        mirroring the paper's note that an MB may "start afresh when the state
        does not permit merge".
        """
        if self._merge is None:
            self.value = incoming
        else:
            self.value = self._merge(self.value, incoming)
        self.merge_count += 1

    def clone_value(self) -> T:
        """Return a copy of the shared state suitable for export."""
        if self._clone is not None:
            return self._clone(self.value)
        return self.value
